# Static-analysis helpers: a `lint` target that runs statim-lint (always)
# and clang-tidy (when found) from one command, plus the Python interpreter
# lookup shared with the lint ctest entries.
#
#   cmake --build build --target lint        # or: make -C build lint
#
# statim-lint is stdlib-only Python; clang-tidy consumes the
# compile_commands.json that CMAKE_EXPORT_COMPILE_COMMANDS exports on every
# configure. Neither is required to build — the target degrades to whatever
# tooling the host has.

find_package(Python3 COMPONENTS Interpreter QUIET)
find_program(CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
                                  clang-tidy-16 clang-tidy-15 clang-tidy-14)

set(_lint_commands)
if(Python3_FOUND)
  list(APPEND _lint_commands
       COMMAND ${Python3_EXECUTABLE} ${CMAKE_CURRENT_SOURCE_DIR}/tools/statim_lint
               --root ${CMAKE_CURRENT_SOURCE_DIR})
else()
  message(STATUS "Python3 not found; `lint` target will skip statim-lint")
endif()

if(CLANG_TIDY_EXE)
  # run-clang-tidy parallelizes across TUs when available; fall back to a
  # plain serial invocation otherwise.
  find_program(RUN_CLANG_TIDY_EXE NAMES run-clang-tidy run-clang-tidy-18
                                        run-clang-tidy-17 run-clang-tidy-16
                                        run-clang-tidy-15 run-clang-tidy-14)
  if(RUN_CLANG_TIDY_EXE)
    list(APPEND _lint_commands
         COMMAND ${RUN_CLANG_TIDY_EXE} -clang-tidy-binary ${CLANG_TIDY_EXE}
                 -p ${CMAKE_BINARY_DIR} -quiet
                 ${CMAKE_CURRENT_SOURCE_DIR}/src/.*)
  else()
    file(GLOB_RECURSE _tidy_sources CONFIGURE_DEPENDS
         ${CMAKE_CURRENT_SOURCE_DIR}/src/*.cpp)
    list(APPEND _lint_commands
         COMMAND ${CLANG_TIDY_EXE} -p ${CMAKE_BINARY_DIR} --quiet
                 ${_tidy_sources})
  endif()
else()
  message(STATUS "clang-tidy not found; `lint` target will run statim-lint only")
endif()

if(_lint_commands)
  add_custom_target(lint
    ${_lint_commands}
    WORKING_DIRECTORY ${CMAKE_CURRENT_SOURCE_DIR}
    COMMENT "Running statim-lint and clang-tidy (if available)"
    VERBATIM)
else()
  add_custom_target(lint
    COMMAND ${CMAKE_COMMAND} -E echo
            "lint: neither Python3 nor clang-tidy found; nothing to run"
    VERBATIM)
endif()
