// Level-parallel SSTA thread sweep at the 100k-gate scale.
//
// One full SSTA run used to be strictly serial (PR 1 only parallelized
// *across* candidate evaluations). The engine now shards every level's
// `compute_arrival` wave over the thread pool, with all intermediates in
// per-thread PDF arenas, so a single run scales with cores while staying
// bit-identical to the serial reference. This bench sweeps the thread
// count over a registry circuit (default: the synthetic 100k-gate
// scale-up), timing
//   * the full run() (the acceptance metric: run_speedup at 8 threads),
//   * a fixed trajectory of incremental update() refreshes,
// and asserts after every timed run that all arrivals — in particular
// the sink CDF — are bitwise identical to the 1-thread reference.
//
// Output: a human-readable table on stderr and one JSON document on
// stdout, e.g.
//   {"bench":"parallel_ssta","circuits":[{"circuit":"synth100k",
//     "nodes":...,"edges":...,"levels":...,"reps":2,
//     "sweep":[{"threads":1,"rebuild_s":...,"run_s":...,"run_speedup":1.0,
//               "update_s":...,"update_speedup":1.0,"identical":true},...],
//     "sink_bitwise_identical":true}]}
//
// Argument-free (bench convention); knobs:
//   STATIM_BENCH_CIRCUITS  comma list (default synth100k)
//   STATIM_BENCH_THREADS   comma list of thread counts (default 1,2,4,8)
//   STATIM_BENCH_SCALE     multiplies the timing repetitions
//   STATIM_BENCH_BINS      grid target bins (default: GridPolicy default)
//   STATIM_LOG             debug|info|warn|error
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/context.hpp"
#include "prob/kernels/kernels.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace statim;

std::vector<std::size_t> threads_from_env() {
    std::vector<std::size_t> counts;
    if (const auto listed = env_string("STATIM_BENCH_THREADS")) {
        std::istringstream in(*listed);
        std::string tok;
        while (std::getline(in, tok, ','))
            if (!tok.empty()) counts.push_back(static_cast<std::size_t>(
                                  std::max(1L, std::atol(tok.c_str()))));
    }
    if (counts.empty()) counts = {1, 2, 4, 8};
    if (counts.front() != 1) counts.insert(counts.begin(), 1);  // reference first
    return counts;
}

struct SweepPoint {
    std::size_t threads{0};
    double rebuild_s{0.0};
    double run_s{0.0};
    double update_s{0.0};
    bool identical{true};
};

struct Row {
    std::string circuit;
    std::size_t nodes{0}, edges{0}, levels{0};
    int reps{1};
    std::vector<SweepPoint> sweep;
    bool sink_identical{true};
    // Arena occupancy after the sweep: arrival-store and wave-arena
    // growth must stay visible as the registry scales to 250k gates.
    ssta::SstaEngine::MemoryStats memory;
    std::size_t scratch_capacity{0};
};

bool arrivals_equal(const ssta::SstaEngine& engine,
                    const std::vector<prob::Pdf>& reference) {
    for (std::size_t n = 0; n < reference.size(); ++n)
        if (!(engine.arrival(NodeId{static_cast<std::uint32_t>(n)}) == reference[n]))
            return false;
    return true;
}

}  // namespace

int main() {
    std::fprintf(stderr,
                 "bench_parallel_ssta — level-synchronous SSTA thread sweep "
                 "(arrivals bit-identical across thread counts)\n");
    apply_log_env();

    const cells::Library lib = cells::Library::standard_180nm();
    const std::vector<std::size_t> thread_counts = threads_from_env();
    const int reps = std::max(1, static_cast<int>(2 * bench::bench_scale()));

    std::vector<std::string> circuits;
    if (env_string("STATIM_BENCH_CIRCUITS")) circuits = bench::circuits_from_env();
    if (circuits.empty()) circuits = {"synth100k"};

    ssta::GridPolicy policy;
    policy.target_bins =
        static_cast<int>(env_int("STATIM_BENCH_BINS", policy.target_bins));

    std::vector<Row> rows;
    for (const std::string& name : circuits) {
        Row row;
        row.circuit = name;
        row.reps = reps;

        Timer build_timer;
        netlist::Netlist nl = netlist::make_iscas(name, lib);
        core::Context ctx(nl, lib, policy);
        row.nodes = ctx.graph().node_count();
        row.edges = ctx.graph().edge_count();
        row.levels = ctx.graph().num_levels();
        std::fprintf(stderr, "%s: %zu nodes, %zu edges, %zu levels (built in %.1fs)\n",
                     name.c_str(), row.nodes, row.edges, row.levels,
                     build_timer.seconds());

        // A fixed resize trajectory for the update() sweep: mid-depth
        // gates spread over the circuit, identical for every thread count.
        Rng rng(hash_name(name));
        std::vector<GateId> trajectory;
        for (int i = 0; i < 10; ++i)
            trajectory.push_back(
                GateId{static_cast<std::uint32_t>(rng() % nl.gate_count())});

        // Serial reference arrivals (and the trajectory's end state).
        std::vector<prob::Pdf> ref_run, ref_end;
        {
            ctx.set_ssta_threads(1);
            ctx.run_ssta();
            for (std::size_t n = 0; n < row.nodes; ++n)
                ref_run.push_back(
                    ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}).to_pdf());
            for (GateId g : trajectory) {
                (void)ctx.apply_resize(g, 0.25);
                ctx.refresh_ssta();
            }
            for (std::size_t n = 0; n < row.nodes; ++n)
                ref_end.push_back(
                    ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}).to_pdf());
            for (GateId g : trajectory) (void)ctx.apply_resize(g, -0.25);
            ctx.run_ssta();  // resync to the min-size state
        }

        for (const std::size_t threads : thread_counts) {
            SweepPoint point;
            point.threads = threads;
            set_default_thread_count(threads);
            ctx.set_ssta_threads(threads);

            // Bulk nominal-delay + edge-PDF rebuild (sharded per gate /
            // per edge); correctness is covered by the arrival check
            // below, since the runs consume the rebuilt PDFs.
            Timer rebuild_timer;
            ctx.rebuild_timing(threads);
            point.rebuild_s = rebuild_timer.seconds();

            point.run_s = 1e300;
            for (int rep = 0; rep < reps; ++rep) {
                Timer timer;
                ctx.run_ssta();
                point.run_s = std::min(point.run_s, timer.seconds());
            }
            point.identical = arrivals_equal(ctx.engine(), ref_run);

            Timer update_timer;
            for (GateId g : trajectory) {
                (void)ctx.apply_resize(g, 0.25);
                ctx.refresh_ssta();
            }
            point.update_s = update_timer.seconds();
            point.identical =
                point.identical && arrivals_equal(ctx.engine(), ref_end);
            for (GateId g : trajectory) (void)ctx.apply_resize(g, -0.25);
            ctx.run_ssta();  // back to the min-size state for the next point

            row.sink_identical = row.sink_identical && point.identical;
            row.sweep.push_back(point);
            const double base_run = row.sweep.front().run_s;
            const double base_upd = row.sweep.front().update_s;
            std::fprintf(stderr,
                         "  threads %2zu  rebuild %7.3fs  run %8.3fs (%5.2fx)  "
                         "10-resize refresh %8.3fs (%5.2fx)  %s\n",
                         threads, point.rebuild_s, point.run_s,
                         point.run_s > 0 ? base_run / point.run_s : 0.0,
                         point.update_s,
                         point.update_s > 0 ? base_upd / point.update_s : 0.0,
                         point.identical ? "bit-identical" : "DIVERGED");
        }
        row.memory = ctx.engine().memory_stats();
        row.scratch_capacity = prob::thread_arena().capacity();
        std::fprintf(stderr,
                     "  arrival store: live %zu / used %zu / cap %zu doubles "
                     "(high water %zu, %zu compactions); wave cap %zu, "
                     "scratch cap %zu\n",
                     row.memory.store.live_doubles, row.memory.store.used_doubles,
                     row.memory.store.capacity_doubles,
                     row.memory.store.high_water_doubles,
                     row.memory.store.compactions,
                     row.memory.wave_capacity_doubles, row.scratch_capacity);
        rows.push_back(row);
    }

    std::printf("{\"bench\":\"parallel_ssta\",\"simd\":\"%s\",\"circuits\":[",
                prob::kernels::active().name);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::printf("%s{\"circuit\":\"%s\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"levels\":%zu,\"reps\":%d,\"sweep\":[",
                    i == 0 ? "" : ",", r.circuit.c_str(), r.nodes, r.edges,
                    r.levels, r.reps);
        const double base_run = r.sweep.empty() ? 0.0 : r.sweep.front().run_s;
        const double base_upd = r.sweep.empty() ? 0.0 : r.sweep.front().update_s;
        for (std::size_t k = 0; k < r.sweep.size(); ++k) {
            const SweepPoint& p = r.sweep[k];
            std::printf("%s{\"threads\":%zu,\"rebuild_s\":%.6f,"
                        "\"run_s\":%.6f,\"run_speedup\":%.3f,"
                        "\"update_s\":%.6f,\"update_speedup\":%.3f,"
                        "\"identical\":%s}",
                        k == 0 ? "" : ",", p.threads, p.rebuild_s, p.run_s,
                        p.run_s > 0 ? base_run / p.run_s : 0.0, p.update_s,
                        p.update_s > 0 ? base_upd / p.update_s : 0.0,
                        p.identical ? "true" : "false");
        }
        std::printf("],\"sink_bitwise_identical\":%s,"
                    "\"memory\":{\"store_capacity_doubles\":%zu,"
                    "\"store_used_doubles\":%zu,\"store_live_doubles\":%zu,"
                    "\"store_high_water_doubles\":%zu,\"store_compactions\":%zu,"
                    "\"wave_capacity_doubles\":%zu,"
                    "\"wave_high_water_doubles\":%zu,"
                    "\"scratch_capacity_doubles\":%zu}}",
                    r.sink_identical ? "true" : "false",
                    r.memory.store.capacity_doubles, r.memory.store.used_doubles,
                    r.memory.store.live_doubles,
                    r.memory.store.high_water_doubles, r.memory.store.compactions,
                    r.memory.wave_capacity_doubles,
                    r.memory.wave_high_water_doubles, r.scratch_capacity);
    }
    std::printf("]}\n");

    bool all_identical = true;
    for (const Row& r : rows) all_identical = all_identical && r.sink_identical;
    return all_identical ? 0 : 1;
}
