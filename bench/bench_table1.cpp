// Table 1 — "Results for the 99-percentile delay point".
//
// For every circuit: deterministic coordinate descent for the iteration
// budget, then the statistical (pruned) optimizer up to the same added
// area; both solutions evaluated at the 99-percentile of the SSTA bound on
// a common grid. Paper reference values are printed alongside.
//
// Paper: avg improvement 7.8%, max 10.5% (>1000 iterations per circuit).
// The argument-free run scales iteration budgets down per circuit
// (STATIM_BENCH_SCALE to change); improvements grow with the budget.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct PaperRow {
    const char* name;
    double inc_pct, det_ns, stat_ns, impr_pct;
};

// Table 1 of the paper (DATE'05), for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"c432", 97.0, 3.49, 3.14, 10.03}, {"c499", 25.6, 3.98, 3.56, 10.55},
    {"c880", 93.0, 4.09, 3.74, 8.55},  {"c1355", 23.7, 4.80, 4.30, 10.41},
    {"c1908", 20.9, 6.48, 6.12, 5.50}, {"c2670", 21.4, 3.65, 3.40, 6.85},
    {"c3540", 11.5, 5.98, 5.70, 5.0},  {"c5315", 6.7, 5.90, 5.40, 8.47},
    {"c6288", 28.1, 16.00, 15.05, 5.93}, {"c7552", 13.1, 8.10, 7.60, 6.17},
};

const PaperRow* paper_row(const std::string& name) {
    for (const auto& row : kPaper)
        if (name == row.name) return &row;
    return nullptr;
}

}  // namespace

int main() {
    using namespace statim;
    bench::print_banner("Table 1", "99-percentile delay: deterministic vs statistical "
                                   "gate sizing at equal area");

    AsciiTable table({"circuit", "node/edge", "% inc.", "det (ns)", "stat (ns)",
                      "% impr.", "iters(det/stat)", "paper % impr."});
    const cells::Library lib = cells::Library::standard_180nm();

    double impr_sum = 0.0, impr_max = 0.0;
    int rows = 0;
    for (const std::string& name : bench::circuits_from_env()) {
        core::ComparisonConfig cfg;
        cfg.det_iterations = bench::scaled_iterations(name, 400);
        Timer timer;
        const core::ComparisonResult row = core::compare_optimizers(name, lib, cfg);
        std::fprintf(stderr, "  %s done in %.1fs (det %d iters, stat %d iters)\n",
                     name.c_str(), timer.seconds(), row.det.iterations,
                     row.stat.iterations);

        const PaperRow* paper = paper_row(name);
        table.add_row({name,
                       std::to_string(row.nodes) + "/" + std::to_string(row.edges),
                       format_double(row.det_area_increase_pct, 3),
                       format_double(row.det_objective_ns, 4),
                       format_double(row.stat_objective_ns, 4),
                       format_double(row.improvement_pct, 3),
                       std::to_string(row.det.iterations) + "/" +
                           std::to_string(row.stat.iterations),
                       paper ? format_double(paper->impr_pct, 3) : "-"});
        impr_sum += row.improvement_pct;
        impr_max = std::max(impr_max, row.improvement_pct);
        ++rows;
    }

    table.print(std::cout);
    if (rows > 0)
        std::printf("\naverage improvement %.2f%% (paper: 7.8%%), max %.2f%% "
                    "(paper: 10.5%%)\n",
                    impr_sum / rows, impr_max);
    std::printf("note: paper used >1000 sizing iterations per circuit; scaled runs "
                "use smaller budgets, which lowers the improvement.\n");
    return 0;
}
