// Ablation — discretization pitch (DESIGN.md §4).
//
// The grid pitch dt is the core accuracy/runtime knob of the discretized
// SSTA substrate: finer bins resolve the 99-percentile better but make
// every convolution and statistical max proportionally more expensive.
// This sweep quantifies the trade-off on one circuit and shows the paper's
// default (hundreds of bins across the critical path) is comfortably in
// the converged region.
#include <cstdio>

#include "bench_common.hpp"
#include "core/context.hpp"
#include "ssta/metrics.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
    using namespace statim;
    bench::print_banner("Ablation: grid pitch", "SSTA accuracy and runtime vs bins "
                                                "across the critical path");
    const std::string circuit =
        env_string("STATIM_BENCH_GRID_CIRCUIT").value_or("c880");
    const cells::Library lib = cells::Library::standard_180nm();

    // Finest grid = reference.
    constexpr int kBins[] = {64, 128, 256, 512, 1024, 2048, 4096};
    double reference_p99 = 0.0;
    {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        ssta::GridPolicy policy;
        policy.target_bins = kBins[std::size(kBins) - 1];
        core::Context ctx(nl, lib, policy);
        ctx.run_ssta();
        reference_p99 = ssta::percentile_ns(ctx.grid(), ctx.engine().sink_arrival(), 0.99);
    }

    std::printf("%s: p99 reference (4096 bins) = %.4f ns\n\n", circuit.c_str(),
                reference_p99);
    std::printf("%-8s %-10s %-12s %-12s %-10s\n", "bins", "dt (ns)", "p99 (ns)",
                "err vs ref", "ssta (s)");
    for (int bins : kBins) {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        ssta::GridPolicy policy;
        policy.target_bins = bins;
        core::Context ctx(nl, lib, policy);
        Timer timer;
        ctx.run_ssta();
        const double seconds = timer.seconds();
        const double p99 =
            ssta::percentile_ns(ctx.grid(), ctx.engine().sink_arrival(), 0.99);
        std::printf("%-8d %-10.5f %-12.4f %+-12.3f%% %-10.4f\n", bins,
                    ctx.grid().dt_ns(), p99, 100.0 * (p99 - reference_p99) / reference_p99,
                    seconds);
    }
    std::printf("\nthe default policy (768 bins) errs well under 1%% at the "
                "99-percentile while keeping SSTA runs in milliseconds.\n");
    return 0;
}
