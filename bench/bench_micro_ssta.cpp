// Micro benchmarks of the analysis engines (google-benchmark): full SSTA
// passes, nominal STA, Monte Carlo samples, front initialization, the
// steady-state front drain and the two ends of the per-iteration
// selection. Hot-path benchmarks report heap allocations per iteration
// (and per node where meaningful) through the global alloc census — the
// arena work drives these to ~0 at steady state.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "core/selector.hpp"
#include "core/trial_resize.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas.hpp"
#include "sta/sta.hpp"
#include "util/alloc_stats.hpp"

namespace {

using namespace statim;

struct Fixture {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl;
    core::Context ctx;

    explicit Fixture(const std::string& name)
        : nl(netlist::make_iscas(name, lib)), ctx(nl, lib) {
        ctx.run_ssta();
    }
};

Fixture& fixture(const std::string& name) {
    static std::map<std::string, std::unique_ptr<Fixture>> cache;
    auto& slot = cache[name];
    if (!slot) slot = std::make_unique<Fixture>(name);
    return *slot;
}

const char* kCircuits[] = {"c432", "c880", "c3540"};

void BM_NominalSta(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    std::vector<double> arrival;
    for (auto _ : state)
        benchmark::DoNotOptimize(sta::run_arrival(f.ctx.delay_calc(), arrival));
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_NominalSta)->Arg(0)->Arg(1)->Arg(2);

void BM_FullSsta(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    const util::AllocationSpan span;
    for (auto _ : state) f.ctx.run_ssta();
    const auto iters = static_cast<double>(state.iterations());
    const auto nodes = static_cast<double>(f.ctx.graph().node_count());
    state.counters["allocs/run"] = static_cast<double>(span.count()) / iters;
    state.counters["allocs/node"] =
        static_cast<double>(span.count()) / (iters * nodes);
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_FullSsta)->Arg(0)->Arg(1)->Arg(2);

void BM_IncrementalRefresh(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    const GateId g{static_cast<std::uint32_t>(f.nl.gate_count() / 2)};
    double dw = 0.25;
    std::size_t nodes = 0;
    const util::AllocationSpan span;
    for (auto _ : state) {
        (void)f.ctx.apply_resize(g, dw);
        f.ctx.refresh_ssta();
        nodes += f.ctx.engine().last_update_stats().nodes_recomputed;
        dw = -dw;  // alternate so the width stays bounded
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs/refresh"] = static_cast<double>(span.count()) / iters;
    state.counters["allocs/node"] =
        nodes ? static_cast<double>(span.count()) / static_cast<double>(nodes) : 0.0;
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_IncrementalRefresh)->Arg(0)->Arg(1)->Arg(2);

void BM_MonteCarlo100(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    for (auto _ : state)
        benchmark::DoNotOptimize(mc::run_monte_carlo(f.ctx.delay_calc(), {100, 1}));
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_MonteCarlo100)->Arg(0)->Arg(1)->Arg(2);

void BM_FrontInitialize(benchmark::State& state) {
    Fixture& f = fixture("c432");
    const core::Objective obj = core::Objective::percentile(0.99);
    for (auto _ : state) {
        core::TrialResize trial(f.ctx, GateId{10}, 0.25);
        core::PerturbationFront front(f.ctx, obj, trial);
        benchmark::DoNotOptimize(front.bound_sensitivity());
    }
}
BENCHMARK(BM_FrontInitialize);

void BM_FrontDrainSteady(benchmark::State& state) {
    // Steady-state cone drain of one critical-path front: construction
    // outside the timed region, drain inside. allocs/drain must be ~0 —
    // the flat arena-backed drain never touches the heap once warm.
    Fixture& f = fixture(kCircuits[state.range(0)]);
    const core::Objective obj = core::Objective::percentile(0.99);
    const GateId g{7};
    std::size_t nodes = 0;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        core::TrialResize trial(f.ctx, g, 0.25);
        core::PerturbationFront front(f.ctx, obj, trial);
        const util::AllocationSpan span;
        state.ResumeTiming();
        while (!front.completed()) front.propagate_one_level(f.ctx);
        state.PauseTiming();
        allocs += span.count();
        nodes += front.stats().nodes_computed;
        state.ResumeTiming();
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs/drain"] = static_cast<double>(allocs) / iters;
    state.counters["nodes/drain"] = static_cast<double>(nodes) / iters;
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_FrontDrainSteady)->Arg(0)->Arg(1)->Arg(2);

void BM_SelectPruned(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    const core::SelectorConfig sel{core::Objective::percentile(0.99), 0.25, 16.0};
    const util::AllocationSpan span;
    for (auto _ : state) benchmark::DoNotOptimize(core::select_pruned(f.ctx, sel));
    state.counters["allocs/pass"] =
        static_cast<double>(span.count()) / static_cast<double>(state.iterations());
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_SelectPruned)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SelectBruteForce(benchmark::State& state) {
    Fixture& f = fixture("c432");
    const core::SelectorConfig sel{core::Objective::percentile(0.99), 0.25, 16.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::select_brute_force(f.ctx, sel, false));
    state.SetLabel("c432");
}
BENCHMARK(BM_SelectBruteForce)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
