// Micro benchmarks of the analysis engines (google-benchmark): full SSTA
// passes, nominal STA, Monte Carlo samples, front initialization and the
// two ends of the per-iteration selection.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "core/selector.hpp"
#include "core/trial_resize.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas.hpp"
#include "sta/sta.hpp"

namespace {

using namespace statim;

struct Fixture {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl;
    core::Context ctx;

    explicit Fixture(const std::string& name)
        : nl(netlist::make_iscas(name, lib)), ctx(nl, lib) {
        ctx.run_ssta();
    }
};

Fixture& fixture(const std::string& name) {
    static std::map<std::string, std::unique_ptr<Fixture>> cache;
    auto& slot = cache[name];
    if (!slot) slot = std::make_unique<Fixture>(name);
    return *slot;
}

const char* kCircuits[] = {"c432", "c880", "c3540"};

void BM_NominalSta(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    std::vector<double> arrival;
    for (auto _ : state)
        benchmark::DoNotOptimize(sta::run_arrival(f.ctx.delay_calc(), arrival));
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_NominalSta)->Arg(0)->Arg(1)->Arg(2);

void BM_FullSsta(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    for (auto _ : state) f.ctx.run_ssta();
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_FullSsta)->Arg(0)->Arg(1)->Arg(2);

void BM_MonteCarlo100(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    for (auto _ : state)
        benchmark::DoNotOptimize(mc::run_monte_carlo(f.ctx.delay_calc(), {100, 1}));
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_MonteCarlo100)->Arg(0)->Arg(1)->Arg(2);

void BM_FrontInitialize(benchmark::State& state) {
    Fixture& f = fixture("c432");
    const core::Objective obj = core::Objective::percentile(0.99);
    for (auto _ : state) {
        core::TrialResize trial(f.ctx, GateId{10}, 0.25);
        core::PerturbationFront front(f.ctx, obj, trial);
        benchmark::DoNotOptimize(front.bound_sensitivity());
    }
}
BENCHMARK(BM_FrontInitialize);

void BM_SelectPruned(benchmark::State& state) {
    Fixture& f = fixture(kCircuits[state.range(0)]);
    const core::SelectorConfig sel{core::Objective::percentile(0.99), 0.25, 16.0};
    for (auto _ : state) benchmark::DoNotOptimize(core::select_pruned(f.ctx, sel));
    state.SetLabel(kCircuits[state.range(0)]);
}
BENCHMARK(BM_SelectPruned)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SelectBruteForce(benchmark::State& state) {
    Fixture& f = fixture("c432");
    const core::SelectorConfig sel{core::Objective::percentile(0.99), 0.25, 16.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::select_brute_force(f.ctx, sel, false));
    state.SetLabel("c432");
}
BENCHMARK(BM_SelectBruteForce)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
