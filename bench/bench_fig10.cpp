// Figure 10 — area-delay trade-off curves for c3540.
//
// Both optimizers start from the minimum-size circuit; after every sizing
// iteration the total gate size (y-axis) and the 99-percentile delay
// (x-axis) are recorded. The 99-percentile is evaluated two ways: on the
// SSTA bound (what the optimizer sees) and by Monte Carlo (the exact
// distribution) at sampled iterations — the paper's point is that the two
// nearly coincide, so optimizing the bound optimizes the true delay.
//
// Output: one CSV-like series per curve, matching the four curves of the
// paper's figure.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sizers.hpp"
#include "mc/monte_carlo.hpp"
#include "ssta/metrics.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace {

using namespace statim;

struct Point {
    int iteration;
    double width;
    double p99_bound;
    double p99_mc;  // < 0 when not sampled at this iteration
};

/// Applies `gates` one by one, recording (width, p99-bound, p99-MC).
std::vector<Point> trace_curve(netlist::Netlist& nl, const cells::Library& lib,
                               const prob::TimeGrid& grid,
                               const std::vector<GateId>& gates, double delta_w,
                               int mc_every, std::size_t mc_samples) {
    core::Context ctx(nl, lib, grid);
    std::vector<Point> points;
    auto sample = [&](int iteration) {
        ctx.run_ssta();
        Point pt;
        pt.iteration = iteration;
        pt.width = nl.total_width();
        pt.p99_bound = ssta::percentile_ns(grid, ctx.engine().sink_arrival(), 0.99);
        pt.p99_mc = -1.0;
        if (iteration % mc_every == 0) {
            const auto mc = mc::run_monte_carlo(ctx.delay_calc(), {mc_samples, 777});
            pt.p99_mc = mc.percentile_ns(0.99);
        }
        points.push_back(pt);
    };
    sample(0);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        (void)ctx.apply_resize(gates[i], delta_w);
        sample(static_cast<int>(i + 1));
    }
    return points;
}

void print_curve(const char* title, const std::vector<Point>& points) {
    std::printf("%s\n%-6s %-12s %-14s %-14s\n", title, "iter", "total_width",
                "p99_bound_ns", "p99_mc_ns");
    for (const Point& pt : points) {
        if (pt.p99_mc >= 0.0)
            std::printf("%-6d %-12.2f %-14.4f %-14.4f\n", pt.iteration, pt.width,
                        pt.p99_bound, pt.p99_mc);
        else
            std::printf("%-6d %-12.2f %-14.4f %-14s\n", pt.iteration, pt.width,
                        pt.p99_bound, "-");
    }
    std::printf("\n");
}

}  // namespace

int main() {
    bench::print_banner("Figure 10", "area-delay curves for c3540: deterministic vs "
                                     "statistical, bounds vs Monte Carlo");
    const std::string circuit =
        env_string("STATIM_BENCH_FIG10_CIRCUIT").value_or("c3540");
    const int iterations = bench::scaled_iterations(circuit, 400);
    const int mc_every = std::max(1, iterations / 5);
    const auto mc_samples =
        static_cast<std::size_t>(env_int("STATIM_BENCH_MC_SAMPLES", 3000));
    const double delta_w = 0.25;
    const cells::Library lib = cells::Library::standard_180nm();
    std::fprintf(stderr, "%s, %d iterations per optimizer, MC every %d iters\n",
                 circuit.c_str(), iterations, mc_every);

    // A common grid so every curve shares the x-axis resolution.
    const prob::TimeGrid grid = [&] {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        core::Context ctx(nl, lib);
        return ctx.grid();
    }();

    // --- Deterministic optimizer trajectory.
    std::vector<GateId> det_gates;
    {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        core::DeterministicSizerConfig cfg;
        cfg.max_iterations = iterations;
        cfg.delta_w = delta_w;
        const auto det = core::run_deterministic_sizing(nl, lib, cfg);
        for (const auto& rec : det.history) det_gates.push_back(rec.gate);
    }
    Timer det_timer;
    std::vector<Point> det_curve;
    {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        det_curve = trace_curve(nl, lib, grid, det_gates, delta_w, mc_every, mc_samples);
    }
    std::fprintf(stderr, "  deterministic curve traced in %.1fs\n", det_timer.seconds());

    // --- Statistical optimizer trajectory.
    Timer stat_timer;
    std::vector<GateId> stat_gates;
    {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        core::Context ctx(nl, lib, grid);
        core::StatisticalSizerConfig cfg;
        cfg.max_iterations = iterations;
        cfg.delta_w = delta_w;
        const auto stat = core::run_statistical_sizing(ctx, cfg);
        for (const auto& rec : stat.history) stat_gates.push_back(rec.gate);
    }
    std::vector<Point> stat_curve;
    {
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        stat_curve =
            trace_curve(nl, lib, grid, stat_gates, delta_w, mc_every, mc_samples);
    }
    std::fprintf(stderr, "  statistical curve traced in %.1fs\n", stat_timer.seconds());

    print_curve("deterministic optimization (99% pt. using bounds / Monte Carlo):",
                det_curve);
    print_curve("statistical optimization (99% pt. using bounds / Monte Carlo):",
                stat_curve);

    // The paper's two claims from this figure.
    double max_gap = 0.0;
    for (const auto* curve : {&det_curve, &stat_curve})
        for (const Point& pt : *curve)
            if (pt.p99_mc > 0.0)
                max_gap = std::max(max_gap, (pt.p99_bound - pt.p99_mc) / pt.p99_mc);
    std::printf("max bound-vs-MC gap at the 99%% point: %.2f%% (paper: ~<1%%, small)\n",
                100.0 * max_gap);
    std::printf("at equal total width the statistical curve sits left of the "
                "deterministic curve (better delay for the same area).\n");
    return 0;
}
