// Incremental-SSTA ablation — the refresh step of one sizing iteration.
//
// The paper's outer loop re-runs a full-circuit SSTA after every committed
// resize; the incremental engine re-propagates only the resized gate's
// fanout cone, cutting the wave where arrivals are unchanged bit-for-bit.
// This bench runs the same pruned-selector sizing trajectory twice —
// full-SSTA-per-iteration vs incremental-per-iteration — verifies the
// trajectories are identical, and reports the wall-clock split.
//
// Output: a human-readable table on stderr and one JSON document on
// stdout (for the bench trajectory), e.g.
//   {"bench":"incremental_ssta","threads":1,"scale":1,
//    "circuits":[{"circuit":"c7552","iterations":20,
//                 "full_refresh_s":..,"incr_refresh_s":..,
//                 "refresh_speedup":..,"full_total_s":..,"incr_total_s":..,
//                 "full_nodes":..,"incr_nodes":..,"nodes_ratio":..}]}
//
// Argument-free (bench convention); knobs: STATIM_BENCH_SCALE,
// STATIM_BENCH_CIRCUITS, STATIM_THREADS, STATIM_LOG.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sizers.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
    std::string circuit;
    int iterations{0};
    double full_refresh_s{0.0}, incr_refresh_s{0.0};
    double full_total_s{0.0}, incr_total_s{0.0};
    std::size_t full_nodes{0}, incr_nodes{0};
};

}  // namespace

int main() {
    using namespace statim;
    std::fprintf(stderr,
                 "bench_incremental — full-SSTA-per-iteration vs incremental "
                 "fanout-cone refresh (identical trajectories)\n");
    apply_log_env();
    const std::size_t threads = apply_threads_env();

    const cells::Library lib = cells::Library::standard_180nm();
    std::vector<Row> rows;

    for (const std::string& name : bench::circuits_from_env()) {
        Row row;
        row.circuit = name;
        row.iterations = bench::scaled_iterations(name, 60);

        core::SizingResult results[2];
        double totals[2] = {0.0, 0.0};
        for (const int mode : {0, 1}) {  // 0 = full, 1 = incremental
            netlist::Netlist nl = netlist::make_iscas(name, lib);
            core::Context ctx(nl, lib);
            core::StatisticalSizerConfig cfg;
            cfg.max_iterations = row.iterations;
            cfg.threads = threads;
            cfg.incremental_ssta = mode == 1;
            Timer timer;
            results[mode] = core::run_statistical_sizing(ctx, cfg);
            totals[mode] = timer.seconds();
        }

        // The ablation is only valid if both modes walked the same path.
        if (results[0].final_objective_ns != results[1].final_objective_ns ||
            results[0].history.size() != results[1].history.size()) {
            std::fprintf(stderr, "FATAL: %s trajectories diverged\n", name.c_str());
            return 1;
        }

        row.full_refresh_s = results[0].ssta_refresh_seconds;
        row.incr_refresh_s = results[1].ssta_refresh_seconds;
        row.full_total_s = totals[0];
        row.incr_total_s = totals[1];
        row.full_nodes = results[0].ssta_nodes_recomputed;
        row.incr_nodes = results[1].ssta_nodes_recomputed;
        rows.push_back(row);

        std::fprintf(stderr,
                     "%-7s iters %4d  refresh %8.4fs -> %8.4fs (%5.2fx)  "
                     "nodes %9zu -> %8zu  total %8.3fs -> %8.3fs\n",
                     name.c_str(), row.iterations, row.full_refresh_s,
                     row.incr_refresh_s,
                     row.incr_refresh_s > 0 ? row.full_refresh_s / row.incr_refresh_s
                                            : 0.0,
                     row.full_nodes, row.incr_nodes, row.full_total_s,
                     row.incr_total_s);
    }

    std::printf("{\"bench\":\"incremental_ssta\",\"threads\":%zu,\"scale\":%g,"
                "\"circuits\":[",
                threads, bench::bench_scale());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::printf("%s{\"circuit\":\"%s\",\"iterations\":%d,"
                    "\"full_refresh_s\":%.6f,\"incr_refresh_s\":%.6f,"
                    "\"refresh_speedup\":%.3f,"
                    "\"full_total_s\":%.4f,\"incr_total_s\":%.4f,"
                    "\"full_nodes\":%zu,\"incr_nodes\":%zu,\"nodes_ratio\":%.3f}",
                    i == 0 ? "" : ",", r.circuit.c_str(), r.iterations,
                    r.full_refresh_s, r.incr_refresh_s,
                    r.incr_refresh_s > 0 ? r.full_refresh_s / r.incr_refresh_s : 0.0,
                    r.full_total_s, r.incr_total_s, r.full_nodes, r.incr_nodes,
                    r.incr_nodes > 0
                        ? static_cast<double>(r.full_nodes) /
                              static_cast<double>(r.incr_nodes)
                        : 0.0);
    }
    std::printf("]}\n");
    return 0;
}
