// Ablation — where does the speedup come from? (DESIGN.md §4)
//
// Three selector variants, identical answers:
//   brute-full — one complete SSTA per candidate (paper's baseline);
//   brute-cone — recompute only the candidate's fanout cone, no bounds
//                (the "obvious" engineering fix);
//   pruned     — cone propagation + perturbation-bound pruning + dead-front
//                dropping (the paper's algorithm).
// Separates the benefit of cone limiting from the benefit of the bound.
#include <cstdio>

#include "bench_common.hpp"
#include "core/selector.hpp"
#include "util/env.hpp"

int main() {
    using namespace statim;
    bench::print_banner("Ablation: pruning variants",
                        "full SSTA vs cone-only vs bound-pruned selection");
    const cells::Library lib = cells::Library::standard_180nm();
    const int iterations = std::max(2, static_cast<int>(3 * bench::bench_scale()));

    std::printf("%-8s %-6s %-12s %-12s %-12s %-14s %-14s\n", "circuit", "iter",
                "full (s)", "cone (s)", "pruned (s)", "nodes full/cone", "nodes pruned");
    for (const std::string& name : {std::string("c432"), std::string("c880"),
                                    std::string("c1908"), std::string("c3540")}) {
        netlist::Netlist nl = netlist::make_iscas(name, lib);
        core::Context ctx(nl, lib);
        const core::SelectorConfig sel{core::Objective::percentile(0.99), 0.25, 16.0};
        ctx.run_ssta();
        for (int iter = 1; iter <= iterations; ++iter) {
            const auto full = core::select_brute_force(ctx, sel, false);
            const auto cone = core::select_brute_force(ctx, sel, true);
            const auto pruned = core::select_pruned(ctx, sel);
            if (full.gate != pruned.gate || cone.gate != pruned.gate) {
                std::printf("DIVERGENCE on %s iter %d — exactness violated!\n",
                            name.c_str(), iter);
                return 1;
            }
            std::printf("%-8s %-6d %-12.4f %-12.4f %-12.4f %8zu/%-8zu %-14zu\n",
                        name.c_str(), iter, full.stats.seconds, cone.stats.seconds,
                        pruned.stats.seconds, full.stats.nodes_computed,
                        cone.stats.nodes_computed, pruned.stats.nodes_computed);
            if (!pruned.gate.is_valid()) break;
            (void)ctx.apply_resize(pruned.gate, sel.delta_w);
            ctx.run_ssta();
        }
    }
    std::printf("\ncone limiting buys the first factor; the perturbation bound "
                "prunes most remaining candidates before their fronts reach the "
                "sink (the paper's contribution).\n");
    return 0;
}
