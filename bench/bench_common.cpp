#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/env.hpp"

namespace statim::bench {

std::vector<std::string> circuits_from_env() {
    std::vector<std::string> circuits;
    if (const auto listed = env_string("STATIM_BENCH_CIRCUITS")) {
        std::istringstream in(*listed);
        std::string name;
        while (std::getline(in, name, ','))
            if (!name.empty()) circuits.push_back(name);
    }
    if (circuits.empty())
        for (const auto& info : netlist::iscas85_info()) circuits.push_back(info.name);
    return circuits;
}

double bench_scale() {
    return std::clamp(env_double("STATIM_BENCH_SCALE", 1.0), 0.05, 100.0);
}

namespace {

/// Gate count of any registry circuit (paper or synthetic scale-up).
double registry_gates(const std::string& circuit) {
    for (const auto& spec : netlist::synthetic_specs())
        if (spec.name == circuit) return spec.num_gates;
    const auto& info = netlist::iscas85_info(circuit);
    return info.nodes - 2 - info.inputs;
}

}  // namespace

int scaled_iterations(const std::string& circuit, int base_for_c432) {
    const auto& c432 = netlist::iscas85_info("c432");
    const double gates_c432 = c432.nodes - 2 - c432.inputs;
    const double raw =
        base_for_c432 * gates_c432 / registry_gates(circuit) * bench_scale();
    return std::max(20, static_cast<int>(raw));
}

void print_banner(const char* experiment, const char* what) {
    apply_log_env();
    std::printf("================================================================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("scale %.2fx (STATIM_BENCH_SCALE); circuits via STATIM_BENCH_CIRCUITS\n",
                bench_scale());
    std::printf("================================================================\n\n");
}

}  // namespace statim::bench
