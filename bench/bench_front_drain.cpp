// Perturbation-front drain benchmark: wall-clock and heap-allocation
// census of the selector's innermost loop, before/after story for the
// flat arena-backed drain.
//
// Two measured modes per circuit:
//  * cone  — one front per sampled candidate, constructed first (init
//    phase: trial resize + seed + drain through the gate's level), then
//    drained to completion (drain phase). The drain phase is the
//    steady-state claim: once the front-state pool, the thread workspace
//    and the arenas are warm, it performs ~zero heap allocations.
//  * race  — a full select_pruned pass over every eligible gate (the
//    paper's Fig 6 bound race), i.e. the real per-iteration selector
//    cost including front construction.
//
// The JSON also surfaces the engine's ArrivalStore occupancy, the wave
// and workspace arena capacities and the thread-scratch capacity, so
// arena growth stays visible across the synth10k–250k registry.
//
// Usage: argument-free (bench env knobs apply), or `--smoke`: a quick
// c432 run that *fails* (exit 1) when the steady-state drain phase — or
// a whole warm select_pruned pass (trial-resize buffers, front states
// and every pass container are pooled; measured 15 allocs over 176
// candidates, down from ~32/candidate) — allocates more than a small
// flat constant. The CI regression gate for the zero-alloc property.
//
// Knobs: STATIM_BENCH_CIRCUITS (default c7552,synth10k),
//        STATIM_BENCH_SCALE, STATIM_LOG.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/front.hpp"
#include "core/front_state.hpp"
#include "core/selector.hpp"
#include "core/trial_resize.hpp"
#include "ssta/criticality.hpp"
#include "util/alloc_stats.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace {

using namespace statim;

struct ConeNumbers {
    double init_s{0.0}, drain_s{0.0};
    std::uint64_t init_allocs{0}, drain_allocs{0};
    std::size_t nodes_computed{0};
    double sens_checksum{0.0};
};

/// One cone pass: construct every front, then drain them all. Returns the
/// per-phase wall/alloc numbers of this pass.
ConeNumbers cone_pass(core::Context& ctx, const core::SelectorConfig& cfg,
                      const std::vector<GateId>& gates) {
    ConeNumbers out;
    std::vector<std::unique_ptr<core::PerturbationFront>> fronts;
    fronts.reserve(gates.size());

    util::AllocationSpan span;
    Timer init_timer;
    for (GateId g : gates) {
        core::TrialResize trial(ctx, g, cfg.delta_w);
        fronts.push_back(
            std::make_unique<core::PerturbationFront>(ctx, cfg.objective, trial));
    }
    out.init_s = init_timer.seconds();
    out.init_allocs = span.count();

    span.reset();
    Timer drain_timer;
    for (auto& front : fronts) {
        while (!front->completed()) front->propagate_one_level(ctx);
        out.sens_checksum += front->sensitivity();
        out.nodes_computed += front->stats().nodes_computed;
    }
    out.drain_s = drain_timer.seconds();
    out.drain_allocs = span.count();
    return out;
}

struct RaceNumbers {
    double seconds{0.0};
    std::uint64_t allocs{0};
    std::size_t candidates{0}, nodes_computed{0};
    double best_sensitivity{0.0};
};

RaceNumbers race_pass(core::Context& ctx, const core::SelectorConfig& cfg) {
    RaceNumbers out;
    util::AllocationSpan span;
    Timer timer;
    const core::Selection sel = core::select_pruned(ctx, cfg);
    out.seconds = timer.seconds();
    out.allocs = span.count();
    out.candidates = sel.stats.candidates;
    out.nodes_computed = sel.stats.nodes_computed;
    out.best_sensitivity = sel.sensitivity;
    return out;
}

struct Row {
    std::string circuit;
    std::size_t nodes{0}, gates{0}, candidates{0};
    int passes{1};
    ConeNumbers cone;  // steady state: the last pass
    RaceNumbers race;  // steady state: the last pass
    // Arena/store occupancy after the measured work.
    ssta::SstaEngine::MemoryStats engine_mem;
    std::size_t scratch_capacity{0};
    std::size_t shard_capacity{0};
};

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (env_int("STATIM_BENCH_SMOKE", 0) != 0) smoke = true;
    apply_log_env();

    std::fprintf(stderr,
                 "bench_front_drain — flat perturbation-front drain: wall-clock + "
                 "heap-allocation census%s\n",
                 smoke ? " (smoke mode)" : "");

    const cells::Library lib = cells::Library::standard_180nm();
    std::vector<std::string> circuits;
    if (env_string("STATIM_BENCH_CIRCUITS")) circuits = bench::circuits_from_env();
    if (circuits.empty())
        circuits = smoke ? std::vector<std::string>{"c432"}
                         : std::vector<std::string>{"c7552", "synth10k"};
    const int passes = smoke ? 3 : std::max(1, static_cast<int>(3 * bench::bench_scale()));
    const std::size_t candidate_cap = smoke ? 24 : 96;

    // The steady-state gates: after the warm-up pass, a whole cone drain
    // phase across all candidates must allocate at most kSmokeMaxDrainAllocs
    // times, and a full select_pruned pass (init + race + ranking, every
    // eligible gate a candidate) at most kSmokeMaxRaceAllocs — a flat
    // per-pass constant, NOT per candidate.
    constexpr std::uint64_t kSmokeMaxDrainAllocs = 64;
    constexpr std::uint64_t kSmokeMaxRaceAllocs = 64;

    bool smoke_ok = true;
    std::vector<Row> rows;
    for (const std::string& name : circuits) {
        Row row;
        row.circuit = name;
        row.passes = passes;

        netlist::Netlist nl = netlist::make_iscas(name, lib);
        core::Context ctx(nl, lib);
        ctx.run_ssta();
        row.nodes = ctx.graph().node_count();
        row.gates = nl.gate_count();

        core::SelectorConfig cfg{core::Objective::percentile(0.99), 0.25, 16.0};
        const std::vector<GateId> gates = core::sample_candidate_gates(
            ctx, std::min(candidate_cap, nl.gate_count()));
        row.candidates = gates.size();

        // Warm-up pass (unmeasured): grows the front-state pool, the
        // workspaces and every arena to this circuit's footprint.
        (void)cone_pass(ctx, cfg, gates);

        for (int p = 0; p < passes; ++p) row.cone = cone_pass(ctx, cfg, gates);
        for (int p = 0; p < passes; ++p) row.race = race_pass(ctx, cfg);

        row.engine_mem = ctx.engine().memory_stats();
        row.scratch_capacity = prob::thread_arena().capacity();
        row.shard_capacity = core::front_workspace().shard_capacity_doubles();

        std::fprintf(stderr,
                     "%s: %zu nodes, %zu gates, %zu candidates\n"
                     "  cone  init %7.3fs (%llu allocs)  drain %7.3fs "
                     "(%llu allocs, %zu nodes => %.4f allocs/node)\n"
                     "  race  %7.3fs  %llu allocs over %zu candidates "
                     "(best sens %.6g)\n"
                     "  store live %zu / used %zu / cap %zu doubles, "
                     "%zu compactions; scratch cap %zu\n",
                     name.c_str(), row.nodes, row.gates, row.candidates,
                     row.cone.init_s,
                     static_cast<unsigned long long>(row.cone.init_allocs),
                     row.cone.drain_s,
                     static_cast<unsigned long long>(row.cone.drain_allocs),
                     row.cone.nodes_computed,
                     row.cone.nodes_computed
                         ? static_cast<double>(row.cone.drain_allocs) /
                               static_cast<double>(row.cone.nodes_computed)
                         : 0.0,
                     row.race.seconds,
                     static_cast<unsigned long long>(row.race.allocs),
                     row.race.candidates, row.race.best_sensitivity,
                     row.engine_mem.store.live_doubles,
                     row.engine_mem.store.used_doubles,
                     row.engine_mem.store.capacity_doubles,
                     row.engine_mem.store.compactions, row.scratch_capacity);

        if (smoke && row.cone.drain_allocs > kSmokeMaxDrainAllocs) {
            std::fprintf(stderr,
                         "SMOKE FAIL: steady-state drain allocated %llu times "
                         "(limit %llu) — the zero-alloc drain regressed\n",
                         static_cast<unsigned long long>(row.cone.drain_allocs),
                         static_cast<unsigned long long>(kSmokeMaxDrainAllocs));
            smoke_ok = false;
        }
        if (smoke && row.race.allocs > kSmokeMaxRaceAllocs) {
            std::fprintf(stderr,
                         "SMOKE FAIL: steady-state select_pruned pass allocated "
                         "%llu times over %zu candidates (limit %llu) — the "
                         "pooled selector pass regressed\n",
                         static_cast<unsigned long long>(row.race.allocs),
                         row.race.candidates,
                         static_cast<unsigned long long>(kSmokeMaxRaceAllocs));
            smoke_ok = false;
        }
        rows.push_back(row);
    }

    std::printf("{\"bench\":\"front_drain\",\"smoke\":%s,\"circuits\":[",
                smoke ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::printf(
            "%s{\"circuit\":\"%s\",\"nodes\":%zu,\"gates\":%zu,"
            "\"candidates\":%zu,\"passes\":%d,"
            "\"cone\":{\"init_s\":%.6f,\"init_allocs\":%llu,"
            "\"drain_s\":%.6f,\"drain_allocs\":%llu,"
            "\"nodes_computed\":%zu,\"drain_allocs_per_node\":%.6f,"
            "\"sens_checksum\":%.9g},"
            "\"race\":{\"seconds\":%.6f,\"allocs\":%llu,\"candidates\":%zu,"
            "\"nodes_computed\":%zu,\"allocs_per_candidate\":%.3f,"
            "\"best_sensitivity\":%.9g},"
            "\"memory\":{\"store_capacity_doubles\":%zu,"
            "\"store_used_doubles\":%zu,\"store_live_doubles\":%zu,"
            "\"store_high_water_doubles\":%zu,\"store_compactions\":%zu,"
            "\"wave_capacity_doubles\":%zu,\"wave_high_water_doubles\":%zu,"
            "\"scratch_capacity_doubles\":%zu,"
            "\"front_shard_capacity_doubles\":%zu}}",
            i == 0 ? "" : ",", r.circuit.c_str(), r.nodes, r.gates, r.candidates,
            r.passes, r.cone.init_s,
            static_cast<unsigned long long>(r.cone.init_allocs), r.cone.drain_s,
            static_cast<unsigned long long>(r.cone.drain_allocs),
            r.cone.nodes_computed,
            r.cone.nodes_computed
                ? static_cast<double>(r.cone.drain_allocs) /
                      static_cast<double>(r.cone.nodes_computed)
                : 0.0,
            r.cone.sens_checksum, r.race.seconds,
            static_cast<unsigned long long>(r.race.allocs), r.race.candidates,
            r.race.nodes_computed,
            r.race.candidates ? static_cast<double>(r.race.allocs) /
                                    static_cast<double>(r.race.candidates)
                              : 0.0,
            r.race.best_sensitivity, r.engine_mem.store.capacity_doubles,
            r.engine_mem.store.used_doubles, r.engine_mem.store.live_doubles,
            r.engine_mem.store.high_water_doubles, r.engine_mem.store.compactions,
            r.engine_mem.wave_capacity_doubles,
            r.engine_mem.wave_high_water_doubles, r.scratch_capacity,
            r.shard_capacity);
    }
    std::printf("]}\n");
    return smoke_ok ? 0 : 1;
}
