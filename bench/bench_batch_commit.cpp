// Batched-commit ablation — k resizes per merged incremental refresh.
//
// The paper's sizer commits one gate per iteration: every commit pays one
// full selector pass and one arrival refresh. Batched mode (PR 3) takes
// the k best cone-disjoint candidates from ONE select_top_k pass, commits
// them together, and re-propagates the merged fanout cone once, converting
// the per-commit refresh cost from O(k * cone) to O(merged cone) and the
// selector cost from k passes to one. This bench sweeps k over a synthetic
// scale-up circuit, holding the number of committed gates fixed, and for
// every k replays the exact committed resize sequence on a fresh context
// through the sequential commit-and-refresh-per-gate path (the k=1
// machinery), asserting all arrivals are bitwise identical — the merged
// refresh must be indistinguishable from k sequential refreshes. The
// k > 1 trajectories themselves are a (deliberate, Neiroukh/Song-style)
// approximation of the greedy k=1 trajectory, so their objective is
// reported side by side rather than asserted equal.
//
// Output: a human-readable table on stderr and one JSON document on
// stdout, e.g.
//   {"bench":"batch_commit","threads":1,"commits":32,
//    "circuits":[{"circuit":"synth10k","nodes":...,"edges":...,
//      "ks":[{"k":1,"commits":32,"selector_passes":32,"passes_per_commit":1.0,
//             "nodes_recomputed":...,"nodes_per_commit":...,"conflicts":0,
//             "refresh_s":...,"total_s":...,"objective_ns":...,
//             "bit_identical":true},...]}]}
//
// Argument-free (bench convention); knobs:
//   STATIM_BENCH_CIRCUITS  comma list (default synth10k; synth100k works
//                          but costs ~10x per pass — opt in on big iron)
//   STATIM_BENCH_KS        comma list of batch sizes (default 1,2,4,8,16)
//   STATIM_BENCH_SCALE     multiplies the committed-gate target (base 8)
//   STATIM_THREADS         selector + SSTA wave shards
//   STATIM_LOG             debug|info|warn|error
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sizers.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace {

using namespace statim;

std::vector<int> ks_from_env() {
    std::vector<int> ks;
    if (const auto listed = env_string("STATIM_BENCH_KS")) {
        std::istringstream in(*listed);
        std::string tok;
        while (std::getline(in, tok, ','))
            if (!tok.empty())
                ks.push_back(static_cast<int>(std::max(1L, std::atol(tok.c_str()))));
    }
    if (ks.empty()) ks = {1, 2, 4, 8, 16};
    return ks;
}

struct KPoint {
    int k{1};
    std::size_t commits{0};
    std::size_t selector_passes{0};
    std::size_t nodes_recomputed{0};
    std::size_t conflicts{0};
    double refresh_s{0.0};
    double total_s{0.0};
    double objective_ns{0.0};
    bool bit_identical{true};
};

struct Row {
    std::string circuit;
    std::size_t nodes{0}, edges{0};
    std::vector<KPoint> ks;
};

}  // namespace

int main() {
    std::fprintf(stderr,
                 "bench_batch_commit — k commits per merged incremental refresh "
                 "(arrivals bit-identical to sequential commit-and-refresh)\n");
    apply_log_env();
    const std::size_t threads = apply_threads_env();

    const cells::Library lib = cells::Library::standard_180nm();
    const std::vector<int> ks = ks_from_env();
    const int commits_target =
        std::max(4, static_cast<int>(8 * bench::bench_scale()));

    std::vector<std::string> circuits;
    if (env_string("STATIM_BENCH_CIRCUITS")) circuits = bench::circuits_from_env();
    if (circuits.empty()) circuits = {"synth10k"};

    std::vector<Row> rows;
    bool all_identical = true;
    for (const std::string& name : circuits) {
        Row row;
        row.circuit = name;
        std::fprintf(stderr, "%s: target %d commits, %zu thread%s\n", name.c_str(),
                     commits_target, threads, threads == 1 ? "" : "s");

        for (const int k : ks) {
            netlist::Netlist nl = netlist::make_iscas(name, lib);
            core::Context ctx(nl, lib);
            row.nodes = ctx.graph().node_count();
            row.edges = ctx.graph().edge_count();

            // Hold the committed-gate count fixed across k: run full-size
            // batches while they fit the remaining target, then one final
            // chunk with a smaller batch for the remainder, so every
            // sweep point commits exactly commits_target gates (unless
            // the sizer converges first) and the per-commit metrics share
            // one denominator.
            KPoint point;
            point.k = k;
            std::vector<core::IterationRecord> history;
            Timer timer;
            int remaining = commits_target;
            while (remaining > 0) {
                core::StatisticalSizerConfig cfg;
                cfg.gates_per_iteration = std::min(k, remaining);
                cfg.max_iterations = remaining / cfg.gates_per_iteration;
                cfg.threads = threads;
                const core::SizingResult result =
                    core::run_statistical_sizing(ctx, cfg);
                point.selector_passes += result.selector_passes;
                point.nodes_recomputed += result.ssta_nodes_recomputed;
                point.conflicts += result.conflicts_skipped;
                point.refresh_s += result.ssta_refresh_seconds;
                point.objective_ns = result.final_objective_ns;
                history.insert(history.end(), result.history.begin(),
                               result.history.end());
                if (result.history.empty()) break;  // converged
                remaining -= static_cast<int>(result.history.size());
            }
            point.total_s = timer.seconds();
            point.commits = history.size();

            // Replay the exact committed sequence through the sequential
            // one-commit-one-refresh path; every arrival must match the
            // batched run bit for bit.
            netlist::Netlist nl_ref = netlist::make_iscas(name, lib);
            core::Context ref(nl_ref, lib);
            ref.set_ssta_threads(threads);
            ref.run_ssta();
            const double delta_w = core::StatisticalSizerConfig{}.delta_w;
            for (const auto& rec : history) {
                (void)ref.apply_resize(rec.gate, delta_w);
                ref.refresh_ssta();
            }
            for (std::size_t n = 0; n < row.nodes; ++n) {
                const NodeId node{static_cast<std::uint32_t>(n)};
                if (!(ref.engine().arrival(node) == ctx.engine().arrival(node))) {
                    point.bit_identical = false;
                    break;
                }
            }
            all_identical = all_identical && point.bit_identical;

            const double per_commit = point.commits
                                          ? static_cast<double>(point.commits)
                                          : 1.0;
            std::fprintf(stderr,
                         "  k %2d  commits %4zu  passes %4zu (%.3f/commit)  "
                         "nodes %9zu (%8.1f/commit)  conflicts %3zu  "
                         "refresh %7.3fs  total %8.3fs  obj %8.4f  %s\n",
                         k, point.commits, point.selector_passes,
                         static_cast<double>(point.selector_passes) / per_commit,
                         point.nodes_recomputed,
                         static_cast<double>(point.nodes_recomputed) / per_commit,
                         point.conflicts, point.refresh_s, point.total_s,
                         point.objective_ns,
                         point.bit_identical ? "bit-identical" : "DIVERGED");
            row.ks.push_back(point);
        }
        rows.push_back(row);
    }

    std::printf("{\"bench\":\"batch_commit\",\"threads\":%zu,\"commits\":%d,"
                "\"circuits\":[",
                threads, commits_target);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::printf("%s{\"circuit\":\"%s\",\"nodes\":%zu,\"edges\":%zu,\"ks\":[",
                    i == 0 ? "" : ",", r.circuit.c_str(), r.nodes, r.edges);
        for (std::size_t j = 0; j < r.ks.size(); ++j) {
            const KPoint& p = r.ks[j];
            const double per_commit =
                p.commits ? static_cast<double>(p.commits) : 1.0;
            std::printf(
                "%s{\"k\":%d,\"commits\":%zu,\"selector_passes\":%zu,"
                "\"passes_per_commit\":%.4f,\"nodes_recomputed\":%zu,"
                "\"nodes_per_commit\":%.1f,\"conflicts\":%zu,\"refresh_s\":%.6f,"
                "\"total_s\":%.4f,\"objective_ns\":%.6f,\"bit_identical\":%s}",
                j == 0 ? "" : ",", p.k, p.commits, p.selector_passes,
                static_cast<double>(p.selector_passes) / per_commit,
                p.nodes_recomputed,
                static_cast<double>(p.nodes_recomputed) / per_commit, p.conflicts,
                p.refresh_s, p.total_s, p.objective_ns,
                p.bit_identical ? "true" : "false");
        }
        std::printf("]}");
    }
    std::printf("]}\n");
    return all_identical ? 0 : 1;
}
