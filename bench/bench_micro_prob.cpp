// Kernel-level micro benchmark of the probability operators, per SIMD
// dispatch level. Standalone (no Google Benchmark) so CI can always run
// it — especially its `--smoke` mode, the bit-exactness gate of the
// kernel dispatch layer.
//
// Default mode: a JSON sweep on stdout. For every available dispatch
// level (kernels::available_levels(), plus the fast-math convolve
// variant on SIMD levels) and every routed operator — convolve_into,
// stat_max_into, copy_into, max_percentile_shift_bins, ks_distance —
// across representative operand sizes, it reports ns/op and an effective
// GB/s (doubles streamed per op / time; the per-op byte model is
// documented in bench/BENCH.md). Speedup ratios between levels come
// from dividing rows, e.g. convolve avx2-vs-scalar at 4096×64.
//
// `--smoke` (or STATIM_BENCH_SMOKE=1): skips the timing sweep and runs
// the equality gate only — 10,000 seeded random shape pairs (mixed
// sizes, interior zero masses, point operands, partial/disjoint
// overlaps) through all five routed operators under every available
// non-fast-math dispatch level, asserting the results are *bitwise*
// identical to the scalar reference. Any mismatch prints the offending
// seed/op/level and exits 1.
//
// Knobs: STATIM_SMOKE_PAIRS overrides the pair count.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "prob/arena.hpp"
#include "prob/kernels/kernels.hpp"
#include "prob/ops.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace statim;
using namespace statim::prob;

volatile double g_sink = 0.0;  // keeps measured results live

Pdf make_pdf(std::size_t bins, std::int64_t first, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> mass(bins);
    for (double& m : mass) m = rng.uniform(0.01, 1.0);
    return Pdf::from_mass(first, std::move(mass));
}

/// Adaptive timing: grows the iteration count until one batch takes
/// ~20 ms, then reports seconds per op of the final batch.
template <typename F>
double time_op(F&& f) {
    f();  // warm the arenas and the branch predictors
    std::size_t iters = 1;
    for (;;) {
        Timer t;
        for (std::size_t i = 0; i < iters; ++i) f();
        const double s = t.seconds();
        if (s > 0.02 || iters >= (std::size_t{1} << 24))
            return s / static_cast<double>(iters);
        iters *= (s <= 0.001) ? 16 : 2;
    }
}

struct SweepRow {
    const char* op;
    std::string table;   // kernel table name ("scalar", "avx2", "avx2+fma", ...)
    std::size_t na, nb;
    double ns_per_op;
    double gbps;  // doubles streamed * 8 / time; model in bench/BENCH.md
};

void sweep_level(kernels::Level level, bool fast_math, std::vector<SweepRow>& rows) {
    kernels::force(level, fast_math);
    const std::string table = kernels::active().name;
    PdfArena& arena = thread_arena();

    const std::size_t conv_sizes[][2] = {{64, 16}, {256, 32}, {1024, 64},
                                         {4096, 64}, {512, 512}, {4096, 4096}};
    for (const auto& [na, nb] : conv_sizes) {
        const Pdf a = make_pdf(na, 0, 1);
        const Pdf b = make_pdf(nb, 0, 2);
        const double s = time_op([&] {
            const ScopedRewind scope(arena);
            g_sink = g_sink + convolve_into(arena, a, b).mass()[0];
        });
        // Byte model: the inner axpy reads the long operand and
        // read-modify-writes the output once per short-operand row.
        const double bytes =
            8.0 * 3.0 * static_cast<double>(na) * static_cast<double>(nb);
        rows.push_back({"convolve", table, na, nb, s * 1e9, bytes / s * 1e-9});
    }
    if (fast_math) return;  // only the convolve kernel differs under fast-math

    for (const std::size_t n : {std::size_t{64}, std::size_t{256},
                                std::size_t{1024}, std::size_t{4096}}) {
        const Pdf a = make_pdf(n, 0, 3);
        const Pdf b = make_pdf(n, static_cast<std::int64_t>(n / 4), 4);
        {
            const double s = time_op([&] {
                const ScopedRewind scope(arena);
                g_sink = g_sink + stat_max_into(arena, a, b).mass()[0];
            });
            // prefix fills write fa/fb, the combine reads both (twice,
            // offset by one) and writes out: ~5 streamed doubles per
            // result bin; the result spans ~1.25n bins at n/4 overlap.
            const double bytes = 8.0 * 5.0 * 1.25 * static_cast<double>(n);
            rows.push_back({"stat_max", table, n, n, s * 1e9, bytes / s * 1e-9});
        }
        {
            const double s = time_op([&] { g_sink = g_sink + ks_distance(a, b); });
            const double bytes = 8.0 * 4.0 * 1.25 * static_cast<double>(n);
            rows.push_back({"ks_distance", table, n, n, s * 1e9, bytes / s * 1e-9});
        }
        {
            const double s = time_op(
                [&] { g_sink = g_sink + static_cast<double>(max_percentile_shift_bins(a, b)); });
            const double bytes = 8.0 * 2.0 * static_cast<double>(n);
            rows.push_back({"shift_bins", table, n, n, s * 1e9, bytes / s * 1e-9});
        }
        {
            const double s = time_op([&] {
                const ScopedRewind scope(arena);
                g_sink = g_sink + copy_into(arena, a).mass()[0];
            });
            const double bytes = 8.0 * 2.0 * static_cast<double>(n);
            rows.push_back({"copy", table, n, n, s * 1e9, bytes / s * 1e-9});
        }
    }
}

// ---- smoke mode: forced-dispatch bit-exactness gate -------------------------

/// Bitwise PDF comparison — representation bits, not value equality.
bool bits_equal(PdfView a, PdfView b) {
    if (a.first_bin() != b.first_bin() || a.size() != b.size()) return false;
    return std::memcmp(a.mass().data(), b.mass().data(),
                       a.size() * sizeof(double)) == 0;
}

/// Random operand with adversarial shapes: point masses, interior zero
/// runs, occasional long tails — everything the trimming/finalize path
/// and the kernels' remainder loops must agree on.
Pdf random_pdf(Rng& rng) {
    const auto kind = rng.uniform_int(0, 9);
    std::size_t bins;
    if (kind == 0) bins = 1;  // point mass
    else if (kind <= 6) bins = static_cast<std::size_t>(rng.uniform_int(2, 96));
    else bins = static_cast<std::size_t>(rng.uniform_int(97, 700));  // vector bodies
    std::vector<double> mass(bins, 0.0);
    bool any = false;
    for (double& m : mass) {
        if (rng.uniform() < 0.35) continue;  // interior zeros
        m = rng.uniform(1e-6, 1.0);
        any = true;
    }
    if (!any) mass[bins / 2] = 1.0;
    // Large shifts make partial and fully disjoint supports common.
    const std::int64_t first = rng.uniform_int(-200, 200);
    return Pdf::from_mass(first, std::move(mass));
}

struct OpResults {
    Pdf conv, smax, copied;
    std::int64_t shift{0};
    double ks{0.0};
};

OpResults run_ops(const Pdf& a, const Pdf& b) {
    OpResults r;
    PdfArena& arena = thread_arena();
    const ScopedRewind scope(arena);
    r.conv = convolve_into(arena, a, b).to_pdf();
    const std::vector<PdfView> views{a, b};
    r.smax = stat_max_into(arena, views).to_pdf();
    r.copied = copy_into(arena, a).to_pdf();
    r.shift = max_percentile_shift_bins(a, b);
    r.ks = ks_distance(a, b);
    return r;
}

int run_smoke() {
    const auto levels = kernels::available_levels();
    const long pairs = env_int("STATIM_SMOKE_PAIRS", 10000);
    std::fprintf(stderr,
                 "bench_micro_prob --smoke: %ld random shape pairs, "
                 "%zu dispatch level(s)\n",
                 pairs, levels.size());
    long mismatches = 0;
    for (long p = 0; p < pairs; ++p) {
        Rng rng(0x5eed0000 + static_cast<std::uint64_t>(p));
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);

        kernels::force(kernels::Level::Scalar, false);
        const OpResults ref = run_ops(a, b);

        for (const kernels::Level level : levels) {
            if (level == kernels::Level::Scalar) continue;
            kernels::force(level, false);
            const OpResults got = run_ops(a, b);
            const char* bad = nullptr;
            if (!bits_equal(got.conv, ref.conv)) bad = "convolve_into";
            else if (!bits_equal(got.smax, ref.smax)) bad = "stat_max_into";
            else if (!bits_equal(got.copied, ref.copied)) bad = "copy_into";
            else if (got.shift != ref.shift) bad = "max_percentile_shift_bins";
            else if (std::memcmp(&got.ks, &ref.ks, sizeof(double)) != 0)
                bad = "ks_distance";
            if (bad != nullptr) {
                std::fprintf(stderr,
                             "SMOKE FAIL: pair %ld (|a|=%zu@%lld, |b|=%zu@%lld): "
                             "%s differs between %s and scalar\n",
                             p, a.size(), static_cast<long long>(a.first_bin()),
                             b.size(), static_cast<long long>(b.first_bin()), bad,
                             kernels::level_name(level));
                ++mismatches;
            }
        }
    }
    std::printf("{\"bench\":\"micro_prob\",\"smoke\":true,\"pairs\":%ld,"
                "\"mismatches\":%ld}\n",
                pairs, mismatches);
    if (mismatches != 0) return 1;
    std::fprintf(stderr, "smoke OK: all levels bitwise identical to scalar\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (env_int("STATIM_BENCH_SMOKE", 0) != 0) smoke = true;
    if (smoke) return run_smoke();

    const auto levels = kernels::available_levels();
    std::fprintf(stderr,
                 "bench_micro_prob: kernel sweep over %zu dispatch level(s)\n",
                 levels.size());
    std::vector<SweepRow> rows;
    for (const kernels::Level level : levels) {
        sweep_level(level, false, rows);
        if (level != kernels::Level::Scalar)
            sweep_level(level, true, rows);  // fast-math convolve rider
    }

    std::printf("{\"bench\":\"micro_prob\",\"smoke\":false,\"levels\":[");
    for (std::size_t i = 0; i < levels.size(); ++i)
        std::printf("%s\"%s\"", i != 0 ? "," : "", kernels::level_name(levels[i]));
    std::printf("],\"results\":[");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        std::printf("%s{\"op\":\"%s\",\"table\":\"%s\",\"na\":%zu,\"nb\":%zu,"
                    "\"ns_per_op\":%.1f,\"gbps\":%.3f}",
                    i != 0 ? "," : "", r.op, r.table.c_str(), r.na, r.nb,
                    r.ns_per_op, r.gbps);
    }
    std::printf("]}\n");
    return 0;
}
