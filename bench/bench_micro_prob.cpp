// Micro benchmarks of the probability kernels (google-benchmark): the
// inner loops every SSTA pass and every perturbation front is made of.
#include <benchmark/benchmark.h>

#include "prob/gaussian.hpp"
#include "prob/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace statim;
using namespace statim::prob;

Pdf make_pdf(std::size_t bins, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> mass(bins);
    for (double& m : mass) m = rng.uniform(0.01, 1.0);
    return Pdf::from_mass(0, std::move(mass));
}

void BM_Convolve(benchmark::State& state) {
    const Pdf arrival = make_pdf(static_cast<std::size_t>(state.range(0)), 1);
    const Pdf edge = make_pdf(static_cast<std::size_t>(state.range(1)), 2);
    for (auto _ : state) benchmark::DoNotOptimize(convolve(arrival, edge));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Convolve)->Args({64, 16})->Args({256, 32})->Args({1024, 64})->Args({4096, 64});

void BM_StatMax(benchmark::State& state) {
    const Pdf a = make_pdf(static_cast<std::size_t>(state.range(0)), 3);
    Pdf b = make_pdf(static_cast<std::size_t>(state.range(0)), 4);
    b.shift(state.range(0) / 4);  // realistic partial overlap
    for (auto _ : state) benchmark::DoNotOptimize(stat_max(a, b));
}
BENCHMARK(BM_StatMax)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TruncatedGaussian(benchmark::State& state) {
    const TimeGrid grid(0.5 / static_cast<double>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(truncated_gaussian(grid, 0.5, 0.05, 3.0));
}
BENCHMARK(BM_TruncatedGaussian)->Arg(128)->Arg(512)->Arg(2048);

void BM_MaxPercentileShift(benchmark::State& state) {
    const Pdf a = make_pdf(static_cast<std::size_t>(state.range(0)), 5);
    Pdf b = a;
    b.shift(-3);
    for (auto _ : state) benchmark::DoNotOptimize(max_percentile_shift(a, b));
}
BENCHMARK(BM_MaxPercentileShift)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Percentile(benchmark::State& state) {
    const Pdf a = make_pdf(static_cast<std::size_t>(state.range(0)), 6);
    for (auto _ : state) benchmark::DoNotOptimize(a.percentile_bin(0.99));
}
BENCHMARK(BM_Percentile)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
