// Figure 2 — the optimization objective: a gate resize perturbs the
// circuit-delay CDF; the sensitivity is the change of the 99-percentile
// point (the horizontal gap between the two CDFs at probability 0.99).
//
// Prints both CDFs (unperturbed and after upsizing the most sensitive
// gate) as (delay, probability) series plus the measured 99-percentile
// shift — exactly the ingredients of the paper's Fig. 2 sketch.
#include <cstdio>

#include "bench_common.hpp"
#include "core/selector.hpp"
#include "core/trial_resize.hpp"
#include "prob/ops.hpp"
#include "ssta/metrics.hpp"
#include "util/csv.hpp"

int main() {
    using namespace statim;
    bench::print_banner("Figure 2", "circuit-delay CDF perturbation under one gate "
                                    "upsize; objective = 99-percentile shift");

    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();

    // Find the most sensitive gate, then recompute its perturbed sink CDF.
    const core::SelectorConfig sel{core::Objective::percentile(0.99), 0.25, 16.0};
    const core::Selection best = core::select_pruned(ctx, sel);
    if (!best.gate.is_valid()) {
        std::printf("no positive-sensitivity gate (unexpected on min-size c432)\n");
        return 1;
    }

    const prob::Pdf unperturbed = ctx.engine().sink_arrival().to_pdf();
    prob::Pdf perturbed;
    {
        core::TrialResize trial(ctx, best.gate, sel.delta_w);
        core::PerturbationFront front(ctx, sel.objective, trial);
        while (!front.completed()) front.propagate_one_level(ctx);
        perturbed = front.sink_pdf().to_pdf();
    }

    const double p99_before = ssta::percentile_ns(ctx.grid(), unperturbed, 0.99);
    const double p99_after = ssta::percentile_ns(ctx.grid(), perturbed, 0.99);
    std::printf("gate %s (+%.2f width): 99-percentile %.4f -> %.4f ns  "
                "(shift %.4f ns; sensitivity %.4g ns/width)\n",
                nl.gate(best.gate).name.c_str(), sel.delta_w, p99_before, p99_after,
                p99_before - p99_after, best.sensitivity);
    std::printf("max percentile shift (pruning bound Δ): %.4f ns — always >= the "
                "objective shift\n\n",
                ctx.grid().dt_ns() *
                    prob::max_percentile_shift(unperturbed, perturbed));

    std::printf("%-10s %-14s %-14s\n", "delay_ns", "CDF_unperturbed", "CDF_perturbed");
    const std::int64_t lo = std::min(unperturbed.first_bin(), perturbed.first_bin());
    const std::int64_t hi = std::max(unperturbed.last_bin(), perturbed.last_bin());
    const std::int64_t step = std::max<std::int64_t>(1, (hi - lo) / 40);
    for (std::int64_t b = lo; b <= hi; b += step)
        std::printf("%-10.4f %-14.5f %-14.5f\n",
                    ctx.grid().time_of(static_cast<double>(b)), unperturbed.cdf_at(b),
                    perturbed.cdf_at(b));
    std::printf("\nthe perturbed CDF sits left of the unperturbed one; the paper's "
                "objective reads the gap at probability 0.99.\n");
    return 0;
}
