// Selector work-avoidance benchmark: the criticality-floor pre-filter
// and the cross-pass sensitivity cache (PR 7), measured as a 2x2
// ablation over repeated select-commit-refresh passes.
//
// Each variant — {floor off/on} x {cache off/on} — runs on its own fresh
// netlist and commits its *own* picks, so a selection divergence would
// compound into a visibly different trajectory; the bench cross-checks
// every pass's pick and sensitivity bitwise across all four variants
// (the layers are speed knobs, never results knobs). Per pass it records
// wall-clock, nodes_computed, cache hit count and the floor's deferred
// tail, and per variant the steady-state average nodes_computed over the
// warm passes (pass >= 1). The headline number is steady_nodes_ratio:
// steady nodes of the plain race divided by the fully layered one — the
// ISSUE's >= 2x acceptance criterion on synth10k.
//
// Usage: argument-free (bench env knobs apply), or `--smoke`: a quick
// c432 ablation. Either mode *fails* (exit 1) when any variant's pick or
// sensitivity diverges from the plain race on any pass — the smoke run
// is the CI regression gate for the layers' exactness, complementing
// the *SelectorCache* property suite.
//
// Knobs: STATIM_BENCH_CIRCUITS (default c7552,synth10k),
//        STATIM_BENCH_SCALE, STATIM_LOG.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/context.hpp"
#include "core/selector.hpp"
#include "core/sensitivity_cache.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace {

using namespace statim;

struct Variant {
    const char* name;
    double crit_floor;  // explicit: 0 disables, ignores STATIM_CRIT_FLOOR
    bool cache;
};

constexpr Variant kVariants[] = {
    {"plain", 0.0, false},
    {"floor", 0.05, false},
    {"cache", 0.0, true},
    {"floor+cache", 0.05, true},
};

struct PassNumbers {
    double seconds{0.0};
    std::size_t candidates{0}, nodes_computed{0};
    std::size_t cache_hits{0}, floor_deferred{0}, pruned{0};
    GateId pick{GateId::invalid()};
    double sensitivity{0.0};
};

struct VariantNumbers {
    std::vector<PassNumbers> passes;
    double total_s{0.0};
    double steady_nodes{0.0};  ///< avg nodes_computed over passes >= 1
    std::uint64_t cache_stores{0}, cache_invalidated{0};
};

/// One select-commit-refresh trajectory. Every variant runs this with
/// identical pass count and width cap; only the layer knobs differ.
VariantNumbers run_variant(const std::string& circuit, const cells::Library& lib,
                           const Variant& v, int passes, std::size_t threads) {
    VariantNumbers out;
    netlist::Netlist nl = netlist::make_iscas(circuit, lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    const core::SelectorConfig cfg{core::Objective::percentile(0.99), 0.25, 16.0,
                                   threads, v.crit_floor, v.cache};

    for (int p = 0; p < passes; ++p) {
        PassNumbers pn;
        Timer timer;
        const core::Selection sel = core::select_pruned(ctx, cfg);
        pn.seconds = timer.seconds();
        pn.candidates = sel.stats.candidates;
        pn.nodes_computed = sel.stats.nodes_computed;
        pn.cache_hits = sel.stats.cache_hits;
        pn.floor_deferred = sel.stats.floor_deferred;
        pn.pruned = sel.stats.pruned;
        pn.pick = sel.gate;
        pn.sensitivity = sel.sensitivity;
        out.total_s += pn.seconds;
        out.passes.push_back(pn);

        if (!sel.gate.is_valid()) break;  // converged under the cap
        (void)ctx.apply_resize(sel.gate, cfg.delta_w);
        ctx.refresh_ssta();
    }

    std::size_t steady_sum = 0, steady_n = 0;
    for (std::size_t p = 1; p < out.passes.size(); ++p) {
        steady_sum += out.passes[p].nodes_computed;
        ++steady_n;
    }
    out.steady_nodes =
        steady_n ? static_cast<double>(steady_sum) / static_cast<double>(steady_n)
                 : 0.0;
    out.cache_stores = ctx.sensitivity_cache().stats().stores;
    out.cache_invalidated = ctx.sensitivity_cache().stats().invalidated;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (env_int("STATIM_BENCH_SMOKE", 0) != 0) smoke = true;
    apply_log_env();

    std::fprintf(stderr,
                 "bench_selector_cache — criticality-floor x sensitivity-cache "
                 "ablation over select-commit-refresh passes%s\n",
                 smoke ? " (smoke mode)" : "");

    const cells::Library lib = cells::Library::standard_180nm();
    std::vector<std::string> circuits;
    if (env_string("STATIM_BENCH_CIRCUITS")) circuits = bench::circuits_from_env();
    if (circuits.empty())
        circuits = smoke ? std::vector<std::string>{"c432"}
                         : std::vector<std::string>{"c7552", "synth10k"};
    const int passes =
        smoke ? 5 : std::max(4, static_cast<int>(8 * bench::bench_scale()));
    const std::size_t threads = static_cast<std::size_t>(env_int("STATIM_THREADS", 4));

    constexpr std::size_t kNumVariants = sizeof(kVariants) / sizeof(kVariants[0]);
    bool picks_ok = true;

    std::printf("{\"bench\":\"selector_cache\",\"smoke\":%s,\"passes\":%d,"
                "\"threads\":%zu,\"circuits\":[",
                smoke ? "true" : "false", passes, threads);
    for (std::size_t c = 0; c < circuits.size(); ++c) {
        const std::string& name = circuits[c];
        VariantNumbers results[kNumVariants];
        for (std::size_t v = 0; v < kNumVariants; ++v)
            results[v] = run_variant(name, lib, kVariants[v], passes, threads);

        // Exactness cross-check: all four trajectories pass for pass.
        const VariantNumbers& ref = results[0];
        for (std::size_t v = 1; v < kNumVariants; ++v) {
            if (results[v].passes.size() != ref.passes.size()) {
                std::fprintf(stderr,
                             "MISMATCH %s/%s: %zu passes vs %zu in the plain race\n",
                             name.c_str(), kVariants[v].name,
                             results[v].passes.size(), ref.passes.size());
                picks_ok = false;
                continue;
            }
            for (std::size_t p = 0; p < ref.passes.size(); ++p) {
                if (results[v].passes[p].pick == ref.passes[p].pick &&
                    results[v].passes[p].sensitivity == ref.passes[p].sensitivity)
                    continue;
                std::fprintf(
                    stderr,
                    "MISMATCH %s/%s pass %zu: pick %u sens %.17g vs plain pick "
                    "%u sens %.17g\n",
                    name.c_str(), kVariants[v].name, p,
                    results[v].passes[p].pick.value,
                    results[v].passes[p].sensitivity, ref.passes[p].pick.value,
                    ref.passes[p].sensitivity);
                picks_ok = false;
            }
        }

        const double layered_steady = results[kNumVariants - 1].steady_nodes;
        const double ratio =
            layered_steady > 0.0 ? ref.steady_nodes / layered_steady : 0.0;

        std::fprintf(stderr, "%s: %d passes, %zu candidates\n", name.c_str(),
                     passes, ref.passes.empty() ? 0 : ref.passes[0].candidates);
        for (std::size_t v = 0; v < kNumVariants; ++v) {
            const VariantNumbers& r = results[v];
            const PassNumbers last =
                r.passes.empty() ? PassNumbers{} : r.passes.back();
            std::fprintf(stderr,
                         "  %-11s total %7.3fs  steady nodes %12.0f  last pass: "
                         "%7.3fs, hits %zu, deferred %zu, pruned %zu\n",
                         kVariants[v].name, r.total_s, r.steady_nodes,
                         last.seconds, last.cache_hits, last.floor_deferred,
                         last.pruned);
        }
        std::fprintf(stderr, "  steady nodes_computed ratio (plain / floor+cache): %.2fx\n",
                     ratio);

        std::printf("%s{\"circuit\":\"%s\",\"steady_nodes_ratio\":%.4f,"
                    "\"variants\":[",
                    c == 0 ? "" : ",", name.c_str(), ratio);
        for (std::size_t v = 0; v < kNumVariants; ++v) {
            const VariantNumbers& r = results[v];
            std::printf("%s{\"name\":\"%s\",\"crit_floor\":%.3f,\"cache\":%s,"
                        "\"total_s\":%.6f,\"steady_nodes\":%.1f,"
                        "\"cache_stores\":%llu,\"cache_invalidated\":%llu,"
                        "\"passes\":[",
                        v == 0 ? "" : ",", kVariants[v].name,
                        kVariants[v].crit_floor, kVariants[v].cache ? "true" : "false",
                        r.total_s, r.steady_nodes,
                        static_cast<unsigned long long>(r.cache_stores),
                        static_cast<unsigned long long>(r.cache_invalidated));
            for (std::size_t p = 0; p < r.passes.size(); ++p) {
                const PassNumbers& pn = r.passes[p];
                std::printf("%s{\"seconds\":%.6f,\"candidates\":%zu,"
                            "\"nodes_computed\":%zu,\"cache_hits\":%zu,"
                            "\"floor_deferred\":%zu,\"pruned\":%zu,"
                            "\"pick\":%d,\"sensitivity\":%.9g}",
                            p == 0 ? "" : ",", pn.seconds, pn.candidates,
                            pn.nodes_computed, pn.cache_hits, pn.floor_deferred,
                            pn.pruned,
                            pn.pick.is_valid() ? static_cast<int>(pn.pick.value) : -1,
                            pn.sensitivity);
            }
            std::printf("]}");
        }
        std::printf("]}");
    }
    std::printf("],\"picks_identical\":%s}\n", picks_ok ? "true" : "false");

    if (!picks_ok)
        std::fprintf(stderr,
                     "FAIL: layered selector picks diverged from the plain race\n");
    return picks_ok ? 0 : 1;
}
