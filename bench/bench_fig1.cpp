// Figure 1 — path-delay distributions and the resulting circuit-delay PDFs.
//
// Two circuits with the SAME deterministic (nominal) critical delay:
//   sc.1 "unbalanced": one critical chain, the rest progressively shorter;
//   sc.2 "balanced wall": every chain near-critical (what deterministic
//        optimization produces).
// Under variation the wall's many near-critical paths all contribute to
// the max, pushing the circuit-delay distribution right: the balanced
// circuit has the WORSE statistical delay despite the equal nominal delay.
//
// Prints (a) the path-count histogram over nominal path delay and (b) the
// sink delay PDF/percentiles of both circuits — the two panels of Fig. 1.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/context.hpp"
#include "ssta/metrics.hpp"
#include "sta/sta.hpp"
#include "util/csv.hpp"

namespace {

using namespace statim;

/// `lengths[i]` inverters in chain i; each chain is PI -> INVs -> PO.
netlist::Netlist make_chains(const std::string& name, const cells::Library& lib,
                             const std::vector<int>& lengths) {
    netlist::Netlist nl(name);
    const CellId inv = lib.require("INV");
    for (std::size_t c = 0; c < lengths.size(); ++c) {
        NetId prev = nl.add_net("pi" + std::to_string(c));
        nl.mark_primary_input(prev);
        for (int s = 0; s < lengths[c]; ++s) {
            const NetId next =
                nl.add_net("n" + std::to_string(c) + "_" + std::to_string(s));
            (void)nl.add_gate("g" + std::to_string(c) + "_" + std::to_string(s), inv,
                              {prev}, next);
            prev = next;
        }
        nl.mark_primary_output(prev);
    }
    nl.validate(lib);
    return nl;
}

void report(const char* title, netlist::Netlist& nl, const cells::Library& lib) {
    core::Context ctx(nl, lib, prob::TimeGrid(0.001));
    ctx.run_ssta();

    // Panel (a): path-count histogram over nominal path delay.
    const sta::StaResult sta = sta::run_sta(ctx.delay_calc());
    std::map<int, int> histogram;  // delay rounded to 10 ps -> #paths
    for (NetId po : nl.primary_outputs()) {
        const double d = sta.arrival[netlist::TimingGraph::node_of_net(po).index()];
        ++histogram[static_cast<int>(d * 100.0)];
    }
    std::printf("%s\n  path delay histogram (nominal):\n", title);
    for (const auto& [bucket, count] : histogram) {
        std::printf("    %5.2f ns | ", bucket / 100.0);
        for (int i = 0; i < count; ++i) std::printf("#");
        std::printf(" %d\n", count);
    }

    // Panel (b): circuit-delay distribution.
    const prob::PdfView sink = ctx.engine().sink_arrival();
    std::printf("  nominal critical delay: %.4f ns\n", sta.circuit_delay_ns);
    std::printf("  statistical circuit delay: mean %.4f ns  sigma %.4f ns  "
                "p50 %.4f  p99 %.4f ns\n",
                ssta::mean_ns(ctx.grid(), sink), ssta::stddev_ns(ctx.grid(), sink),
                ssta::percentile_ns(ctx.grid(), sink, 0.50),
                ssta::percentile_ns(ctx.grid(), sink, 0.99));

    std::printf("  delay PDF series (ns, probability-per-bin):\n    ");
    const auto mass = sink.mass();
    const std::size_t step = std::max<std::size_t>(1, mass.size() / 12);
    for (std::size_t k = 0; k < mass.size(); k += step)
        std::printf("(%.3f, %.3g) ",
                    ctx.grid().time_of(static_cast<double>(sink.first_bin() +
                                                           static_cast<std::int64_t>(k))),
                    mass[k]);
    std::printf("\n\n");
}

}  // namespace

int main() {
    bench::print_banner("Figure 1", "balanced 'wall' vs unbalanced path distribution "
                                    "at equal nominal delay");
    const cells::Library lib = cells::Library::standard_180nm();

    // Same number of paths and identical longest chain (8 stages).
    netlist::Netlist unbalanced = make_chains(
        "sc1_unbalanced", lib, {8, 7, 6, 5, 4, 4, 3, 3, 2, 2, 2, 2});
    netlist::Netlist balanced = make_chains(
        "sc2_balanced_wall", lib, {8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8});

    report("sc.1 unbalanced paths:", unbalanced, lib);
    report("sc.2 wall of critical paths (deterministic optimization):", balanced, lib);

    std::printf("both circuits share the same deterministic delay, but the wall's\n"
                "near-critical paths shift the statistical distribution right —\n"
                "the motivation for statistically-aware sizing (paper Fig. 1).\n");
    return 0;
}
