// Shared scaffolding for the paper-table bench binaries.
//
// The binaries take no arguments; they scale through environment knobs:
//   STATIM_BENCH_SCALE     multiplier on iteration budgets (default 1.0)
//   STATIM_BENCH_CIRCUITS  comma-separated subset (default: all ten)
//   STATIM_LOG             debug|info|warn|error
#pragma once

#include <string>
#include <vector>

#include "netlist/iscas.hpp"

namespace statim::bench {

/// Circuits to run: STATIM_BENCH_CIRCUITS or all ten paper circuits.
[[nodiscard]] std::vector<std::string> circuits_from_env();

/// Per-circuit iteration budget for sizing experiments: `base_for_c432`
/// scaled inversely with gate count (big circuits get fewer iterations so
/// an argument-free run finishes in minutes), then by STATIM_BENCH_SCALE.
[[nodiscard]] int scaled_iterations(const std::string& circuit, int base_for_c432);

/// STATIM_BENCH_SCALE (default 1.0, clamped to [0.05, 100]).
[[nodiscard]] double bench_scale();

/// Prints the standard bench header (circuit list, scale, reminder).
void print_banner(const char* experiment, const char* what);

}  // namespace statim::bench
