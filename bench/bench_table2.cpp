// Table 2 — "Results for the runtime improvement".
//
// Along one shared sizing trajectory, each iteration's most-sensitive-gate
// search is timed twice: the brute-force baseline (one full SSTA per
// candidate gate — the paper's comparison point) and the pruned algorithm
// (perturbation fronts + bound pruning). Selections are verified equal, so
// the speedup is for *identical* answers. Also reports the fraction of
// candidates pruned (paper: "as many as 55 out of 56").
//
// Paper: improvement factors 3.7x–14.5x on average, up to 56x in the
// per-iteration range.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
    const char* name;
    double brute_s, ours_s, factor;
    const char* range_s;
    const char* range_factor;
};

// Table 2 of the paper (DATE'05), 2005-era hardware.
constexpr PaperRow kPaper[] = {
    {"c432", 5, 1.35, 3.7, "0.72-1.81", "3-7"},
    {"c499", 90, 22.4, 4.01, "5-30", "3-18"},
    {"c880", 15, 4.0, 3.75, "1.5-5", "3-10"},
    {"c1355", 95, 23, 4.13, "9-31", "3-11"},
    {"c1908", 102, 25, 4.08, "10-36", "3-10"},
    {"c2670", 43, 5.0, 8.6, "1.6-7.0", "6-27"},
    {"c3540", 194, 28, 6.9, "6-35", "6-32"},
    {"c5315", 403, 40, 10.07, "16-55", "7-25"},
    {"c6288", 3600, 248, 14.5, "64-310", "12-56"},
    {"c7552", 1190, 114, 10.4, "34-150", "8-35"},
};

const PaperRow* paper_row(const std::string& name) {
    for (const auto& row : kPaper)
        if (name == row.name) return &row;
    return nullptr;
}

std::string range(const statim::RunningStats& s, int digits = 3) {
    return statim::format_double(s.min(), digits) + "-" +
           statim::format_double(s.max(), digits);
}

}  // namespace

int main() {
    using namespace statim;
    bench::print_banner("Table 2", "per-iteration runtime: brute-force vs pruned "
                                   "sensitivity search (identical selections)");

    const int iterations =
        std::max(2, static_cast<int>(3 * bench::bench_scale()));
    const cells::Library lib = cells::Library::standard_180nm();

    AsciiTable table({"circuit", "brute (s)", "ours (s)", "impr.", "range ours (s)",
                      "range impr.", "pruned %", "paper impr."});
    for (const std::string& name : bench::circuits_from_env()) {
        core::RuntimeComparisonConfig cfg;
        cfg.iterations = iterations;
        cfg.verify_equal = true;
        const core::RuntimeComparisonResult result = core::compare_runtime(name, lib, cfg);
        std::fprintf(stderr, "  %s done (%d iterations timed)\n", name.c_str(),
                     static_cast<int>(result.per_iteration.size()));

        const PaperRow* paper = paper_row(name);
        table.add_row({name,
                       format_double(result.brute_seconds.mean(), 3),
                       format_double(result.pruned_seconds.mean(), 3),
                       format_double(result.improvement_factor.mean(), 3) + "x",
                       range(result.pruned_seconds),
                       range(result.improvement_factor, 2) + "x",
                       format_double(100.0 * result.pruned_fraction.mean(), 3),
                       paper ? format_double(paper->factor, 3) + "x" : "-"});
    }

    table.print(std::cout);
    std::printf("\nevery row verified: the pruned search returned exactly the "
                "brute-force selection at each timed iteration.\n");
    std::printf("absolute seconds are not comparable to the paper's 2005 hardware; "
                "the improvement factors and pruned fraction are.\n");
    return 0;
}
