# The single source of truth for every STATIM_* environment knob.
#
# statim-lint's `env-registry` rule scans all C++ sources under src/,
# tools/ and bench/ for "STATIM_*" string literals and fails when one is
# not declared here; `env-registry-stale` fails when a declared knob no
# longer appears anywhere (src/tools/bench/tests); `env-readme` fails
# when a declared knob is missing from README.md. Adding an env read is
# therefore a three-line change: the C++ read, this entry, and one README
# table row — and CI diffs all three together.
#
# Names prefixed STATIM_TEST_ are exempt fixture names used by the env
# parsing unit tests (they only ever appear under tests/).

ENV_REGISTRY = {
    # -- core runtime knobs (library behaviour) ---------------------------
    "STATIM_THREADS": {
        "scope": "core",
        "desc": "default worker count for the parallel hot paths (>= 1)",
    },
    "STATIM_BATCH": {
        "scope": "core",
        "desc": "gates committed per sizing iteration between refreshes",
    },
    "STATIM_CRIT_FLOOR": {
        "scope": "core",
        "desc": "criticality floor for two-phase selector races (0 disables)",
    },
    "STATIM_SELECTOR_CACHE": {
        "scope": "core",
        "desc": "cross-pass sensitivity cache kill switch (0 disables)",
    },
    "STATIM_SIMD": {
        "scope": "core",
        "desc": "forced kernel dispatch level: auto|scalar|avx2|neon",
    },
    "STATIM_FAST_MATH": {
        "scope": "core",
        "desc": "FMA-fused convolution opt-in (leaves the bit-exactness contract)",
    },
    "STATIM_LOG": {
        "scope": "core",
        "desc": "log threshold: debug|info|warn|error|off",
    },
    # -- dispatch coordinator knobs (statim dispatch) ---------------------
    "STATIM_DISPATCH_WORKERS": {
        "scope": "dist",
        "desc": "worker process count for statim dispatch (0 = in-process)",
    },
    "STATIM_DISPATCH_HEARTBEAT_MS": {
        "scope": "dist",
        "desc": "ms of worker silence before the coordinator declares it hung",
    },
    "STATIM_DISPATCH_RETRIES": {
        "scope": "dist",
        "desc": "extra attempts per scenario after a worker failure",
    },
    # -- test-suite knobs -------------------------------------------------
    "STATIM_HEAVY_TESTS": {
        "scope": "tests",
        "desc": "enables the heavy property-test matrices (synth10k sweeps)",
    },
    # -- bench harness knobs ----------------------------------------------
    "STATIM_BENCH_CIRCUITS": {
        "scope": "bench",
        "desc": "comma-separated circuit list for the bench binaries",
    },
    "STATIM_BENCH_SCALE": {
        "scope": "bench",
        "desc": "work-scale factor for bench iteration counts",
    },
    "STATIM_BENCH_THREADS": {
        "scope": "bench",
        "desc": "thread counts swept by bench_parallel_ssta",
    },
    "STATIM_BENCH_KS": {
        "scope": "bench",
        "desc": "batch sizes (k) swept by bench_batch_commit",
    },
    "STATIM_BENCH_SMOKE": {
        "scope": "bench",
        "desc": "bench smoke mode (equivalent to the --smoke flag)",
    },
    "STATIM_BENCH_MC_SAMPLES": {
        "scope": "bench",
        "desc": "Monte Carlo sample count for the accuracy benches",
    },
    "STATIM_BENCH_GRID_CIRCUIT": {
        "scope": "bench",
        "desc": "circuit used by the grid-ablation bench",
    },
    "STATIM_BENCH_FIG10_CIRCUIT": {
        "scope": "bench",
        "desc": "circuit used by the fig10 bench",
    },
    "STATIM_BENCH_BINS": {
        "scope": "bench",
        "desc": "histogram bin counts swept by the micro benches",
    },
    "STATIM_SMOKE_PAIRS": {
        "scope": "bench",
        "desc": "random shape-pair count for bench_micro_prob --smoke",
    },
}
