"""statim-lint: machine-checks the repo invariants generic tools cannot.

Stdlib-only (no pip deps). Rules:

  determinism   getenv / raw-rand / clock-now / ptr-key-order — results must
                be bitwise reproducible across threads x SIMD x batch, so no
                source of nondeterminism may enter src/ or tools/ outside
                the sanctioned allowlist (util/env.cpp, util/timer.hpp).
  hot paths     hot-std-function / hot-at / hot-unordered — the declared
                hot-path file set (HOT_PATH_STEMS) must stay free of type-
                erased dispatch, throwing bounds checks, and address-ordered
                containers (alloc + iteration-order hygiene).
  env hygiene   env-registry / env-registry-stale / env-readme — every
                "STATIM_*" string literal in src/ + tools/ + bench/ must be
                declared in tools/statim_lint/env_registry.py, every
                declared knob must still occur somewhere, and every declared
                knob must be documented in README.md.
  layering      include-purity — examples/ and tools/ compile against the
                public surface only (quoted includes limited to api/, util/).
  meta          bare-suppression / bare-nolint — every statim-lint allow()
                and every clang-tidy NOLINT must carry a justification;
                suppressions without one are themselves violations.

Suppression syntax (same line as the violation):

    do_questionable_thing();  // statim-lint: allow(rule-name) one-line reason

A suppression silences exactly the named rule(s) on exactly that line.
Output is one diagnostic per line: `path:line: error: [rule] message`.
Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import os
import re
import sys

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

# Directories scanned for C++ sources, relative to the root.
SCAN_DIRS = ("src", "tools", "examples", "bench", "tests")

# The declared hot-path file set: path stems relative to the root, matched
# against the scanned file's path with its extension removed. These files
# carry the zero-allocation / deterministic-order contract (see README
# "Correctness tooling"), so the hot-* rules apply to them.
HOT_PATH_STEMS = (
    "src/core/selector",
    "src/core/front",
    "src/core/front_state",
    "src/core/trial_resize",
    "src/core/sensitivity_cache",
    "src/prob/arena",
    "src/prob/arrival_store",
    "src/prob/ops",
    "src/prob/pdf",
    "src/prob/kernels/",  # trailing slash: the whole kernel layer
    "src/ssta/engine",
    "src/ssta/criticality",
    "src/ssta/edge_delays",
    "src/sta/delay_calc",
)

# Sanctioned per-rule allowlists (rule -> relative paths). These are the
# *designed* exceptions; one-off exceptions use inline allow() with a
# reason instead.
ALLOWLIST = {
    "getenv": {"src/util/env.cpp"},     # the single env-read funnel
    "clock-now": {"src/util/timer.hpp"},  # the single wall-clock funnel
}

ENV_REGISTRY_RELPATH = os.path.join("tools", "statim_lint", "env_registry.py")

# Env literals are *enforced* (must be registered) in these dirs; tests may
# invent fixture names (STATIM_TEST_*) for the env-parsing unit tests.
ENV_ENFORCED_DIRS = ("src", "tools", "bench")

SUPPRESS_RE = re.compile(
    r"//\s*statim-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]*?)\s*\)\s*(.*)$")
NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?(\(([^)]*)\))?\s*(.*)$")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
ENV_LITERAL_RE = re.compile(r"STATIM_[A-Z0-9_]+")


class Violation:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path        # root-relative, forward slashes
        self.line = line        # 1-based
        self.rule = rule
        self.message = message

    def render(self):
        return "%s:%d: error: [%s] %s" % (self.path, self.line, self.rule,
                                          self.message)


# --------------------------------------------------------------------------
# C++ lexical pre-pass: comments and strings
# --------------------------------------------------------------------------

def lex_cpp(text):
    """Splits C++ source into views the rules match against.

    Returns (code, pure, strings):
      code    - text with comments blanked (strings kept): include scans.
      pure    - text with comments AND string/char literals blanked:
                identifier-level rules (no hits inside quoted text).
      strings - list of (line_no, literal_text) for every string literal
                outside comments: the env-registry scan.
    Blanked characters become spaces; newlines are preserved, so line
    numbers and column positions survive.
    """
    code = []
    pure = []
    strings = []
    i, n = 0, len(text)
    line = 1
    state = "normal"
    str_delim = ""
    raw_terminator = None
    current_literal = []
    literal_line = 0

    def emit(ch, in_comment, in_string):
        code.append(" " if in_comment and ch != "\n" else ch)
        blank = (in_comment or in_string) and ch != "\n"
        pure.append(" " if blank else ch)

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "normal":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                emit(ch, True, False)
            elif ch == "/" and nxt == "*":
                state = "block_comment"
                emit(ch, True, False)
            elif ch == '"':
                # Raw string?  R"delim( ... )delim"
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(',
                             text[max(0, i - 1):i + 18])
                if i > 0 and text[i - 1] == "R" and m and m.start() == 0:
                    state = "raw_string"
                    raw_terminator = ")" + m.group(1) + '"'
                    current_literal = []
                    literal_line = line
                    emit(ch, False, False)  # the opening quote itself
                    # skip the delim + ( as part of the literal opener
                    opener_len = len(m.group(1)) + 1
                    for k in range(opener_len):
                        i += 1
                        line += text[i] == "\n" and 1 or 0
                        emit(text[i], False, True)
                    i += 1
                    continue
                state = "string"
                str_delim = '"'
                current_literal = []
                literal_line = line
                emit(ch, False, False)
            elif ch == "'":
                state = "char"
                str_delim = "'"
                emit(ch, False, False)
            else:
                emit(ch, False, False)
        elif state == "line_comment":
            if ch == "\n":
                state = "normal"
            emit(ch, True, False)
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                emit(ch, True, False)
                i += 1
                emit("/", True, False)
                state = "normal"
                if ch == "\n":
                    line += 1
                i += 1
                continue
            emit(ch, True, False)
        elif state in ("string", "char"):
            if ch == "\\" and nxt:
                emit(ch, False, True)
                i += 1
                if text[i] == "\n":
                    line += 1
                emit(text[i], False, True)
                i += 1
                continue
            if ch == str_delim:
                if state == "string":
                    strings.append((literal_line, "".join(current_literal)))
                state = "normal"
                emit(ch, False, False)
            else:
                if state == "string":
                    current_literal.append(ch)
                emit(ch, False, True)
        elif state == "raw_string":
            if text.startswith(raw_terminator, i):
                strings.append((literal_line, "".join(current_literal)))
                for k in range(len(raw_terminator)):
                    emit(text[i + k], False, k != len(raw_terminator) - 1)
                i += len(raw_terminator)
                state = "normal"
                continue
            current_literal.append(ch)
            emit(ch, False, True)
        if ch == "\n":
            line += 1
        i += 1

    return "".join(code), "".join(pure), strings


# --------------------------------------------------------------------------
# Per-file scanning
# --------------------------------------------------------------------------

class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath.replace(os.sep, "/")
        with open(os.path.join(root, relpath), "r", encoding="utf-8",
                  errors="replace") as fh:
            self.text = fh.read()
        self.raw_lines = self.text.split("\n")
        code, pure, self.strings = lex_cpp(self.text)
        self.code_lines = code.split("\n")
        self.pure_lines = pure.split("\n")
        # line -> (set of suppressed rule names, reason text)
        self.suppressions = {}
        for idx, raw in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.suppressions[idx] = (rules, m.group(2).strip())

    def is_hot(self):
        stem = self.relpath
        for ext in CXX_EXTENSIONS:
            if stem.endswith(ext):
                stem = stem[: -len(ext)]
                break
        for hot in HOT_PATH_STEMS:
            if hot.endswith("/"):
                if self.relpath.startswith(hot):
                    return True
            elif stem == hot:
                return True
        return False

    def top_dir(self):
        return self.relpath.split("/", 1)[0]


def pattern_rule(violations, src, rule, pattern, message, allow_paths=()):
    if src.relpath in allow_paths:
        return
    for idx, line_text in enumerate(src.pure_lines, start=1):
        if pattern.search(line_text):
            add_violation(violations, src, idx, rule, message)


def add_violation(violations, src, line, rule, message):
    sup = src.suppressions.get(line)
    if sup is not None:
        rules, reason = sup
        if rule in rules:
            if reason:
                return  # justified, silenced
            violations.append(Violation(
                src.relpath, line, "bare-suppression",
                "allow(%s) without a justification; append a one-line reason"
                % rule))
            return
    violations.append(Violation(src.relpath, line, rule, message))


# Determinism rules -- sources of run-to-run or address-dependent behaviour.
GETENV_RE = re.compile(r"\bgetenv\s*\(")
RAND_RE = re.compile(r"\b(srand|rand|rand_r|random|drand48)\s*\(")
CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\b(clock_gettime|gettimeofday)\s*\(")
PTR_KEY_RE = re.compile(
    r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<[^<>,;]*\*")

# Hot-path rules -- alloc + ordering hygiene in the declared hot set.
STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b")
DOT_AT_RE = re.compile(r"\.\s*at\s*\(")
UNORDERED_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")


def check_file(src, violations):
    top = src.top_dir()

    if top in ("src", "tools"):
        pattern_rule(violations, src, "getenv", GETENV_RE,
                     "raw getenv() call; route env reads through util/env.hpp "
                     "so knobs stay in the registry",
                     ALLOWLIST.get("getenv", ()))
        pattern_rule(violations, src, "raw-rand", RAND_RE,
                     "C PRNG call; use util::Rng so streams are seeded and "
                     "checkpointable")
        pattern_rule(violations, src, "clock-now", CLOCK_RE,
                     "direct clock read; results must not depend on wall "
                     "time — use util/timer.hpp (bench-only) or drop it",
                     ALLOWLIST.get("clock-now", ()))
        pattern_rule(violations, src, "ptr-key-order", PTR_KEY_RE,
                     "pointer-keyed ordered container iterates in address "
                     "order, which varies run to run; key on stable ids")

    if src.is_hot():
        pattern_rule(violations, src, "hot-std-function", STD_FUNCTION_RE,
                     "std::function in a hot-path file allocates and "
                     "type-erases; use util::FunctionRef or a template")
        pattern_rule(violations, src, "hot-at", DOT_AT_RE,
                     ".at() in a hot-path file bounds-checks and can throw; "
                     "use debug-asserted operator[]")
        pattern_rule(violations, src, "hot-unordered", UNORDERED_RE,
                     "unordered container in a hot-path file: iteration "
                     "order is hash/address dependent and rehashing "
                     "allocates; use a flat vector keyed by id")

    if top in ("examples", "tools") and src.relpath.endswith(CXX_EXTENSIONS):
        for idx, line_text in enumerate(src.code_lines, start=1):
            m = INCLUDE_RE.match(line_text)
            if not m:
                continue
            header = m.group(1)
            if not (header.startswith("api/") or header.startswith("util/")):
                add_violation(
                    violations, src, idx, "include-purity",
                    'quoted include "%s" breaks the public API boundary; '
                    "examples and tools may include api/ and util/ only"
                    % header)

    # Meta rules: every suppression mechanism needs a justification.
    for idx, raw in enumerate(src.raw_lines, start=1):
        sup = src.suppressions.get(idx)
        if sup is not None and not sup[0]:
            violations.append(Violation(
                src.relpath, idx, "bare-suppression",
                "allow() names no rule; write allow(<rule>) <reason>"))
        m = NOLINT_RE.search(raw)
        if m is not None:
            checks, reason = m.group(3), m.group(4)
            if not checks or not checks.strip() or not reason.strip():
                add_violation(
                    violations, src, idx, "bare-nolint",
                    "NOLINT must name the check and carry a reason: "
                    "// NOLINT(<check>) <why this is safe>")


# --------------------------------------------------------------------------
# Repo-level rules: env registry drift
# --------------------------------------------------------------------------

def load_env_registry(root):
    path = os.path.join(root, ENV_REGISTRY_RELPATH)
    if not os.path.exists(path):
        return None
    namespace = {}
    with open(path, "r", encoding="utf-8") as fh:
        exec(compile(fh.read(), path, "exec"), namespace)  # stdlib-only config-as-code
    registry = namespace.get("ENV_REGISTRY")
    if not isinstance(registry, dict):
        raise RuntimeError("%s does not define an ENV_REGISTRY dict" % path)
    return registry


def check_env_registry(root, sources, registry, violations):
    if registry is None:
        return
    occurrences = {}  # name -> (relpath, line) of first occurrence anywhere
    for src in sources:
        for line_no, literal in src.strings:
            for m in ENV_LITERAL_RE.finditer(literal):
                name = m.group(0)
                occurrences.setdefault(name, []).append(
                    (src.relpath, line_no, src))

    for name, sites in sorted(occurrences.items()):
        if name in registry or name.startswith("STATIM_TEST_"):
            continue
        for relpath, line_no, src in sites:
            if src.top_dir() not in ENV_ENFORCED_DIRS:
                continue
            add_violation(
                violations, src, line_no, "env-registry",
                "env knob %s is not declared in %s; register it (and "
                "document it in README.md)" % (name, ENV_REGISTRY_RELPATH))

    readme_path = os.path.join(root, "README.md")
    readme = ""
    if os.path.exists(readme_path):
        with open(readme_path, "r", encoding="utf-8", errors="replace") as fh:
            readme = fh.read()

    for name in sorted(registry):
        if name not in occurrences:
            violations.append(Violation(
                ENV_REGISTRY_RELPATH.replace(os.sep, "/"), 1,
                "env-registry-stale",
                "registered env knob %s no longer occurs in any scanned "
                "source; delete the entry" % name))
        if name not in readme:
            violations.append(Violation(
                ENV_REGISTRY_RELPATH.replace(os.sep, "/"), 1, "env-readme",
                "registered env knob %s is not documented in README.md"
                % name))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = {
    "getenv": "raw getenv() outside util/env.cpp",
    "raw-rand": "C PRNG (rand/srand/random/...) anywhere in src/ or tools/",
    "clock-now": "direct clock reads outside util/timer.hpp",
    "ptr-key-order": "pointer-keyed std::map/std::set (address-ordered)",
    "hot-std-function": "std::function inside the declared hot-path file set",
    "hot-at": ".at() inside the declared hot-path file set",
    "hot-unordered": "unordered containers inside the hot-path file set",
    "env-registry": "STATIM_* literal not declared in the env registry",
    "env-registry-stale": "registered env knob with no remaining occurrence",
    "env-readme": "registered env knob missing from README.md",
    "include-purity": "examples/tools quoted include outside api/ and util/",
    "bare-suppression": "statim-lint allow() without a justification",
    "bare-nolint": "clang-tidy NOLINT without named check + justification",
}


def iter_source_files(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            # Fixture trees contain deliberate violations; only the golden
            # test scans them (with that tree as its own root).
            if "lint_fixtures" in dirnames:
                dirnames.remove("lint_fixtures")
            for filename in sorted(filenames):
                if filename.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, filename),
                                          root)


def run(root):
    """Lints the tree at `root`; returns the list of violations."""
    sources = [SourceFile(root, rel) for rel in iter_source_files(root)]
    violations = []
    for src in sources:
        check_file(src, violations)
    check_env_registry(root, sources, load_env_registry(root), violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations, len(sources)


def main(argv):
    root = "."
    args = list(argv[1:])
    while args:
        arg = args.pop(0)
        if arg == "--root":
            if not args:
                print("statim-lint: --root needs a directory", file=sys.stderr)
                return 2
            root = args.pop(0)
        elif arg == "--list-rules":
            for name in sorted(RULES):
                print("%-20s %s" % (name, RULES[name]))
            return 0
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            print("statim-lint: unknown argument %r (try --help)" % arg,
                  file=sys.stderr)
            return 2

    if not os.path.isdir(root):
        print("statim-lint: root %r is not a directory" % root,
              file=sys.stderr)
        return 2

    try:
        violations, scanned = run(root)
    except RuntimeError as err:
        print("statim-lint: %s" % err, file=sys.stderr)
        return 2

    for v in violations:
        print(v.render())
    print("statim-lint: %d file(s) scanned, %d violation(s)"
          % (scanned, len(violations)), file=sys.stderr)
    return 1 if violations else 0
