"""Entry point: `python3 tools/statim_lint [--root DIR]`."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint  # noqa: E402  (path set up above)

if __name__ == "__main__":
    sys.exit(lint.main(sys.argv))
