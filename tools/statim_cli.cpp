// statim — the unified CLI over the public API.
//
//   statim analyze  --circuit c432 [--percentile 0.99] [--bins N]
//   statim size     --circuit c7552 --iterations 50 [--batch 4]
//                   [--checkpoint run.ckpt [--checkpoint-every 10]] [--resume]
//   statim compare  --circuit c880 --det-iterations 300
//   statim mc       --circuit c432 --samples 20000 [--seed 7]
//   statim dispatch --circuit c7552 --scenarios FILE [--workers N]
//   statim serve    (worker mode: speaks the dispatch frame protocol on
//                   stdin/stdout; spawned by dispatch, not run by hand)
//   statim --version
//
// Every subcommand reads a design (--circuit from the registry, or
// --bench FILE [--lib FILE]) and a scenario from shared flags, and emits
// one JSON object on stdout in the bench binaries' conventions (stderr
// carries human-readable progress). This binary is the documented entry
// point; it includes only api/ and util/ headers — the check CI enforces
// for everything outside src/.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/statim.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace statim;

int usage(std::FILE* out) {
    std::fprintf(out,
                 "usage: statim <analyze|size|compare|mc|dispatch|serve> [options]\n"
                 "       statim --version\n"
                 "\n"
                 "design options (all subcommands):\n"
                 "  --circuit NAME     registry circuit (c17, the ten ISCAS-85\n"
                 "                     paper circuits, synth10k...) [c432]\n"
                 "  --bench FILE       load an ISCAS .bench file instead\n"
                 "  --lib FILE         liberty-lite cell library [builtin 180nm]\n"
                 "\n"
                 "scenario options:\n"
                 "  --percentile P     objective percentile in (0,1] [0.99]\n"
                 "  --mean             optimize the mean instead of a percentile\n"
                 "  --bins N           grid bins over the nominal delay [library default]\n"
                 "  --selector KIND    pruned | brute | cone [pruned]\n"
                 "  --delta-w W        width step per upsize [0.25]\n"
                 "  --max-width W      per-gate width cap [16]\n"
                 "  --iterations N     outer-iteration budget [50]\n"
                 "  --area-budget A    stop once added area reaches A [unbounded]\n"
                 "  --target T         stop once the objective reaches T ns [0]\n"
                 "  --batch K          gates per iteration [STATIM_BATCH, else 1]\n"
                 "  --threads N        worker threads [STATIM_THREADS, else cores]\n"
                 "  --simd LEVEL       PDF kernel dispatch: auto | scalar | avx2 | neon\n"
                 "                     (bitwise-identical speed knob) [STATIM_SIMD, else auto]\n"
                 "  --crit-floor F     selector criticality floor in [0,1]; 0 disables\n"
                 "                     (bitwise-identical speed knob)\n"
                 "                     [STATIM_CRIT_FLOOR, else 0.05]\n"
                 "  --selector-cache B replay unchanged candidate sensitivities across\n"
                 "                     passes (bitwise-identical speed knob) [1]\n"
                 "  --full-ssta        disable the incremental refresh (A/B reference)\n"
                 "  --seed S           RNG stream seed [1]\n"
                 "\n"
                 "size:    --checkpoint FILE [--checkpoint-every N] [--resume]\n"
                 "         [--stop-after N] [--mc N] [--trace]\n"
                 "compare: --det-iterations N [300]\n"
                 "mc:      --samples N [10000]\n"
                 "analyze: [--cdf]\n"
                 "\n"
                 "dispatch (multi-process scenario sharding; design flags only,\n"
                 "scenarios come from the file):\n"
                 "  --scenarios FILE     scenario-set file (required; see README)\n"
                 "  --workers N          worker processes; 0 runs in-process\n"
                 "                       [STATIM_DISPATCH_WORKERS, else 2]\n"
                 "  --checkpoint-every N iterations between migration checkpoints;\n"
                 "                       0 disables mid-run checkpoints [1]\n"
                 "  --heartbeat-ms MS    declare a silent worker hung after MS\n"
                 "                       [STATIM_DISPATCH_HEARTBEAT_MS, else 60000]\n"
                 "  --retries N          extra attempts per failed scenario\n"
                 "                       [STATIM_DISPATCH_RETRIES, else 2]\n"
                 "  fault injection (tests/CI): --fault kill|hang\n"
                 "  [--fault-scenario I] [--fault-after N] [--fault-persistent]\n"
                 "exit status: 0 complete, 3 incomplete (JSON carries\n"
                 "\"incomplete\":true and per-scenario errors), 1 usage/setup\n");
    return out == stdout ? 0 : 2;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

const std::vector<std::string> kDesignFlags = {"circuit", "bench", "lib"};
const std::vector<std::string> kScenarioFlags = {
    "percentile", "mean",        "bins",   "selector",   "delta-w", "max-width",
    "iterations", "area-budget", "target", "batch",      "threads", "full-ssta",
    "simd",       "seed",        "crit-floor", "selector-cache"};

std::vector<std::string> known_flags(std::vector<std::string> extra) {
    std::vector<std::string> flags = kDesignFlags;
    flags.insert(flags.end(), kScenarioFlags.begin(), kScenarioFlags.end());
    flags.insert(flags.end(), extra.begin(), extra.end());
    return flags;
}

api::Design design_from_flags(const CliArgs& args) {
    if (args.has("bench")) {
        if (args.has("lib"))
            return api::Design::from_bench_file(
                args.get("bench"), api::Design::load_library(args.get("lib")));
        return api::Design::from_bench_file(args.get("bench"));
    }
    const std::string circuit = args.get("circuit", "c432");
    if (args.has("lib"))
        return api::Design::from_registry(circuit,
                                          api::Design::load_library(args.get("lib")));
    return api::Design::from_registry(circuit);
}

api::Scenario scenario_from_flags(const CliArgs& args) {
    api::Scenario s;
    s.name = "cli";
    if (args.get_bool("mean", false)) s.objective = api::Scenario::Objective::Mean;
    s.percentile = args.get_double("percentile", 0.99);
    s.grid_bins = static_cast<int>(args.get_int("bins", 0));
    s.selector = api::Scenario::parse_selector(args.get("selector", "pruned"));
    s.delta_w = args.get_double("delta-w", 0.25);
    s.max_width = args.get_double("max-width", 16.0);
    s.max_iterations = static_cast<int>(args.get_int("iterations", 50));
    if (args.has("area-budget")) s.area_budget = args.get_double("area-budget", 0.0);
    s.target_objective_ns = args.get_double("target", 0.0);
    s.gates_per_iteration = static_cast<int>(args.get_int("batch", 0));
    s.threads = apply_threads_flag(args);
    s.incremental_ssta = !args.get_bool("full-ssta", false);
    s.simd = args.get("simd", "auto");
    s.crit_floor = args.get_double("crit-floor", -1.0);
    s.selector_cache = args.get_bool("selector-cache", true);
    s.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    s.validate();
    return s;
}

int cmd_analyze(const CliArgs& args) {
    args.validate(known_flags({"cdf"}));
    const api::Design design = design_from_flags(args);
    const api::Scenario scenario = scenario_from_flags(args);
    const api::AnalysisResult r = api::analyze(design, scenario);

    std::printf("{\"tool\":\"statim\",\"cmd\":\"analyze\",\"circuit\":\"%s\","
                "\"gates\":%zu,\"nodes\":%zu,\"edges\":%zu,\"dt_ns\":%.17g,"
                "\"nominal_ns\":%.17g,\"mean_ns\":%.17g,\"sigma_ns\":%.17g,"
                "\"p99_ns\":%.17g,\"objective_ns\":%.17g,\"seconds\":%.3f",
                json_escape(r.design).c_str(), r.gates, r.nodes, r.edges, r.dt_ns,
                r.nominal_delay_ns, r.mean_ns(), r.stddev_ns(), r.percentile_ns(0.99),
                r.objective_ns, r.seconds);
    if (args.has("cdf")) {
        std::printf(",\"cdf\":[");
        bool first = true;
        for (const auto& [t_ns, p] : r.cdf_points()) {
            std::printf("%s[%.17g,%.17g]", first ? "" : ",", t_ns, p);
            first = false;
        }
        std::printf("]");
    }
    std::printf("}\n");
    return 0;
}

int cmd_size(const CliArgs& args) {
    args.validate(known_flags(
        {"checkpoint", "checkpoint-every", "resume", "stop-after", "mc", "trace"}));
    api::Design design = design_from_flags(args);
    const std::string checkpoint_path = args.get("checkpoint");
    const auto checkpoint_every = args.get_int("checkpoint-every", 0);
    if (args.has("checkpoint") && checkpoint_path.empty())
        throw ConfigError("--checkpoint needs a FILE value");
    if ((args.has("resume") || args.has("checkpoint-every") ||
         args.has("stop-after")) &&
        checkpoint_path.empty())
        throw ConfigError(
            "--resume/--checkpoint-every/--stop-after need --checkpoint FILE");
    if (args.get_bool("resume", false)) {
        // The scenario is restored wholly from the checkpoint; accepting
        // scenario flags here would silently drop them.
        for (const std::string& flag : kScenarioFlags)
            if (args.has(flag))
                throw ConfigError("--" + flag +
                                  " cannot be combined with --resume: the scenario "
                                  "(budgets, selector, threads, seed) is restored "
                                  "from the checkpoint");
    }

    const auto save = [&](const api::SizingRun& run) {
        if (checkpoint_path.empty()) return;
        // Atomic replace: a failed or interrupted save must not destroy
        // the previous checkpoint — it is the only recovery artifact.
        const std::string tmp_path = checkpoint_path + ".tmp";
        {
            std::ofstream out(tmp_path, std::ios::trunc);
            if (!out) throw Error("cannot write checkpoint '" + tmp_path + "'");
            run.save(out);
        }
        if (std::rename(tmp_path.c_str(), checkpoint_path.c_str()) != 0)
            throw Error("cannot move checkpoint into place at '" + checkpoint_path +
                        "'");
        std::fprintf(stderr, "checkpoint: saved iteration %d to %s\n",
                     run.iteration(), checkpoint_path.c_str());
    };

    auto make_run = [&]() -> api::SizingRun {
        if (args.get_bool("resume", false)) {
            std::ifstream in(checkpoint_path);
            if (!in) throw Error("cannot read checkpoint '" + checkpoint_path + "'");
            const api::CheckpointInfo info = api::checkpoint_info(in);
            in.seekg(0);
            std::fprintf(stderr,
                         "checkpoint: resuming '%s' scenario '%s' at iteration %d%s\n",
                         info.design.c_str(), info.scenario.c_str(), info.iteration,
                         info.finished ? " (already finished)" : "");
            return api::SizingRun::resume(design, in);
        }
        return api::SizingRun(design, scenario_from_flags(args));
    };
    api::SizingRun run = make_run();

    // --stop-after simulates an interruption: stop stepping mid-run
    // (before the scenario's budgets are reached), save, and exit; a
    // later --resume continues the trajectory bit-identically.
    const auto stop_after = args.get_int("stop-after", 0);
    while ((stop_after <= 0 || run.iteration() < stop_after) && run.step()) {
        if (checkpoint_every > 0 && run.iteration() % checkpoint_every == 0) save(run);
    }
    save(run);
    if (stop_after > 0 && !run.finished()) {
        std::fprintf(stderr, "stopped after iteration %d (resume with --resume)\n",
                     run.iteration());
        return 0;
    }

    const core::SizingResult& r = run.result();
    std::printf("{\"tool\":\"statim\",\"cmd\":\"size\",\"circuit\":\"%s\","
                "\"gates\":%zu,\"iterations\":%d,\"commits\":%zu,"
                "\"initial_objective_ns\":%.17g,\"final_objective_ns\":%.17g,"
                "\"initial_area\":%.17g,\"final_area\":%.17g,"
                "\"selector_passes\":%zu,\"conflicts_skipped\":%zu,"
                "\"ssta_nodes_recomputed\":%zu,\"stop_reason\":\"%s\"",
                json_escape(design.name()).c_str(), design.gate_count(), r.iterations,
                r.history.size(), r.initial_objective_ns, r.final_objective_ns,
                r.initial_area, r.final_area, r.selector_passes, r.conflicts_skipped,
                r.ssta_nodes_recomputed, json_escape(r.stop_reason).c_str());
    if (args.has("trace")) {
        std::printf(",\"history\":[");
        for (std::size_t i = 0; i < r.history.size(); ++i) {
            const core::IterationRecord& rec = r.history[i];
            std::printf("%s{\"iteration\":%d,\"gate\":\"%s\",\"sensitivity\":%.17g,"
                        "\"objective_ns\":%.17g,\"area\":%.17g}",
                        i ? "," : "", rec.iteration,
                        json_escape(design.gate_name(rec.gate)).c_str(),
                        rec.sensitivity, rec.objective_after_ns, rec.area_after);
        }
        std::printf("]");
    }
    if (const auto mc_samples = args.get_int("mc", 0); mc_samples > 0) {
        const api::McSummary mc =
            run.validate_mc(static_cast<std::size_t>(mc_samples));
        std::printf(",\"mc\":{\"samples\":%zu,\"mean_ns\":%.17g,\"sigma_ns\":%.17g,"
                    "\"p99_ns\":%.17g}",
                    mc.samples, mc.mean_ns, mc.stddev_ns, mc.percentile_ns(0.99));
    }
    std::printf("}\n");
    return 0;
}

int cmd_compare(const CliArgs& args) {
    args.validate(known_flags({"det-iterations"}));
    const api::Design design = design_from_flags(args);
    api::Scenario scenario = scenario_from_flags(args);
    if (!args.has("iterations")) scenario.max_iterations = 4000;  // chase the budget
    const int det_iterations = static_cast<int>(args.get_int("det-iterations", 300));

    const api::CompareOutcome outcome =
        api::compare_sizings(design, scenario, det_iterations);
    const core::ComparisonResult& c = outcome.comparison;
    std::printf("{\"tool\":\"statim\",\"cmd\":\"compare\",\"circuit\":\"%s\","
                "\"nodes\":%zu,\"edges\":%zu,\"initial_objective_ns\":%.17g,"
                "\"det_objective_ns\":%.17g,\"stat_objective_ns\":%.17g,"
                "\"det_area_increase_pct\":%.17g,\"stat_area_increase_pct\":%.17g,"
                "\"improvement_pct\":%.17g}\n",
                json_escape(c.circuit).c_str(), c.nodes, c.edges,
                c.initial_objective_ns, c.det_objective_ns, c.stat_objective_ns,
                c.det_area_increase_pct, c.stat_area_increase_pct, c.improvement_pct);
    return 0;
}

int cmd_mc(const CliArgs& args) {
    args.validate(known_flags({"samples"}));
    const api::Design design = design_from_flags(args);
    const api::Scenario scenario = scenario_from_flags(args);
    const auto samples = static_cast<std::size_t>(args.get_int("samples", 10000));
    const api::McSummary mc = api::monte_carlo(design, scenario, samples);

    std::printf("{\"tool\":\"statim\",\"cmd\":\"mc\",\"circuit\":\"%s\","
                "\"samples\":%zu,\"seed\":%llu,\"mean_ns\":%.17g,\"sigma_ns\":%.17g,"
                "\"min_ns\":%.17g,\"max_ns\":%.17g,\"p50_ns\":%.17g,\"p90_ns\":%.17g,"
                "\"p99_ns\":%.17g,\"seconds\":%.3f}\n",
                json_escape(design.name()).c_str(), mc.samples,
                static_cast<unsigned long long>(scenario.seed), mc.mean_ns,
                mc.stddev_ns, mc.min_ns, mc.max_ns, mc.percentile_ns(0.5),
                mc.percentile_ns(0.9), mc.percentile_ns(0.99), mc.seconds);
    return 0;
}

int cmd_version(const CliArgs& args) {
    args.validate({"version", "lib"});
    std::printf("statim %s\n", api::version());
    std::printf("checkpoint-format %d\n", api::kCheckpointFormatVersion);
    std::printf("dispatch-protocol %d\n", api::kDispatchProtocolVersion);
    // The same fingerprint checkpoints embed and dispatch workers verify;
    // two builds agree on it iff their checkpoints are interchangeable.
    std::printf("library-fingerprint 0x%016llx (builtin 180nm)\n",
                static_cast<unsigned long long>(api::builtin_library_fingerprint()));
    if (args.has("lib"))
        std::printf("library-fingerprint 0x%016llx (%s)\n",
                    static_cast<unsigned long long>(
                        api::library_file_fingerprint(args.get("lib"))),
                    args.get("lib").c_str());
    return 0;
}

int cmd_serve(const CliArgs& args) {
    args.validate({});
    // Everything (design, scenario, options) arrives in run frames on
    // stdin; stdout carries only protocol frames back to the coordinator.
    return api::serve(0, 1);
}

int cmd_dispatch(const CliArgs& args) {
    args.validate({"circuit", "bench", "lib", "scenarios", "workers",
                   "checkpoint-every", "heartbeat-ms", "retries", "fault",
                   "fault-scenario", "fault-after", "fault-persistent"});
    const std::string scenarios_path = args.get("scenarios");
    if (scenarios_path.empty())
        throw ConfigError("dispatch needs --scenarios FILE");
    std::ifstream in(scenarios_path);
    if (!in) throw Error("cannot read scenario set '" + scenarios_path + "'");
    const std::vector<api::Scenario> scenarios = api::read_scenario_set(in);

    api::DesignSource source;
    if (args.has("bench")) {
        source.kind = api::DesignSource::Kind::BenchFile;
        source.name = args.get("bench");
    } else {
        source.kind = api::DesignSource::Kind::Registry;
        source.name = args.get("circuit", "c432");
    }
    source.lib_path = args.get("lib");

    api::DispatchOptions options;
    // --workers 0 is an explicit request for the in-process reference
    // path; absent, dispatch_scenarios resolves STATIM_DISPATCH_WORKERS.
    options.workers = static_cast<int>(args.get_int("workers", 0));
    const bool in_process = args.has("workers") && options.workers == 0;
    options.checkpoint_every = static_cast<int>(args.get_int("checkpoint-every", 1));
    options.heartbeat_timeout_ms = static_cast<int>(args.get_int("heartbeat-ms", 0));
    options.retries = static_cast<int>(args.get_int("retries", -1));
    options.serve_command = api::self_serve_command(args.program());
    if (args.has("fault")) {
        const std::string kind = args.get("fault");
        if (kind == "kill")
            options.fault.kind = api::FaultInjection::Kind::Kill;
        else if (kind == "hang")
            options.fault.kind = api::FaultInjection::Kind::Hang;
        else
            throw ConfigError("--fault must be kill or hang, got '" + kind + "'");
        options.fault.scenario = static_cast<int>(args.get_int("fault-scenario", 0));
        options.fault.after_iteration =
            static_cast<int>(args.get_int("fault-after", 1));
        options.fault.persistent = args.get_bool("fault-persistent", false);
    }

    const api::DispatchReport report =
        in_process ? api::run_scenarios_report(source, scenarios)
                   : api::dispatch_scenarios(source, scenarios, options);

    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const api::DispatchOutcome& o = report.outcomes[i];
        if (o.attempts > 0 || !o.ok)
            std::fprintf(stderr,
                         "dispatch: scenario %zu '%s': %s after %d worker "
                         "failure(s), %d migration(s)\n",
                         i, o.scenario.name.c_str(), o.ok ? "recovered" : "FAILED",
                         o.attempts, o.migrations);
    }
    api::write_dispatch_json(std::cout, report);
    std::cout.flush();
    if (!report.complete) {
        std::fprintf(stderr, "dispatch: incomplete — a scenario exhausted its "
                             "retry budget or failed\n");
        return 3;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        if (args.has("version")) return cmd_version(args);
        if (args.positional().empty())
            return args.has("help") ? usage(stdout) : usage(stderr);
        if (args.positional().size() > 1)
            throw ConfigError("expected one subcommand, got '" +
                              args.positional()[1] + "' too");
        const std::string& cmd = args.positional()[0];
        if (cmd == "analyze") return cmd_analyze(args);
        if (cmd == "size") return cmd_size(args);
        if (cmd == "compare") return cmd_compare(args);
        if (cmd == "mc") return cmd_mc(args);
        if (cmd == "dispatch") return cmd_dispatch(args);
        if (cmd == "serve") return cmd_serve(args);
        if (cmd == "version") return cmd_version(args);
        if (cmd == "help") return usage(stdout);
        std::fprintf(stderr, "error: unknown subcommand '%s'\n", cmd.c_str());
        return usage(stderr);
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
