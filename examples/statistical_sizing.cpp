// Full statistical sizing flow on any registry circuit (or a user .bench).
//
//   ./statistical_sizing --circuit c880 --iterations 100 \
//       [--selector pruned|brute|cone] [--percentile 0.99] [--delta-w 0.25] \
//       [--max-width 16] [--batch k] [--bench path.bench] [--lib path.lib] \
//       [--csv]
//
// --batch k commits k cone-disjoint gates per iteration from one selector
// pass, followed by a single merged-cone refresh (default: STATIM_BATCH,
// else 1 — the paper's one-gate-per-iteration loop).
//
// Prints a per-iteration trace and a closing summary; --csv emits the
// area/delay trajectory as CSV for plotting (the Figure 10 format).
#include <cstdio>
#include <iostream>

#include "cells/liberty_lite.hpp"
#include "core/sizers.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/iscas.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "iterations", "selector", "percentile", "delta-w",
                       "max-width", "batch", "bench", "lib", "csv", "area-budget",
                       "threads", "full-ssta"});
        const std::size_t threads = apply_threads_flag(args);

        const cells::Library lib = args.has("lib")
                                       ? cells::load_liberty_lite(args.get("lib"))
                                       : cells::Library::standard_180nm();
        netlist::Netlist nl =
            args.has("bench")
                ? netlist::load_bench(args.get("bench"), lib)
                : netlist::make_iscas(args.get("circuit", "c432"), lib);

        core::StatisticalSizerConfig cfg;
        cfg.objective = core::Objective::percentile(args.get_double("percentile", 0.99));
        cfg.max_iterations = static_cast<int>(args.get_int("iterations", 50));
        cfg.delta_w = args.get_double("delta-w", 0.25);
        cfg.max_width = args.get_double("max-width", 16.0);
        if (args.has("area-budget")) cfg.area_budget = args.get_double("area-budget", 0.0);
        const std::string selector = args.get("selector", "pruned");
        if (selector == "pruned") cfg.selector = core::SelectorKind::Pruned;
        else if (selector == "brute") cfg.selector = core::SelectorKind::BruteFull;
        else if (selector == "cone") cfg.selector = core::SelectorKind::BruteCone;
        else throw ConfigError("--selector must be pruned, brute or cone");
        cfg.threads = threads;
        cfg.incremental_ssta = !args.get_bool("full-ssta", false);
        cfg.gates_per_iteration = static_cast<int>(args.get_int("batch", 0));

        core::Context ctx(nl, lib);
        std::fprintf(stderr,
                     "%s: %zu nodes / %zu edges, grid %.4g ns, selector %s, "
                     "%zu thread%s, %s ssta refresh\n",
                     nl.name().c_str(), ctx.graph().node_count(),
                     ctx.graph().edge_count(), ctx.grid().dt_ns(), selector.c_str(),
                     threads, threads == 1 ? "" : "s",
                     cfg.incremental_ssta ? "incremental" : "full");

        const core::SizingResult result = core::run_statistical_sizing(ctx, cfg);

        if (args.has("csv")) {
            CsvWriter csv(std::cout, {"iteration", "gate", "sensitivity_ns_per_w",
                                      "p_objective_ns", "total_area", "total_width"});
            csv.row({"0", "", "", format_double(result.initial_objective_ns),
                     format_double(result.initial_area), ""});
            for (const auto& rec : result.history)
                csv.row({std::to_string(rec.iteration), nl.gate(rec.gate).name,
                         format_double(rec.sensitivity),
                         format_double(rec.objective_after_ns),
                         format_double(rec.area_after), format_double(rec.width_after)});
        } else {
            for (const auto& rec : result.history)
                std::printf("iter %4d  gate %-8s sens %10.4g  obj %8.4f ns  area %9.2f  "
                            "(cand %zu, pruned %zu, completed %zu)\n",
                            rec.iteration, nl.gate(rec.gate).name.c_str(),
                            rec.sensitivity, rec.objective_after_ns, rec.area_after,
                            rec.stats.candidates, rec.stats.pruned, rec.stats.completed);
        }

        std::fprintf(stderr,
                     "done [%s]: objective %.4f -> %.4f ns (%.2f%%), area +%.2f%%, "
                     "%zu selector passes / %zu commits\n",
                     result.stop_reason.c_str(), result.initial_objective_ns,
                     result.final_objective_ns,
                     100.0 * (result.initial_objective_ns - result.final_objective_ns) /
                         result.initial_objective_ns,
                     100.0 * (result.final_area - result.initial_area) /
                         result.initial_area,
                     result.selector_passes, result.history.size());
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
