// Full statistical sizing flow on any registry circuit (or a user .bench).
//
//   ./statistical_sizing --circuit c880 --iterations 100 \
//       [--selector pruned|brute|cone] [--percentile 0.99] [--delta-w 0.25] \
//       [--max-width 16] [--batch k] [--bench path.bench] [--lib path.lib] \
//       [--csv]
//
// --batch k commits k cone-disjoint gates per iteration from one selector
// pass, followed by a single merged-cone refresh (default: STATIM_BATCH,
// else 1 — the paper's one-gate-per-iteration loop).
//
// Prints a per-iteration trace and a closing summary; --csv emits the
// area/delay trajectory as CSV for plotting (the Figure 10 format).
#include <cstdio>
#include <iostream>

#include "api/statim.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "iterations", "selector", "percentile", "delta-w",
                       "max-width", "batch", "bench", "lib", "csv", "area-budget",
                       "threads", "full-ssta"});

        api::Design design =
            args.has("bench")
                ? (args.has("lib")
                       ? api::Design::from_bench_file(
                             args.get("bench"), api::Design::load_library(args.get("lib")))
                       : api::Design::from_bench_file(args.get("bench")))
                : api::Design::from_registry(args.get("circuit", "c432"));

        api::Scenario scenario;
        scenario.percentile = args.get_double("percentile", 0.99);
        scenario.max_iterations = static_cast<int>(args.get_int("iterations", 50));
        scenario.delta_w = args.get_double("delta-w", 0.25);
        scenario.max_width = args.get_double("max-width", 16.0);
        if (args.has("area-budget"))
            scenario.area_budget = args.get_double("area-budget", 0.0);
        const std::string selector = args.get("selector", "pruned");
        scenario.selector = api::Scenario::parse_selector(selector);
        scenario.threads = apply_threads_flag(args);
        scenario.incremental_ssta = !args.get_bool("full-ssta", false);
        scenario.gates_per_iteration = static_cast<int>(args.get_int("batch", 0));

        std::fprintf(stderr, "%s: %zu gates, selector %s, %zu thread%s, %s ssta refresh\n",
                     design.name().c_str(), design.gate_count(), selector.c_str(),
                     scenario.threads, scenario.threads == 1 ? "" : "s",
                     scenario.incremental_ssta ? "incremental" : "full");

        api::SizingRun run(design, scenario);
        run.run_to_convergence();
        const auto& result = run.result();

        if (args.has("csv")) {
            CsvWriter csv(std::cout, {"iteration", "gate", "sensitivity_ns_per_w",
                                      "p_objective_ns", "total_area", "total_width"});
            csv.row({"0", "", "", format_double(result.initial_objective_ns),
                     format_double(result.initial_area), ""});
            for (const auto& rec : result.history)
                csv.row({std::to_string(rec.iteration), design.gate_name(rec.gate),
                         format_double(rec.sensitivity),
                         format_double(rec.objective_after_ns),
                         format_double(rec.area_after), format_double(rec.width_after)});
        } else {
            for (const auto& rec : result.history)
                std::printf("iter %4d  gate %-8s sens %10.4g  obj %8.4f ns  area %9.2f  "
                            "(cand %zu, pruned %zu, completed %zu)\n",
                            rec.iteration, design.gate_name(rec.gate).c_str(),
                            rec.sensitivity, rec.objective_after_ns, rec.area_after,
                            rec.stats.candidates, rec.stats.pruned, rec.stats.completed);
        }

        std::fprintf(stderr,
                     "done [%s]: objective %.4f -> %.4f ns (%.2f%%), area +%.2f%%, "
                     "%zu selector passes / %zu commits\n",
                     result.stop_reason.c_str(), result.initial_objective_ns,
                     result.final_objective_ns,
                     100.0 * (result.initial_objective_ns - result.final_objective_ns) /
                         result.initial_objective_ns,
                     100.0 * (result.final_area - result.initial_area) /
                         result.initial_area,
                     result.selector_passes, result.history.size());
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
