// Statistical criticality report: which gates are most likely to lie on
// the longest path under process variation, how that differs from the
// single nominal critical path, and the circuit's K worst nominal paths.
//
//   ./criticality_report [--circuit c880] [--top 15] [--paths 5] [--dot out.dot]
//
// --dot writes a Graphviz file with gates shaded by criticality.
#include <cstdio>
#include <fstream>

#include "api/statim.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "top", "paths", "dot"});
        const api::Design design =
            api::Design::from_registry(args.get("circuit", "c880"));
        const auto top_n = static_cast<std::size_t>(args.get_int("top", 15));
        const auto n_paths = static_cast<std::size_t>(args.get_int("paths", 5));

        const api::CriticalityReport report =
            api::criticality_report(design, {}, top_n, n_paths);

        std::printf("%s: %zu gates, nominal delay %.4f ns\n\n", design.name().c_str(),
                    design.gate_count(), report.nominal_delay_ns);
        std::printf("top %zu gates by statistical criticality:\n", top_n);
        std::printf("%-10s %-8s %-13s %-14s\n", "gate", "cell", "criticality",
                    "on nom. path?");
        for (const auto& entry : report.ranked)
            std::printf("%-10s %-8s %-13.4f %-14s\n", entry.gate_name.c_str(),
                        entry.cell_name.c_str(), entry.criticality,
                        entry.on_nominal_path ? "yes" : "no");

        std::printf("\n%zu longest nominal paths:\n", n_paths);
        for (std::size_t i = 0; i < report.nominal_paths.size(); ++i) {
            const auto& path = report.nominal_paths[i];
            std::printf("  #%zu  %.4f ns  (%zu gates):", i + 1, path.delay_ns,
                        path.gate_names.size());
            for (const auto& name : path.gate_names) std::printf(" %s", name.c_str());
            std::printf("\n");
        }

        if (args.has("dot")) {
            std::ofstream out(args.get("dot"));
            if (!out) throw Error("cannot write " + args.get("dot"));
            api::write_dot(out, design, report.gate_scores);
            std::fprintf(stderr, "wrote %s\n", args.get("dot").c_str());
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
