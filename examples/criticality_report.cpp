// Statistical criticality report: which gates are most likely to lie on
// the longest path under process variation, how that differs from the
// single nominal critical path, and the circuit's K worst nominal paths.
//
//   ./criticality_report [--circuit c880] [--top 15] [--paths 5] [--dot out.dot]
//
// --dot writes a Graphviz file with gates shaded by criticality.
#include <cstdio>
#include <fstream>

#include "core/context.hpp"
#include "netlist/dot.hpp"
#include "netlist/iscas.hpp"
#include "ssta/criticality.hpp"
#include "sta/paths.hpp"
#include "sta/sta.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "top", "paths", "dot"});
        const std::string circuit = args.get("circuit", "c880");
        const auto top_n = static_cast<std::size_t>(args.get_int("top", 15));
        const auto n_paths = static_cast<std::size_t>(args.get_int("paths", 5));

        const cells::Library lib = cells::Library::standard_180nm();
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        core::Context ctx(nl, lib);
        ctx.run_ssta();

        // Statistical criticality.
        const ssta::CriticalityResult crit =
            ssta::compute_criticality(ctx.engine(), ctx.edge_delays());
        const auto ranked = ssta::rank_gates_by_criticality(ctx.graph(), crit);

        // Nominal critical path for contrast.
        const sta::StaResult sta = sta::run_sta(ctx.delay_calc());
        const auto crit_path = sta::critical_path(ctx.delay_calc(), sta);
        const auto nominal_gates = sta::gates_on_path(ctx.graph(), crit_path);

        std::printf("%s: %zu gates, nominal delay %.4f ns\n\n", circuit.c_str(),
                    nl.gate_count(), sta.circuit_delay_ns);
        std::printf("top %zu gates by statistical criticality:\n", top_n);
        std::printf("%-10s %-8s %-13s %-14s\n", "gate", "cell", "criticality",
                    "on nom. path?");
        for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
            const auto [g, c] = ranked[i];
            const bool on_nominal =
                std::find(nominal_gates.begin(), nominal_gates.end(), g) !=
                nominal_gates.end();
            std::printf("%-10s %-8s %-13.4f %-14s\n", nl.gate(g).name.c_str(),
                        lib.cell(nl.gate(g).cell).name.c_str(), c,
                        on_nominal ? "yes" : "no");
        }

        std::printf("\n%zu longest nominal paths:\n", n_paths);
        const auto paths = sta::k_longest_paths(ctx.delay_calc(), n_paths);
        for (std::size_t i = 0; i < paths.size(); ++i) {
            const auto gates = sta::gates_on_path(ctx.graph(), paths[i].edges);
            std::printf("  #%zu  %.4f ns  (%zu gates):", i + 1, paths[i].delay_ns,
                        gates.size());
            for (GateId g : gates) std::printf(" %s", nl.gate(g).name.c_str());
            std::printf("\n");
        }

        if (args.has("dot")) {
            std::vector<double> scores(nl.gate_count());
            for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
                scores[gi] = crit.of_node(
                    ctx.graph().output_node(GateId{static_cast<std::uint32_t>(gi)}));
            std::ofstream out(args.get("dot"));
            if (!out) throw Error("cannot write " + args.get("dot"));
            netlist::DotOptions options;
            options.gate_scores = scores;
            netlist::write_dot(out, nl, lib, options);
            std::fprintf(stderr, "wrote %s\n", args.get("dot").c_str());
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
