// Quickstart: load the genuine ISCAS-85 c17, run statistical timing
// analysis, and statistically size a handful of gates.
//
//   ./quickstart [--iterations N]
//
// Walks through the public API lifecycle in ~50 lines: a Design (circuit
// + cell library), a Scenario (objective + budgets), one-call analysis,
// and a stepwise SizingRun.
#include <cstdio>

#include "api/statim.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    const CliArgs args(argc, argv);
    args.validate({"iterations"});
    const int iterations = static_cast<int>(args.get_int("iterations", 8));

    // 1. A Design: one circuit bound to one cell library (here the
    //    registry's genuine c17 under the builtin 180 nm-class library;
    //    see also Design::from_bench_file / from_bench_text).
    api::Design design = api::Design::from_registry("c17");
    std::printf("c17: %zu gates, %zu nets\n", design.gate_count(),
                design.net_count());

    // 2. A Scenario: everything about "how to run" in one value. The
    //    default is the paper's setup — p99 objective, pruned selector.
    api::Scenario scenario;
    scenario.max_iterations = iterations;

    // 3. One-call analysis of the min-size circuit.
    const api::AnalysisResult before = api::analyze(design, scenario);
    std::printf("min-size circuit delay:  mean %.4f ns,  sigma %.4f ns,  p99 %.4f ns\n",
                before.mean_ns(), before.stddev_ns(), before.percentile_ns(0.99));

    // 4. A SizingRun: the statistical sizer as a stepwise handle. step()
    //    runs one outer iteration, so the trajectory is observable as it
    //    happens (and checkpointable — see SizingRun::save/resume).
    api::SizingRun run(design, scenario);
    std::printf("\n%-5s %-10s %-8s\n", "iter", "p99 (ns)", "area");
    while (run.step())
        std::printf("%-5d %-10.4f %-8.2f\n", run.iteration(), run.objective_ns(),
                    run.area());

    const auto& result = run.result();
    std::printf("\np99 improved %.4f -> %.4f ns (%.1f%%) for +%.1f%% area [%s]\n",
                result.initial_objective_ns, result.final_objective_ns,
                100.0 * (result.initial_objective_ns - result.final_objective_ns) /
                    result.initial_objective_ns,
                100.0 * (result.final_area - result.initial_area) /
                    result.initial_area,
                result.stop_reason.c_str());
    return 0;
}
