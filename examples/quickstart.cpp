// Quickstart: load the genuine ISCAS-85 c17, run statistical timing
// analysis, and statistically size a handful of gates.
//
//   ./quickstart [--iterations N]
//
// Walks through the full public API surface in ~60 lines: library, netlist
// from .bench text, analysis context, SSTA metrics, and the pruned
// statistical sizer.
#include <cstdio>
#include <sstream>

#include "core/sizers.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/iscas.hpp"
#include "ssta/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    const CliArgs args(argc, argv);
    const int iterations = static_cast<int>(args.get_int("iterations", 8));

    // 1. A cell library: the builtin 180 nm-class one (or load your own
    //    with cells::load_liberty_lite).
    const cells::Library lib = cells::Library::standard_180nm();

    // 2. A circuit: parse .bench text (here the embedded genuine c17).
    std::istringstream bench(netlist::c17_bench_text());
    netlist::Netlist nl = netlist::read_bench(bench, lib, "c17");
    std::printf("c17: %zu gates, %zu nets, %zu PIs, %zu POs\n", nl.gate_count(),
                nl.net_count(), nl.primary_inputs().size(),
                nl.primary_outputs().size());

    // 3. An analysis context: timing graph + delay model + SSTA engine.
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    const prob::PdfView sink = ctx.engine().sink_arrival();
    std::printf("min-size circuit delay:  mean %.4f ns,  sigma %.4f ns,  p99 %.4f ns\n",
                ssta::mean_ns(ctx.grid(), sink), ssta::stddev_ns(ctx.grid(), sink),
                ssta::percentile_ns(ctx.grid(), sink, 0.99));

    // 4. Statistical gate sizing with the paper's pruned selector.
    core::StatisticalSizerConfig cfg;
    cfg.objective = core::Objective::percentile(0.99);
    cfg.max_iterations = iterations;
    const core::SizingResult result = core::run_statistical_sizing(ctx, cfg);

    std::printf("\n%-5s %-6s %-12s %-10s %-8s\n", "iter", "gate", "sensitivity",
                "p99 (ns)", "area");
    for (const auto& rec : result.history)
        std::printf("%-5d %-6s %-12.3g %-10.4f %-8.2f\n", rec.iteration,
                    nl.gate(rec.gate).name.c_str(), rec.sensitivity,
                    rec.objective_after_ns, rec.area_after);

    std::printf("\np99 improved %.4f -> %.4f ns (%.1f%%) for +%.1f%% area [%s]\n",
                result.initial_objective_ns, result.final_objective_ns,
                100.0 * (result.initial_objective_ns - result.final_objective_ns) /
                    result.initial_objective_ns,
                100.0 * (result.final_area - result.initial_area) /
                    result.initial_area,
                result.stop_reason.c_str());
    return 0;
}
