// The "wall of critical paths" demonstration (paper Figure 1).
//
// Deterministic optimization balances path delays until many paths are
// near-critical — a slack "wall". Under process variation every
// near-critical path can become the longest, so the wall *hurts* the
// statistical delay. This example sizes the same circuit both ways at the
// same area and prints the slack histogram plus the statistical delay of
// both solutions.
//
//   ./wall_of_paths [--circuit c432] [--iterations 150] [--bins 20]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/statim.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

/// Histogram of PO slacks (how close each output path is to critical);
/// the slack profile comes straight out of api::analyze.
std::vector<int> slack_histogram(const std::vector<double>& slacks, int bins,
                                 double& max_slack) {
    max_slack = *std::max_element(slacks.begin(), slacks.end());
    std::vector<int> histogram(static_cast<std::size_t>(bins), 0);
    for (double s : slacks) {
        const int b = max_slack > 0.0
                          ? std::min(bins - 1, static_cast<int>(s / max_slack * bins))
                          : 0;
        ++histogram[static_cast<std::size_t>(b)];
    }
    return histogram;
}

void print_histogram(const char* title, const std::vector<int>& histogram,
                     double max_slack) {
    std::printf("%s (slack 0 .. %.3f ns, left = critical)\n", title, max_slack);
    for (std::size_t b = 0; b < histogram.size(); ++b) {
        std::printf("  %5.1f%% |", 100.0 * static_cast<double>(b) /
                                       static_cast<double>(histogram.size()));
        for (int i = 0; i < histogram[b]; ++i) std::printf("#");
        std::printf(" %d\n", histogram[b]);
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "iterations", "bins"});
        const int bins = static_cast<int>(args.get_int("bins", 16));
        const int iterations = static_cast<int>(args.get_int("iterations", 150));

        const api::Design design =
            api::Design::from_registry(args.get("circuit", "c432"));
        api::Scenario scenario;
        scenario.max_iterations = 100000;  // the area budget is the stop

        std::fprintf(stderr, "sizing %s both ways (%d deterministic iterations)...\n",
                     design.name().c_str(), iterations);
        // Table 1 on one circuit: deterministic baseline, then statistical
        // sizing to the same added area. The outcome keeps both sized
        // circuits, so their slack profiles come from plain analyze().
        const api::CompareOutcome outcome =
            api::compare_sizings(design, scenario, iterations);

        const api::AnalysisResult det = api::analyze(outcome.deterministic, scenario);
        const api::AnalysisResult stat = api::analyze(outcome.statistical, scenario);

        double max_slack_det = 0.0, max_slack_stat = 0.0;
        const auto hist_det = slack_histogram(det.po_slack_ns, bins, max_slack_det);
        const auto hist_stat = slack_histogram(stat.po_slack_ns, bins, max_slack_stat);

        std::printf("\n=== %s at equal area (+%.1f%%) ===\n\n", design.name().c_str(),
                    outcome.comparison.det_area_increase_pct);
        print_histogram("deterministic solution: PO slack distribution", hist_det,
                        max_slack_det);
        std::printf("\n");
        print_histogram("statistical solution:   PO slack distribution", hist_stat,
                        max_slack_stat);

        std::printf("\n99-percentile circuit delay:  deterministic %.4f ns   "
                    "statistical %.4f ns   (%.2f%% better)\n",
                    outcome.comparison.det_objective_ns,
                    outcome.comparison.stat_objective_ns,
                    outcome.comparison.improvement_pct);
        std::printf("the deterministic 'wall' (many POs at low slack) costs "
                    "statistical delay even at identical area.\n");
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
