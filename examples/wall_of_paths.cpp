// The "wall of critical paths" demonstration (paper Figure 1).
//
// Deterministic optimization balances path delays until many paths are
// near-critical — a slack "wall". Under process variation every
// near-critical path can become the longest, so the wall *hurts* the
// statistical delay. This example sizes the same circuit both ways at the
// same area and prints the slack histogram plus the statistical delay of
// both solutions.
//
//   ./wall_of_paths [--circuit c432] [--iterations 150] [--bins 20]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "netlist/iscas.hpp"
#include "ssta/metrics.hpp"
#include "sta/sta.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

/// Histogram of PO-net slacks (how close each output path is to critical).
std::vector<int> slack_histogram(const statim::netlist::Netlist& nl,
                                 const statim::cells::Library& lib, int bins,
                                 double& max_slack) {
    using namespace statim;
    const netlist::TimingGraph graph(nl);
    const sta::DelayCalc dc(graph, lib);
    const sta::StaResult sta = sta::run_sta(dc);

    std::vector<double> slacks;
    for (NetId po : nl.primary_outputs())
        slacks.push_back(sta.slack(netlist::TimingGraph::node_of_net(po)));
    max_slack = *std::max_element(slacks.begin(), slacks.end());

    std::vector<int> histogram(bins, 0);
    for (double s : slacks) {
        const int b = max_slack > 0.0
                          ? std::min(bins - 1, static_cast<int>(s / max_slack * bins))
                          : 0;
        ++histogram[b];
    }
    return histogram;
}

void print_histogram(const char* title, const std::vector<int>& histogram,
                     double max_slack) {
    std::printf("%s (slack 0 .. %.3f ns, left = critical)\n", title, max_slack);
    for (std::size_t b = 0; b < histogram.size(); ++b) {
        std::printf("  %5.1f%% |", 100.0 * static_cast<double>(b) /
                                       static_cast<double>(histogram.size()));
        for (int i = 0; i < histogram[b]; ++i) std::printf("#");
        std::printf(" %d\n", histogram[b]);
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "iterations", "bins"});
        const std::string circuit = args.get("circuit", "c432");
        const int bins = static_cast<int>(args.get_int("bins", 16));

        core::ComparisonConfig cfg;
        cfg.det_iterations = static_cast<int>(args.get_int("iterations", 150));
        const cells::Library lib = cells::Library::standard_180nm();

        std::fprintf(stderr, "sizing %s both ways (%d deterministic iterations)...\n",
                     circuit.c_str(), cfg.det_iterations);
        const core::ComparisonResult cmp = core::compare_optimizers(circuit, lib, cfg);

        // Rebuild both solutions to inspect their slack profiles.
        netlist::Netlist nl_det = netlist::make_iscas(circuit, lib);
        {
            core::DeterministicSizerConfig det_cfg;
            det_cfg.max_iterations = cfg.det_iterations;
            (void)core::run_deterministic_sizing(nl_det, lib, det_cfg);
        }
        netlist::Netlist nl_stat = netlist::make_iscas(circuit, lib);
        {
            core::Context ctx(nl_stat, lib);
            core::StatisticalSizerConfig stat_cfg;
            stat_cfg.max_iterations = 100000;
            stat_cfg.area_budget = cmp.det.final_area - cmp.det.initial_area;
            (void)core::run_statistical_sizing(ctx, stat_cfg);
        }

        double max_slack_det = 0.0, max_slack_stat = 0.0;
        const auto hist_det = slack_histogram(nl_det, lib, bins, max_slack_det);
        const auto hist_stat = slack_histogram(nl_stat, lib, bins, max_slack_stat);

        std::printf("\n=== %s at equal area (+%.1f%%) ===\n\n", circuit.c_str(),
                    cmp.det_area_increase_pct);
        print_histogram("deterministic solution: PO slack distribution", hist_det,
                        max_slack_det);
        std::printf("\n");
        print_histogram("statistical solution:   PO slack distribution", hist_stat,
                        max_slack_stat);

        std::printf("\n99-percentile circuit delay:  deterministic %.4f ns   "
                    "statistical %.4f ns   (%.2f%% better)\n",
                    cmp.det_objective_ns, cmp.stat_objective_ns, cmp.improvement_pct);
        std::printf("the deterministic 'wall' (many POs at low slack) costs "
                    "statistical delay even at identical area.\n");
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
