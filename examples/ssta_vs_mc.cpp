// SSTA bound vs Monte Carlo "exact" comparison on one circuit — the
// paper's Section 4 validation ("acceptable difference, especially for
// the 99-percentile point (< 1%)").
//
//   ./ssta_vs_mc [--circuit c880] [--samples 20000] [--seed 1] [--cdf]
//
// Prints the two distributions' summary statistics and key percentiles;
// --cdf additionally dumps CDF sample points as CSV for plotting.
#include <cstdio>
#include <iostream>

#include "core/context.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas.hpp"
#include "ssta/metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "samples", "seed", "cdf"});
        const std::string circuit = args.get("circuit", "c880");
        const cells::Library lib = cells::Library::standard_180nm();
        netlist::Netlist nl = netlist::make_iscas(circuit, lib);
        core::Context ctx(nl, lib);

        Timer ssta_timer;
        ctx.run_ssta();
        const double ssta_seconds = ssta_timer.seconds();
        const prob::PdfView sink = ctx.engine().sink_arrival();

        mc::McConfig mc_cfg;
        mc_cfg.samples = static_cast<std::size_t>(args.get_int("samples", 20000));
        mc_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
        Timer mc_timer;
        const mc::McResult mc = mc::run_monte_carlo(ctx.delay_calc(), mc_cfg);
        const double mc_seconds = mc_timer.seconds();

        std::printf("%s: %zu nodes / %zu edges, sigma %.0f%%, +-%.0f sigma\n",
                    circuit.c_str(), ctx.graph().node_count(), ctx.graph().edge_count(),
                    100.0 * lib.sigma_fraction(), lib.trunc_k());
        std::printf("SSTA bound:   %.3f s   |  Monte Carlo (%zu samples): %.3f s\n\n",
                    ssta_seconds, mc.sample_count(), mc_seconds);

        std::printf("%-12s %-12s %-12s %-10s\n", "metric", "SSTA bound", "MonteCarlo",
                    "gap");
        auto row = [&](const char* name, double a, double b) {
            std::printf("%-12s %-12.4f %-12.4f %+.2f%%\n", name, a, b,
                        100.0 * (a - b) / b);
        };
        row("mean", ssta::mean_ns(ctx.grid(), sink), mc.mean_ns());
        row("stddev", ssta::stddev_ns(ctx.grid(), sink), mc.stddev_ns());
        for (double p : {0.50, 0.90, 0.95, 0.99})
            row(("p" + std::to_string(static_cast<int>(p * 100))).c_str(),
                ssta::percentile_ns(ctx.grid(), sink, p), mc.percentile_ns(p));

        if (args.has("cdf")) {
            CsvWriter csv(std::cout, {"delay_ns", "cdf_ssta_bound", "cdf_monte_carlo"});
            for (int i = 1; i <= 200; ++i) {
                const double p = i / 200.0;
                const double t = ssta::percentile_ns(ctx.grid(), sink, p);
                csv.row({format_double(t), format_double(p),
                         format_double(mc.yield_at(t))});
            }
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
