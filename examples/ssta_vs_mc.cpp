// SSTA bound vs Monte Carlo "exact" comparison on one circuit — the
// paper's Section 4 validation ("acceptable difference, especially for
// the 99-percentile point (< 1%)").
//
//   ./ssta_vs_mc [--circuit c880] [--samples 20000] [--seed 1] [--cdf]
//
// Prints the two distributions' summary statistics and key percentiles;
// --cdf additionally dumps CDF sample points as CSV for plotting.
#include <cstdio>
#include <iostream>
#include <string>

#include "api/statim.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
    using namespace statim;
    try {
        const CliArgs args(argc, argv);
        args.validate({"circuit", "samples", "seed", "cdf"});
        const api::Design design =
            api::Design::from_registry(args.get("circuit", "c880"));

        api::Scenario scenario;
        scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
        const auto samples = static_cast<std::size_t>(args.get_int("samples", 20000));

        const api::AnalysisResult ssta = api::analyze(design, scenario);
        const api::McSummary mc = api::monte_carlo(design, scenario, samples);

        std::printf("%s: %zu nodes / %zu edges\n", design.name().c_str(), ssta.nodes,
                    ssta.edges);
        std::printf("SSTA bound:   %.3f s   |  Monte Carlo (%zu samples): %.3f s\n\n",
                    ssta.seconds, mc.samples, mc.seconds);

        std::printf("%-12s %-12s %-12s %-10s\n", "metric", "SSTA bound", "MonteCarlo",
                    "gap");
        auto row = [&](const char* name, double a, double b) {
            std::printf("%-12s %-12.4f %-12.4f %+.2f%%\n", name, a, b,
                        100.0 * (a - b) / b);
        };
        row("mean", ssta.mean_ns(), mc.mean_ns);
        row("stddev", ssta.stddev_ns(), mc.stddev_ns);
        for (double p : {0.50, 0.90, 0.95, 0.99})
            row(("p" + std::to_string(static_cast<int>(p * 100))).c_str(),
                ssta.percentile_ns(p), mc.percentile_ns(p));

        if (args.has("cdf")) {
            CsvWriter csv(std::cout, {"delay_ns", "cdf_ssta_bound", "cdf_monte_carlo"});
            for (int i = 1; i <= 200; ++i) {
                const double p = i / 200.0;
                const double t = ssta.percentile_ns(p);
                csv.row({format_double(t), format_double(p),
                         format_double(mc.yield_at(t))});
            }
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
