#include "core/sensitivity_cache.hpp"

#include <cassert>

#include "netlist/timing_graph.hpp"
#include "ssta/engine.hpp"

namespace statim::core {

void SensitivityCache::bind(std::size_t gate_count, std::size_t node_count) {
    if (entries_.size() < gate_count) entries_.resize(gate_count);
    if (users_of_.size() < node_count) users_of_.resize(node_count);
}

bool SensitivityCache::lookup(GateId g, double delta_w, double width,
                              const Objective& objective, std::uint64_t revision,
                              Replay& out) noexcept {
    // Until the first on_engine_update the cache cannot know which
    // revision its entries were synced against; stay cold.
    if (!revision_known_ || revision != synced_revision_ ||
        g.index() >= entries_.size()) {
        ++stats_.misses;
        return false;
    }
    const Entry& e = entries_[g.index()];
    // Bitwise double compares on purpose: the contract is "replays the
    // exact evaluation", and any representational difference in the step
    // or the current width means it is not the same evaluation.
    if (!e.valid || e.delta_w != delta_w || e.width != width ||
        e.objective_kind != static_cast<std::uint8_t>(objective.kind) ||
        e.objective_p != objective.p) {
        ++stats_.misses;
        return false;
    }
    out.sensitivity = e.sensitivity;
    out.completed_sink = e.completed_sink;
    ++stats_.hits;
    return true;
}

void SensitivityCache::store(GateId g, double delta_w, double width,
                             const Objective& objective, std::uint64_t revision,
                             double sensitivity, bool completed_sink,
                             std::span<const NodeId> support) {
    if (support.size() > kMaxSupportNodes) return;
    if (g.index() >= entries_.size()) return;  // bind() not sized for this circuit
    // An entry stored against a revision the cache has not synced to
    // would dodge the journal sweep that should invalidate it. Normal
    // selector passes never hit this (the selector runs strictly between
    // engine refresh and the next commit); defend against misuse by
    // wiping instead of going stale.
    if (!revision_known_ || revision != synced_revision_) {
        invalidate_all();
        synced_revision_ = revision;
        revision_known_ = true;
    }

    Entry& e = entries_[g.index()];
    if (e.valid) {
        --valid_count_;
        users_live_ -= e.support_size;
    }
    e.delta_w = delta_w;
    e.width = width;
    e.sensitivity = sensitivity;
    e.objective_p = objective.p;
    e.objective_kind = static_cast<std::uint8_t>(objective.kind);
    e.completed_sink = completed_sink;
    e.support_size = static_cast<std::uint32_t>(support.size());
    ++e.stamp;
    e.valid = true;
    ++valid_count_;
    ++stats_.stores;

    const auto gate32 = static_cast<std::uint32_t>(g.index());
    for (const NodeId n : support) {
        assert(n.index() < users_of_.size());
        users_of_[n.index()].push_back(User{gate32, e.stamp});
    }
    users_live_ += support.size();
    users_total_ += support.size();
    // Stale pairs (stamp mismatch after re-stores) accumulate; sweep them
    // once they dominate, keeping the sweep amortized O(1) per store.
    if (users_total_ > 2 * users_live_ + 1024) compact_users();
}

void SensitivityCache::invalidate_entry(std::uint32_t gate_index) noexcept {
    Entry& e = entries_[gate_index];
    if (!e.valid) return;
    e.valid = false;
    --valid_count_;
    users_live_ -= e.support_size;
    ++stats_.invalidated;
}

void SensitivityCache::touch(NodeId n) noexcept {
    if (n.index() >= users_of_.size()) return;
    for (const User& u : users_of_[n.index()]) {
        if (entries_[u.gate].valid && entries_[u.gate].stamp == u.stamp)
            invalidate_entry(u.gate);
    }
}

void SensitivityCache::on_engine_update(const ssta::SstaEngine& engine,
                                        const netlist::TimingGraph& graph) {
    const std::uint64_t revision = engine.revision();
    if (revision_known_ && revision == synced_revision_) return;

    const bool consecutive =
        revision_known_ && revision == synced_revision_ + 1 &&
        !engine.last_update_stats().full_run;
    if (!consecutive || valid_count_ == 0) {
        // Full run, missed revisions, or nothing cached: the journal
        // either does not describe the whole delta or has nothing to
        // invalidate against.
        if (valid_count_ != 0) {
            invalidate_all();
            ++stats_.full_invalidations;
        }
        synced_revision_ = revision;
        revision_known_ = true;
        return;
    }

    // Incremental update: kill every entry whose support holds a touched
    // node. Touched = changed nodes (their base arrivals moved — fronts
    // read those through arrival_of), fanout heads of changed nodes
    // (their *fanin* arrival moved — fronts read predecessor arrivals
    // when recomputing a node), and heads of changed edges (their
    // in-edge delay PDFs moved). See the header's exactness argument.
    for (const NodeId n : engine.last_changed_nodes()) {
        touch(n);
        for (const EdgeId out : graph.out_edges(n)) touch(graph.edge(out).to);
    }
    for (const EdgeId e : engine.last_changed_edges()) touch(graph.edge(e).to);
    synced_revision_ = revision;
}

void SensitivityCache::invalidate_all() noexcept {
    if (valid_count_ != 0) {
        for (Entry& e : entries_) e.valid = false;
        stats_.invalidated += valid_count_;
        valid_count_ = 0;
    }
    for (auto& users : users_of_) users.clear();
    users_live_ = users_total_ = 0;
}

void SensitivityCache::compact_users() {
    for (auto& users : users_of_) {
        std::size_t keep = 0;
        for (const User& u : users) {
            if (entries_[u.gate].valid && entries_[u.gate].stamp == u.stamp)
                users[keep++] = u;
        }
        users.resize(keep);
    }
    users_total_ = users_live_;
}

}  // namespace statim::core
