#include "core/context.hpp"

namespace statim::core {

Context::Context(netlist::Netlist& nl, const cells::Library& lib,
                 const ssta::GridPolicy& policy)
    : nl_(&nl),
      lib_(&lib),
      graph_(nl),
      delay_calc_(graph_, lib),
      grid_(ssta::choose_grid(delay_calc_, policy)),
      edge_delays_(delay_calc_, grid_),
      engine_(graph_) {}

Context::Context(netlist::Netlist& nl, const cells::Library& lib, prob::TimeGrid grid)
    : nl_(&nl),
      lib_(&lib),
      graph_(nl),
      delay_calc_(graph_, lib),
      grid_(grid),
      edge_delays_(delay_calc_, grid_),
      engine_(graph_) {}

std::vector<EdgeId> Context::apply_resize(GateId g, double delta_w) {
    nl_->gate(g).width += delta_w;
    std::vector<EdgeId> changed = delay_calc_.update_for_resize(g);
    edge_delays_.update_edges(changed, delay_calc_);
    return changed;
}

void Context::rebuild_timing(std::size_t threads) {
    if (threads == 0) threads = engine_.threads();
    delay_calc_.rebuild(threads);
    edge_delays_.rebuild(delay_calc_, threads);
}

void Context::refresh_ssta() {
    if (!incremental_ssta_ || !engine_.has_run() || delay_calc_.fully_dirty()) {
        run_ssta();
        return;
    }
    engine_.update(edge_delays_, delay_calc_.dirty_edges());
    delay_calc_.mark_clean();
}

}  // namespace statim::core
