#include "core/context.hpp"

#include <algorithm>

namespace statim::core {

Context::Context(netlist::Netlist& nl, const cells::Library& lib,
                 const ssta::GridPolicy& policy)
    : nl_(&nl),
      lib_(&lib),
      graph_(nl),
      delay_calc_(graph_, lib),
      grid_(ssta::choose_grid(delay_calc_, policy)),
      edge_delays_(delay_calc_, grid_),
      engine_(graph_),
      criticality_(graph_) {}

Context::Context(netlist::Netlist& nl, const cells::Library& lib, prob::TimeGrid grid)
    : nl_(&nl),
      lib_(&lib),
      graph_(nl),
      delay_calc_(graph_, lib),
      grid_(grid),
      edge_delays_(delay_calc_, grid_),
      engine_(graph_),
      criticality_(graph_) {}

std::vector<EdgeId> Context::apply_resize(GateId g, double delta_w) {
    nl_->gate(g).width += delta_w;
    std::vector<EdgeId> changed = delay_calc_.update_for_resize(g);
    edge_delays_.update_edges(changed, delay_calc_);
    return changed;
}

std::vector<EdgeId> Context::apply_resizes(std::span<const ResizeOp> ops) {
    std::vector<EdgeId> all;
    for (const ResizeOp& op : ops) {
        nl_->gate(op.gate).width += op.delta_w;
        const std::vector<EdgeId> changed = delay_calc_.update_for_resize(op.gate);
        edge_delays_.update_edges(changed, delay_calc_);
        all.insert(all.end(), changed.begin(), changed.end());
    }
    // Ops touching a shared edge recompute it again under the later op's
    // width, so the last write is final-width-consistent; the returned
    // union is deduplicated for consumers that fan out per edge.
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
}

void Context::rebuild_timing(std::size_t threads) {
    if (threads == 0) threads = engine_.threads();
    delay_calc_.rebuild(threads);
    edge_delays_.rebuild(delay_calc_, threads);
}

void Context::run_ssta() {
    engine_.run(edge_delays_);
    delay_calc_.mark_clean();
    sensitivity_cache_.on_engine_update(engine_, graph_);
}

void Context::refresh_ssta() {
    if (!incremental_ssta_ || !engine_.has_run() || delay_calc_.fully_dirty()) {
        run_ssta();
        return;
    }
    engine_.update(edge_delays_, delay_calc_.dirty_edges());
    delay_calc_.mark_clean();
    sensitivity_cache_.on_engine_update(engine_, graph_);
}

}  // namespace statim::core
