#include "core/selector.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <queue>

#include "core/sensitivity_cache.hpp"
#include "ssta/criticality.hpp"
#include "util/env.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace statim::core {

namespace {

// Max-heap entry of the bound races; declared early so the pooled pass
// scratch can carry heap storage.
struct HeapEntry {
    double bound;
    std::uint32_t idx;
    std::uint32_t gate_id;
};

/// Per-front result of a parallel drain, folded deterministically after
/// the workers join.
struct FrontOutcome {
    enum class Kind : std::uint8_t { Pruned, Completed, Died };
    Kind kind{Kind::Pruned};
    double sensitivity{0.0};
    std::size_t nodes_computed{0};
    std::size_t levels_stepped{0};
};

/// Pooled per-thread containers of one selector pass. Everything sized
/// by the candidate count is reused across passes (grow-only capacity),
/// which — together with the pooled TrialResize buffers and front states
/// — makes a warm steady-state pass allocation-free apart from the
/// returned picks (census: bench_front_drain --smoke). One scratch per
/// thread: a pass runs on one thread, and concurrent passes (e.g.
/// api::run_scenarios) live on distinct pool threads. A value
/// thread_local: the destructor only touches the immortal front-state
/// pool (released fronts are no-ops), so teardown order cannot bite, and
/// a dying pool thread frees its scratch instead of leaking it.
struct PassScratch {
    std::vector<GateId> gates;
    std::vector<PerturbationFront> fronts;
    std::vector<FrontOutcome> outcomes;
    std::vector<std::vector<std::uint32_t>> shard_fronts;
    std::vector<RankedPick> completed;
    std::vector<HeapEntry> heap;
    std::vector<double> kth;
    std::vector<GateId> race_gates, head_gates, tail_gates;
    std::vector<std::pair<double, std::uint32_t>> crit_rank;
};

PassScratch& pass_scratch() {
    static thread_local PassScratch scratch;
    return scratch;
}

/// Gates that may still grow by delta_w under the width cap, into the
/// pooled list.
const std::vector<GateId>& eligible_gates(const Context& ctx,
                                          const SelectorConfig& config) {
    std::vector<GateId>& gates = pass_scratch().gates;
    gates.clear();
    const auto& nl = ctx.nl();
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        if (nl.gate(g).width + config.delta_w <= config.max_width + 1e-12)
            gates.push_back(g);
    }
    return gates;
}

/// Replace the incumbent? Strictly greater wins; equal sensitivity falls
/// back to the lower gate id (matches id-ordered brute-force iteration).
bool improves(double sens, GateId g, double best_sens, GateId best) {
    if (sens > best_sens) return true;
    return sens == best_sens && best.is_valid() && g < best;
}

/// Shards for a parallel pass: the configured thread count, never more
/// than one candidate per shard. <= 1 means "run the sequential path".
std::size_t shard_count(const SelectorConfig& config, std::size_t candidates) {
    return std::min(config.threads, candidates);
}

/// Builds one perturbation front per candidate into the pooled `fronts`
/// vector (cleared first; capacity and the per-front state pool are
/// reused across passes). Sequential by necessity: each TrialResize
/// temporarily mutates the shared delay state. `support_cap` > 0 turns
/// on the fronts' computed-node capture for the sensitivity cache.
void init_fronts(Context& ctx, const SelectorConfig& config,
                 const std::vector<GateId>& gates,
                 std::vector<PerturbationFront>& fronts,
                 std::uint32_t support_cap = 0) {
    fronts.clear();
    fronts.reserve(gates.size());
    for (GateId g : gates) {
        TrialResize trial(ctx, g, config.delta_w);
        fronts.emplace_back(ctx, config.objective, trial, false, support_cap);
    }
}

void record_outcome(FrontOutcome& out, const PerturbationFront& front) {
    out.kind = front.sink_pdf().valid() ? FrontOutcome::Kind::Completed
                                        : FrontOutcome::Kind::Died;
    out.sensitivity = front.sensitivity();
    out.nodes_computed = front.stats().nodes_computed;
    out.levels_stepped = front.stats().levels_stepped;
}

/// Gate-id-ordered fold of completed/died fronts into the Selection —
/// identical to the sequential selectors' incumbent rule regardless of
/// the order the workers finished in. Work counters mirror the sequential
/// accounting: only completed/died fronts contribute node/level counts.
void reduce_outcomes(const std::vector<GateId>& gates,
                     const std::vector<FrontOutcome>& outcomes, Selection& result) {
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const FrontOutcome& out = outcomes[i];
        switch (out.kind) {
            case FrontOutcome::Kind::Pruned:
                ++result.stats.pruned;
                continue;
            case FrontOutcome::Kind::Completed:
                ++result.stats.completed;
                break;
            case FrontOutcome::Kind::Died:
                ++result.stats.died;
                break;
        }
        result.stats.nodes_computed += out.nodes_computed;
        result.stats.levels_stepped += out.levels_stepped;
        if (improves(out.sensitivity, gates[i], result.sensitivity, result.gate)) {
            result.gate = gates[i];
            result.sensitivity = out.sensitivity;
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
}

// Max-heap order on (bound, candidate); ties pop the lower gate id first.
struct HeapCmp {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
        if (a.bound != b.bound) return a.bound < b.bound;
        return a.gate_id > b.gate_id;
    }
};

/// Min-heap of the k best positive completed sensitivities; its k-th best
/// is the pruning threshold. With k = 1 this is exactly the paper's Max_S:
/// the threshold stays 0 until k candidates have completed with positive
/// gain, so nothing is discarded prematurely, and a front whose bound ever
/// falls below the threshold has final sensitivity sens <= bound <
/// threshold <= final k-th best — it can never enter the top k.
class KthBestTracker {
  public:
    /// `storage` backs the internal heap (cleared here); pass the pooled
    /// pass-scratch vector so a warm pass allocates nothing.
    KthBestTracker(std::size_t k, std::vector<double>& storage)
        : k_(k), heap_(storage) {
        heap_.clear();
    }

    void add(double sens) {
        if (!(sens > 0.0)) return;
        if (heap_.size() < k_) {
            heap_.push_back(sens);
            std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
        } else if (sens > heap_.front()) {
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
            heap_.back() = sens;
            std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
        }
    }

    [[nodiscard]] double threshold() const noexcept {
        return heap_.size() == k_ ? heap_.front() : 0.0;
    }

  private:
    std::size_t k_;
    std::vector<double>& heap_;  // min-heap, caller-pooled storage
};

/// Mutex-guarded KthBestTracker plus a monotone atomic snapshot of its
/// threshold that shards read lock-free. A stale (lower) snapshot only
/// makes pruning more conservative, never wrong.
class SharedKthBest {
  public:
    SharedKthBest(std::size_t k, std::vector<double>& storage)
        : tracker_(k, storage) {}

    void add(double sens) {
        if (!(sens > 0.0)) return;
        const util::MutexLock lock(mutex_);
        tracker_.add(sens);
        threshold_.store(tracker_.threshold(), std::memory_order_release);
    }

    [[nodiscard]] double threshold() const noexcept {
        return threshold_.load(std::memory_order_acquire);
    }

  private:
    util::Mutex mutex_;
    KthBestTracker tracker_ STATIM_GUARDED_BY(mutex_);
    std::atomic<double> threshold_{0.0};  // monotone snapshot, lock-free reads
};

/// Ranks completed candidates: sensitivity descending, gate id ascending
/// on ties — the same order k applications of the incumbent rule produce.
void rank_picks(std::vector<RankedPick>& picks) {
    std::sort(picks.begin(), picks.end(), [](const RankedPick& a, const RankedPick& b) {
        if (a.sensitivity != b.sensitivity) return a.sensitivity > b.sensitivity;
        return a.gate < b.gate;
    });
}

/// The effective criticality floor: an explicit non-negative config value
/// wins, otherwise STATIM_CRIT_FLOOR (default 0.05). <= 0 disables the
/// two-phase partition.
double resolved_crit_floor(const SelectorConfig& config) {
    if (config.crit_floor >= 0.0) return config.crit_floor;
    return env_double("STATIM_CRIT_FLOOR", 0.05);
}

/// The pass's sensitivity cache, or nullptr when the config or the
/// STATIM_SELECTOR_CACHE=0 kill switch disables it.
SensitivityCache* resolved_cache(Context& ctx, const SelectorConfig& config) {
    if (!config.sensitivity_cache) return nullptr;
    if (env_int("STATIM_SELECTOR_CACHE", 1) == 0) return nullptr;
    return &ctx.sensitivity_cache();
}

/// One phase of the pruned bound race over `gates` (ascending gate id),
/// sharing `best` — and its monotone threshold — with replays and earlier
/// phases. Initializes one front per gate (paper Fig 6, steps 3-5),
/// drains them across shard_count() shards racing the shared threshold
/// (inline when single-sharded: no pool round-trip), then folds the
/// outcomes serially in gate order: counters, cache stores, and positive
/// completions into `completed`.
///
/// The pruning theorem holds per front regardless of phase boundaries: a
/// front whose bound ever falls below the shared threshold has final
/// sensitivity sens <= bound < threshold <= final k-th best, so splitting
/// the race into phases cannot change which candidates survive — only how
/// cheaply the losers lose (a later phase meets a near-final threshold at
/// its loosest, first bound). With one phase, one shard and k = 1 this is
/// exactly the paper's algorithm move for move.
void race_phase(Context& ctx, const SelectorConfig& config,
                const std::vector<GateId>& gates, SharedKthBest& best,
                SensitivityCache* cache, std::uint64_t revision,
                SelectorStats& stats, std::vector<RankedPick>& completed) {
    if (gates.empty()) return;
    PassScratch& scratch = pass_scratch();
    std::vector<PerturbationFront>& fronts = scratch.fronts;
    const std::uint32_t support_cap =
        cache != nullptr ? SensitivityCache::kMaxSupportNodes : 0;
    init_fronts(ctx, config, gates, fronts, support_cap);
    std::vector<FrontOutcome>& outcomes = scratch.outcomes;
    outcomes.assign(fronts.size(), FrontOutcome{});

    const std::size_t shards =
        std::max<std::size_t>(shard_count(config, gates.size()), 1);
    std::vector<std::vector<std::uint32_t>>& shard_fronts = scratch.shard_fronts;
    if (shard_fronts.size() < shards) shard_fronts.resize(shards);
    for (std::size_t s = 0; s < shards; ++s) shard_fronts[s].clear();
    for (std::size_t i = 0; i < fronts.size(); ++i) {
        if (fronts[i].completed()) {
            // Completed during initialization (often: died at the gate's
            // own level). Seeds the threshold now; released in the fold
            // below, which still reads the front's support capture.
            record_outcome(outcomes[i], fronts[i]);
            best.add(fronts[i].sensitivity());
        } else {
            shard_fronts[i % shards].push_back(static_cast<std::uint32_t>(i));
        }
    }

    const auto drain_shard = [&](std::size_t s) {
        // Each worker drains its shard through its own thread's pooled
        // heap (push_heap/pop_heap under HeapCmp reproduce the serial
        // reference's pop order); the inline single-shard path reuses the
        // caller's.
        std::vector<HeapEntry>& heap = pass_scratch().heap;
        heap.clear();
        const auto heap_push = [&heap](HeapEntry e) {
            heap.push_back(e);
            std::push_heap(heap.begin(), heap.end(), HeapCmp{});
        };
        for (std::uint32_t idx : shard_fronts[s])
            heap_push({fronts[idx].bound_sensitivity(), idx, gates[idx].value});

        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), HeapCmp{});
            const HeapEntry top = heap.back();
            heap.pop_back();
            PerturbationFront& front = fronts[top.idx];
            if (front.completed()) continue;  // finished via a previous entry
            if (top.bound != front.bound_sensitivity()) continue;  // stale bound

            if (top.bound < best.threshold()) {
                // The freshest bound in this shard is below the k-th best
                // completed sensitivity: everything left here is provably
                // outside the top k (paper step 20); outcomes stay Pruned.
                break;
            }
            front.propagate_one_level(ctx);
            if (front.completed()) {
                record_outcome(outcomes[top.idx], front);
                best.add(front.sensitivity());
            } else {
                heap_push({front.bound_sensitivity(), top.idx, top.gate_id});
            }
        }
    };
    if (shards <= 1) {
        drain_shard(0);  // inline: no pool round-trip
    } else {
        global_pool().parallel_for(shards, drain_shard);
    }

    // Serial gate-id-ordered fold: deterministic counters, cache stores
    // (the support span dies with release()), positive completions out.
    for (std::size_t i = 0; i < gates.size(); ++i) {
        PerturbationFront& front = fronts[i];
        const FrontOutcome& out = outcomes[i];
        if (out.kind == FrontOutcome::Kind::Pruned) {
            ++stats.pruned;
            continue;
        }
        if (out.kind == FrontOutcome::Kind::Completed) ++stats.completed;
        else ++stats.died;
        stats.nodes_computed += out.nodes_computed;
        stats.levels_stepped += out.levels_stepped;
        if (cache != nullptr && !front.support_overflow())
            cache->store(gates[i], config.delta_w, ctx.nl().gate(gates[i]).width,
                         config.objective, revision, out.sensitivity,
                         out.kind == FrontOutcome::Kind::Completed,
                         front.support_nodes());
        if (out.sensitivity > 0.0) completed.push_back({gates[i], out.sensitivity});
    }
    // Release in REVERSE checkout order so the LIFO state pool is restored
    // to exactly its pre-phase stack: every gate then reuses the same
    // pooled state on the next pass, and the grow-only per-state buffers
    // stop migrating between differently-sized cones (with gate-ordered
    // releases the state<->gate mapping permutes each pass and two-phase
    // passes re-grow buffers indefinitely — census-tested in
    // bench_front_drain --smoke / test_front_drain.cpp).
    for (std::size_t i = fronts.size(); i-- > 0;) fronts[i].release();
}

/// Completed positive-gain candidates of one pruned pass, in the calling
/// thread's pooled pick list (valid until its next pass). Orchestrates
/// the three selection-identical work-avoidance layers in front of the
/// race: cache replay (skip provably-unchanged candidates outright),
/// threshold seeding (replayed sensitivities pre-tighten the bound), and
/// the criticality-floor two-phase partition (likely winners race first,
/// the low-criticality tail sweeps second against a near-final
/// threshold). Picks are bitwise identical with all layers on or off.
std::vector<RankedPick>& topk_pruned(Context& ctx, const SelectorConfig& config,
                                     const std::vector<GateId>& gates, std::size_t k,
                                     SelectorStats& stats) {
    stats.candidates = gates.size();
    PassScratch& scratch = pass_scratch();
    std::vector<RankedPick>& completed = scratch.completed;
    completed.clear();
    SharedKthBest best(k, scratch.kth);  // paper step 6, k-generalized

    // Replay phase: absorb cached outcomes (exact — sensitivity_cache.hpp
    // carries the argument) and seed the threshold with them, so the race
    // starts as tight as the last pass left it.
    SensitivityCache* cache = resolved_cache(ctx, config);
    const std::uint64_t revision = ctx.engine().revision();
    std::vector<GateId>& race_gates = scratch.race_gates;
    race_gates.clear();
    if (cache != nullptr) {
        cache->bind(ctx.nl().gate_count(), ctx.graph().node_count());
        SensitivityCache::Replay replay;
        for (GateId g : gates) {
            if (cache->lookup(g, config.delta_w, ctx.nl().gate(g).width,
                              config.objective, revision, replay)) {
                ++stats.cache_hits;
                if (replay.completed_sink) ++stats.completed;
                else ++stats.died;
                if (replay.sensitivity > 0.0) {
                    completed.push_back({g, replay.sensitivity});
                    best.add(replay.sensitivity);
                }
            } else {
                race_gates.push_back(g);
            }
        }
    } else {
        race_gates.assign(gates.begin(), gates.end());
    }

    // Criticality-floor partition (see SelectorConfig.crit_floor). A
    // candidate's sensitivity mass tracks its output criticality — at the
    // paper's Figure 1 "wall" most mass sits on few gates — so racing the
    // over-floor head first completes the eventual winners early, and the
    // tail phase prunes nearly everything at its first bound.
    std::vector<GateId>& head = scratch.head_gates;
    std::vector<GateId>& tail = scratch.tail_gates;
    head.clear();
    tail.clear();
    const double floor = resolved_crit_floor(config);
    const std::size_t min_head = std::max<std::size_t>(32, 2 * k);
    if (floor > 0.0 && race_gates.size() > min_head) {
        const ssta::CriticalityResult& crit = ctx.criticality().refresh(
            ctx.engine(), ctx.edge_delays(), config.threads);
        const auto& graph = ctx.graph();
        const auto crit_of = [&crit, &graph](GateId g) {
            return crit.node[graph.output_node(g).index()];
        };
        double max_crit = 0.0;
        for (GateId g : race_gates) max_crit = std::max(max_crit, crit_of(g));
        const double cut = floor * max_crit;
        for (GateId g : race_gates) (crit_of(g) >= cut ? head : tail).push_back(g);
        if (head.size() < min_head) {
            // Degenerate split (criticality concentrated on very few
            // gates): promote the most critical min_head candidates
            // instead, so the head phase still establishes a meaningful
            // threshold before the tail sweeps. (crit desc, id asc) is
            // deterministic; both phases then restore gate-id order.
            auto& rank = scratch.crit_rank;
            rank.clear();
            for (GateId g : race_gates) rank.emplace_back(crit_of(g), g.value);
            std::sort(rank.begin(), rank.end(), [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
            });
            head.clear();
            tail.clear();
            for (std::size_t i = 0; i < rank.size(); ++i)
                (i < min_head ? head : tail).push_back(GateId{rank[i].second});
            std::sort(head.begin(), head.end());
            std::sort(tail.begin(), tail.end());
        }
        stats.floor_deferred = tail.size();
    } else {
        head.assign(race_gates.begin(), race_gates.end());
    }

    race_phase(ctx, config, head, best, cache, revision, stats, completed);
    race_phase(ctx, config, tail, best, cache, revision, stats, completed);
    return completed;
}

/// Per-candidate overlay of the edge PDFs its trial resize perturbs;
/// everything else reads the shared unperturbed EdgeDelays. Bitwise
/// copies, so the parallel brute force reproduces the sequential
/// arithmetic exactly.
struct DelayOverlay {
    std::vector<std::pair<EdgeId, prob::Pdf>> edges;

    [[nodiscard]] const prob::Pdf* find(EdgeId e) const {
        for (const auto& [edge, pdf] : edges)
            if (edge == e) return &pdf;
        return nullptr;
    }
};

/// The paper baseline for one candidate: a complete SSTA into `scratch`
/// under `delay_of`, returning the candidate's sensitivity. The single
/// arithmetic path both the sequential and the parallel brute force use.
/// `delay_of` is a non-owning FunctionRef: callers pass a *named* lambda
/// (or one whose lifetime spans this call).
double full_ssta_sensitivity(const Context& ctx, const SelectorConfig& config,
                             double base_obj, ssta::DelayLookup delay_of,
                             std::vector<prob::Pdf>& scratch) {
    const auto& graph = ctx.graph();
    scratch.assign(graph.node_count(), prob::Pdf{});
    scratch[netlist::TimingGraph::source().index()] = prob::Pdf::point(0);
    const auto arrival_of = [&scratch](NodeId u) -> const prob::Pdf& {
        return scratch[u.index()];
    };
    for (NodeId n : graph.topo_order()) {
        if (n == netlist::TimingGraph::source()) continue;
        scratch[n.index()] = ssta::compute_arrival(graph, n, arrival_of, delay_of);
    }
    const double pert_obj =
        config.objective.eval_bins(scratch[netlist::TimingGraph::sink().index()]);
    return (base_obj - pert_obj) * ctx.grid().dt_ns() / config.delta_w;
}

Selection select_brute_force_parallel(Context& ctx, const SelectorConfig& config,
                                      const std::vector<GateId>& gates,
                                      std::size_t shards, bool record_all) {
    Selection result;
    result.stats.candidates = gates.size();
    const auto& graph = ctx.graph();
    const double base_obj = config.objective.eval_bins(ctx.engine().sink_arrival());

    // Sequential phase: capture each candidate's perturbed edge PDFs.
    std::vector<DelayOverlay> overlays(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i) {
        TrialResize trial(ctx, gates[i], config.delta_w);
        overlays[i].edges.reserve(trial.changed_edges().size());
        for (EdgeId e : trial.changed_edges())
            overlays[i].edges.emplace_back(e, ctx.edge_delays().pdf(e));
    }

    // Parallel phase: one full SSTA per candidate, baseline delays plus
    // the candidate's overlay. Candidates are independent, so any
    // execution order produces the same doubles.
    std::vector<double> sens(gates.size(), 0.0);
    global_pool().parallel_for(shards, [&](std::size_t s) {
        std::vector<prob::Pdf> scratch;
        for (std::size_t i = s; i < gates.size(); i += shards) {
            const DelayOverlay& overlay = overlays[i];
            // Named lambda: the FunctionRef parameter below borrows it.
            const auto delay_of = [&ctx, &overlay](EdgeId e) -> const prob::Pdf& {
                if (const prob::Pdf* perturbed = overlay.find(e)) return *perturbed;
                return ctx.edge_delays().pdf(e);
            };
            sens[i] = full_ssta_sensitivity(ctx, config, base_obj, delay_of, scratch);
        }
    });

    result.stats.completed = gates.size();
    result.stats.nodes_computed = gates.size() * (graph.node_count() - 1);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (record_all) result.all_sensitivities.emplace_back(gates[i], sens[i]);
        if (improves(sens[i], gates[i], result.sensitivity, result.gate)) {
            result.gate = gates[i];
            result.sensitivity = sens[i];
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    return result;
}

Selection select_cone_parallel(Context& ctx, const SelectorConfig& config,
                               const std::vector<GateId>& gates, std::size_t shards,
                               bool record_all) {
    Selection result;
    result.stats.candidates = gates.size();

    PassScratch& scratch = pass_scratch();
    std::vector<PerturbationFront>& fronts = scratch.fronts;
    init_fronts(ctx, config, gates, fronts);
    std::vector<FrontOutcome>& outcomes = scratch.outcomes;
    outcomes.assign(fronts.size(), FrontOutcome{});

    global_pool().parallel_for(shards, [&](std::size_t s) {
        for (std::size_t i = s; i < fronts.size(); i += shards) {
            PerturbationFront& front = fronts[i];
            while (!front.completed()) front.propagate_one_level(ctx);
            record_outcome(outcomes[i], front);
        }
    });

    if (record_all)
        for (std::size_t i = 0; i < gates.size(); ++i)
            result.all_sensitivities.emplace_back(gates[i], outcomes[i].sensitivity);
    reduce_outcomes(gates, outcomes, result);
    return result;
}

}  // namespace

std::vector<GateId> sample_candidate_gates(Context& ctx, std::size_t count) {
    const auto crit = ssta::compute_criticality(ctx.engine(), ctx.edge_delays());
    const auto ranked = ssta::rank_gates_by_criticality(ctx.graph(), crit);
    const std::size_t gate_count = ctx.nl().gate_count();
    std::vector<GateId> gates;
    // The ranked head and the stride sweep overlap whenever a critical
    // gate's id lands on the stride; take-once keeps the sample duplicate
    // free (the sweep walks on to the next stride point).
    std::vector<bool> taken(gate_count, false);
    const auto take = [&gates, &taken](GateId g) {
        if (taken[g.index()]) return;
        taken[g.index()] = true;
        gates.push_back(g);
    };
    for (std::size_t i = 0; i < count / 2 && i < ranked.size(); ++i)
        take(ranked[i].first);
    const std::size_t stride =
        std::max<std::size_t>(1, gate_count / (count / 2 + 1));
    for (std::size_t gi = 0; gi < gate_count && gates.size() < count; gi += stride)
        take(GateId{static_cast<std::uint32_t>(gi)});
    return gates;
}

Selection select_pruned(Context& ctx, const SelectorConfig& config) {
    Timer timer;
    const std::vector<GateId>& gates = eligible_gates(ctx, config);
    Selection result;
    std::vector<RankedPick>& completed =
        topk_pruned(ctx, config, gates, 1, result.stats);
    rank_picks(completed);
    if (!completed.empty()) {
        result.gate = completed.front().gate;
        result.sensitivity = completed.front().sensitivity;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

BatchConeFilter::BatchConeFilter(const Context& ctx)
    : ctx_(&ctx),
      node_mark_(ctx.graph().node_count(), 0),
      edge_mark_(ctx.graph().edge_count(), 0),
      visit_mark_(ctx.graph().node_count(), 0) {}

void BatchConeFilter::reset() noexcept {
    ++batch_epoch_;
    accepted_ = 0;
}

bool BatchConeFilter::try_accept(GateId g) {
    const auto& graph = ctx_->graph();
    const std::uint32_t level_cap = graph.gate_level(g) + kConeDepth;
    ++visit_epoch_;
    cone_.clear();
    stack_.clear();

    // Level-bounded cone: both endpoints of every re-timed edge, expanded
    // forward while the level stays within the cap. Conflict as soon as a
    // node carries an accepted pick's mark.
    bool conflict = false;
    const auto visit = [&](NodeId n) {
        if (n == netlist::TimingGraph::sink() || n == netlist::TimingGraph::source())
            return;
        if (graph.level(n) > level_cap) return;
        if (visit_mark_[n.index()] == visit_epoch_) return;
        visit_mark_[n.index()] = visit_epoch_;
        if (node_mark_[n.index()] == batch_epoch_) {
            conflict = true;
            return;
        }
        cone_.push_back(n);
        stack_.push_back(n);
    };
    const std::vector<EdgeId> affected = ctx_->delay_calc().affected_edges(g);
    for (EdgeId e : affected) {
        if (edge_mark_[e.index()] == batch_epoch_) return false;  // shared edge
        visit(graph.edge(e).from);
        if (conflict) return false;
        visit(graph.edge(e).to);
        if (conflict) return false;
    }
    while (!stack_.empty()) {
        const NodeId n = stack_.back();
        stack_.pop_back();
        for (EdgeId e : graph.out_edges(n)) {
            visit(graph.edge(e).to);
            if (conflict) return false;
        }
    }

    for (NodeId n : cone_) node_mark_[n.index()] = batch_epoch_;
    for (EdgeId e : affected) edge_mark_[e.index()] = batch_epoch_;
    ++accepted_;
    return true;
}

TopKSelection select_top_k(Context& ctx, const SelectorConfig& config, std::size_t k,
                           SelectorKind kind) {
    if (k == 0) throw ConfigError("select_top_k: k must be >= 1");
    Timer timer;
    TopKSelection result;

    // The filter must often look past the k best — they tend to sit in
    // series on one critical path — so the race keeps a deeper head
    // completed. 4k is a determinism horizon, not a tuning knob: any
    // candidate at or above the scan-depth-th best sensitivity completes
    // for every thread count and shard race, so ranking + truncation is
    // reproducible; beyond it completion is race-dependent.
    const std::size_t scan_depth = k == 1 ? 1 : 4 * k;

    std::vector<RankedPick> brute_ranked;
    std::vector<RankedPick>* ranked_ptr = &brute_ranked;
    if (kind == SelectorKind::Pruned) {
        const std::vector<GateId>& gates = eligible_gates(ctx, config);
        ranked_ptr = &topk_pruned(ctx, config, gates, scan_depth, result.stats);
    } else {
        Selection all =
            select_brute_force(ctx, config, kind == SelectorKind::BruteCone, true);
        result.stats = all.stats;
        brute_ranked.reserve(all.all_sensitivities.size());
        for (const auto& [gate, sens] : all.all_sensitivities)
            if (sens > 0.0) brute_ranked.push_back({gate, sens});
    }
    std::vector<RankedPick>& ranked = *ranked_ptr;

    // Rank, truncate to the deterministic scan head, then walk it in rank
    // order through the conflict filter until k picks are accepted. The
    // head is identical across selector kinds, thread counts and shard
    // races, so the accepted batch is too. The relative floor keeps a
    // deep scan from padding the batch with near-zero-gain picks (pure
    // area waste); a short batch is topped up by the next pass on the
    // refreshed state instead, where those gains are re-measured.
    rank_picks(ranked);
    if (ranked.size() > scan_depth) ranked.resize(scan_depth);
    constexpr double kMinRelSensitivity = 1e-3;
    BatchConeFilter filter(ctx);
    result.picks.reserve(std::min(k, ranked.size()));
    for (const RankedPick& pick : ranked) {
        if (result.picks.size() >= k) break;
        if (pick.sensitivity < kMinRelSensitivity * ranked.front().sensitivity) break;
        if (filter.try_accept(pick.gate)) result.picks.push_back(pick);
        else ++result.conflicts_skipped;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

Selection select_brute_force(Context& ctx, const SelectorConfig& config,
                             bool cone_only, bool record_all) {
    Timer timer;
    const std::vector<GateId>& gates = eligible_gates(ctx, config);
    const std::size_t shards = shard_count(config, gates.size());
    if (shards > 1) {
        Selection result =
            cone_only
                ? select_cone_parallel(ctx, config, gates, shards, record_all)
                : select_brute_force_parallel(ctx, config, gates, shards, record_all);
        result.stats.seconds = timer.seconds();
        return result;
    }

    Selection result;
    result.stats.candidates = gates.size();
    const auto& graph = ctx.graph();
    const double base_obj = config.objective.eval_bins(ctx.engine().sink_arrival());
    // Named lambda: full_ssta_sensitivity's FunctionRef borrows it per call.
    const auto delay_of = [&ctx](EdgeId e) -> const prob::Pdf& {
        return ctx.edge_delays().pdf(e);
    };

    std::vector<prob::Pdf> scratch;
    for (GateId g : gates) {
        TrialResize trial(ctx, g, config.delta_w);
        double sens = 0.0;
        if (cone_only) {
            PerturbationFront front(ctx, config.objective, trial);
            while (!front.completed()) front.propagate_one_level(ctx);
            sens = front.sensitivity();
            if (front.sink_pdf().valid()) ++result.stats.completed;
            else ++result.stats.died;
            result.stats.nodes_computed += front.stats().nodes_computed;
            result.stats.levels_stepped += front.stats().levels_stepped;
        } else {
            // Paper baseline: a complete SSTA run for this candidate,
            // reading the trial's perturbed delays directly.
            sens = full_ssta_sensitivity(ctx, config, base_obj, delay_of, scratch);
            result.stats.nodes_computed += graph.node_count() - 1;
            ++result.stats.completed;
        }
        if (record_all) result.all_sensitivities.emplace_back(g, sens);
        if (improves(sens, g, result.sensitivity, result.gate)) {
            result.gate = g;
            result.sensitivity = sens;
        }
    }
    // Match the pruned selector's contract: no gate unless the gain is > 0.
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

Selection select_heuristic(Context& ctx, const SelectorConfig& config,
                           std::size_t beam) {
    if (beam == 0) throw ConfigError("select_heuristic: beam must be >= 1");
    Timer timer;
    Selection result;
    const std::vector<GateId>& gates = eligible_gates(ctx, config);
    result.stats.candidates = gates.size();

    // Initialize all fronts, keep their initial bounds.
    std::vector<PerturbationFront>& fronts = pass_scratch().fronts;
    init_fronts(ctx, config, gates, fronts);
    std::vector<std::pair<double, std::size_t>> ranked;  // (bound, index)
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (!fronts[i].completed())
            ranked.emplace_back(fronts[i].bound_sensitivity(), i);
        else if (fronts[i].sink_pdf().valid())
            ++result.stats.completed;
        else
            ++result.stats.died;
    }
    std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return gates[a.second] < gates[b.second];
    });
    if (ranked.size() > beam) {
        result.stats.pruned = ranked.size() - beam;
        ranked.resize(beam);
    }

    // Beam fronts are independent; drain them across the shards. The fold
    // below is order-invariant (strict-greater + lowest-gate-id ties), so
    // the heuristic result is thread-count independent too.
    const std::size_t shards =
        std::max<std::size_t>(shard_count(config, ranked.size()), 1);
    global_pool().parallel_for(shards, [&](std::size_t s) {
        for (std::size_t r = s; r < ranked.size(); r += shards) {
            PerturbationFront& front = fronts[ranked[r].second];
            while (!front.completed()) front.propagate_one_level(ctx);
        }
    });

    for (const auto& [bound, idx] : ranked) {
        PerturbationFront& front = fronts[idx];
        if (front.sink_pdf().valid()) ++result.stats.completed;
        else ++result.stats.died;
        result.stats.nodes_computed += front.stats().nodes_computed;
        result.stats.levels_stepped += front.stats().levels_stepped;
        if (improves(front.sensitivity(), front.gate(), result.sensitivity,
                     result.gate)) {
            result.gate = front.gate();
            result.sensitivity = front.sensitivity();
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

}  // namespace statim::core
