#include "core/selector.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <queue>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace statim::core {

namespace {

/// Gates that may still grow by delta_w under the width cap.
std::vector<GateId> eligible_gates(const Context& ctx, const SelectorConfig& config) {
    std::vector<GateId> gates;
    const auto& nl = ctx.nl();
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        if (nl.gate(g).width + config.delta_w <= config.max_width + 1e-12)
            gates.push_back(g);
    }
    return gates;
}

/// Replace the incumbent? Strictly greater wins; equal sensitivity falls
/// back to the lower gate id (matches id-ordered brute-force iteration).
bool improves(double sens, GateId g, double best_sens, GateId best) {
    if (sens > best_sens) return true;
    return sens == best_sens && best.is_valid() && g < best;
}

/// Shards for a parallel pass: the configured thread count, never more
/// than one candidate per shard. <= 1 means "run the sequential path".
std::size_t shard_count(const SelectorConfig& config, std::size_t candidates) {
    return std::min(config.threads, candidates);
}

/// Monotone lock-free max for the shared pruning bound.
void atomic_fetch_max(std::atomic<double>& target, double value) {
    double current = target.load(std::memory_order_acquire);
    while (value > current &&
           !target.compare_exchange_weak(current, value, std::memory_order_acq_rel)) {
    }
}

/// Builds one perturbation front per candidate. Sequential by necessity:
/// each TrialResize temporarily mutates the shared delay state.
std::vector<std::unique_ptr<PerturbationFront>> init_fronts(
    Context& ctx, const SelectorConfig& config, const std::vector<GateId>& gates) {
    std::vector<std::unique_ptr<PerturbationFront>> fronts;
    fronts.reserve(gates.size());
    for (GateId g : gates) {
        TrialResize trial(ctx, g, config.delta_w);
        fronts.push_back(
            std::make_unique<PerturbationFront>(ctx, config.objective, trial));
    }
    return fronts;
}

/// Per-front result of a parallel drain, folded deterministically after
/// the workers join.
struct FrontOutcome {
    enum class Kind : std::uint8_t { Pruned, Completed, Died };
    Kind kind{Kind::Pruned};
    double sensitivity{0.0};
    std::size_t nodes_computed{0};
    std::size_t levels_stepped{0};
};

void record_outcome(FrontOutcome& out, const PerturbationFront& front) {
    out.kind = front.sink_pdf().valid() ? FrontOutcome::Kind::Completed
                                        : FrontOutcome::Kind::Died;
    out.sensitivity = front.sensitivity();
    out.nodes_computed = front.stats().nodes_computed;
    out.levels_stepped = front.stats().levels_stepped;
}

/// Gate-id-ordered fold of completed/died fronts into the Selection —
/// identical to the sequential selectors' incumbent rule regardless of
/// the order the workers finished in. Work counters mirror the sequential
/// accounting: only completed/died fronts contribute node/level counts.
void reduce_outcomes(const std::vector<GateId>& gates,
                     const std::vector<FrontOutcome>& outcomes, Selection& result) {
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const FrontOutcome& out = outcomes[i];
        switch (out.kind) {
            case FrontOutcome::Kind::Pruned:
                ++result.stats.pruned;
                continue;
            case FrontOutcome::Kind::Completed:
                ++result.stats.completed;
                break;
            case FrontOutcome::Kind::Died:
                ++result.stats.died;
                break;
        }
        result.stats.nodes_computed += out.nodes_computed;
        result.stats.levels_stepped += out.levels_stepped;
        if (improves(out.sensitivity, gates[i], result.sensitivity, result.gate)) {
            result.gate = gates[i];
            result.sensitivity = out.sensitivity;
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
}

// Max-heap on (bound, candidate); ties pop the lower gate id first.
struct HeapEntry {
    double bound;
    std::uint32_t idx;
    std::uint32_t gate_id;
};
struct HeapCmp {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
        if (a.bound != b.bound) return a.bound < b.bound;
        return a.gate_id > b.gate_id;
    }
};

Selection select_pruned_sequential(Context& ctx, const SelectorConfig& config,
                                   const std::vector<GateId>& gates) {
    Selection result;
    result.stats.candidates = gates.size();

    // Initialize every candidate's front (paper Fig 6, steps 3-5).
    std::vector<std::unique_ptr<PerturbationFront>> fronts =
        init_fronts(ctx, config, gates);

    double max_s = 0.0;  // paper step 6
    auto absorb_completion = [&](std::size_t idx) {
        PerturbationFront& front = *fronts[idx];
        if (front.sink_pdf().valid()) ++result.stats.completed;
        else ++result.stats.died;
        const double sens = front.sensitivity();
        if (improves(sens, front.gate(), max_s, result.gate)) {
            result.gate = front.gate();
            result.sensitivity = sens;
            if (sens > max_s) max_s = sens;
        }
        result.stats.nodes_computed += front.stats().nodes_computed;
        result.stats.levels_stepped += front.stats().levels_stepped;
        fronts[idx].reset();
    };

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap;

    std::size_t alive = 0;
    for (std::size_t i = 0; i < fronts.size(); ++i) {
        if (fronts[i]->completed()) {
            absorb_completion(i);
        } else {
            heap.push({fronts[i]->bound_sensitivity(), static_cast<std::uint32_t>(i),
                       fronts[i]->gate().value});
            ++alive;
        }
    }

    while (!heap.empty()) {
        const HeapEntry top = heap.top();
        heap.pop();
        if (!fronts[top.idx]) continue;  // finished via a previous entry
        PerturbationFront& front = *fronts[top.idx];
        if (top.bound != front.bound_sensitivity()) continue;  // stale bound

        if (top.bound < max_s) {
            // The freshest bound on the heap is below Max_S: every
            // remaining candidate is provably inferior (paper step 20).
            result.stats.pruned += alive;
            break;
        }
        front.propagate_one_level(ctx);
        if (front.completed()) {
            --alive;
            absorb_completion(top.idx);
        } else {
            heap.push({front.bound_sensitivity(), top.idx, top.gate_id});
        }
    }
    return result;
}

Selection select_pruned_parallel(Context& ctx, const SelectorConfig& config,
                                 const std::vector<GateId>& gates,
                                 std::size_t shards) {
    Selection result;
    result.stats.candidates = gates.size();

    std::vector<std::unique_ptr<PerturbationFront>> fronts =
        init_fronts(ctx, config, gates);
    std::vector<FrontOutcome> outcomes(fronts.size());

    // Shared monotone bound (the paper's Max_S), seeded from fronts that
    // completed during initialization so every shard prunes against the
    // best sensitivity known so far.
    std::atomic<double> max_s{0.0};
    std::vector<std::vector<std::uint32_t>> shard_fronts(shards);
    for (std::size_t i = 0; i < fronts.size(); ++i) {
        if (fronts[i]->completed()) {
            record_outcome(outcomes[i], *fronts[i]);
            atomic_fetch_max(max_s, fronts[i]->sensitivity());
            fronts[i].reset();
        } else {
            shard_fronts[i % shards].push_back(static_cast<std::uint32_t>(i));
        }
    }

    // Each shard runs the sequential bound race over its own fronts,
    // racing the shared Max_S. A front pruned here has sensitivity
    // strictly below the final maximum (sens <= bound < Max_S at prune
    // time <= final Max_S), so the winner always completes in some shard.
    global_pool().parallel_for(shards, [&](std::size_t s) {
        std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap;
        for (std::uint32_t idx : shard_fronts[s])
            heap.push({fronts[idx]->bound_sensitivity(), idx, gates[idx].value});

        while (!heap.empty()) {
            const HeapEntry top = heap.top();
            heap.pop();
            PerturbationFront& front = *fronts[top.idx];
            if (front.completed()) continue;  // finished via a previous entry
            if (top.bound != front.bound_sensitivity()) continue;  // stale bound

            if (top.bound < max_s.load(std::memory_order_acquire)) {
                // Everything left in this shard is provably inferior;
                // outcomes stay marked Pruned.
                break;
            }
            front.propagate_one_level(ctx);
            if (front.completed()) {
                record_outcome(outcomes[top.idx], front);
                atomic_fetch_max(max_s, front.sensitivity());
            } else {
                heap.push({front.bound_sensitivity(), top.idx, top.gate_id});
            }
        }
    });

    reduce_outcomes(gates, outcomes, result);
    return result;
}

/// Per-candidate overlay of the edge PDFs its trial resize perturbs;
/// everything else reads the shared unperturbed EdgeDelays. Bitwise
/// copies, so the parallel brute force reproduces the sequential
/// arithmetic exactly.
struct DelayOverlay {
    std::vector<std::pair<EdgeId, prob::Pdf>> edges;

    [[nodiscard]] const prob::Pdf* find(EdgeId e) const {
        for (const auto& [edge, pdf] : edges)
            if (edge == e) return &pdf;
        return nullptr;
    }
};

/// The paper baseline for one candidate: a complete SSTA into `scratch`
/// under `delay_of`, returning the candidate's sensitivity. The single
/// arithmetic path both the sequential and the parallel brute force use.
double full_ssta_sensitivity(const Context& ctx, const SelectorConfig& config,
                             double base_obj, const ssta::DelayLookup& delay_of,
                             std::vector<prob::Pdf>& scratch) {
    const auto& graph = ctx.graph();
    scratch.assign(graph.node_count(), prob::Pdf{});
    scratch[netlist::TimingGraph::source().index()] = prob::Pdf::point(0);
    const auto arrival_of = [&scratch](NodeId u) -> const prob::Pdf& {
        return scratch[u.index()];
    };
    for (NodeId n : graph.topo_order()) {
        if (n == netlist::TimingGraph::source()) continue;
        scratch[n.index()] = ssta::compute_arrival(graph, n, arrival_of, delay_of);
    }
    const double pert_obj =
        config.objective.eval_bins(scratch[netlist::TimingGraph::sink().index()]);
    return (base_obj - pert_obj) * ctx.grid().dt_ns() / config.delta_w;
}

Selection select_brute_force_parallel(Context& ctx, const SelectorConfig& config,
                                      const std::vector<GateId>& gates,
                                      std::size_t shards, bool record_all) {
    Selection result;
    result.stats.candidates = gates.size();
    const auto& graph = ctx.graph();
    const double base_obj = config.objective.eval_bins(ctx.engine().sink_arrival());

    // Sequential phase: capture each candidate's perturbed edge PDFs.
    std::vector<DelayOverlay> overlays(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i) {
        TrialResize trial(ctx, gates[i], config.delta_w);
        overlays[i].edges.reserve(trial.changed_edges().size());
        for (EdgeId e : trial.changed_edges())
            overlays[i].edges.emplace_back(e, ctx.edge_delays().pdf(e));
    }

    // Parallel phase: one full SSTA per candidate, baseline delays plus
    // the candidate's overlay. Candidates are independent, so any
    // execution order produces the same doubles.
    std::vector<double> sens(gates.size(), 0.0);
    global_pool().parallel_for(shards, [&](std::size_t s) {
        std::vector<prob::Pdf> scratch;
        for (std::size_t i = s; i < gates.size(); i += shards) {
            const DelayOverlay& overlay = overlays[i];
            const ssta::DelayLookup delay_of =
                [&ctx, &overlay](EdgeId e) -> const prob::Pdf& {
                if (const prob::Pdf* perturbed = overlay.find(e)) return *perturbed;
                return ctx.edge_delays().pdf(e);
            };
            sens[i] = full_ssta_sensitivity(ctx, config, base_obj, delay_of, scratch);
        }
    });

    result.stats.completed = gates.size();
    result.stats.nodes_computed = gates.size() * (graph.node_count() - 1);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (record_all) result.all_sensitivities.emplace_back(gates[i], sens[i]);
        if (improves(sens[i], gates[i], result.sensitivity, result.gate)) {
            result.gate = gates[i];
            result.sensitivity = sens[i];
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    return result;
}

Selection select_cone_parallel(Context& ctx, const SelectorConfig& config,
                               const std::vector<GateId>& gates, std::size_t shards,
                               bool record_all) {
    Selection result;
    result.stats.candidates = gates.size();

    std::vector<std::unique_ptr<PerturbationFront>> fronts =
        init_fronts(ctx, config, gates);
    std::vector<FrontOutcome> outcomes(fronts.size());

    global_pool().parallel_for(shards, [&](std::size_t s) {
        for (std::size_t i = s; i < fronts.size(); i += shards) {
            PerturbationFront& front = *fronts[i];
            while (!front.completed()) front.propagate_one_level(ctx);
            record_outcome(outcomes[i], front);
        }
    });

    if (record_all)
        for (std::size_t i = 0; i < gates.size(); ++i)
            result.all_sensitivities.emplace_back(gates[i], outcomes[i].sensitivity);
    reduce_outcomes(gates, outcomes, result);
    return result;
}

}  // namespace

Selection select_pruned(Context& ctx, const SelectorConfig& config) {
    Timer timer;
    const std::vector<GateId> gates = eligible_gates(ctx, config);
    const std::size_t shards = shard_count(config, gates.size());
    Selection result = shards > 1
                           ? select_pruned_parallel(ctx, config, gates, shards)
                           : select_pruned_sequential(ctx, config, gates);
    result.stats.seconds = timer.seconds();
    return result;
}

Selection select_brute_force(Context& ctx, const SelectorConfig& config,
                             bool cone_only, bool record_all) {
    Timer timer;
    const std::vector<GateId> gates = eligible_gates(ctx, config);
    const std::size_t shards = shard_count(config, gates.size());
    if (shards > 1) {
        Selection result =
            cone_only
                ? select_cone_parallel(ctx, config, gates, shards, record_all)
                : select_brute_force_parallel(ctx, config, gates, shards, record_all);
        result.stats.seconds = timer.seconds();
        return result;
    }

    Selection result;
    result.stats.candidates = gates.size();
    const auto& graph = ctx.graph();
    const double base_obj = config.objective.eval_bins(ctx.engine().sink_arrival());
    const ssta::DelayLookup delay_of = [&ctx](EdgeId e) -> const prob::Pdf& {
        return ctx.edge_delays().pdf(e);
    };

    std::vector<prob::Pdf> scratch;
    for (GateId g : gates) {
        TrialResize trial(ctx, g, config.delta_w);
        double sens = 0.0;
        if (cone_only) {
            PerturbationFront front(ctx, config.objective, trial);
            while (!front.completed()) front.propagate_one_level(ctx);
            sens = front.sensitivity();
            if (front.sink_pdf().valid()) ++result.stats.completed;
            else ++result.stats.died;
            result.stats.nodes_computed += front.stats().nodes_computed;
            result.stats.levels_stepped += front.stats().levels_stepped;
        } else {
            // Paper baseline: a complete SSTA run for this candidate,
            // reading the trial's perturbed delays directly.
            sens = full_ssta_sensitivity(ctx, config, base_obj, delay_of, scratch);
            result.stats.nodes_computed += graph.node_count() - 1;
            ++result.stats.completed;
        }
        if (record_all) result.all_sensitivities.emplace_back(g, sens);
        if (improves(sens, g, result.sensitivity, result.gate)) {
            result.gate = g;
            result.sensitivity = sens;
        }
    }
    // Match the pruned selector's contract: no gate unless the gain is > 0.
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

Selection select_heuristic(Context& ctx, const SelectorConfig& config,
                           std::size_t beam) {
    if (beam == 0) throw ConfigError("select_heuristic: beam must be >= 1");
    Timer timer;
    Selection result;
    const std::vector<GateId> gates = eligible_gates(ctx, config);
    result.stats.candidates = gates.size();

    // Initialize all fronts, keep their initial bounds.
    std::vector<std::unique_ptr<PerturbationFront>> fronts =
        init_fronts(ctx, config, gates);
    std::vector<std::pair<double, std::size_t>> ranked;  // (bound, index)
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (!fronts[i]->completed())
            ranked.emplace_back(fronts[i]->bound_sensitivity(), i);
        else if (fronts[i]->sink_pdf().valid())
            ++result.stats.completed;
        else
            ++result.stats.died;
    }
    std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return gates[a.second] < gates[b.second];
    });
    if (ranked.size() > beam) {
        result.stats.pruned = ranked.size() - beam;
        ranked.resize(beam);
    }

    // Beam fronts are independent; drain them across the shards. The fold
    // below is order-invariant (strict-greater + lowest-gate-id ties), so
    // the heuristic result is thread-count independent too.
    const std::size_t shards =
        std::max<std::size_t>(shard_count(config, ranked.size()), 1);
    global_pool().parallel_for(shards, [&](std::size_t s) {
        for (std::size_t r = s; r < ranked.size(); r += shards) {
            PerturbationFront& front = *fronts[ranked[r].second];
            while (!front.completed()) front.propagate_one_level(ctx);
        }
    });

    for (const auto& [bound, idx] : ranked) {
        PerturbationFront& front = *fronts[idx];
        if (front.sink_pdf().valid()) ++result.stats.completed;
        else ++result.stats.died;
        result.stats.nodes_computed += front.stats().nodes_computed;
        result.stats.levels_stepped += front.stats().levels_stepped;
        if (improves(front.sensitivity(), front.gate(), result.sensitivity,
                     result.gate)) {
            result.gate = front.gate();
            result.sensitivity = front.sensitivity();
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

}  // namespace statim::core
