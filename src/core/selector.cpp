#include "core/selector.hpp"

#include <memory>
#include <queue>

#include "util/timer.hpp"

namespace statim::core {

namespace {

/// Gates that may still grow by delta_w under the width cap.
std::vector<GateId> eligible_gates(const Context& ctx, const SelectorConfig& config) {
    std::vector<GateId> gates;
    const auto& nl = ctx.nl();
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        if (nl.gate(g).width + config.delta_w <= config.max_width + 1e-12)
            gates.push_back(g);
    }
    return gates;
}

/// Replace the incumbent? Strictly greater wins; equal sensitivity falls
/// back to the lower gate id (matches id-ordered brute-force iteration).
bool improves(double sens, GateId g, double best_sens, GateId best) {
    if (sens > best_sens) return true;
    return sens == best_sens && best.is_valid() && g < best;
}

}  // namespace

Selection select_pruned(Context& ctx, const SelectorConfig& config) {
    Timer timer;
    Selection result;
    const std::vector<GateId> gates = eligible_gates(ctx, config);
    result.stats.candidates = gates.size();

    // Initialize every candidate's front (paper Fig 6, steps 3-5).
    std::vector<std::unique_ptr<PerturbationFront>> fronts;
    fronts.reserve(gates.size());
    for (GateId g : gates) {
        TrialResize trial(ctx, g, config.delta_w);
        fronts.push_back(
            std::make_unique<PerturbationFront>(ctx, config.objective, trial));
    }

    double max_s = 0.0;  // paper step 6
    auto absorb_completion = [&](std::size_t idx) {
        PerturbationFront& front = *fronts[idx];
        if (front.sink_pdf().valid()) ++result.stats.completed;
        else ++result.stats.died;
        const double sens = front.sensitivity();
        if (improves(sens, front.gate(), max_s, result.gate)) {
            result.gate = front.gate();
            result.sensitivity = sens;
            if (sens > max_s) max_s = sens;
        }
        result.stats.nodes_computed += front.stats().nodes_computed;
        result.stats.levels_stepped += front.stats().levels_stepped;
        fronts[idx].reset();
    };

    // Max-heap on (bound, candidate); ties pop the lower gate id first.
    struct HeapEntry {
        double bound;
        std::uint32_t idx;
        std::uint32_t gate_id;
    };
    struct Cmp {
        bool operator()(const HeapEntry& a, const HeapEntry& b) const {
            if (a.bound != b.bound) return a.bound < b.bound;
            return a.gate_id > b.gate_id;
        }
    };
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, Cmp> heap;

    std::size_t alive = 0;
    for (std::size_t i = 0; i < fronts.size(); ++i) {
        if (fronts[i]->completed()) {
            absorb_completion(i);
        } else {
            heap.push({fronts[i]->bound_sensitivity(), static_cast<std::uint32_t>(i),
                       fronts[i]->gate().value});
            ++alive;
        }
    }

    while (!heap.empty()) {
        const HeapEntry top = heap.top();
        heap.pop();
        if (!fronts[top.idx]) continue;  // finished via a previous entry
        PerturbationFront& front = *fronts[top.idx];
        if (top.bound != front.bound_sensitivity()) continue;  // stale bound

        if (top.bound < max_s) {
            // The freshest bound on the heap is below Max_S: every
            // remaining candidate is provably inferior (paper step 20).
            result.stats.pruned += alive;
            break;
        }
        front.propagate_one_level(ctx);
        if (front.completed()) {
            --alive;
            absorb_completion(top.idx);
        } else {
            heap.push({front.bound_sensitivity(), top.idx, top.gate_id});
        }
    }

    result.stats.seconds = timer.seconds();
    return result;
}

Selection select_brute_force(Context& ctx, const SelectorConfig& config,
                             bool cone_only, bool record_all) {
    Timer timer;
    Selection result;
    const std::vector<GateId> gates = eligible_gates(ctx, config);
    result.stats.candidates = gates.size();
    const auto& graph = ctx.graph();
    const double dt = ctx.grid().dt_ns();
    const double base_obj = config.objective.eval_bins(ctx.engine().sink_arrival());

    std::vector<prob::Pdf> scratch;
    for (GateId g : gates) {
        TrialResize trial(ctx, g, config.delta_w);
        double sens = 0.0;
        if (cone_only) {
            PerturbationFront front(ctx, config.objective, trial);
            while (!front.completed()) front.propagate_one_level(ctx);
            sens = front.sensitivity();
            if (front.sink_pdf().valid()) ++result.stats.completed;
            else ++result.stats.died;
            result.stats.nodes_computed += front.stats().nodes_computed;
            result.stats.levels_stepped += front.stats().levels_stepped;
        } else {
            // Paper baseline: a complete SSTA run for this candidate.
            scratch.assign(graph.node_count(), prob::Pdf{});
            scratch[netlist::TimingGraph::source().index()] = prob::Pdf::point(0);
            const auto arrival_of = [&scratch](NodeId u) -> const prob::Pdf& {
                return scratch[u.index()];
            };
            const auto delay_of = [&ctx](EdgeId e) -> const prob::Pdf& {
                return ctx.edge_delays().pdf(e);
            };
            for (NodeId n : graph.topo_order()) {
                if (n == netlist::TimingGraph::source()) continue;
                scratch[n.index()] = ssta::compute_arrival(graph, n, arrival_of, delay_of);
                ++result.stats.nodes_computed;
            }
            const double pert_obj = config.objective.eval_bins(
                scratch[netlist::TimingGraph::sink().index()]);
            sens = (base_obj - pert_obj) * dt / config.delta_w;
            ++result.stats.completed;
        }
        if (record_all) result.all_sensitivities.emplace_back(g, sens);
        if (improves(sens, g, result.sensitivity, result.gate)) {
            result.gate = g;
            result.sensitivity = sens;
        }
    }
    // Match the pruned selector's contract: no gate unless the gain is > 0.
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

Selection select_heuristic(Context& ctx, const SelectorConfig& config,
                           std::size_t beam) {
    if (beam == 0) throw ConfigError("select_heuristic: beam must be >= 1");
    Timer timer;
    Selection result;
    const std::vector<GateId> gates = eligible_gates(ctx, config);
    result.stats.candidates = gates.size();

    // Initialize all fronts, keep their initial bounds.
    std::vector<std::unique_ptr<PerturbationFront>> fronts;
    fronts.reserve(gates.size());
    std::vector<std::pair<double, std::size_t>> ranked;  // (bound, index)
    for (std::size_t i = 0; i < gates.size(); ++i) {
        TrialResize trial(ctx, gates[i], config.delta_w);
        fronts.push_back(
            std::make_unique<PerturbationFront>(ctx, config.objective, trial));
        if (!fronts.back()->completed())
            ranked.emplace_back(fronts.back()->bound_sensitivity(), i);
        else if (fronts.back()->sink_pdf().valid())
            ++result.stats.completed;
        else
            ++result.stats.died;
    }
    std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return gates[a.second] < gates[b.second];
    });
    if (ranked.size() > beam) {
        result.stats.pruned = ranked.size() - beam;
        ranked.resize(beam);
    }

    for (const auto& [bound, idx] : ranked) {
        PerturbationFront& front = *fronts[idx];
        while (!front.completed()) front.propagate_one_level(ctx);
        if (front.sink_pdf().valid()) ++result.stats.completed;
        else ++result.stats.died;
        result.stats.nodes_computed += front.stats().nodes_computed;
        result.stats.levels_stepped += front.stats().levels_stepped;
        if (improves(front.sensitivity(), front.gate(), result.sensitivity,
                     result.gate)) {
            result.gate = front.gate();
            result.sensitivity = front.sensitivity();
        }
    }
    if (!(result.sensitivity > 0.0)) {
        result.gate = GateId::invalid();
        result.sensitivity = 0.0;
    }
    result.stats.seconds = timer.seconds();
    return result;
}

}  // namespace statim::core
