// Area recovery by downsizing — an extension beyond the paper.
//
// After (or instead of) upsizing, repeatedly find the gate whose width
// reduction by Δw hurts the statistical objective least — often it even
// *helps*, by unloading the gate's fanins — and apply it while the
// cumulative objective degradation stays within a budget. Uses the same
// perturbation-front machinery as the sizers (a trial resize with a
// negative Δw), so each candidate costs one fanout-cone propagation.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/objective.hpp"

namespace statim::core {

struct DownsizeConfig {
    Objective objective{};
    double delta_w{0.25};
    double min_width{1.0};
    int max_iterations{1000};
    /// Total allowed increase of the objective relative to the start (ns).
    double objective_budget_ns{0.0};
};

struct DownsizeRecord {
    int iteration{0};
    GateId gate{GateId::invalid()};
    double objective_delta_ns{0.0};  ///< signed; negative means it improved
    double objective_after_ns{0.0};
    double area_after{0.0};
};

struct DownsizeResult {
    std::vector<DownsizeRecord> history;
    double initial_objective_ns{0.0};
    double final_objective_ns{0.0};
    double initial_area{0.0};
    double final_area{0.0};
    int iterations{0};
    std::string stop_reason;
};

/// Runs the recovery loop; the context's netlist is modified in place.
[[nodiscard]] DownsizeResult run_downsizing(Context& ctx, const DownsizeConfig& config);

}  // namespace statim::core
