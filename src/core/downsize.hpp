// Area recovery by downsizing — an extension beyond the paper.
//
// After (or instead of) upsizing, repeatedly find the gate whose width
// reduction by Δw hurts the statistical objective least — often it even
// *helps*, by unloading the gate's fanins — and apply it while the
// cumulative objective degradation stays within a budget. Uses the same
// perturbation-front machinery as the sizers (a trial resize with a
// negative Δw), so each candidate costs one fanout-cone propagation.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/objective.hpp"

namespace statim::core {

struct DownsizeConfig {
    Objective objective{};
    double delta_w{0.25};
    double min_width{1.0};
    int max_iterations{1000};
    /// Total allowed increase of the objective relative to the start (ns).
    double objective_budget_ns{0.0};
    /// Gates shrunk per iteration between refreshes: one candidate pass
    /// ranks every shrink by exact objective damage, and up to this many
    /// conflict-free picks (BatchConeFilter) within the budget are
    /// committed under a single merged-cone refresh. The budget stays
    /// exact: a batch whose *actual* post-refresh objective overshoots it
    /// is rolled back bit-for-bit and the best pick alone is recommitted.
    /// 0 = resolve from STATIM_BATCH (default 1, the reference
    /// one-shrink-per-refresh behaviour).
    int gates_per_iteration{0};
    /// Refresh arrivals incrementally after committed shrinks (only the
    /// merged fanout cone of the changed edges is re-propagated) instead
    /// of re-running the full SSTA. Bit-identical either way; off is the
    /// reference path kept for A/B benching.
    bool incremental_ssta{true};
};

/// One committed shrink; batched iterations append one record per gate.
/// `objective_delta_ns` is that gate's exact damage measured on the state
/// its pass selected from; `objective_after_ns` is the actual value after
/// the record's commit batch refreshed.
struct DownsizeRecord {
    int iteration{0};
    GateId gate{GateId::invalid()};
    double objective_delta_ns{0.0};  ///< signed; negative means it improved
    double objective_after_ns{0.0};
    double area_after{0.0};
};

struct DownsizeResult {
    std::vector<DownsizeRecord> history;
    double initial_objective_ns{0.0};
    double final_objective_ns{0.0};
    double initial_area{0.0};
    double final_area{0.0};
    int iterations{0};
    std::string stop_reason;
    /// Wall-clock spent refreshing arrivals after committed shrinks.
    double ssta_refresh_seconds{0.0};
    /// compute_arrival evaluations those refreshes performed.
    std::size_t ssta_nodes_recomputed{0};
    /// Ranked shrink candidates skipped for cone overlap within a batch.
    std::size_t conflicts_skipped{0};
    /// Batches whose actual objective overshot the budget and were undone
    /// and recommitted sequentially (estimation drift across a batch).
    std::size_t batches_rolled_back{0};
};

/// Runs the recovery loop; the context's netlist is modified in place.
[[nodiscard]] DownsizeResult run_downsizing(Context& ctx, const DownsizeConfig& config);

}  // namespace statim::core
