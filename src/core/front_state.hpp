// Flat storage behind the perturbation-front drain.
//
// The original PerturbationFront kept its A'set in an
// `std::unordered_map<node, Entry>` (one heap Pdf per computed node) and
// its frontier in a `std::priority_queue` of (level, node) pairs. Every
// selector pass over N candidates rebuilt those from nothing: hashing on
// the arrival-lookup hot path, a malloc per computed node, a malloc tree
// per map. This file replaces that with the same shape the SSTA engine's
// update() scratch uses — flat arrays, epoch stamps, per-level buckets —
// split across two objects with different lifetimes:
//
//  * `FrontState` — one per *live front*, pooled and recycled across
//    fronts and selector passes. Holds the append-only flat entry table,
//    the pending-entry list, and a pair of small arenas carrying every
//    entry PDF (double-buffered: when a drain's dead entries strand more
//    garbage than live mass, the live PDFs re-pack into the idle arena).
//    After one warm-up pass the pool serves every subsequent selector
//    pass without touching the heap.
//
//  * `FrontWorkspace` — one per *OS thread* (thread_local). Holds the
//    dense node→entry index, epoch-stamped so switching between the
//    thousands of interleaved fronts of a bound race costs O(front
//    entries), not O(circuit nodes) — and nothing at all when the same
//    front is advanced twice in a row (the uid fast path). Also carries
//    the per-level wave scratch: the node list, per-node results, and
//    one result arena per wave shard. Sized by circuit nodes × threads,
//    not × fronts, which is what makes dense slots affordable while a
//    race keeps every candidate's front alive at once.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "prob/arena.hpp"
#include "prob/pdf.hpp"
#include "util/types.hpp"

namespace statim::core {

struct FrontEntry {
    /// A node leaves the front by turning Dead (absorbed perturbation,
    /// exhausted fanouts, or the sink) — entries are never erased, so
    /// indices stay stable for the workspace's dense slots.
    enum class Status : std::uint8_t { Pending, Alive, Dead };

    prob::PdfView pdf{};     ///< perturbed arrival (Alive only); in the state arenas
    double delta_bins{0.0};  ///< Δi of Theorems 1–4 (Alive only)
    NodeId node{};
    std::uint32_t fo_remaining{0};
    std::uint32_t alive_pos{0};  ///< position in FrontState::alive (Alive only)
    Status status{Status::Pending};
};

class FrontState {
  public:
    static constexpr std::uint32_t kNoLevel = 0xffffffffu;

    /// Empties the state for reuse (capacity and arena slabs retained).
    void reset() noexcept;

    /// Copies `v` into the active entry arena; counts toward live mass.
    [[nodiscard]] prob::PdfView store_pdf(prob::PdfView v);

    /// Re-packs Alive entry PDFs into the idle arena when dead entries
    /// have stranded more garbage than live mass (entry views are
    /// updated in place). Called between levels, never after completion,
    /// so the sink PDF and mid-wave results are never relocated.
    void compact_if_worthwhile();

    [[nodiscard]] std::size_t live_doubles() const noexcept { return live_doubles_; }
    [[nodiscard]] std::size_t arena_capacity_doubles() const noexcept {
        return arenas_[0].capacity() + arenas_[1].capacity();
    }

    std::vector<FrontEntry> entries;
    /// The workspace that last activated this state (see
    /// FrontWorkspace::activate): lets the uid fast path detect that the
    /// front has since been advanced through another thread's workspace,
    /// whose mutations this thread's stamps do not reflect.
    void* last_workspace{nullptr};
    /// Indices of Pending entries; the drain repeatedly extracts the
    /// min_pending_level slice (O(frontier) per level, no heap ordering).
    std::vector<std::uint32_t> pending;
    /// Indices of Alive entries (swap-removed on death), so the per-step
    /// bound refresh and workspace activation scan the live front — not
    /// every entry the drain ever created.
    std::vector<std::uint32_t> alive;
    /// Capped computed-node capture for the cross-pass sensitivity cache
    /// (PerturbationFront support_cap; empty when capture is off). Lives
    /// here rather than on the front so the pool's grow-only reuse keeps
    /// warm selector passes allocation-free.
    std::vector<NodeId> support;
    std::uint32_t min_pending_level{kNoLevel};

    /// Alive/death bookkeeping around the alive index.
    void mark_alive(std::uint32_t entry_idx) {
        entries[entry_idx].status = FrontEntry::Status::Alive;
        entries[entry_idx].alive_pos = static_cast<std::uint32_t>(alive.size());
        alive.push_back(entry_idx);
    }
    void mark_dead(std::uint32_t entry_idx) noexcept {
        FrontEntry& e = entries[entry_idx];
        if (e.status == FrontEntry::Status::Alive) {
            const std::uint32_t last = alive.back();
            alive[e.alive_pos] = last;
            entries[last].alive_pos = e.alive_pos;
            alive.pop_back();
            live_doubles_ -= e.pdf.size();
        }
        e.status = FrontEntry::Status::Dead;
    }

  private:
    // Fronts are narrow: a few KiB of PDF mass each, but thousands are
    // alive at once during a bound race, so the slab floor is far below
    // the propagation-scratch default.
    static constexpr std::size_t kSlabDoubles = 512;

    prob::PdfArena arenas_[2]{prob::PdfArena{kSlabDoubles},
                              prob::PdfArena{kSlabDoubles}};
    std::size_t active_{0};
    std::size_t live_doubles_{0};
};

/// Pooled FrontState checkout. The pool is process-global and
/// mutex-guarded (acquire/release are per front, not per node — the lock
/// is noise next to one PDF convolution). States come back reset().
[[nodiscard]] FrontState* acquire_front_state();
void release_front_state(FrontState* state) noexcept;

/// Frees pooled states beyond `keep`. The pool otherwise retains the
/// peak number of concurrently-live fronts (one select pass constructs a
/// front per eligible gate before draining), with each state's entry
/// capacity and arena slabs — the same "one-off giant workload pins its
/// high water forever" concern PdfArena::shrink_to_fit addresses, so the
/// same remedy: call after an unusually large pass to return the excess.
void trim_front_state_pool(std::size_t keep) noexcept;

/// Unique id per PerturbationFront, for the workspace's activation fast
/// path (consecutive propagate_one_level calls on one front skip the
/// re-stamp entirely).
[[nodiscard]] std::uint64_t next_front_uid() noexcept;

class FrontWorkspace {
  public:
    /// Grows the dense per-node arrays to `node_count` (monotone; shared
    /// across every circuit this thread touches).
    void bind(std::size_t node_count);

    /// Makes `state`'s entries resolvable through entry_index(). O(1)
    /// when `uid` was the last front activated on this thread *and* the
    /// front has not been advanced through another thread's workspace in
    /// between (state.last_workspace check), O(live front) otherwise
    /// (epoch bump + re-stamp; never O(nodes)).
    void activate(FrontState& state, std::uint64_t uid);

    /// Entry index + 1 for `n`, or 0 when the active front holds none.
    [[nodiscard]] std::uint32_t entry_index(NodeId n) const noexcept {
        return stamp_[n.index()] == epoch_ ? slot_[n.index()] : 0;
    }
    void set_entry_index(NodeId n, std::uint32_t index_plus_one) noexcept {
        stamp_[n.index()] = epoch_;
        slot_[n.index()] = index_plus_one;
    }

    /// Result arena of wave shard `s` (created on first use, reused for
    /// every later wave on this thread).
    [[nodiscard]] prob::PdfArena& shard_arena(std::size_t s);

    [[nodiscard]] std::size_t shard_capacity_doubles() const noexcept;

    /// One computed node of the current level's wave.
    struct NodeResult {
        prob::PdfView pdf{};       ///< in shard_arena (empty for a dead non-sink)
        std::int64_t delta{0};     ///< Δ in whole bins (non-sink, alive)
        bool dead{false};          ///< bitwise equal to the unperturbed arrival
    };

    // Per-level wave scratch (sized by the level slice, reused forever).
    std::vector<NodeId> level_nodes;
    std::vector<NodeResult> results;

  private:
    std::vector<std::uint32_t> slot_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t epoch_{0};
    std::uint64_t active_uid_{0};
    std::vector<std::unique_ptr<prob::PdfArena>> shard_arenas_;
};

/// This thread's front workspace (thread_local). During a wave the pool
/// workers read the *activating* thread's workspace by reference; they
/// never touch their own from inside a front drain.
[[nodiscard]] FrontWorkspace& front_workspace();

}  // namespace statim::core
