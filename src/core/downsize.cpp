#include "core/downsize.hpp"

#include "core/front.hpp"
#include "core/trial_resize.hpp"
#include "util/error.hpp"

namespace statim::core {

namespace {

/// Exact objective change (ns, negative = better) of shrinking `g` by
/// delta_w, via a fanout-cone front drain under a live trial resize.
double downsize_delta_ns(Context& ctx, const Objective& objective, GateId g,
                         double delta_w) {
    TrialResize trial(ctx, g, -delta_w);
    PerturbationFront front(ctx, objective, trial);
    while (!front.completed()) front.propagate_one_level(ctx);
    if (!front.sink_pdf().valid()) return 0.0;  // perturbation died out
    const double base = objective.eval_bins(ctx.engine().sink_arrival());
    const double pert = objective.eval_bins(front.sink_pdf());
    return (pert - base) * ctx.grid().dt_ns();
}

}  // namespace

DownsizeResult run_downsizing(Context& ctx, const DownsizeConfig& config) {
    if (!(config.delta_w > 0.0))
        throw ConfigError("DownsizeConfig: delta_w must be positive");
    if (!(config.min_width > 0.0))
        throw ConfigError("DownsizeConfig: min_width must be positive");
    if (config.objective_budget_ns < 0.0)
        throw ConfigError("DownsizeConfig: objective budget must be >= 0");

    DownsizeResult result;
    ctx.run_ssta();
    result.initial_objective_ns =
        config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
    result.initial_area = ctx.nl().total_area(ctx.lib());
    result.final_objective_ns = result.initial_objective_ns;
    result.final_area = result.initial_area;
    result.stop_reason = "iteration budget";

    for (int iter = 1; iter <= config.max_iterations; ++iter) {
        // Candidate with the least objective damage.
        GateId best = GateId::invalid();
        double best_delta = std::numeric_limits<double>::infinity();
        for (std::size_t gi = 0; gi < ctx.nl().gate_count(); ++gi) {
            const GateId g{static_cast<std::uint32_t>(gi)};
            if (ctx.nl().gate(g).width - config.delta_w < config.min_width - 1e-12)
                continue;
            const double delta = downsize_delta_ns(ctx, config.objective, g,
                                                   config.delta_w);
            if (delta < best_delta || (delta == best_delta && best.is_valid() && g < best)) {
                best = g;
                best_delta = delta;
            }
        }
        if (!best.is_valid()) {
            result.stop_reason = "width floor";
            break;
        }
        // Would this step blow the cumulative budget?
        const double projected =
            result.final_objective_ns + best_delta - result.initial_objective_ns;
        if (projected > config.objective_budget_ns + 1e-12) {
            result.stop_reason = "objective budget";
            break;
        }

        ctx.nl().gate(best).width -= config.delta_w;
        const auto changed = ctx.delay_calc().update_for_resize(best);
        ctx.edge_delays().update_edges(changed, ctx.delay_calc());
        ctx.run_ssta();

        result.iterations = iter;
        result.final_objective_ns =
            config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
        result.final_area = ctx.nl().total_area(ctx.lib());

        DownsizeRecord record;
        record.iteration = iter;
        record.gate = best;
        record.objective_delta_ns = best_delta;
        record.objective_after_ns = result.final_objective_ns;
        record.area_after = result.final_area;
        result.history.push_back(record);
    }
    return result;
}

}  // namespace statim::core
