#include "core/downsize.hpp"

#include <algorithm>

#include "core/front.hpp"
#include "core/selector.hpp"
#include "core/trial_resize.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace statim::core {

namespace {

/// Exact objective change (ns, negative = better) of shrinking `g` by
/// delta_w, via a fanout-cone front drain under a live trial resize.
double downsize_delta_ns(Context& ctx, const Objective& objective, GateId g,
                         double delta_w) {
    TrialResize trial(ctx, g, -delta_w);
    PerturbationFront front(ctx, objective, trial);
    while (!front.completed()) front.propagate_one_level(ctx);
    if (!front.sink_pdf().valid()) return 0.0;  // perturbation died out
    const double base = objective.eval_bins(ctx.engine().sink_arrival());
    const double pert = objective.eval_bins(front.sink_pdf());
    return (pert - base) * ctx.grid().dt_ns();
}

}  // namespace

DownsizeResult run_downsizing(Context& ctx, const DownsizeConfig& config) {
    if (!(config.delta_w > 0.0))
        throw ConfigError("DownsizeConfig: delta_w must be positive");
    if (!(config.min_width > 0.0))
        throw ConfigError("DownsizeConfig: min_width must be positive");
    if (config.objective_budget_ns < 0.0)
        throw ConfigError("DownsizeConfig: objective budget must be >= 0");
    if (config.gates_per_iteration < 0)
        throw ConfigError(
            "DownsizeConfig: gates_per_iteration must be >= 1 "
            "(or 0 to resolve from STATIM_BATCH)");
    const std::size_t batch = static_cast<std::size_t>(
        config.gates_per_iteration > 0 ? config.gates_per_iteration : env_batch());

    DownsizeResult result;
    ctx.set_incremental_ssta(config.incremental_ssta);
    // Timed refresh after committed shrinks: the changed-edge set from the
    // commits already sits in the dirty list, so only the merged fanout
    // cone is re-propagated (full SSTA when incremental mode is off).
    const auto refresh = [&ctx, &result] {
        Timer refresh_timer;
        ctx.refresh_ssta();
        result.ssta_refresh_seconds += refresh_timer.seconds();
        result.ssta_nodes_recomputed +=
            ctx.engine().last_update_stats().nodes_recomputed;
    };
    ctx.run_ssta();
    result.initial_objective_ns =
        config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
    result.initial_area = ctx.nl().total_area(ctx.lib());
    result.final_objective_ns = result.initial_objective_ns;
    result.final_area = result.initial_area;
    result.stop_reason = "iteration budget";

    double running_area = result.initial_area;
    std::vector<std::pair<double, GateId>> ranked;  // (exact delta, gate)
    std::vector<ResizeOp> ops;
    std::vector<double> deltas;
    std::vector<double> saved_widths;  // pre-batch widths, for exact rollback
    BatchConeFilter filter(ctx);

    for (int iter = 1; iter <= config.max_iterations; ++iter) {
        // One exact candidate pass: every eligible shrink costs one
        // fanout-cone front drain.
        ranked.clear();
        for (std::size_t gi = 0; gi < ctx.nl().gate_count(); ++gi) {
            const GateId g{static_cast<std::uint32_t>(gi)};
            if (ctx.nl().gate(g).width - config.delta_w < config.min_width - 1e-12)
                continue;
            ranked.emplace_back(
                downsize_delta_ns(ctx, config.objective, g, config.delta_w), g);
        }
        if (ranked.empty()) {
            result.stop_reason = "width floor";
            break;
        }
        // Least damage first; ties toward the lower gate id.
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first < b.first;
                      return a.second < b.second;
                  });

        const double used = result.final_objective_ns - result.initial_objective_ns;
        if (used + ranked.front().first > config.objective_budget_ns + 1e-12) {
            result.stop_reason = "objective budget";
            break;
        }

        // Greedy batch: footprint-disjoint picks while the cumulative
        // projected damage stays within budget. Deltas ascend, so the
        // first pick that does not fit ends the batch — no later one fits
        // either.
        filter.reset();
        ops.clear();
        deltas.clear();
        saved_widths.clear();
        double projected = used;
        for (const auto& [delta, g] : ranked) {
            if (ops.size() >= batch) break;
            if (projected + delta > config.objective_budget_ns + 1e-12) break;
            if (!filter.try_accept(g)) {
                ++result.conflicts_skipped;
                continue;
            }
            ops.push_back({g, -config.delta_w});
            deltas.push_back(delta);
            saved_widths.push_back(ctx.nl().gate(g).width);
            projected += delta;
        }

        (void)ctx.apply_resizes(ops);
        refresh();
        double objective_after =
            config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());

        // Per-pick deltas are exact on the pass state, but a batch's joint
        // effect couples at the sink fold. If the actual objective overran
        // the budget, undo the whole batch and fall back to the reference
        // single commit, whose delta is exact. The undo writes back the
        // *saved* widths — an inverse delta does not round-trip bitwise
        // for non-dyadic steps — so the recomputed delays, and therefore
        // the refreshed arrivals, restore bit-exactly.
        if (ops.size() > 1 && objective_after - result.initial_objective_ns >
                                  config.objective_budget_ns + 1e-12) {
            ++result.batches_rolled_back;
            for (std::size_t i = 0; i < ops.size(); ++i) {
                ctx.nl().gate(ops[i].gate).width = saved_widths[i];
                const auto changed = ctx.delay_calc().update_for_resize(ops[i].gate);
                ctx.edge_delays().update_edges(changed, ctx.delay_calc());
            }
            refresh();
            ops.resize(1);
            deltas.resize(1);
            (void)ctx.apply_resizes(ops);
            refresh();
            objective_after =
                config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
        }

        result.iterations = iter;
        result.final_objective_ns = objective_after;
        result.final_area = ctx.nl().total_area(ctx.lib());

        for (std::size_t i = 0; i < ops.size(); ++i) {
            const auto& gate = ctx.nl().gate(ops[i].gate);
            running_area -= cells::cell_area(ctx.lib().cell(gate.cell), config.delta_w);

            DownsizeRecord record;
            record.iteration = iter;
            record.gate = ops[i].gate;
            record.objective_delta_ns = deltas[i];
            record.objective_after_ns = objective_after;
            record.area_after = running_area;
            result.history.push_back(record);
        }
    }
    return result;
}

}  // namespace statim::core
