// Candidate selection for one coordinate-descent iteration: find the gate
// with the maximum statistical sensitivity.
//
//  * PrunedSelector — the paper's algorithm (Fig 6): every candidate gets a
//    perturbation front; the front with the largest bound Smx advances one
//    level at a time; completed fronts update Max_S; any front whose bound
//    falls below Max_S is pruned without ever reaching the sink.
//  * BruteForceSelector — the paper's baseline: one full SSTA per candidate
//    (or, in cone mode, an unpruned front drain — an ablation between the
//    two). Also returns every candidate's sensitivity for diagnostics.
//
// Both selectors share the same arithmetic path (ssta::compute_arrival),
// pick by strictly-greater sensitivity with ties broken toward the lowest
// gate id, and therefore return identical selections — asserted by
// tests/test_pruning_exactness.cpp.
#pragma once

#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/front.hpp"
#include "core/objective.hpp"

namespace statim::core {

/// Which inner-loop engine finds the most sensitive gate(s).
enum class SelectorKind { Pruned, BruteFull, BruteCone };

/// Inner-loop accounting; the Table 2 harness aggregates these.
struct SelectorStats {
    std::size_t candidates{0};       ///< gates eligible for upsizing
    std::size_t completed{0};        ///< fronts that reached the sink
    std::size_t pruned{0};           ///< candidates discarded via the bound
    std::size_t died{0};             ///< perturbation absorbed before the sink
    std::size_t nodes_computed{0};   ///< perturbed-arrival evaluations
    std::size_t levels_stepped{0};   ///< front level advances
    /// Candidates absorbed from the SensitivityCache without racing a
    /// front (already counted under completed/died; 0 nodes_computed).
    std::size_t cache_hits{0};
    /// Candidates the criticality floor deferred to the tail sweep (they
    /// still race — against the head phase's near-final threshold).
    std::size_t floor_deferred{0};
    double seconds{0.0};             ///< wall-clock for the whole selection
};

struct Selection {
    GateId gate{GateId::invalid()};  ///< invalid when no positive-gain gate
    double sensitivity{0.0};         ///< ns improvement per unit width
    SelectorStats stats{};
    /// Sensitivity of every evaluated candidate (brute force only).
    std::vector<std::pair<GateId, double>> all_sensitivities{};
};

/// Shared knobs for one selection pass.
///
/// `threads` > 1 evaluates candidates in parallel: fronts are still
/// initialized sequentially (trial resizes mutate shared state), then
/// drained across `threads` shards on the global pool. The *selection*
/// (gate + sensitivity) is bit-identical to the sequential result for any
/// thread count — a pruned candidate's sensitivity is provably strictly
/// below the final maximum, so racing the bound never discards a winner,
/// and the reduction is a deterministic gate-id-ordered fold. Only the
/// work counters (pruned/nodes_computed) may vary with the shard racing.
struct SelectorConfig {
    Objective objective{};
    double delta_w{0.25};
    double max_width{16.0};
    std::size_t threads{1};
    /// Criticality floor of the pruned race's two-phase partition, as a
    /// fraction of the maximum candidate criticality: candidates at or
    /// above `crit_floor * max_crit` race first, the rest race second
    /// against the head phase's already-tight threshold (so they prune at
    /// their loosest bound instead of draining). Both phases share one
    /// monotone k-th-best tracker, so the picks are bitwise identical to
    /// the unpartitioned race for ANY partition — the floor only moves
    /// work counters. Negative (default) resolves STATIM_CRIT_FLOOR
    /// (default 0.05); 0 disables the partition.
    double crit_floor{-1.0};
    /// Consult/maintain ctx.sensitivity_cache() across passes: candidates
    /// whose last finished front provably still holds (engine journal)
    /// replay their outcome instead of racing. Off by default at this
    /// level so raw selector calls stay self-contained (A/B comparisons
    /// on one context would otherwise compare a race against its own
    /// replay); the sizing loops turn it on. STATIM_SELECTOR_CACHE=0
    /// force-disables it globally.
    bool sensitivity_cache{false};
};

/// The paper's pruned selection (requires ctx.run_ssta() beforehand).
[[nodiscard]] Selection select_pruned(Context& ctx, const SelectorConfig& config);

/// Brute-force selection; `cone_only` restricts each candidate's SSTA to
/// its fanout cone (no bound pruning) instead of the full graph.
[[nodiscard]] Selection select_brute_force(Context& ctx, const SelectorConfig& config,
                                           bool cone_only = false,
                                           bool record_all = false);

/// One ranked pick of a batched (top-k) selection.
struct RankedPick {
    GateId gate{GateId::invalid()};
    double sensitivity{0.0};  ///< ns per unit width, on the shared base state
};

/// Deterministic candidate sample for diagnostics, benches and property
/// tests: the most criticality-ranked gates (half of `count`) followed by
/// an id-stride sweep across the whole netlist (covers low-sensitivity /
/// dead-front behaviour on big circuits). Requires a completed SSTA run;
/// the bench and test populations stay in sync by sharing this one
/// definition. Deduplicated: a gate the ranked head already took is
/// skipped by the stride sweep (which walks on to the next id), so the
/// result never evaluates one gate twice.
[[nodiscard]] std::vector<GateId> sample_candidate_gates(Context& ctx,
                                                         std::size_t count);

/// Result of one batched selection pass (select_top_k).
struct TopKSelection {
    /// Accepted picks, sensitivity descending (ties toward the lower gate
    /// id), mutually non-conflicting under BatchConeFilter. May hold fewer
    /// than k entries when conflicts or convergence thin the ranking; it is
    /// empty exactly when no positive-sensitivity candidate exists.
    std::vector<RankedPick> picks;
    SelectorStats stats{};             ///< accounting of the single pass
    std::size_t conflicts_skipped{0};  ///< ranked candidates dropped by overlap
};

/// Conflict filter for the gates accepted into one commit batch. Each
/// gate contributes a *level-bounded fanout cone*: the endpoints of every
/// edge its resize re-times (DelayCalc::affected_edges — the gate's own
/// edges plus its fanin drivers'), propagated forward through the graph
/// but capped `kConeDepth` levels past the gate's level. A candidate
/// conflicts with an accepted pick when their bounded cones share a node
/// or their affected edge sets share an edge — i.e. when one commit would
/// re-time the other's delay basis or directly move the arrivals in its
/// immediate evaluation neighbourhood (fanout consumers, shared fanin
/// drivers, load coupling).
///
/// The bound is deliberate. Demanding *fully* disjoint cones — static
/// reachability or even the realized perturbation footprint with
/// absorption applied — degenerates to one pick per pass: measured on
/// c7552/synth10k at uniform widths, a single dominant path carries the
/// sensitivity mass and each top candidate's perturbation floods ~1/3 of
/// the circuit, so everything "conflicts" with everything. Gates farther
/// apart than the bound on a shared path have additive first-order
/// improvements (serial delays add); what batching must not do is commit
/// two picks whose local bases overlap, and that lives within the bound.
/// The residual coupling through deeper reconvergence and the sink fold
/// is the stale-sensitivity trade every batched sizer makes (cf. Neiroukh
/// & Song); the per-batch refresh re-ranks before the next commit.
/// Deterministic: a pure function of the graph and the accept order.
class BatchConeFilter {
  public:
    /// Levels past the gate's own level its conflict cone extends.
    static constexpr std::uint32_t kConeDepth = 2;

    explicit BatchConeFilter(const Context& ctx);

    /// Accepts `g` and marks its bounded cone if it does not conflict
    /// with any pick accepted so far; returns false (and marks nothing)
    /// on conflict.
    [[nodiscard]] bool try_accept(GateId g);

    /// Forgets every accepted pick (cheap epoch bump).
    void reset() noexcept;

    [[nodiscard]] std::size_t accepted() const noexcept { return accepted_; }

  private:
    const Context* ctx_;
    std::vector<std::uint32_t> node_mark_;   // union of accepted bounded cones
    std::vector<std::uint32_t> edge_mark_;   // union of accepted affected edges
    std::vector<std::uint32_t> visit_mark_;  // per-try_accept dedup
    std::uint32_t batch_epoch_{1};
    std::uint32_t visit_epoch_{0};
    std::vector<NodeId> cone_, stack_;
    std::size_t accepted_{0};
};

/// Batched selection: ONE selector pass returns up to `k` picks for one
/// commit batch (requires ctx.run_ssta()/refresh_ssta() beforehand).
///
/// All kinds produce the identical pick list: candidates are ranked by
/// exact sensitivity (descending, ties toward the lower gate id), the
/// ranking is truncated to a deterministic scan head (4k entries for
/// k > 1 — the top picks often sit in series on one critical path, so the
/// filter must look past them to fill a batch), and the head is walked in
/// rank order through BatchConeFilter until k picks are accepted. The
/// pruned kind races a generalized bound — fronts are discarded once
/// their bound falls below the scan-depth-th best completed sensitivity,
/// which can never discard a scan-head candidate — so its ranking head
/// equals the brute-force one for any thread count. Truncating *before*
/// the conflict filter keeps the result deterministic (ranks beyond the
/// scan head may complete or not depending on shard racing); the cost is
/// a batch that can come up short, which the sizing loop tops up with
/// another pass on the refreshed state.
[[nodiscard]] TopKSelection select_top_k(Context& ctx, const SelectorConfig& config,
                                         std::size_t k,
                                         SelectorKind kind = SelectorKind::Pruned);

/// Approximate selection — the paper's "future work" heuristic for
/// iterations where many gates have similar sensitivities and exact
/// pruning stalls: initialize every front, fully propagate only the `beam`
/// candidates with the highest initial bounds, and return the best of
/// those. With beam >= the candidate count this equals the exact result;
/// smaller beams trade optimality for speed. The returned gate always has
/// positive sensitivity or is invalid.
[[nodiscard]] Selection select_heuristic(Context& ctx, const SelectorConfig& config,
                                         std::size_t beam);

}  // namespace statim::core
