// Candidate selection for one coordinate-descent iteration: find the gate
// with the maximum statistical sensitivity.
//
//  * PrunedSelector — the paper's algorithm (Fig 6): every candidate gets a
//    perturbation front; the front with the largest bound Smx advances one
//    level at a time; completed fronts update Max_S; any front whose bound
//    falls below Max_S is pruned without ever reaching the sink.
//  * BruteForceSelector — the paper's baseline: one full SSTA per candidate
//    (or, in cone mode, an unpruned front drain — an ablation between the
//    two). Also returns every candidate's sensitivity for diagnostics.
//
// Both selectors share the same arithmetic path (ssta::compute_arrival),
// pick by strictly-greater sensitivity with ties broken toward the lowest
// gate id, and therefore return identical selections — asserted by
// tests/test_pruning_exactness.cpp.
#pragma once

#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/front.hpp"
#include "core/objective.hpp"

namespace statim::core {

/// Inner-loop accounting; the Table 2 harness aggregates these.
struct SelectorStats {
    std::size_t candidates{0};       ///< gates eligible for upsizing
    std::size_t completed{0};        ///< fronts that reached the sink
    std::size_t pruned{0};           ///< candidates discarded via the bound
    std::size_t died{0};             ///< perturbation absorbed before the sink
    std::size_t nodes_computed{0};   ///< perturbed-arrival evaluations
    std::size_t levels_stepped{0};   ///< front level advances
    double seconds{0.0};             ///< wall-clock for the whole selection
};

struct Selection {
    GateId gate{GateId::invalid()};  ///< invalid when no positive-gain gate
    double sensitivity{0.0};         ///< ns improvement per unit width
    SelectorStats stats{};
    /// Sensitivity of every evaluated candidate (brute force only).
    std::vector<std::pair<GateId, double>> all_sensitivities{};
};

/// Shared knobs for one selection pass.
///
/// `threads` > 1 evaluates candidates in parallel: fronts are still
/// initialized sequentially (trial resizes mutate shared state), then
/// drained across `threads` shards on the global pool. The *selection*
/// (gate + sensitivity) is bit-identical to the sequential result for any
/// thread count — a pruned candidate's sensitivity is provably strictly
/// below the final maximum, so racing the bound never discards a winner,
/// and the reduction is a deterministic gate-id-ordered fold. Only the
/// work counters (pruned/nodes_computed) may vary with the shard racing.
struct SelectorConfig {
    Objective objective{};
    double delta_w{0.25};
    double max_width{16.0};
    std::size_t threads{1};
};

/// The paper's pruned selection (requires ctx.run_ssta() beforehand).
[[nodiscard]] Selection select_pruned(Context& ctx, const SelectorConfig& config);

/// Brute-force selection; `cone_only` restricts each candidate's SSTA to
/// its fanout cone (no bound pruning) instead of the full graph.
[[nodiscard]] Selection select_brute_force(Context& ctx, const SelectorConfig& config,
                                           bool cone_only = false,
                                           bool record_all = false);

/// Approximate selection — the paper's "future work" heuristic for
/// iterations where many gates have similar sensitivities and exact
/// pruning stalls: initialize every front, fully propagate only the `beam`
/// candidates with the highest initial bounds, and return the best of
/// those. With beam >= the candidate count this equals the exact result;
/// smaller beams trade optimality for speed. The returned gate always has
/// positive sensitivity or is invalid.
[[nodiscard]] Selection select_heuristic(Context& ctx, const SelectorConfig& config,
                                         std::size_t beam);

}  // namespace statim::core
