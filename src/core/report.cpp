#include "core/report.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace statim::core {

namespace {

/// Indices of the rows to show: all, or an even subsample including ends.
std::vector<std::size_t> pick_rows(std::size_t count, std::size_t max_rows) {
    std::vector<std::size_t> rows;
    if (max_rows == 0 || count <= max_rows) {
        rows.resize(count);
        for (std::size_t i = 0; i < count; ++i) rows[i] = i;
        return rows;
    }
    for (std::size_t i = 0; i < max_rows; ++i)
        rows.push_back(i * (count - 1) / (max_rows - 1));
    return rows;
}

}  // namespace

void print_summary(std::ostream& out, const netlist::Netlist& nl,
                   const SizingResult& result) {
    out << nl.name() << ": objective " << format_double(result.initial_objective_ns, 5)
        << " -> " << format_double(result.final_objective_ns, 5) << " ns ("
        << format_double(100.0 *
                             (result.initial_objective_ns - result.final_objective_ns) /
                             result.initial_objective_ns,
                         3)
        << "% better), area " << format_double(result.initial_area, 5) << " -> "
        << format_double(result.final_area, 5) << " (+"
        << format_double(100.0 * (result.final_area - result.initial_area) /
                             result.initial_area,
                         3)
        << "%), " << result.iterations << " iterations [" << result.stop_reason
        << "]\n";
}

void print_summary(std::ostream& out, const netlist::Netlist& nl,
                   const DetSizingResult& result) {
    out << nl.name() << ": nominal delay " << format_double(result.initial_delay_ns, 5)
        << " -> " << format_double(result.final_delay_ns, 5) << " ns, area "
        << format_double(result.initial_area, 5) << " -> "
        << format_double(result.final_area, 5) << ", " << result.iterations
        << " iterations [" << result.stop_reason << "]\n";
}

void render_history(std::ostream& out, const netlist::Netlist& nl,
                    const SizingResult& result, const ReportOptions& options) {
    std::vector<std::string> header = {"iter", "gate", "sens (ns/w)", "objective (ns)",
                                       "area", "width"};
    if (options.include_stats) {
        header.push_back("cand");
        header.push_back("pruned");
        header.push_back("compl");
    }
    AsciiTable table(std::move(header));
    for (std::size_t i : pick_rows(result.history.size(), options.max_rows)) {
        const IterationRecord& rec = result.history[i];
        std::vector<std::string> row = {std::to_string(rec.iteration),
                                        nl.gate(rec.gate).name,
                                        format_double(rec.sensitivity, 4),
                                        format_double(rec.objective_after_ns, 6),
                                        format_double(rec.area_after, 6),
                                        format_double(rec.width_after, 6)};
        if (options.include_stats) {
            row.push_back(std::to_string(rec.stats.candidates));
            row.push_back(std::to_string(rec.stats.pruned));
            row.push_back(std::to_string(rec.stats.completed));
        }
        table.add_row(std::move(row));
    }
    table.print(out);
}

void write_history_csv(std::ostream& out, const netlist::Netlist& nl,
                       const SizingResult& result) {
    CsvWriter csv(out, {"iteration", "gate", "sensitivity_ns_per_w", "objective_ns",
                        "total_area", "total_width"});
    for (const IterationRecord& rec : result.history)
        csv.row({std::to_string(rec.iteration), nl.gate(rec.gate).name,
                 format_double(rec.sensitivity), format_double(rec.objective_after_ns),
                 format_double(rec.area_after), format_double(rec.width_after)});
}

void write_history_csv(std::ostream& out, const netlist::Netlist& nl,
                       const DetSizingResult& result) {
    CsvWriter csv(out, {"iteration", "gate", "sensitivity_ns_per_w",
                        "circuit_delay_ns", "total_area", "total_width"});
    for (const DetIterationRecord& rec : result.history)
        csv.row({std::to_string(rec.iteration), nl.gate(rec.gate).name,
                 format_double(rec.sensitivity),
                 format_double(rec.circuit_delay_after_ns),
                 format_double(rec.area_after), format_double(rec.width_after)});
}

}  // namespace statim::core
