// Rendering of sizing results: ASCII tables for terminals, CSV for
// plotting (the Figure 10 format). Shared by examples, benches and tests.
#pragma once

#include <iosfwd>

#include "core/sizers.hpp"

namespace statim::core {

/// Options for render_history/write_history_csv.
struct ReportOptions {
    /// Print at most this many rows (evenly subsampled); 0 = all.
    std::size_t max_rows{0};
    /// Include the selector statistics columns.
    bool include_stats{true};
};

/// One-line summary: objective before/after, area before/after, stop reason.
void print_summary(std::ostream& out, const netlist::Netlist& nl,
                   const SizingResult& result);
void print_summary(std::ostream& out, const netlist::Netlist& nl,
                   const DetSizingResult& result);

/// Per-iteration table of a statistical sizing run.
void render_history(std::ostream& out, const netlist::Netlist& nl,
                    const SizingResult& result, const ReportOptions& options = {});

/// Per-iteration CSV (iteration, gate, sensitivity, objective, area, width).
void write_history_csv(std::ostream& out, const netlist::Netlist& nl,
                       const SizingResult& result);
void write_history_csv(std::ostream& out, const netlist::Netlist& nl,
                       const DetSizingResult& result);

}  // namespace statim::core
