// Analysis context: one circuit bound to every engine the optimizers need.
//
// Owns the timing graph, the nominal delay state, the grid, the edge-delay
// RVs and the SSTA engine, and keeps them consistent as gate widths change.
// The grid is chosen once, from the minimum-size circuit, and stays fixed
// through a sizing run so objective values remain comparable across
// iterations.
#pragma once

#include <span>

#include "cells/library.hpp"
#include "core/sensitivity_cache.hpp"
#include "netlist/timing_graph.hpp"
#include "ssta/criticality.hpp"
#include "ssta/edge_delays.hpp"
#include "ssta/engine.hpp"
#include "ssta/grid_policy.hpp"
#include "sta/delay_calc.hpp"

namespace statim::core {

/// One committed width change of a batch.
struct ResizeOp {
    GateId gate{GateId::invalid()};
    double delta_w{0.0};
};

class Context {
  public:
    /// Binds to `nl` (must outlive the context) with an automatic grid.
    Context(netlist::Netlist& nl, const cells::Library& lib,
            const ssta::GridPolicy& policy = {});
    /// Binds with an explicit grid (e.g. to compare runs on equal footing).
    Context(netlist::Netlist& nl, const cells::Library& lib, prob::TimeGrid grid);

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    [[nodiscard]] netlist::Netlist& nl() noexcept { return *nl_; }
    [[nodiscard]] const netlist::Netlist& nl() const noexcept { return *nl_; }
    [[nodiscard]] const cells::Library& lib() const noexcept { return *lib_; }
    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return graph_; }
    [[nodiscard]] const prob::TimeGrid& grid() const noexcept { return grid_; }
    [[nodiscard]] sta::DelayCalc& delay_calc() noexcept { return delay_calc_; }
    [[nodiscard]] const sta::DelayCalc& delay_calc() const noexcept { return delay_calc_; }
    [[nodiscard]] ssta::EdgeDelays& edge_delays() noexcept { return edge_delays_; }
    [[nodiscard]] const ssta::EdgeDelays& edge_delays() const noexcept {
        return edge_delays_;
    }
    [[nodiscard]] ssta::SstaEngine& engine() noexcept { return engine_; }
    [[nodiscard]] const ssta::SstaEngine& engine() const noexcept { return engine_; }

    /// Runs a full SSTA with the current widths.
    void run_ssta();

    /// Brings the SSTA arrivals up to date with the current widths. When
    /// incremental mode is on (default) and the engine has run before,
    /// only the fanout cone of the edges dirtied since the last refresh is
    /// re-propagated; otherwise this is a full run_ssta(). Both paths are
    /// bit-identical (tests/test_incremental.cpp).
    void refresh_ssta();

    /// Toggles the incremental refresh path (off = always full runs; the
    /// reference behaviour, kept for A/B benching).
    void set_incremental_ssta(bool enabled) noexcept { incremental_ssta_ = enabled; }
    [[nodiscard]] bool incremental_ssta() const noexcept { return incremental_ssta_; }

    /// Shards every SSTA propagation wave (run_ssta / refresh_ssta)
    /// across `threads` level-parallel chunks. Arrivals are bit-identical
    /// for any value — a pure performance knob, safe to set from the same
    /// --threads / STATIM_THREADS configuration as the selectors.
    void set_ssta_threads(std::size_t threads) noexcept { engine_.set_threads(threads); }
    [[nodiscard]] std::size_t ssta_threads() const noexcept { return engine_.threads(); }

    /// Permanently changes gate `g`'s width by `delta_w` and updates the
    /// nominal delays and edge PDFs. Returns the affected edges.
    std::vector<EdgeId> apply_resize(GateId g, double delta_w);

    /// Commits a whole batch: applies every width change in `ops` (in
    /// order) and updates the nominal delays and edge PDFs they touch.
    /// The final delay state equals per-op apply_resize calls — every
    /// edge delay is a pure function of the final widths — but the dirty
    /// list accumulates across the batch, so the next refresh_ssta()
    /// re-propagates the *merged* fanout cone once instead of once per
    /// op. Returns the union of affected edges (ascending, deduplicated).
    std::vector<EdgeId> apply_resizes(std::span<const ResizeOp> ops);

    /// Criticality engine bound to this context's graph, revision-keyed
    /// against its SSTA engine (the selector's floor pre-filter refreshes
    /// and queries it; reports may too — one shared instance means one
    /// shared split cache).
    [[nodiscard]] ssta::IncrementalCriticality& criticality() noexcept {
        return criticality_;
    }
    /// Cross-pass sensitivity cache (see sensitivity_cache.hpp). Synced
    /// with the engine journal by run_ssta()/refresh_ssta(); the selector
    /// consults it when SelectorConfig.sensitivity_cache is on.
    [[nodiscard]] SensitivityCache& sensitivity_cache() noexcept {
        return sensitivity_cache_;
    }

    /// Recomputes every nominal delay and edge PDF from the current
    /// widths, sharding both bulk passes across `threads` (0 = use
    /// ssta_threads()). For bulk width changes made directly on the
    /// netlist (e.g. set_uniform_width), where per-gate apply_resize
    /// deltas would be wasteful. Leaves the delay state fully dirty, so
    /// the next refresh_ssta() is a full run.
    void rebuild_timing(std::size_t threads = 0);

  private:
    netlist::Netlist* nl_;
    const cells::Library* lib_;
    netlist::TimingGraph graph_;
    sta::DelayCalc delay_calc_;
    prob::TimeGrid grid_;
    ssta::EdgeDelays edge_delays_;
    ssta::SstaEngine engine_;
    ssta::IncrementalCriticality criticality_;
    SensitivityCache sensitivity_cache_;
    bool incremental_ssta_{true};
};

}  // namespace statim::core
