// RAII trial resize (the temporary upsize of the paper's Initialize, Fig 7
// steps 1 and 7): applies width += Δw to one gate, refreshes the nominal
// delays and edge PDFs of the affected edges, and restores everything
// bit-for-bit when destroyed.
//
// The edge list and the PDF snapshot live in a pooled, thread-local
// buffer set (the selector constructs trials strictly sequentially per
// thread), so a warm trial performs zero heap allocations — previously
// ~30-50 per candidate, the dominant selector-pass allocation source.
// A nested trial on the same thread falls back to private buffers.
#pragma once

#include <memory>
#include <vector>

#include "core/context.hpp"
#include "prob/pdf.hpp"
#include "util/types.hpp"

namespace statim::core {

class TrialResize {
  public:
    /// Applies the resize. `ctx` must outlive this object.
    TrialResize(Context& ctx, GateId gate, double delta_w);
    ~TrialResize();

    TrialResize(const TrialResize&) = delete;
    TrialResize& operator=(const TrialResize&) = delete;

    /// The edges whose delay PDFs are perturbed while this trial is live:
    /// the gate's own edges followed by its fanin drivers' edges.
    [[nodiscard]] const std::vector<EdgeId>& changed_edges() const noexcept {
        return buffers_->changed;
    }
    [[nodiscard]] GateId gate() const noexcept { return gate_; }
    [[nodiscard]] double delta_w() const noexcept { return delta_w_; }

  private:
    /// Pooled per-thread buffers: the changed-edge list plus a grow-only
    /// PDF snapshot pool whose slots keep their mass buffers across
    /// trials.
    struct Buffers {
        std::vector<EdgeId> changed;
        std::vector<prob::Pdf> saved;
        bool in_use{false};
    };

    /// The calling thread's pooled buffer set (leaked, like the
    /// front-state pool, so thread_local teardown order cannot bite).
    [[nodiscard]] static Buffers& thread_pool_buffers();

    Context* ctx_;
    GateId gate_;
    double delta_w_;
    Buffers* buffers_;
    std::unique_ptr<Buffers> owned_;  ///< nested-trial fallback only
};

}  // namespace statim::core
