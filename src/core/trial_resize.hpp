// RAII trial resize (the temporary upsize of the paper's Initialize, Fig 7
// steps 1 and 7): applies width += Δw to one gate, refreshes the nominal
// delays and edge PDFs of the affected edges, and restores everything
// bit-for-bit when destroyed.
#pragma once

#include <vector>

#include "core/context.hpp"
#include "prob/pdf.hpp"
#include "util/types.hpp"

namespace statim::core {

class TrialResize {
  public:
    /// Applies the resize. `ctx` must outlive this object.
    TrialResize(Context& ctx, GateId gate, double delta_w);
    ~TrialResize();

    TrialResize(const TrialResize&) = delete;
    TrialResize& operator=(const TrialResize&) = delete;

    /// The edges whose delay PDFs are perturbed while this trial is live:
    /// the gate's own edges followed by its fanin drivers' edges.
    [[nodiscard]] const std::vector<EdgeId>& changed_edges() const noexcept {
        return changed_;
    }
    [[nodiscard]] GateId gate() const noexcept { return gate_; }
    [[nodiscard]] double delta_w() const noexcept { return delta_w_; }

  private:
    Context* ctx_;
    GateId gate_;
    double delta_w_;
    std::vector<EdgeId> changed_;
    std::vector<prob::Pdf> saved_pdfs_;
};

}  // namespace statim::core
