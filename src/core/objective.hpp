// Optimization objectives over the circuit-delay (sink-arrival) CDF.
//
// The paper uses the p-percentile point T(p) with p = 0.99 (Fig. 2) but
// notes the framework supports any cost defined on the distribution. Both
// supported objectives are 1-Lipschitz against uniform time shifts, so the
// perturbation bound Δ = max_p [T(A,p) − T(A',p)] upper-bounds their
// improvement — the property the pruning algorithm needs:
//   * Percentile: T(A,p) − T(A',p) ≤ Δ by definition of the max.
//   * Mean: mean(A) − mean(A') = ∫ (T(A,p) − T(A',p)) dp ≤ Δ.
#pragma once

#include "prob/grid.hpp"
#include "prob/pdf.hpp"
#include "util/error.hpp"

namespace statim::core {

struct Objective {
    enum class Kind { Percentile, Mean };

    Kind kind{Kind::Percentile};
    double p{0.99};  ///< used by Kind::Percentile

    /// Cost in fractional bin units (lower is better). Takes a view so
    /// arena-resident sink CDFs (engine arrivals, front sink PDFs) are
    /// evaluated without a copy; Pdf arguments convert implicitly.
    [[nodiscard]] double eval_bins(prob::PdfView sink) const {
        switch (kind) {
            case Kind::Percentile: return sink.percentile_bin(p);
            case Kind::Mean: return sink.mean_bins();
        }
        throw ConfigError("Objective: unknown kind");
    }

    /// Cost in nanoseconds.
    [[nodiscard]] double eval_ns(const prob::TimeGrid& grid, prob::PdfView sink) const {
        return grid.time_of(eval_bins(sink));
    }

    [[nodiscard]] static Objective percentile(double p) {
        if (!(p > 0.0) || !(p <= 1.0))
            throw ConfigError("Objective::percentile: p must be in (0, 1]");
        return Objective{Kind::Percentile, p};
    }
    [[nodiscard]] static Objective mean() { return Objective{Kind::Mean, 0.0}; }
};

}  // namespace statim::core
