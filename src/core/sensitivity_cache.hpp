// Cross-pass sensitivity cache for the pruned selector.
//
// A selector pass evaluates one perturbation front per candidate gate; at
// steady state most of those fronts are *unchanged* from the previous
// pass — the committed picks moved arrivals in a narrow cone, and every
// front whose evaluation support lies outside that cone would reproduce
// the exact same doubles. This cache replays those outcomes instead of
// re-racing them, keyed on the SSTA engine's revision counter and
// invalidated through its changed-node/edge journal, so a replayed
// sensitivity is *provably* bitwise identical to a fresh evaluation.
//
// The exactness argument. A front for gate g with width step Δw computes
// a deterministic function of
//   * the base arrivals of its computed nodes C and of their fanins,
//   * the delay PDFs of every in-edge of a node in C,
//   * the trial-perturbed edge PDFs (their heads are the front's seeds,
//     and the seeds are always computed: seeds ⊆ C), and
//   * for fronts that reach the sink, the base sink arrival (sink ∈ C).
// An entry therefore stays valid across an engine update() iff no changed
// arrival or changed edge can reach that set — conservatively: no touched
// node (changed node, fanout head of a changed node, or head of a changed
// edge) lies in C. A fanin whose arrival moved makes its consumer in C a
// fanout head; an in-edge whose delay moved makes its head in C the head
// of a changed edge; the trial's own perturbed PDFs are a function of g's
// width (compared bitwise at lookup) and of the base delays of g's
// affected edges, whose heads are seeds ⊆ C. Entries whose support
// exceeded kMaxSupportNodes are never stored (their invalidation would be
// imprecise), and a full run() or a missed revision invalidates
// everything. tests/test_selector_cache.cpp property-tests the contract
// across commit sequences, threads, batch sizes and SIMD levels.
//
// Who survives in practice: fronts that *died* (the perturbation was
// absorbed before the sink — sensitivity exactly 0) have small supports
// far from the action and make up the bulk of a converged netlist, which
// is where the cross-pass savings come from. Completed fronts hold the
// sink in their support, and commits almost always move the sink
// arrival, so they re-race — correctly, since their sensitivity was
// measured against the old base objective.
//
// Not thread-safe: lookups/stores happen on the selector pass's calling
// thread (stores run serially after the shard race joins); one cache
// belongs to one Context.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/objective.hpp"
#include "util/types.hpp"

namespace statim::ssta {
class SstaEngine;
}
namespace statim::netlist {
class TimingGraph;
}

namespace statim::core {

class SensitivityCache {
  public:
    /// Supports larger than this are not cached: a front that flooded a
    /// third of the circuit would be invalidated by nearly every commit
    /// anyway, and storing its node list would cost more than the replay
    /// saves. Dead fronts — the cache's payload — sit far below the cap.
    static constexpr std::uint32_t kMaxSupportNodes = 128;

    struct Stats {
        std::uint64_t hits{0};
        std::uint64_t misses{0};
        std::uint64_t stores{0};
        std::uint64_t invalidated{0};         ///< entries killed by journal overlap
        std::uint64_t full_invalidations{0};  ///< full run / missed revision wipes
    };

    /// A replayed outcome: the finished front's exact sensitivity and
    /// whether it reached the sink (Completed) or died (Died).
    struct Replay {
        double sensitivity{0.0};
        bool completed_sink{false};
    };

    /// Sizes the per-gate entry table and the per-node inverted index
    /// (idempotent; called by the selector before the first lookup).
    void bind(std::size_t gate_count, std::size_t node_count);

    /// Replays gate `g`'s outcome into `out` when its entry is valid for
    /// the engine revision `revision`, the identical width step and
    /// current width (bitwise), and the same objective. Returns false —
    /// a miss — otherwise.
    [[nodiscard]] bool lookup(GateId g, double delta_w, double width,
                              const Objective& objective, std::uint64_t revision,
                              Replay& out) noexcept;

    /// Records a *finished* (completed or died, never pruned) front's
    /// outcome with its computed-node support. Skips supports over
    /// kMaxSupportNodes. `revision` must be the engine revision the front
    /// was evaluated against.
    void store(GateId g, double delta_w, double width, const Objective& objective,
               std::uint64_t revision, double sensitivity, bool completed_sink,
               std::span<const NodeId> support);

    /// Syncs the cache with the engine after a run()/update():
    /// incremental updates invalidate exactly the entries whose support
    /// overlaps the touched set (changed nodes, their fanout heads, heads
    /// of changed edges); full runs and revision gaps invalidate all.
    /// Cheap (a few branches) while the cache is empty.
    void on_engine_update(const ssta::SstaEngine& engine,
                          const netlist::TimingGraph& graph);

    /// Drops every entry (e.g. after rebuild_timing or a grid change).
    void invalidate_all() noexcept;

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t valid_entries() const noexcept { return valid_count_; }
    [[nodiscard]] std::uint64_t synced_revision() const noexcept {
        return synced_revision_;
    }

  private:
    struct Entry {
        double delta_w{0.0};
        double width{0.0};
        double sensitivity{0.0};
        double objective_p{0.0};
        std::uint32_t stamp{0};  ///< bumped per store; stale index pairs mismatch
        std::uint32_t support_size{0};
        std::uint8_t objective_kind{0};
        bool completed_sink{false};
        bool valid{false};
    };
    /// One inverted-index pair: gate `gate`'s entry depended on this node
    /// when its stamp was `stamp`. Pairs are never eagerly removed; a
    /// pair whose stamp no longer matches the entry's is stale and
    /// skipped (and swept by compact_users once they outnumber the live).
    struct User {
        std::uint32_t gate{0};
        std::uint32_t stamp{0};
    };

    void invalidate_entry(std::uint32_t gate_index) noexcept;
    void touch(NodeId n) noexcept;
    void compact_users();

    std::vector<Entry> entries_;             // per gate
    std::vector<std::vector<User>> users_of_;  // per node
    std::size_t users_live_{0}, users_total_{0};
    std::size_t valid_count_{0};
    std::uint64_t synced_revision_{0};
    bool revision_known_{false};
    Stats stats_;
};

}  // namespace statim::core
