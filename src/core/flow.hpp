// High-level experiment drivers.
//
// These functions package the paper's evaluation procedures so that the
// bench harnesses, the examples and the integration tests share one tested
// implementation:
//
//  * compare_optimizers — Table 1: deterministic baseline for N iterations,
//    then statistical sizing to the same area budget on an identical copy,
//    both evaluated at the 99-percentile on a common grid.
//  * compare_runtime — Table 2: a shared sizing trajectory along which both
//    the brute-force and the pruned selector are timed on identical states
//    (their selections are asserted equal on the way).
#pragma once

#include <string>
#include <vector>

#include "cells/library.hpp"
#include "core/sizers.hpp"
#include "ssta/grid_policy.hpp"
#include "util/running_stats.hpp"

namespace statim::core {

struct ComparisonConfig {
    Objective objective{};
    double delta_w{0.25};
    double max_width{16.0};
    int det_iterations{1000};
    /// Safety cap while the statistical run chases the area budget.
    int stat_max_iterations{4000};
    ssta::GridPolicy grid_policy{};
    SelectorKind selector{SelectorKind::Pruned};
    /// Candidate-evaluation shards. Selections are thread-count
    /// independent, but the *work counters* a paper table reports are
    /// not, so the reproduction default stays sequential; callers opt in
    /// (e.g. via apply_threads_env / apply_threads_flag).
    std::size_t threads{1};
    /// Incremental arrival refresh between iterations (bit-identical).
    bool incremental_ssta{true};
};

struct ComparisonResult {
    std::string circuit;
    std::size_t nodes{0};
    std::size_t edges{0};
    double initial_objective_ns{0.0};   ///< min-size circuit, 99-percentile
    double det_area_increase_pct{0.0};  ///< Table 1 "% inc."
    double stat_area_increase_pct{0.0};
    double det_objective_ns{0.0};       ///< Table 1 "deterministic"
    double stat_objective_ns{0.0};      ///< Table 1 "statistical"
    double improvement_pct{0.0};        ///< Table 1 "% impr."
    DetSizingResult det;
    SizingResult stat;
};

/// Runs the Table 1 experiment for one circuit from the registry.
[[nodiscard]] ComparisonResult compare_optimizers(const std::string& circuit_name,
                                                  const cells::Library& lib,
                                                  const ComparisonConfig& config);

/// Table 1 on explicit netlists (the api::compare_sizings entry point):
/// `nl_det` and `nl_stat` must be identical copies of the circuit at its
/// starting widths; each is sized in place by its optimizer, so the
/// caller keeps both solutions for further analysis.
[[nodiscard]] ComparisonResult compare_optimizers(netlist::Netlist& nl_det,
                                                  netlist::Netlist& nl_stat,
                                                  const cells::Library& lib,
                                                  const ComparisonConfig& config,
                                                  const std::string& name);

struct RuntimeComparisonConfig {
    Objective objective{};
    double delta_w{0.25};
    double max_width{16.0};
    int iterations{20};
    ssta::GridPolicy grid_policy{};
    /// Assert that brute force and pruned pick the same gate each step.
    bool verify_equal{true};
    /// Also time the cone-limited brute force (ablation).
    bool time_cone{false};
    /// Candidate-evaluation shards for both timed selectors. Sequential
    /// by default so the Table 2 pruned-fraction and improvement factors
    /// stay machine-independent; callers opt in to parallelism.
    std::size_t threads{1};
    /// Incremental arrival refresh along the shared trajectory.
    bool incremental_ssta{true};
};

struct IterationTiming {
    int iteration{0};
    double brute_seconds{0.0};
    double pruned_seconds{0.0};
    double cone_seconds{0.0};  ///< only when time_cone
    std::size_t candidates{0};
    std::size_t pruned_candidates{0};
    std::size_t completed{0};
};

struct RuntimeComparisonResult {
    std::string circuit;
    std::size_t nodes{0};
    std::size_t edges{0};
    std::vector<IterationTiming> per_iteration;
    RunningStats brute_seconds;
    RunningStats pruned_seconds;
    RunningStats improvement_factor;
    RunningStats pruned_fraction;  ///< pruned candidates / candidates
};

/// Runs the Table 2 experiment for one circuit from the registry.
[[nodiscard]] RuntimeComparisonResult compare_runtime(
    const std::string& circuit_name, const cells::Library& lib,
    const RuntimeComparisonConfig& config);

}  // namespace statim::core
