// The three optimizers of the paper's evaluation.
//
//  * run_statistical_sizing — coordinate descent on the statistical
//    objective (Fig 6 outer loop): each iteration runs SSTA, finds the
//    highest-sensitivity gate via the pruned or brute-force selector, and
//    sizes it up by Δw; stops when no gate helps, or at the iteration or
//    area budget.
//  * run_deterministic_sizing — the baseline: nominal STA, sensitivities
//    restricted to critical-path gates, incremental arrival updates.
//
// Both start from the minimum-size circuit the caller provides and mutate
// its widths in place; full per-iteration history is recorded for the
// Table 1 / Table 2 / Figure 10 harnesses.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/selector.hpp"

namespace statim::core {

/// Which inner-loop engine finds the most sensitive gate.
enum class SelectorKind { Pruned, BruteFull, BruteCone };

struct StatisticalSizerConfig {
    Objective objective{};
    double delta_w{0.25};
    double max_width{16.0};
    int max_iterations{1000};
    /// Stop once (total area − initial area) reaches this budget.
    double area_budget{std::numeric_limits<double>::infinity()};
    /// Stop once the objective reaches this target (ns); useful for
    /// "smallest circuit meeting T" flows (combine with run_downsizing).
    double target_objective_ns{0.0};
    SelectorKind selector{SelectorKind::Pruned};
    /// How many gates to upsize per iteration (paper §3.3 notes the
    /// algorithm "can be easily modified to size multiple gates").
    int gates_per_iteration{1};
    /// Candidate-evaluation shards per selection (see SelectorConfig) and
    /// level-parallel shards for every SSTA propagation wave
    /// (Context::set_ssta_threads); results are bit-identical for any
    /// value.
    std::size_t threads{1};
    /// Refresh arrivals incrementally after each committed resize (only
    /// the resized gate's fanout cone is re-propagated) instead of
    /// re-running the full SSTA. Bit-identical either way; off is the
    /// reference path kept for A/B benching.
    bool incremental_ssta{true};
};

struct IterationRecord {
    int iteration{0};               ///< 1-based
    GateId gate{GateId::invalid()};
    double sensitivity{0.0};        ///< ns per unit width
    double objective_after_ns{0.0};
    double area_after{0.0};
    double width_after{0.0};        ///< total gate size (paper Fig 10 y-axis)
    SelectorStats stats{};
};

struct SizingResult {
    std::vector<IterationRecord> history;
    double initial_objective_ns{0.0};
    double final_objective_ns{0.0};
    double initial_area{0.0};
    double final_area{0.0};
    int iterations{0};
    std::string stop_reason;
    /// Wall-clock spent refreshing arrivals after committed resizes (the
    /// part the incremental engine accelerates; excludes the initial run).
    double ssta_refresh_seconds{0.0};
    /// compute_arrival evaluations those refreshes performed.
    std::size_t ssta_nodes_recomputed{0};
};

/// Statistical coordinate descent. `ctx` must wrap the circuit at its
/// starting widths; its netlist is modified in place.
[[nodiscard]] SizingResult run_statistical_sizing(Context& ctx,
                                                  const StatisticalSizerConfig& config);

struct DeterministicSizerConfig {
    double delta_w{0.25};
    double max_width{16.0};
    int max_iterations{1000};
    double area_budget{std::numeric_limits<double>::infinity()};
    /// Refresh nominal arrivals incrementally after each committed resize
    /// (only the resized gate's fanout cone is re-relaxed, reusing the
    /// dirty-edge set from DelayCalc::update_for_resize) instead of
    /// re-running the full STA. Bit-identical either way; off is the
    /// reference path kept for A/B benching.
    bool incremental_sta{true};
};

struct DetIterationRecord {
    int iteration{0};
    GateId gate{GateId::invalid()};
    double sensitivity{0.0};        ///< ns of nominal delay per unit width
    double circuit_delay_after_ns{0.0};
    double area_after{0.0};
    double width_after{0.0};
};

struct DetSizingResult {
    std::vector<DetIterationRecord> history;
    double initial_delay_ns{0.0};
    double final_delay_ns{0.0};
    double initial_area{0.0};
    double final_area{0.0};
    int iterations{0};
    std::string stop_reason;
};

/// Deterministic critical-path coordinate descent (the paper's baseline).
[[nodiscard]] DetSizingResult run_deterministic_sizing(
    netlist::Netlist& nl, const cells::Library& lib,
    const DeterministicSizerConfig& config);

}  // namespace statim::core
