// The three optimizers of the paper's evaluation.
//
//  * run_statistical_sizing — coordinate descent on the statistical
//    objective (Fig 6 outer loop): each iteration runs SSTA, finds the
//    highest-sensitivity gate(s) via the pruned or brute-force selector,
//    and sizes them up by Δw — in batched mode (gates_per_iteration > 1)
//    one select_top_k pass yields up to k cone-disjoint picks that are
//    committed together under a single merged-cone incremental refresh.
//    Stops when no gate helps, or at the iteration or area budget.
//  * run_deterministic_sizing — the baseline: nominal STA, sensitivities
//    restricted to critical-path gates, incremental arrival updates.
//
// Both start from the minimum-size circuit the caller provides and mutate
// its widths in place; full per-iteration history is recorded for the
// Table 1 / Table 2 / Figure 10 harnesses.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/selector.hpp"

namespace statim::core {

struct StatisticalSizerConfig {
    Objective objective{};
    double delta_w{0.25};
    double max_width{16.0};
    int max_iterations{1000};
    /// Stop once (total area − initial area) reaches this budget.
    double area_budget{std::numeric_limits<double>::infinity()};
    /// Stop once the objective reaches this target (ns); useful for
    /// "smallest circuit meeting T" flows (combine with run_downsizing).
    double target_objective_ns{0.0};
    SelectorKind selector{SelectorKind::Pruned};
    /// How many gates to upsize per iteration (paper §3.3 notes the
    /// algorithm "can be easily modified to size multiple gates"). With
    /// k > 1 each selector pass returns up to k conflict-free picks in
    /// one sweep (select_top_k + BatchConeFilter) which are committed
    /// together and followed by a single merged-cone refresh; conflicts
    /// trigger a top-up pass on the refreshed state, so every
    /// non-converged iteration still commits exactly k gates. 0 = resolve
    /// from STATIM_BATCH (default 1).
    int gates_per_iteration{0};
    /// Candidate-evaluation shards per selection (see SelectorConfig) and
    /// level-parallel shards for every SSTA propagation wave
    /// (Context::set_ssta_threads); results are bit-identical for any
    /// value.
    std::size_t threads{1};
    /// Refresh arrivals incrementally after each committed resize (only
    /// the resized gate's fanout cone is re-propagated) instead of
    /// re-running the full SSTA. Bit-identical either way; off is the
    /// reference path kept for A/B benching.
    bool incremental_ssta{true};
    /// Criticality floor of the selector's two-phase race (see
    /// SelectorConfig.crit_floor): picks are bitwise identical for any
    /// value. Negative (default) resolves STATIM_CRIT_FLOOR; 0 disables.
    double crit_floor{-1.0};
    /// Replay provably-unchanged candidate outcomes across selector
    /// passes from the context's SensitivityCache (on by default — the
    /// sizing loop is the cross-pass workload the cache exists for;
    /// selections are bitwise identical either way). STATIM_SELECTOR_CACHE=0
    /// force-disables globally.
    bool selector_cache{true};
};

/// One committed gate. Batched iterations append one record per applied
/// gate (each with its own sensitivity and exact per-gate area/width
/// attribution); `objective_after_ns` is the value after the record's
/// *commit batch* refreshed — intra-batch objectives are never
/// materialized, that being the point of batching.
struct IterationRecord {
    int iteration{0};               ///< 1-based outer iteration
    GateId gate{GateId::invalid()};
    double sensitivity{0.0};        ///< ns per unit width
    double objective_after_ns{0.0};
    double area_after{0.0};
    double width_after{0.0};        ///< total gate size (paper Fig 10 y-axis)
    /// Selector accounting, on the first record of each pass (zeroed on
    /// the rest so aggregations never double-count a shared pass).
    SelectorStats stats{};
};

struct SizingResult {
    std::vector<IterationRecord> history;
    double initial_objective_ns{0.0};
    double final_objective_ns{0.0};
    double initial_area{0.0};
    double final_area{0.0};
    int iterations{0};
    std::string stop_reason;
    /// Wall-clock spent refreshing arrivals after committed resizes (the
    /// part the incremental engine accelerates; excludes the initial run).
    double ssta_refresh_seconds{0.0};
    /// compute_arrival evaluations those refreshes performed.
    std::size_t ssta_nodes_recomputed{0};
    /// Selector passes executed: one per commit batch, so k=1 pays one
    /// pass per committed gate while larger batches amortize it.
    std::size_t selector_passes{0};
    /// Ranked candidates dropped within a pass because their fanout cone
    /// overlapped a higher-ranked pick (recovered by a top-up pass).
    std::size_t conflicts_skipped{0};
};

/// Statistical coordinate descent. `ctx` must wrap the circuit at its
/// starting widths; its netlist is modified in place.
[[nodiscard]] SizingResult run_statistical_sizing(Context& ctx,
                                                  const StatisticalSizerConfig& config);

/// Stepwise driver behind run_statistical_sizing. One step() runs one
/// outer iteration (committing up to `gates_per_iteration` gates under a
/// single merged-cone refresh); the trajectory is identical to
/// run_statistical_sizing, which is implemented as `while (loop.step());`.
/// Exposed so callers (api::SizingRun, the CLI) can observe per-iteration
/// state and checkpoint between iterations.
class StatisticalSizerLoop {
  public:
    /// Validates `config`, runs the initial SSTA and records the starting
    /// objective/area. `ctx` must outlive the loop; its netlist is
    /// modified in place by step().
    StatisticalSizerLoop(Context& ctx, const StatisticalSizerConfig& config);

    StatisticalSizerLoop(const StatisticalSizerLoop&) = delete;
    StatisticalSizerLoop& operator=(const StatisticalSizerLoop&) = delete;

    /// Runs one outer iteration; no-op once finished. Returns
    /// !finished(), so `while (loop.step());` runs to the stop condition.
    bool step();

    [[nodiscard]] bool finished() const noexcept { return finished_; }
    /// Outer iterations executed so far (the next step() runs
    /// iteration() + 1).
    [[nodiscard]] int iteration() const noexcept { return iteration_; }
    /// Gates committed per iteration, with gates_per_iteration == 0
    /// resolved from STATIM_BATCH at construction. Checkpoints persist
    /// this resolved value so a resume under a different environment
    /// cannot diverge from the uninterrupted trajectory.
    [[nodiscard]] int batch() const noexcept { return batch_; }
    [[nodiscard]] const SizingResult& result() const noexcept { return result_; }
    [[nodiscard]] const StatisticalSizerConfig& config() const noexcept {
        return config_;
    }

    /// Bookkeeping a resumed loop cannot recompute from the circuit: the
    /// exact running accumulators (area/width are *accumulated* with
    /// per-gate attribution, so recomputing them from the netlist would
    /// not be bitwise identical) plus the result so far.
    struct ResumeState {
        SizingResult result;
        int iteration{0};
        bool finished{false};
        double running_area{0.0};
        double running_width{0.0};
    };
    [[nodiscard]] ResumeState save_state() const;
    /// Overwrites the loop bookkeeping with `state`. The context must
    /// already hold the checkpoint's gate widths with a completed SSTA
    /// (a fresh full run is bit-identical to the incremental state the
    /// original loop carried). The continuation replays the uninterrupted
    /// trajectory exactly.
    void restore_state(ResumeState state);

  private:
    void refresh();

    Context* ctx_;
    StatisticalSizerConfig config_;
    SelectorConfig selector_config_;
    int batch_{1};
    SizingResult result_;
    int iteration_{0};
    bool finished_{false};
    double running_area_{0.0};
    double running_width_{0.0};
    std::vector<ResizeOp> ops_;
};

struct DeterministicSizerConfig {
    double delta_w{0.25};
    double max_width{16.0};
    int max_iterations{1000};
    double area_budget{std::numeric_limits<double>::infinity()};
    /// Refresh nominal arrivals incrementally after each committed resize
    /// (only the resized gate's fanout cone is re-relaxed, reusing the
    /// dirty-edge set from DelayCalc::update_for_resize) instead of
    /// re-running the full STA. Bit-identical either way; off is the
    /// reference path kept for A/B benching.
    bool incremental_sta{true};
};

struct DetIterationRecord {
    int iteration{0};
    GateId gate{GateId::invalid()};
    double sensitivity{0.0};        ///< ns of nominal delay per unit width
    double circuit_delay_after_ns{0.0};
    double area_after{0.0};
    double width_after{0.0};
};

struct DetSizingResult {
    std::vector<DetIterationRecord> history;
    double initial_delay_ns{0.0};
    double final_delay_ns{0.0};
    double initial_area{0.0};
    double final_area{0.0};
    int iterations{0};
    std::string stop_reason;
};

/// Deterministic critical-path coordinate descent (the paper's baseline).
[[nodiscard]] DetSizingResult run_deterministic_sizing(
    netlist::Netlist& nl, const cells::Library& lib,
    const DeterministicSizerConfig& config);

}  // namespace statim::core
