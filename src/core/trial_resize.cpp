#include "core/trial_resize.hpp"

namespace statim::core {

/// One buffer set per thread: trials on a thread never overlap (fronts
/// are seeded while the trial is live, then it is destroyed before the
/// next candidate), so the pool is an exclusive checkout with a private
/// fallback for the nested case. A value thread_local: the destructor
/// only frees plain containers, so teardown order cannot bite, and a
/// dying pool thread frees its buffers instead of leaking them (the
/// ASan/LSan leg checks exactly this).
///
/// Concurrency contract: the buffer set is thread-confined by
/// construction (thread_local, never handed across threads), so no
/// mutex guards it and clang's capability annotations do not apply —
/// the `in_use` flag is a same-thread reentrancy latch, not a lock.
/// The TSan CI leg enforces the confinement.
TrialResize::Buffers& TrialResize::thread_pool_buffers() {
    static thread_local Buffers buffers;
    return buffers;
}

TrialResize::TrialResize(Context& ctx, GateId gate, double delta_w)
    : ctx_(&ctx), gate_(gate), delta_w_(delta_w) {
    Buffers& pooled = thread_pool_buffers();
    if (pooled.in_use) {
        owned_ = std::make_unique<Buffers>();
        buffers_ = owned_.get();
    } else {
        buffers_ = &pooled;
        buffers_->in_use = true;
    }

    try {
        // The trial restores every touched delay bit-for-bit, so it must
        // not pollute the incremental-SSTA dirty list.
        const sta::DelayCalc::SuppressDirty guard(ctx_->delay_calc());
        ctx_->delay_calc().affected_edges_into(gate, buffers_->changed);
        ctx_->edge_delays().snapshot_into(buffers_->changed, buffers_->saved);
        ctx_->nl().gate(gate).width += delta_w_;
        ctx_->delay_calc().recompute_for_resize(gate);
        ctx_->edge_delays().update_edges(buffers_->changed, ctx_->delay_calc());
    } catch (...) {
        // The destructor will not run: return the pooled checkout so the
        // thread's later trials keep their zero-alloc path. (No state
        // rollback is attempted — a throwing trial leaves the context
        // unusable anyway; the pool flag must not leak regardless.)
        if (owned_ == nullptr) buffers_->in_use = false;
        throw;
    }
}

TrialResize::~TrialResize() {
    const sta::DelayCalc::SuppressDirty guard(ctx_->delay_calc());
    ctx_->nl().gate(gate_).width -= delta_w_;
    // Nominal delays recompute deterministically from the restored width;
    // the PDFs are restored from the snapshot (bitwise identical). The
    // snapshot is copied back, not moved, so the pool keeps its buffers.
    ctx_->delay_calc().recompute_for_resize(gate_);
    ctx_->edge_delays().restore_copy(
        buffers_->changed,
        std::span<const prob::Pdf>(buffers_->saved).first(buffers_->changed.size()));
    if (owned_ == nullptr) buffers_->in_use = false;
}

}  // namespace statim::core
