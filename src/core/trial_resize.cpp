#include "core/trial_resize.hpp"

namespace statim::core {

TrialResize::TrialResize(Context& ctx, GateId gate, double delta_w)
    : ctx_(&ctx), gate_(gate), delta_w_(delta_w) {
    // The trial restores every touched delay bit-for-bit, so it must not
    // pollute the incremental-SSTA dirty list.
    const sta::DelayCalc::SuppressDirty guard(ctx_->delay_calc());
    changed_ = ctx_->delay_calc().affected_edges(gate);
    saved_pdfs_ = ctx_->edge_delays().snapshot(changed_);
    ctx_->nl().gate(gate).width += delta_w_;
    (void)ctx_->delay_calc().update_for_resize(gate);
    ctx_->edge_delays().update_edges(changed_, ctx_->delay_calc());
}

TrialResize::~TrialResize() {
    const sta::DelayCalc::SuppressDirty guard(ctx_->delay_calc());
    ctx_->nl().gate(gate_).width -= delta_w_;
    // Nominal delays recompute deterministically from the restored width;
    // the PDFs are restored from the snapshot (bitwise identical).
    (void)ctx_->delay_calc().update_for_resize(gate_);
    ctx_->edge_delays().restore(changed_, std::move(saved_pdfs_));
}

}  // namespace statim::core
