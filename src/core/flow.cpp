#include "core/flow.hpp"

#include "netlist/iscas.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace statim::core {

ComparisonResult compare_optimizers(const std::string& circuit_name,
                                    const cells::Library& lib,
                                    const ComparisonConfig& config) {
    // Two identical minimum-size copies: one per optimizer.
    netlist::Netlist nl_det = netlist::make_iscas(circuit_name, lib);
    netlist::Netlist nl_stat = netlist::make_iscas(circuit_name, lib);
    return compare_optimizers(nl_det, nl_stat, lib, config, circuit_name);
}

ComparisonResult compare_optimizers(netlist::Netlist& nl_det, netlist::Netlist& nl_stat,
                                    const cells::Library& lib,
                                    const ComparisonConfig& config,
                                    const std::string& name) {
    ComparisonResult result;
    result.circuit = name;

    // One grid for every evaluation, chosen from the min-size circuit.
    Context ctx_stat(nl_stat, lib, config.grid_policy);
    const prob::TimeGrid grid = ctx_stat.grid();
    result.nodes = ctx_stat.graph().node_count();
    result.edges = ctx_stat.graph().edge_count();

    // Deterministic baseline for the full iteration budget.
    DeterministicSizerConfig det_cfg;
    det_cfg.delta_w = config.delta_w;
    det_cfg.max_width = config.max_width;
    det_cfg.max_iterations = config.det_iterations;
    result.det = run_deterministic_sizing(nl_det, lib, det_cfg);

    // Statistical optimizer up to the same added area ("same circuit area").
    StatisticalSizerConfig stat_cfg;
    stat_cfg.objective = config.objective;
    stat_cfg.delta_w = config.delta_w;
    stat_cfg.max_width = config.max_width;
    stat_cfg.max_iterations = config.stat_max_iterations;
    stat_cfg.area_budget = result.det.final_area - result.det.initial_area;
    stat_cfg.selector = config.selector;
    stat_cfg.threads = config.threads;
    stat_cfg.incremental_ssta = config.incremental_ssta;
    result.stat = run_statistical_sizing(ctx_stat, stat_cfg);

    result.initial_objective_ns = result.stat.initial_objective_ns;
    result.stat_objective_ns = result.stat.final_objective_ns;
    result.det_area_increase_pct =
        100.0 * (result.det.final_area - result.det.initial_area) /
        result.det.initial_area;
    result.stat_area_increase_pct =
        100.0 * (result.stat.final_area - result.stat.initial_area) /
        result.stat.initial_area;

    // Evaluate the deterministic solution statistically on the same grid.
    {
        Context ctx_det(nl_det, lib, grid);
        ctx_det.run_ssta();
        result.det_objective_ns =
            config.objective.eval_ns(grid, ctx_det.engine().sink_arrival());
    }
    result.improvement_pct = 100.0 *
                             (result.det_objective_ns - result.stat_objective_ns) /
                             result.det_objective_ns;
    return result;
}

RuntimeComparisonResult compare_runtime(const std::string& circuit_name,
                                        const cells::Library& lib,
                                        const RuntimeComparisonConfig& config) {
    RuntimeComparisonResult result;
    result.circuit = circuit_name;

    netlist::Netlist nl = netlist::make_iscas(circuit_name, lib);
    Context ctx(nl, lib, config.grid_policy);
    result.nodes = ctx.graph().node_count();
    result.edges = ctx.graph().edge_count();

    const SelectorConfig sel{config.objective, config.delta_w, config.max_width,
                             config.threads};
    ctx.set_incremental_ssta(config.incremental_ssta);
    ctx.set_ssta_threads(config.threads);
    ctx.run_ssta();

    for (int iter = 1; iter <= config.iterations; ++iter) {
        const Selection brute = select_brute_force(ctx, sel, false);
        const Selection pruned = select_pruned(ctx, sel);

        if (config.verify_equal &&
            (brute.gate != pruned.gate || brute.sensitivity != pruned.sensitivity))
            throw Error("compare_runtime: pruned selection diverged from brute "
                        "force on " + circuit_name + " at iteration " +
                        std::to_string(iter));

        IterationTiming timing;
        timing.iteration = iter;
        timing.brute_seconds = brute.stats.seconds;
        timing.pruned_seconds = pruned.stats.seconds;
        timing.candidates = pruned.stats.candidates;
        timing.pruned_candidates = pruned.stats.pruned;
        timing.completed = pruned.stats.completed;
        if (config.time_cone) {
            const Selection cone = select_brute_force(ctx, sel, true);
            timing.cone_seconds = cone.stats.seconds;
        }
        result.per_iteration.push_back(timing);

        result.brute_seconds.add(timing.brute_seconds);
        result.pruned_seconds.add(timing.pruned_seconds);
        if (timing.pruned_seconds > 0.0)
            result.improvement_factor.add(timing.brute_seconds / timing.pruned_seconds);
        if (timing.candidates > 0)
            result.pruned_fraction.add(static_cast<double>(timing.pruned_candidates) /
                                       static_cast<double>(timing.candidates));

        if (!pruned.gate.is_valid()) break;  // nothing left to size
        (void)ctx.apply_resize(pruned.gate, config.delta_w);
        ctx.refresh_ssta();
    }
    return result;
}

}  // namespace statim::core
