#include "core/sizers.hpp"

#include <algorithm>

#include "sta/sta.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace statim::core {

SizingResult run_statistical_sizing(Context& ctx, const StatisticalSizerConfig& config) {
    if (config.max_iterations < 0)
        throw ConfigError("StatisticalSizerConfig: max_iterations must be >= 0");
    if (!(config.delta_w > 0.0))
        throw ConfigError("StatisticalSizerConfig: delta_w must be positive");
    if (config.gates_per_iteration < 0)
        throw ConfigError(
            "StatisticalSizerConfig: gates_per_iteration must be >= 1 "
            "(or 0 to resolve from STATIM_BATCH)");
    const int batch = config.gates_per_iteration > 0 ? config.gates_per_iteration
                                                     : env_batch();
    const SelectorConfig sel{config.objective, config.delta_w, config.max_width,
                             config.threads};

    SizingResult result;
    ctx.set_incremental_ssta(config.incremental_ssta);
    ctx.set_ssta_threads(config.threads);
    // Timed refresh of the arrivals after a committed batch: incremental
    // merged-cone re-propagation when enabled, full SSTA otherwise.
    const auto refresh = [&ctx, &result] {
        Timer refresh_timer;
        ctx.refresh_ssta();
        result.ssta_refresh_seconds += refresh_timer.seconds();
        result.ssta_nodes_recomputed +=
            ctx.engine().last_update_stats().nodes_recomputed;
    };
    ctx.run_ssta();
    result.initial_objective_ns =
        config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
    result.initial_area = ctx.nl().total_area(ctx.lib());
    result.final_objective_ns = result.initial_objective_ns;
    result.final_area = result.initial_area;
    result.stop_reason = "iteration budget";

    if (result.initial_objective_ns <= config.target_objective_ns) {
        result.stop_reason = "target met";
        return result;
    }

    double running_area = result.initial_area;
    double running_width = ctx.nl().total_width();
    std::vector<ResizeOp> ops;

    for (int iter = 1; iter <= config.max_iterations; ++iter) {
        // One iteration commits up to `batch` gates. Each selector pass
        // returns the best cone-disjoint picks on the current arrivals;
        // they are all applied and the merged fanout cone is refreshed
        // exactly once per pass. Conflicts shorten a pass, never the
        // iteration: the loop re-selects on the refreshed state until the
        // batch is full or no positive-sensitivity gate remains. The
        // refresh after the final commit of a pass is the only one — a
        // converged top-up pass leaves the engine clean and triggers none.
        int applied = 0;
        bool converged = false;
        while (applied < batch) {
            const TopKSelection top = select_top_k(
                ctx, sel, static_cast<std::size_t>(batch - applied), config.selector);
            ++result.selector_passes;
            result.conflicts_skipped += top.conflicts_skipped;
            if (top.picks.empty()) {
                converged = true;
                break;
            }

            ops.clear();
            for (const RankedPick& pick : top.picks)
                ops.push_back({pick.gate, config.delta_w});
            (void)ctx.apply_resizes(ops);
            refresh();

            const double objective_after =
                config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
            for (std::size_t i = 0; i < top.picks.size(); ++i) {
                const RankedPick& pick = top.picks[i];
                const auto& gate = ctx.nl().gate(pick.gate);
                // Exact per-gate attribution: area and width scale
                // linearly in the width step (cell_area = area * w).
                running_area += cells::cell_area(ctx.lib().cell(gate.cell),
                                                 config.delta_w);
                running_width += config.delta_w;

                IterationRecord record;
                record.iteration = iter;
                record.gate = pick.gate;
                record.sensitivity = pick.sensitivity;
                record.objective_after_ns = objective_after;
                record.area_after = running_area;
                record.width_after = running_width;
                if (i == 0) record.stats = top.stats;
                result.history.push_back(record);

                STATIM_DEBUG() << "stat iter " << iter << " gate " << gate.name
                               << " sens " << record.sensitivity << " obj "
                               << record.objective_after_ns;
            }
            applied += static_cast<int>(top.picks.size());
        }
        if (applied == 0) {
            result.stop_reason = "converged";
            break;
        }

        result.iterations = iter;
        result.final_objective_ns =
            config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
        result.final_area = ctx.nl().total_area(ctx.lib());

        if (result.final_objective_ns <= config.target_objective_ns) {
            result.stop_reason = "target met";
            break;
        }
        if (result.final_area - result.initial_area >= config.area_budget) {
            result.stop_reason = "area budget";
            break;
        }
        if (converged) {
            result.stop_reason = "converged";
            break;
        }
    }
    if (config.max_iterations == 0) result.stop_reason = "iteration budget";
    return result;
}

DetSizingResult run_deterministic_sizing(netlist::Netlist& nl,
                                         const cells::Library& lib,
                                         const DeterministicSizerConfig& config) {
    if (!(config.delta_w > 0.0))
        throw ConfigError("DeterministicSizerConfig: delta_w must be positive");

    const netlist::TimingGraph graph(nl);
    sta::DelayCalc dc(graph, lib);

    DetSizingResult result;
    sta::StaResult sta = sta::run_sta(dc);
    result.initial_delay_ns = sta.circuit_delay_ns;
    result.initial_area = nl.total_area(lib);
    result.final_delay_ns = result.initial_delay_ns;
    result.final_area = result.initial_area;
    result.stop_reason = "iteration budget";

    std::vector<double> scratch_arrival;
    for (int iter = 1; iter <= config.max_iterations; ++iter) {
        const std::vector<EdgeId> path = sta::critical_path(dc, sta);
        const std::vector<GateId> on_path = sta::gates_on_path(graph, path);

        GateId best = GateId::invalid();
        double best_sens = 0.0;
        for (GateId g : on_path) {
            if (nl.gate(g).width + config.delta_w > config.max_width + 1e-12) continue;
            // Trial resize with an incremental arrival update on a copy.
            nl.gate(g).width += config.delta_w;
            const std::vector<EdgeId> changed = dc.update_for_resize(g);
            scratch_arrival = sta.arrival;
            const double new_delay =
                sta::update_arrival_after_change(dc, changed, scratch_arrival);
            nl.gate(g).width -= config.delta_w;
            (void)dc.update_for_resize(g);

            const double sens = (sta.circuit_delay_ns - new_delay) / config.delta_w;
            if (sens > best_sens || (sens == best_sens && best.is_valid() && g < best)) {
                best = g;
                best_sens = sens;
            }
        }
        if (!best.is_valid() || !(best_sens > 0.0)) {
            result.stop_reason = on_path.empty() ? "width capped" : "converged";
            break;
        }

        nl.gate(best).width += config.delta_w;
        const std::vector<EdgeId> committed = dc.update_for_resize(best);
        if (config.incremental_sta) {
            // The sizing loop only ever reads arrivals (critical_path and
            // the trial relaxations), so re-relaxing the committed resize's
            // fanout cone is enough; the wave cuts where arrivals are
            // reproduced exactly — bit-identical to the full re-run.
            sta.circuit_delay_ns =
                sta::update_arrival_after_change(dc, committed, sta.arrival);
        } else {
            sta = sta::run_sta(dc);
        }

        result.iterations = iter;
        result.final_delay_ns = sta.circuit_delay_ns;
        result.final_area = nl.total_area(lib);

        DetIterationRecord record;
        record.iteration = iter;
        record.gate = best;
        record.sensitivity = best_sens;
        record.circuit_delay_after_ns = result.final_delay_ns;
        record.area_after = result.final_area;
        record.width_after = nl.total_width();
        result.history.push_back(record);

        if (result.final_area - result.initial_area >= config.area_budget) {
            result.stop_reason = "area budget";
            break;
        }
    }
    return result;
}

}  // namespace statim::core
