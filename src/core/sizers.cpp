#include "core/sizers.hpp"

#include <algorithm>

#include "sta/sta.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace statim::core {

StatisticalSizerLoop::StatisticalSizerLoop(Context& ctx,
                                           const StatisticalSizerConfig& config)
    : ctx_(&ctx), config_(config) {
    if (config.max_iterations < 0)
        throw ConfigError("StatisticalSizerConfig: max_iterations must be >= 0");
    if (!(config.delta_w > 0.0))
        throw ConfigError("StatisticalSizerConfig: delta_w must be positive");
    if (config.gates_per_iteration < 0)
        throw ConfigError(
            "StatisticalSizerConfig: gates_per_iteration must be >= 1 "
            "(or 0 to resolve from STATIM_BATCH)");
    batch_ = config.gates_per_iteration > 0 ? config.gates_per_iteration : env_batch();
    selector_config_ = SelectorConfig{config.objective,  config.delta_w,
                                      config.max_width,  config.threads,
                                      config.crit_floor, config.selector_cache};

    ctx.set_incremental_ssta(config.incremental_ssta);
    ctx.set_ssta_threads(config.threads);
    ctx.run_ssta();
    result_.initial_objective_ns =
        config.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
    result_.initial_area = ctx.nl().total_area(ctx.lib());
    result_.final_objective_ns = result_.initial_objective_ns;
    result_.final_area = result_.initial_area;
    result_.stop_reason = "iteration budget";

    if (result_.initial_objective_ns <= config.target_objective_ns) {
        result_.stop_reason = "target met";
        finished_ = true;
    }
    if (config.max_iterations == 0) finished_ = true;

    running_area_ = result_.initial_area;
    running_width_ = ctx.nl().total_width();
}

// Timed refresh of the arrivals after a committed batch: incremental
// merged-cone re-propagation when enabled, full SSTA otherwise.
void StatisticalSizerLoop::refresh() {
    Timer refresh_timer;
    ctx_->refresh_ssta();
    result_.ssta_refresh_seconds += refresh_timer.seconds();
    result_.ssta_nodes_recomputed +=
        ctx_->engine().last_update_stats().nodes_recomputed;
}

bool StatisticalSizerLoop::step() {
    if (finished_) return false;
    Context& ctx = *ctx_;
    const int iter = ++iteration_;

    // One iteration commits up to `batch_` gates. Each selector pass
    // returns the best cone-disjoint picks on the current arrivals; they
    // are all applied and the merged fanout cone is refreshed exactly
    // once per pass. Conflicts shorten a pass, never the iteration: the
    // loop re-selects on the refreshed state until the batch is full or
    // no positive-sensitivity gate remains. The refresh after the final
    // commit of a pass is the only one — a converged top-up pass leaves
    // the engine clean and triggers none.
    int applied = 0;
    bool converged = false;
    while (applied < batch_) {
        const TopKSelection top =
            select_top_k(ctx, selector_config_,
                         static_cast<std::size_t>(batch_ - applied), config_.selector);
        ++result_.selector_passes;
        result_.conflicts_skipped += top.conflicts_skipped;
        if (top.picks.empty()) {
            converged = true;
            break;
        }

        ops_.clear();
        for (const RankedPick& pick : top.picks)
            ops_.push_back({pick.gate, config_.delta_w});
        (void)ctx.apply_resizes(ops_);
        refresh();

        const double objective_after =
            config_.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
        for (std::size_t i = 0; i < top.picks.size(); ++i) {
            const RankedPick& pick = top.picks[i];
            const auto& gate = ctx.nl().gate(pick.gate);
            // Exact per-gate attribution: area and width scale linearly
            // in the width step (cell_area = area * w).
            running_area_ +=
                cells::cell_area(ctx.lib().cell(gate.cell), config_.delta_w);
            running_width_ += config_.delta_w;

            IterationRecord record;
            record.iteration = iter;
            record.gate = pick.gate;
            record.sensitivity = pick.sensitivity;
            record.objective_after_ns = objective_after;
            record.area_after = running_area_;
            record.width_after = running_width_;
            if (i == 0) record.stats = top.stats;
            result_.history.push_back(record);

            STATIM_DEBUG() << "stat iter " << iter << " gate " << gate.name
                           << " sens " << record.sensitivity << " obj "
                           << record.objective_after_ns;
        }
        applied += static_cast<int>(top.picks.size());
    }
    if (applied == 0) {
        result_.stop_reason = "converged";
        finished_ = true;
        return false;
    }

    result_.iterations = iter;
    result_.final_objective_ns =
        config_.objective.eval_ns(ctx.grid(), ctx.engine().sink_arrival());
    result_.final_area = ctx.nl().total_area(ctx.lib());

    if (result_.final_objective_ns <= config_.target_objective_ns) {
        result_.stop_reason = "target met";
        finished_ = true;
    } else if (result_.final_area - result_.initial_area >= config_.area_budget) {
        result_.stop_reason = "area budget";
        finished_ = true;
    } else if (converged) {
        result_.stop_reason = "converged";
        finished_ = true;
    } else if (iter >= config_.max_iterations) {
        finished_ = true;  // stop_reason stays "iteration budget"
    }
    return !finished_;
}

StatisticalSizerLoop::ResumeState StatisticalSizerLoop::save_state() const {
    ResumeState state;
    state.result = result_;
    state.iteration = iteration_;
    state.finished = finished_;
    state.running_area = running_area_;
    state.running_width = running_width_;
    return state;
}

void StatisticalSizerLoop::restore_state(ResumeState state) {
    result_ = std::move(state.result);
    iteration_ = state.iteration;
    finished_ = state.finished;
    running_area_ = state.running_area;
    running_width_ = state.running_width;
}

SizingResult run_statistical_sizing(Context& ctx, const StatisticalSizerConfig& config) {
    StatisticalSizerLoop loop(ctx, config);
    while (loop.step()) {
    }
    return loop.result();
}

DetSizingResult run_deterministic_sizing(netlist::Netlist& nl,
                                         const cells::Library& lib,
                                         const DeterministicSizerConfig& config) {
    if (!(config.delta_w > 0.0))
        throw ConfigError("DeterministicSizerConfig: delta_w must be positive");

    const netlist::TimingGraph graph(nl);
    sta::DelayCalc dc(graph, lib);

    DetSizingResult result;
    sta::StaResult sta = sta::run_sta(dc);
    result.initial_delay_ns = sta.circuit_delay_ns;
    result.initial_area = nl.total_area(lib);
    result.final_delay_ns = result.initial_delay_ns;
    result.final_area = result.initial_area;
    result.stop_reason = "iteration budget";

    std::vector<double> scratch_arrival;
    for (int iter = 1; iter <= config.max_iterations; ++iter) {
        const std::vector<EdgeId> path = sta::critical_path(dc, sta);
        const std::vector<GateId> on_path = sta::gates_on_path(graph, path);

        GateId best = GateId::invalid();
        double best_sens = 0.0;
        for (GateId g : on_path) {
            if (nl.gate(g).width + config.delta_w > config.max_width + 1e-12) continue;
            // Trial resize with an incremental arrival update on a copy.
            nl.gate(g).width += config.delta_w;
            const std::vector<EdgeId> changed = dc.update_for_resize(g);
            scratch_arrival = sta.arrival;
            const double new_delay =
                sta::update_arrival_after_change(dc, changed, scratch_arrival);
            nl.gate(g).width -= config.delta_w;
            (void)dc.update_for_resize(g);

            const double sens = (sta.circuit_delay_ns - new_delay) / config.delta_w;
            if (sens > best_sens || (sens == best_sens && best.is_valid() && g < best)) {
                best = g;
                best_sens = sens;
            }
        }
        if (!best.is_valid() || !(best_sens > 0.0)) {
            result.stop_reason = on_path.empty() ? "width capped" : "converged";
            break;
        }

        nl.gate(best).width += config.delta_w;
        const std::vector<EdgeId> committed = dc.update_for_resize(best);
        if (config.incremental_sta) {
            // The sizing loop only ever reads arrivals (critical_path and
            // the trial relaxations), so re-relaxing the committed resize's
            // fanout cone is enough; the wave cuts where arrivals are
            // reproduced exactly — bit-identical to the full re-run.
            sta.circuit_delay_ns =
                sta::update_arrival_after_change(dc, committed, sta.arrival);
        } else {
            sta = sta::run_sta(dc);
        }

        result.iterations = iter;
        result.final_delay_ns = sta.circuit_delay_ns;
        result.final_area = nl.total_area(lib);

        DetIterationRecord record;
        record.iteration = iter;
        record.gate = best;
        record.sensitivity = best_sens;
        record.circuit_delay_after_ns = result.final_delay_ns;
        record.area_after = result.final_area;
        record.width_after = nl.total_width();
        result.history.push_back(record);

        if (result.final_area - result.initial_area >= config.area_budget) {
            result.stop_reason = "area budget";
            break;
        }
    }
    return result;
}

}  // namespace statim::core
