// Perturbation fronts — the paper's core data structure (Sections 3.2/3.3).
//
// For a candidate gate x (temporarily upsized by Δw), the front tracks the
// set of nodes whose arrival-time CDFs differ from the unperturbed SSTA
// solution (the paper's A'set), advancing level by level toward the sink
// (PropagateOneLevel, Fig 9). Each computed node i carries the step-CDF
// perturbation
//   Δi = max_p [T_step(Ai,p) − T_step(A'i,p)]   (whole bins)
// and by Theorems 1–4 the maximum Δ over the alive front nodes can only
// shrink as the front advances, so
//   Smx = (max(Δmx, 0) + 2 bins) / Δw  >=  Sx = δnf(p*) / Δw
// is a monotonically tightening upper bound on x's true sensitivity. The
// zero-clamp covers worsening perturbations (whose negative Δ a max
// against an unperturbed side input can absorb back to zero); one bin of
// slack covers the gap between the step CDF the bound lives on and the
// interpolated percentile the objective reads, and one more covers
// floating-point knot ties (see front.cpp). The selector uses Smx to prune
// candidates without propagating them to the sink.
//
// Bookkeeping mirrors the paper: a node's entry stays alive until all of
// its fanouts have computed their perturbed arrivals (fo_count), after
// which it leaves the front. Nodes whose perturbed arrival equals the
// unperturbed one bit-for-bit are dropped immediately (the perturbation
// was absorbed by a max); if the whole front dies, the sensitivity is
// exactly zero.
//
// Mechanically the drain is flat and allocation-free at steady state
// (front_state.hpp): entries live in a pooled append-only table with
// their PDFs in a front-owned arena pair, node→entry resolution goes
// through the thread workspace's dense epoch-stamped slots, and the
// frontier is a per-level slice extraction instead of a priority queue.
// One level's node set is evaluated as a wave sharded over the global
// pool — the same machinery as SstaEngine's level waves — with a serial
// node-id-ordered commit, so sensitivities, bounds, footprints and the
// sink CDF are bit-identical for any thread count (and to the original
// map-and-heap drain, which tests/test_front_drain.cpp pins).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.hpp"
#include "core/front_state.hpp"
#include "core/objective.hpp"
#include "core/trial_resize.hpp"
#include "prob/pdf.hpp"

namespace statim::core {

class PerturbationFront {
  public:
    struct Stats {
        std::size_t levels_stepped{0};
        std::size_t nodes_computed{0};
        std::size_t dead_drops{0};
    };

    /// The paper's Initialize (Fig 7): seeds the front from the edges the
    /// live `trial` perturbs and advances it through gate x's own level.
    /// Must be constructed while `trial` is active; after construction the
    /// trial may be destroyed (the front never re-reads perturbed edges).
    /// `record_footprint` additionally collects computed_nodes() /
    /// changed_nodes() — off by default; used by the batch-commit
    /// property tests to pin the front/engine absorption equivalence.
    /// `support_cap` > 0 captures up to that many computed nodes into the
    /// pooled state (support_nodes(), for the SensitivityCache); unlike
    /// footprint recording it allocates nothing at steady state.
    PerturbationFront(Context& ctx, const Objective& objective,
                      const TrialResize& trial, bool record_footprint = false,
                      std::uint32_t support_cap = 0);
    ~PerturbationFront();

    PerturbationFront(const PerturbationFront&) = delete;
    PerturbationFront& operator=(const PerturbationFront&) = delete;
    /// Movable so the selector can pool fronts by value in a reused
    /// vector (the moved-from front is released and inert).
    PerturbationFront(PerturbationFront&& other) noexcept;
    PerturbationFront& operator=(PerturbationFront&&) = delete;

    /// Returns the pooled state early (before destruction) once the
    /// front's numbers have been read; sink_pdf() becomes invalid and
    /// propagate_one_level a no-op. Idempotent.
    void release() noexcept;
    [[nodiscard]] bool released() const noexcept { return state_ == nullptr; }

    /// Advances the shallowest pending level (Fig 9), waving the level's
    /// node set over ctx.ssta_threads() shards. No-op when completed.
    void propagate_one_level(const Context& ctx);

    /// True once the front reached the sink or died out.
    [[nodiscard]] bool completed() const noexcept { return completed_; }
    /// Smx in ns per unit width; only meaningful while not completed.
    [[nodiscard]] double bound_sensitivity() const noexcept { return bound_sens_; }
    /// Sx in ns per unit width; only meaningful once completed.
    [[nodiscard]] double sensitivity() const noexcept { return sensitivity_; }
    /// Perturbed sink arrival (invalid view if the front died early).
    /// Lives in the front's pooled state: valid until the front is
    /// destroyed — copy via to_pdf() to keep it longer.
    [[nodiscard]] prob::PdfView sink_pdf() const noexcept { return sink_view_; }

    [[nodiscard]] GateId gate() const noexcept { return gate_; }
    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

    /// Nodes whose perturbed arrival this front evaluated, in computation
    /// order (footprint recording only; empty otherwise).
    [[nodiscard]] const std::vector<NodeId>& computed_nodes() const noexcept {
        return computed_nodes_;
    }
    /// The computed nodes whose perturbed arrival differs bit-for-bit
    /// from the unperturbed solution — exactly the arrivals committing
    /// the same resize would change: SstaEngine::update runs the same
    /// arithmetic over the same seeds and cuts at the same absorptions
    /// (asserted by tests/test_batch_commit.cpp). Footprint recording
    /// only; empty otherwise.
    [[nodiscard]] const std::vector<NodeId>& changed_nodes() const noexcept {
        return changed_nodes_;
    }

    /// The captured computed-node support (support_cap recording only;
    /// empty otherwise). Points into the pooled state: read before
    /// release()/destruction.
    [[nodiscard]] std::span<const NodeId> support_nodes() const noexcept {
        return state_ != nullptr ? std::span<const NodeId>(state_->support)
                                 : std::span<const NodeId>{};
    }
    /// True when the front computed more nodes than support_cap — the
    /// capture is incomplete and must not be cached.
    [[nodiscard]] bool support_overflow() const noexcept { return support_overflow_; }

  private:
    void schedule(const Context& ctx, FrontWorkspace& ws, NodeId n);
    void process_level(const Context& ctx, FrontWorkspace& ws);
    void commit_node(const Context& ctx, FrontWorkspace& ws, NodeId n,
                     const FrontWorkspace::NodeResult& res);
    void refresh_state();

    GateId gate_;
    double delta_w_;
    double dt_ns_;
    Objective objective_;

    FrontState* state_;   // pooled; released on destruction
    std::uint64_t uid_;

    double bound_sens_{0.0};
    double sensitivity_{0.0};
    std::uint32_t support_cap_{0};
    bool completed_{false};
    bool record_footprint_{false};
    bool support_overflow_{false};
    prob::PdfView sink_view_{};
    Stats stats_;
    std::vector<NodeId> computed_nodes_, changed_nodes_;
};

}  // namespace statim::core
