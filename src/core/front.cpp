#include "core/front.hpp"

#include <algorithm>

#include "prob/ops.hpp"
#include "util/error.hpp"

namespace statim::core {

PerturbationFront::PerturbationFront(Context& ctx, const Objective& objective,
                                     const TrialResize& trial, bool record_footprint)
    : gate_(trial.gate()),
      delta_w_(trial.delta_w()),
      dt_ns_(ctx.grid().dt_ns()),
      objective_(objective),
      record_footprint_(record_footprint) {
    if (!ctx.engine().has_run())
        throw ConfigError("PerturbationFront: run SSTA before constructing fronts");

    // Seed: the heads of every perturbed edge (gate x's output node and the
    // output nodes of its fanin drivers). All lie at levels <= x's level.
    const auto& graph = ctx.graph();
    for (EdgeId e : trial.changed_edges()) schedule(ctx, graph.edge(e).to);

    // Fig 7 steps 4-5: advance through x's own level while the perturbed
    // edge PDFs are still live, so no later step re-reads them.
    const std::uint32_t x_level = graph.gate_level(gate_);
    while (!completed_ && !pending_.empty() && pending_.top().first <= x_level)
        process_level(ctx);
    refresh_state();
}

void PerturbationFront::schedule(const Context& ctx, NodeId n) {
    const auto [it, inserted] = aset_.try_emplace(n.value);
    (void)it;
    if (inserted) pending_.emplace(ctx.graph().level(n), n.value);
}

void PerturbationFront::propagate_one_level(const Context& ctx) {
    if (completed_) return;
    process_level(ctx);
    refresh_state();
}

void PerturbationFront::process_level(const Context& ctx) {
    if (pending_.empty()) return;
    const std::uint32_t level = pending_.top().first;
    // Nodes pop in ascending id within the level (deterministic order).
    while (!pending_.empty() && pending_.top().first == level) {
        const NodeId n{pending_.top().second};
        pending_.pop();
        compute_node(ctx, n);
        if (completed_) return;  // sink reached (it is alone on its level)
    }
    ++stats_.levels_stepped;
}

void PerturbationFront::compute_node(const Context& ctx, NodeId n) {
    const auto& graph = ctx.graph();
    const auto& engine = ctx.engine();

    const auto arrival_of = [&](NodeId u) -> const prob::Pdf& {
        const auto it = aset_.find(u.value);
        if (it != aset_.end() && it->second.computed) return it->second.pdf;
        return engine.arrival(u);
    };
    const auto delay_of = [&ctx](EdgeId e) -> const prob::Pdf& {
        return ctx.edge_delays().pdf(e);
    };

    prob::Pdf perturbed = ssta::compute_arrival(graph, n, arrival_of, delay_of);
    ++stats_.nodes_computed;

    const prob::Pdf& base = engine.arrival(n);
    const bool dead = perturbed == base;

    if (record_footprint_) {
        computed_nodes_.push_back(n);
        if (!dead) changed_nodes_.push_back(n);
    }

    if (n == netlist::TimingGraph::sink()) {
        sensitivity_ = dead ? 0.0
                            : (objective_.eval_bins(base) - objective_.eval_bins(perturbed)) *
                                  dt_ns_ / delta_w_;
        sink_pdf_ = std::move(perturbed);
        completed_ = true;
        aset_.erase(n.value);
    } else if (dead) {
        ++stats_.dead_drops;
        aset_.erase(n.value);  // drop the placeholder; fanouts stay global
    } else {
        Entry& entry = aset_[n.value];
        entry.delta_bins =
            static_cast<double>(prob::max_percentile_shift_bins(base, perturbed));
        entry.pdf = std::move(perturbed);
        entry.computed = true;
        entry.fo_remaining = static_cast<std::uint32_t>(graph.out_edges(n).size());
        for (EdgeId e : graph.out_edges(n)) schedule(ctx, graph.edge(e).to);
    }

    // This node consumed each perturbed predecessor once (fo_count, Fig 9
    // steps 13-18); predecessors with no remaining fanouts leave the front.
    for (EdgeId e : graph.in_edges(n)) {
        const NodeId u = graph.edge(e).from;
        const auto it = aset_.find(u.value);
        if (it == aset_.end() || !it->second.computed) continue;
        if (--it->second.fo_remaining == 0) aset_.erase(it);
    }
}

void PerturbationFront::refresh_state() {
    if (completed_) return;
    double delta_mx = 0.0;
    bool any = false;
    for (const auto& [node, entry] : aset_) {
        if (!entry.computed) continue;
        delta_mx = any ? std::max(delta_mx, entry.delta_bins) : entry.delta_bins;
        any = true;
    }
    if (!any && pending_.empty()) {
        // The perturbation was absorbed before reaching the sink.
        completed_ = true;
        sensitivity_ = 0.0;
        return;
    }
    // Three sound adjustments to the raw front maximum:
    //  * clamp at zero — a worsening perturbation (negative Δ, e.g. pure
    //    fanin-load damage) can be absorbed back to Δ = 0 by a max with an
    //    unperturbed side input (Theorem 3's implicit Δ = 0 inputs);
    //  * +1 bin — Δ lives on the step inverse CDF (monotone under
    //    propagation), while the objective reads interpolated percentiles,
    //    which sit strictly within one bin of the step values;
    //  * +1 bin — floating-point knot ties between the structurally
    //    related perturbed/unperturbed CDFs can flip the step metric by a
    //    bin across an operation.
    bound_sens_ = (std::max(delta_mx, 0.0) + 2.0) * dt_ns_ / delta_w_;
}

}  // namespace statim::core
