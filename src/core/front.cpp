#include "core/front.hpp"

#include <algorithm>
#include <cassert>

#include "prob/ops.hpp"
#include "ssta/engine.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::core {

PerturbationFront::PerturbationFront(Context& ctx, const Objective& objective,
                                     const TrialResize& trial, bool record_footprint,
                                     std::uint32_t support_cap)
    : gate_(trial.gate()),
      delta_w_(trial.delta_w()),
      dt_ns_(ctx.grid().dt_ns()),
      objective_(objective),
      state_(acquire_front_state()),
      uid_(next_front_uid()),
      support_cap_(support_cap),
      record_footprint_(record_footprint) {
    if (!ctx.engine().has_run()) {
        release_front_state(state_);  // the destructor will not run
        state_ = nullptr;
        throw ConfigError("PerturbationFront: run SSTA before constructing fronts");
    }

    // Seed: the heads of every perturbed edge (gate x's output node and the
    // output nodes of its fanin drivers). All lie at levels <= x's level.
    const auto& graph = ctx.graph();
    FrontWorkspace& ws = front_workspace();
    ws.bind(graph.node_count());
    ws.activate(*state_, uid_);
    for (EdgeId e : trial.changed_edges()) schedule(ctx, ws, graph.edge(e).to);

    // Fig 7 steps 4-5: advance through x's own level while the perturbed
    // edge PDFs are still live, so no later step re-reads them.
    const std::uint32_t x_level = graph.gate_level(gate_);
    while (!completed_ && !state_->pending.empty() &&
           state_->min_pending_level <= x_level)
        process_level(ctx, ws);
    refresh_state();
}

PerturbationFront::~PerturbationFront() { release_front_state(state_); }

PerturbationFront::PerturbationFront(PerturbationFront&& other) noexcept
    : gate_(other.gate_),
      delta_w_(other.delta_w_),
      dt_ns_(other.dt_ns_),
      objective_(other.objective_),
      state_(other.state_),
      uid_(other.uid_),
      bound_sens_(other.bound_sens_),
      sensitivity_(other.sensitivity_),
      support_cap_(other.support_cap_),
      completed_(other.completed_),
      record_footprint_(other.record_footprint_),
      support_overflow_(other.support_overflow_),
      sink_view_(other.sink_view_),
      stats_(other.stats_),
      computed_nodes_(std::move(other.computed_nodes_)),
      changed_nodes_(std::move(other.changed_nodes_)) {
    other.state_ = nullptr;
    other.sink_view_ = {};
    other.completed_ = true;
}

void PerturbationFront::release() noexcept {
    release_front_state(state_);
    state_ = nullptr;
    sink_view_ = {};  // pointed into the released state's arenas
    completed_ = true;
}

void PerturbationFront::schedule(const Context& ctx, FrontWorkspace& ws, NodeId n) {
    if (ws.entry_index(n) != 0) return;  // already tracked by this front
    auto& entries = state_->entries;
    const auto idx = static_cast<std::uint32_t>(entries.size());
    entries.push_back(FrontEntry{});
    entries.back().node = n;
    ws.set_entry_index(n, idx + 1);
    state_->pending.push_back(idx);
    state_->min_pending_level =
        std::min(state_->min_pending_level, ctx.graph().level(n));
}

void PerturbationFront::propagate_one_level(const Context& ctx) {
    if (completed_) return;
    FrontWorkspace& ws = front_workspace();
    ws.bind(ctx.graph().node_count());
    ws.activate(*state_, uid_);
    process_level(ctx, ws);
    refresh_state();
}

void PerturbationFront::process_level(const Context& ctx, FrontWorkspace& ws) {
    FrontState& st = *state_;
    if (st.pending.empty()) return;
    const auto& graph = ctx.graph();
    const std::uint32_t level = st.min_pending_level;

    // Extract this level's slice of the pending list (swap-remove; the
    // canonical order is restored by the sort) and find the next minimum.
    ws.level_nodes.clear();
    std::uint32_t next_min = FrontState::kNoLevel;
    for (std::size_t i = 0; i < st.pending.size();) {
        const FrontEntry& e = st.entries[st.pending[i]];
        const std::uint32_t l = graph.level(e.node);
        if (l == level) {
            ws.level_nodes.push_back(e.node);
            st.pending[i] = st.pending.back();
            st.pending.pop_back();
        } else {
            next_min = std::min(next_min, l);
            ++i;
        }
    }
    st.min_pending_level = next_min;
    // Nodes are processed in ascending id within the level (the serial
    // reference order — commits and footprints are deterministic).
    std::sort(ws.level_nodes.begin(), ws.level_nodes.end(),
              [](NodeId a, NodeId b) { return a.value < b.value; });

    const auto& engine = ctx.engine();
    const auto& delays = ctx.edge_delays();
    const std::size_t count = ws.level_nodes.size();
    ws.results.resize(count);

    // Wave phase: every node of the level reads only strictly-lower-level
    // state (alive entries and base arrivals), all frozen for the wave's
    // duration, and writes its own dedicated result slot — so the shard
    // partition cannot change a single bit. An alive predecessor cannot
    // reach fo_remaining 0 before the whole level commits (this level's
    // consumers are part of the count), which is why the serial
    // reference's interleaved bookkeeping reads the exact same entries.
    const auto arrival_of = [&ws, &engine, this](NodeId u) -> prob::PdfView {
        const std::uint32_t idx = ws.entry_index(u);
        if (idx != 0) {
            const FrontEntry& e = state_->entries[idx - 1];
            if (e.status == FrontEntry::Status::Alive) return e.pdf;
        }
        return engine.arrival(u);
    };
    const auto delay_of = [&delays](EdgeId e) -> prob::PdfView {
        return delays.pdf(e);
    };
    const std::size_t shards = ssta::wave_shard_count(ctx.ssta_threads(), count);
    for (std::size_t s = 0; s < shards; ++s)
        ws.shard_arena(s);  // materialize before the workers race on reads
    const auto run_shard = [&](std::size_t s) {
        prob::PdfArena& results_arena = ws.shard_arena(s);
        results_arena.reset();
        const std::size_t begin = s * count / shards;
        const std::size_t end = (s + 1) * count / shards;
        for (std::size_t i = begin; i < end; ++i) {
            const NodeId n = ws.level_nodes[i];
            prob::PdfArena& scratch = prob::thread_arena();
            const prob::ScopedRewind scope(scratch);
            const prob::PdfView perturbed =
                ssta::compute_arrival_into(graph, n, arrival_of, delay_of, scratch);
            const prob::PdfView base = engine.arrival(n);
            FrontWorkspace::NodeResult& res = ws.results[i];
            res.dead = perturbed == base;
            const bool is_sink = n == netlist::TimingGraph::sink();
            // A dead non-sink is dropped without storing; the sink PDF is
            // kept even when dead (it reached the sink — the selector
            // counts that as Completed, with sensitivity exactly 0).
            res.pdf = (res.dead && !is_sink)
                          ? prob::PdfView{}
                          : prob::copy_into(results_arena, perturbed);
            res.delta = (!res.dead && !is_sink)
                            ? prob::max_percentile_shift_bins(base, perturbed)
                            : 0;
        }
    };
    if (shards <= 1) {
        run_shard(0);  // inline: no pool round-trip, no batch allocation
    } else {
        global_pool().parallel_for(shards, run_shard);
    }

    // Commit phase: serial, ascending node id — bit-for-bit the serial
    // reference's bookkeeping.
    for (std::size_t i = 0; i < count; ++i) {
        commit_node(ctx, ws, ws.level_nodes[i], ws.results[i]);
        if (completed_) return;  // sink reached (it is alone on its level)
    }
    ++stats_.levels_stepped;
    st.compact_if_worthwhile();
}

void PerturbationFront::commit_node(const Context& ctx, FrontWorkspace& ws, NodeId n,
                                    const FrontWorkspace::NodeResult& res) {
    const auto& graph = ctx.graph();
    ++stats_.nodes_computed;

    if (record_footprint_) {
        computed_nodes_.push_back(n);
        if (!res.dead) changed_nodes_.push_back(n);
    }
    if (support_cap_ != 0) {
        if (state_->support.size() < support_cap_)
            state_->support.push_back(n);
        else
            support_overflow_ = true;
    }

    const std::uint32_t idx = ws.entry_index(n);
    assert(idx != 0);  // n was pending, so it is tracked

    if (n == netlist::TimingGraph::sink()) {
        sink_view_ = state_->store_pdf(res.pdf);
        sensitivity_ = res.dead
                           ? 0.0
                           : (objective_.eval_bins(ctx.engine().arrival(n)) -
                              objective_.eval_bins(sink_view_)) *
                                 dt_ns_ / delta_w_;
        completed_ = true;
        state_->mark_dead(idx - 1);
    } else if (res.dead) {
        ++stats_.dead_drops;  // absorbed: drop the entry; fanouts stay global
        state_->mark_dead(idx - 1);
    } else {
        {
            FrontEntry& entry = state_->entries[idx - 1];
            entry.pdf = state_->store_pdf(res.pdf);
            entry.delta_bins = static_cast<double>(res.delta);
            entry.fo_remaining = static_cast<std::uint32_t>(graph.out_edges(n).size());
        }  // schedule() may grow the entry table; drop the reference first
        state_->mark_alive(idx - 1);
        for (EdgeId e : graph.out_edges(n)) schedule(ctx, ws, graph.edge(e).to);
    }

    // This node consumed each perturbed predecessor once (fo_count, Fig 9
    // steps 13-18); predecessors with no remaining fanouts leave the front.
    for (EdgeId e : graph.in_edges(n)) {
        const std::uint32_t pidx = ws.entry_index(graph.edge(e).from);
        if (pidx == 0) continue;
        FrontEntry& pred = state_->entries[pidx - 1];
        if (pred.status != FrontEntry::Status::Alive) continue;
        if (--pred.fo_remaining == 0) state_->mark_dead(pidx - 1);
    }
}

void PerturbationFront::refresh_state() {
    if (completed_) return;
    double delta_mx = 0.0;
    bool any = false;
    for (const std::uint32_t idx : state_->alive) {
        const double d = state_->entries[idx].delta_bins;
        delta_mx = any ? std::max(delta_mx, d) : d;
        any = true;
    }
    if (!any && state_->pending.empty()) {
        // The perturbation was absorbed before reaching the sink.
        completed_ = true;
        sensitivity_ = 0.0;
        return;
    }
    // Three sound adjustments to the raw front maximum:
    //  * clamp at zero — a worsening perturbation (negative Δ, e.g. pure
    //    fanin-load damage) can be absorbed back to Δ = 0 by a max with an
    //    unperturbed side input (Theorem 3's implicit Δ = 0 inputs);
    //  * +1 bin — Δ lives on the step inverse CDF (monotone under
    //    propagation), while the objective reads interpolated percentiles,
    //    which sit strictly within one bin of the step values;
    //  * +1 bin — floating-point knot ties between the structurally
    //    related perturbed/unperturbed CDFs can flip the step metric by a
    //    bin across an operation.
    bound_sens_ = (std::max(delta_mx, 0.0) + 2.0) * dt_ns_ / delta_w_;
}

}  // namespace statim::core
