#include "core/front_state.hpp"

#include <atomic>

#include "prob/ops.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace statim::core {

void FrontState::reset() noexcept {
    last_workspace = nullptr;
    entries.clear();
    pending.clear();
    alive.clear();
    support.clear();
    min_pending_level = kNoLevel;
    arenas_[0].reset();
    arenas_[1].reset();
    active_ = 0;
    live_doubles_ = 0;
}

prob::PdfView FrontState::store_pdf(prob::PdfView v) {
    live_doubles_ += v.size();
    return prob::copy_into(arenas_[active_], v);
}

void FrontState::compact_if_worthwhile() {
    // Hysteresis floor: a front below one slab of mass never bothers.
    constexpr std::size_t kFloorDoubles = kSlabDoubles;
    const std::size_t used = arenas_[active_].used_doubles();
    if (used <= kFloorDoubles || used <= 2 * live_doubles_) return;
    const std::size_t target = 1 - active_;
    prob::PdfArena& to = arenas_[target];
    to.reset();
    for (const std::uint32_t idx : alive)
        entries[idx].pdf = prob::copy_into(to, entries[idx].pdf);
    active_ = target;
}

namespace {

// The pool is tiny state (a mutex and a vector of pointers); fronts check
// out on construction and check in on destruction/completion. Raw new is
// used over unique_ptr purely to keep the freelist a flat vector.
//
// Both the mutex and the freelist are *immortal* (bound to leaked heap
// objects): worker threads release fronts from their TLS destructors
// during static teardown, whose cross-TU order is unspecified, so the
// pool must outlive every such release. Immortality also keeps pooled
// FrontStates reachable at exit — the ASan/LSan leg then sees
// "pooled forever", not a leak (a value global's destructor would free
// the freelist buffer and orphan the states right before the leak check).
util::Mutex& g_pool_mutex = *new util::Mutex();
std::vector<FrontState*>& g_pool STATIM_GUARDED_BY(g_pool_mutex) =
    *new std::vector<FrontState*>();

}  // namespace

FrontState* acquire_front_state() {
    {
        const util::MutexLock lock(g_pool_mutex);
        if (!g_pool.empty()) {
            FrontState* state = g_pool.back();
            g_pool.pop_back();
            return state;
        }
    }
    return new FrontState();
}

void release_front_state(FrontState* state) noexcept {
    if (state == nullptr) return;
    state->reset();
    const util::MutexLock lock(g_pool_mutex);
    g_pool.push_back(state);
}

void trim_front_state_pool(std::size_t keep) noexcept {
    const util::MutexLock lock(g_pool_mutex);
    while (g_pool.size() > keep) {
        delete g_pool.back();
        g_pool.pop_back();
    }
}

std::uint64_t next_front_uid() noexcept {
    // 0 is FrontWorkspace's "nothing activated yet" sentinel.
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void FrontWorkspace::bind(std::size_t node_count) {
    if (slot_.size() < node_count) {
        slot_.resize(node_count, 0);
        stamp_.resize(node_count, 0);
    }
}

void FrontWorkspace::activate(FrontState& state, std::uint64_t uid) {
    // Fast path: this workspace both performed the last activation of
    // this front *and* nothing else was activated here since — the
    // stamps are current (every mutation path re-activates first, so a
    // drain that hops threads flips state.last_workspace and forces the
    // re-stamp here).
    if (active_uid_ == uid && state.last_workspace == this) return;
    ++epoch_;
    // Dead entries need no stamp: a node only dies after it was computed,
    // and nothing ever looks up or re-schedules a computed node (fanins
    // precede it; schedulers are its strict ancestors). Alive ∪ Pending
    // is exactly the non-dead set, so activation is O(live front), not
    // O(everything the drain ever touched).
    for (const std::uint32_t idx : state.alive)
        set_entry_index(state.entries[idx].node, idx + 1);
    for (const std::uint32_t idx : state.pending)
        set_entry_index(state.entries[idx].node, idx + 1);
    active_uid_ = uid;
    state.last_workspace = this;
}

prob::PdfArena& FrontWorkspace::shard_arena(std::size_t s) {
    while (shard_arenas_.size() <= s)
        shard_arenas_.push_back(std::make_unique<prob::PdfArena>());
    return *shard_arenas_[s];
}

std::size_t FrontWorkspace::shard_capacity_doubles() const noexcept {
    std::size_t total = 0;
    for (const auto& arena : shard_arenas_) total += arena->capacity();
    return total;
}

FrontWorkspace& front_workspace() {
    thread_local FrontWorkspace workspace;
    return workspace;
}

}  // namespace statim::core
