// Cell library: the set of masters plus the statistical delay model
// parameters (σ as a fraction of nominal, ±kσ truncation) and the load
// seen by primary outputs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cells/cell.hpp"
#include "util/types.hpp"

namespace statim::cells {

/// An immutable-after-setup collection of cells with model parameters.
class Library {
  public:
    /// Adds a cell; throws ConfigError on duplicate name or bad parameters.
    CellId add(Cell cell);

    [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id.index()); }
    [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

    /// Cell id by name, or nullopt.
    [[nodiscard]] std::optional<CellId> find(std::string_view name) const;
    /// Cell id by name; throws ConfigError when absent.
    [[nodiscard]] CellId require(std::string_view name) const;

    /// Largest fanin an N-input lookup can satisfy (e.g. NAND<N>).
    /// Returns the cell named `base` + to_string(n) when present.
    [[nodiscard]] std::optional<CellId> find_sized(std::string_view base, int n) const;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// σ of a gate-delay RV as a fraction of its nominal delay (paper: 0.10).
    [[nodiscard]] double sigma_fraction() const noexcept { return sigma_fraction_; }
    void set_sigma_fraction(double f);

    /// Truncation of the Gaussian at ±k·σ (paper: 3.0).
    [[nodiscard]] double trunc_k() const noexcept { return trunc_k_; }
    void set_trunc_k(double k);

    /// Capacitive load on each primary output (fF).
    [[nodiscard]] double output_load_ff() const noexcept { return output_load_ff_; }
    void set_output_load_ff(double ff);

    [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }

    /// The builtin 180 nm-class library used by all benches and examples:
    /// INV/BUF, NAND2-4, NOR2-4, AND2-4, OR2-4, XOR2, XNOR2 with logical-
    /// effort-calibrated constants (FO4 inverter delay ~94 ps).
    [[nodiscard]] static Library standard_180nm();

  private:
    std::string name_{"unnamed"};
    std::vector<Cell> cells_;
    double sigma_fraction_{0.10};
    double trunc_k_{3.0};
    double output_load_ff_{10.0};
};

}  // namespace statim::cells
