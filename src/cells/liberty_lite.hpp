// Liberty-lite: a small line-oriented text format for cell libraries, so
// users can swap in their own constants without recompiling.
//
//   # comment
//   library  mylib
//   sigma_fraction  0.10
//   trunc_k  3.0
//   output_load  10.0
//   cell NAME fanin=N d_int=... k=... c_cell=... c_in=... area=... \
//        [pin_weights=a,b,...]
//
// All delays in ns, capacitances in fF. Unknown keys raise ParseError.
#pragma once

#include <iosfwd>
#include <string>

#include "cells/library.hpp"

namespace statim::cells {

/// Parses a liberty-lite stream. `source_name` labels parse errors.
[[nodiscard]] Library read_liberty_lite(std::istream& in,
                                        const std::string& source_name = "<stream>");

/// Parses a liberty-lite file by path.
[[nodiscard]] Library load_liberty_lite(const std::string& path);

/// Writes `lib` in liberty-lite form (round-trips with read_liberty_lite).
void write_liberty_lite(std::ostream& out, const Library& lib);

}  // namespace statim::cells
