#include "cells/liberty_lite.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace statim::cells {

namespace {

/// Splits "key=value"; throws if '=' is missing.
std::pair<std::string, std::string> split_kv(const std::string& token,
                                             const std::string& file, int line) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
        throw ParseError(file, line, "expected key=value, got '" + token + "'");
    return {token.substr(0, eq), token.substr(eq + 1)};
}

double parse_num(const std::string& text, const std::string& file, int line) {
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used != text.size()) throw std::invalid_argument(text);
        return v;
    } catch (const std::exception&) {
        throw ParseError(file, line, "malformed number '" + text + "'");
    }
}

}  // namespace

Library read_liberty_lite(std::istream& in, const std::string& source_name) {
    Library lib;
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const auto hash = raw.find('#');
        if (hash != std::string::npos) raw.erase(hash);
        std::istringstream line(raw);
        std::string keyword;
        if (!(line >> keyword)) continue;

        if (keyword == "library") {
            std::string name;
            if (!(line >> name)) throw ParseError(source_name, line_no, "library needs a name");
            lib.set_name(name);
        } else if (keyword == "sigma_fraction") {
            std::string v;
            if (!(line >> v)) throw ParseError(source_name, line_no, "missing value");
            lib.set_sigma_fraction(parse_num(v, source_name, line_no));
        } else if (keyword == "trunc_k") {
            std::string v;
            if (!(line >> v)) throw ParseError(source_name, line_no, "missing value");
            lib.set_trunc_k(parse_num(v, source_name, line_no));
        } else if (keyword == "output_load") {
            std::string v;
            if (!(line >> v)) throw ParseError(source_name, line_no, "missing value");
            lib.set_output_load_ff(parse_num(v, source_name, line_no));
        } else if (keyword == "cell") {
            Cell cell;
            if (!(line >> cell.name)) throw ParseError(source_name, line_no, "cell needs a name");
            std::string token;
            bool saw_fanin = false;
            while (line >> token) {
                auto [key, value] = split_kv(token, source_name, line_no);
                if (key == "fanin") {
                    cell.fanin = static_cast<int>(parse_num(value, source_name, line_no));
                    saw_fanin = true;
                } else if (key == "d_int") {
                    cell.d_int_ns = parse_num(value, source_name, line_no);
                } else if (key == "k") {
                    cell.k_ns = parse_num(value, source_name, line_no);
                } else if (key == "c_cell") {
                    cell.c_cell_ff = parse_num(value, source_name, line_no);
                } else if (key == "c_in") {
                    cell.c_in_ff = parse_num(value, source_name, line_no);
                } else if (key == "area") {
                    cell.area = parse_num(value, source_name, line_no);
                } else if (key == "pin_weights") {
                    std::istringstream weights(value);
                    std::string piece;
                    while (std::getline(weights, piece, ','))
                        cell.pin_weight.push_back(parse_num(piece, source_name, line_no));
                } else {
                    throw ParseError(source_name, line_no, "unknown cell key '" + key + "'");
                }
            }
            if (!saw_fanin) throw ParseError(source_name, line_no, "cell missing fanin=");
            try {
                (void)lib.add(std::move(cell));
            } catch (const ConfigError& e) {
                throw ParseError(source_name, line_no, e.what());
            }
        } else {
            throw ParseError(source_name, line_no, "unknown keyword '" + keyword + "'");
        }
    }
    if (lib.size() == 0)
        throw ParseError(source_name, line_no, "library defines no cells");
    return lib;
}

Library load_liberty_lite(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open library file: " + path);
    return read_liberty_lite(in, path);
}

void write_liberty_lite(std::ostream& out, const Library& lib) {
    out << "# statim liberty-lite\n";
    out << "library " << lib.name() << '\n';
    out << "sigma_fraction " << lib.sigma_fraction() << '\n';
    out << "trunc_k " << lib.trunc_k() << '\n';
    out << "output_load " << lib.output_load_ff() << '\n';
    for (const Cell& c : lib.cells()) {
        out << "cell " << c.name << " fanin=" << c.fanin << " d_int=" << c.d_int_ns
            << " k=" << c.k_ns << " c_cell=" << c.c_cell_ff << " c_in=" << c.c_in_ff
            << " area=" << c.area;
        if (!c.pin_weight.empty()) {
            out << " pin_weights=";
            for (std::size_t i = 0; i < c.pin_weight.size(); ++i) {
                if (i) out << ',';
                out << c.pin_weight[i];
            }
        }
        out << '\n';
    }
}

}  // namespace statim::cells
