// Standard-cell description and the paper's delay model (EQ 1):
//
//     De = Dint + K * Cload / Ccell(w),     Ccell(w) = c_cell * w
//
// Dint is the width-independent intrinsic (parasitic) delay; K is the
// effort-delay coefficient (logical effort g times the process time
// constant); Ccell scales linearly with the continuous width multiplier w,
// as do the input pin capacitance and the area. Upsizing a gate therefore
// speeds the gate itself but adds load to each fanin gate — the trade-off
// the statistical sizer navigates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace statim::cells {

/// One library cell (master). Widths are per-instance, held by the netlist.
struct Cell {
    std::string name;        ///< e.g. "NAND2"
    int fanin{1};            ///< number of input pins
    double d_int_ns{0.0};    ///< intrinsic delay Dint (ns)
    double k_ns{0.0};        ///< effort coefficient K (ns per unit Cload/Ccell)
    double c_cell_ff{1.0};   ///< cell capacitance Ccell at w = 1 (fF)
    double c_in_ff{1.0};     ///< input capacitance per pin at w = 1 (fF)
    double area{1.0};        ///< area at w = 1 (arbitrary units)
    /// Optional per-input-pin delay multiplier; empty means all pins 1.0.
    std::vector<double> pin_weight{};

    /// Multiplier of input pin `pin` (1.0 when unspecified).
    [[nodiscard]] double pin_factor(std::size_t pin) const noexcept {
        return pin < pin_weight.size() ? pin_weight[pin] : 1.0;
    }
};

/// Pin-to-pin nominal delay (ns) of `cell` at width `w` driving `cload_ff`.
[[nodiscard]] inline double edge_delay_ns(const Cell& cell, double w,
                                          double cload_ff, std::size_t pin) noexcept {
    return cell.pin_factor(pin) *
           (cell.d_int_ns + cell.k_ns * cload_ff / (cell.c_cell_ff * w));
}

/// Input capacitance (fF) presented by one pin of `cell` at width `w`.
[[nodiscard]] inline double input_cap_ff(const Cell& cell, double w) noexcept {
    return cell.c_in_ff * w;
}

/// Area of `cell` at width `w`.
[[nodiscard]] inline double cell_area(const Cell& cell, double w) noexcept {
    return cell.area * w;
}

/// Continuous sizing bounds and the coordinate-descent step Δw.
struct SizingPolicy {
    double min_width{1.0};
    double max_width{16.0};
    double delta_w{0.25};

    /// Throws ConfigError if the bounds or step are inconsistent.
    void validate() const {
        if (!(min_width > 0.0) || !(max_width >= min_width) || !(delta_w > 0.0))
            throw ConfigError("SizingPolicy: require 0 < min <= max and delta_w > 0");
    }
};

}  // namespace statim::cells
