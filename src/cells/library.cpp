#include "cells/library.hpp"

#include <cmath>

namespace statim::cells {

CellId Library::add(Cell cell) {
    if (cell.name.empty()) throw ConfigError("Library::add: cell needs a name");
    if (find(cell.name)) throw ConfigError("Library::add: duplicate cell '" + cell.name + "'");
    if (cell.fanin < 1) throw ConfigError("Library::add: fanin must be >= 1");
    if (!(cell.d_int_ns >= 0.0) || !(cell.k_ns >= 0.0))
        throw ConfigError("Library::add: delays must be non-negative");
    if (!(cell.c_cell_ff > 0.0) || !(cell.c_in_ff > 0.0) || !(cell.area > 0.0))
        throw ConfigError("Library::add: capacitances and area must be positive");
    if (!cell.pin_weight.empty() &&
        cell.pin_weight.size() != static_cast<std::size_t>(cell.fanin))
        throw ConfigError("Library::add: pin_weight size must equal fanin");
    for (double w : cell.pin_weight)
        if (!(w > 0.0)) throw ConfigError("Library::add: pin weights must be positive");

    cells_.push_back(std::move(cell));
    return CellId{static_cast<std::uint32_t>(cells_.size() - 1)};
}

std::optional<CellId> Library::find(std::string_view name) const {
    for (std::size_t i = 0; i < cells_.size(); ++i)
        if (cells_[i].name == name) return CellId{static_cast<std::uint32_t>(i)};
    return std::nullopt;
}

CellId Library::require(std::string_view name) const {
    if (const auto id = find(name)) return *id;
    throw ConfigError("Library: no cell named '" + std::string(name) + "'");
}

std::optional<CellId> Library::find_sized(std::string_view base, int n) const {
    return find(std::string(base) + std::to_string(n));
}

void Library::set_sigma_fraction(double f) {
    if (!(f >= 0.0) || !(f < 1.0))
        throw ConfigError("Library: sigma_fraction must be in [0, 1)");
    sigma_fraction_ = f;
}

void Library::set_trunc_k(double k) {
    if (!(k > 0.0)) throw ConfigError("Library: trunc_k must be positive");
    trunc_k_ = k;
}

void Library::set_output_load_ff(double ff) {
    if (!(ff >= 0.0)) throw ConfigError("Library: output load must be non-negative");
    output_load_ff_ = ff;
}

Library Library::standard_180nm() {
    // Logical-effort calibration: tau ~= 18 ps, gamma (parasitic of an
    // inverter) ~= 22 ps, Cin of a unit inverter = 4 fF. K = tau * g,
    // c_in = 4 fF * g; compound gates (AND/OR) hide an output inverter:
    // larger Dint, near-inverter K.
    Library lib;
    lib.set_name("statim180");
    lib.set_sigma_fraction(0.10);
    lib.set_trunc_k(3.0);
    lib.set_output_load_ff(10.0);

    auto add = [&lib](const char* name, int fanin, double d_int, double k,
                      double c_cell, double c_in, double area) {
        Cell c;
        c.name = name;
        c.fanin = fanin;
        c.d_int_ns = d_int;
        c.k_ns = k;
        c.c_cell_ff = c_cell;
        c.c_in_ff = c_in;
        c.area = area;
        (void)lib.add(std::move(c));
    };

    //   name    fanin  Dint    K       Ccell  Cin    area
    add("INV",   1,     0.022,  0.018,  4.00,  4.00,  1.00);
    add("BUF",   1,     0.045,  0.012,  8.00,  4.00,  1.80);
    add("NAND2", 2,     0.030,  0.024,  5.33,  5.33,  1.40);
    add("NAND3", 3,     0.038,  0.030,  6.67,  6.67,  1.80);
    add("NAND4", 4,     0.046,  0.036,  8.00,  8.00,  2.20);
    add("NOR2",  2,     0.032,  0.030,  6.67,  6.67,  1.50);
    add("NOR3",  3,     0.042,  0.042,  9.33,  9.33,  2.00);
    add("NOR4",  4,     0.052,  0.054, 12.00, 12.00,  2.50);
    add("AND2",  2,     0.052,  0.020,  6.00,  5.33,  2.40);
    add("AND3",  3,     0.060,  0.022,  7.00,  6.67,  2.80);
    add("AND4",  4,     0.068,  0.024,  8.00,  8.00,  3.20);
    add("OR2",   2,     0.054,  0.021,  7.00,  6.67,  2.50);
    add("OR3",   3,     0.064,  0.024,  8.50,  9.33,  3.00);
    add("OR4",   4,     0.074,  0.027, 10.00, 12.00,  3.50);
    add("XOR2",  2,     0.060,  0.048,  9.00,  8.00,  3.00);
    add("XNOR2", 2,     0.062,  0.048,  9.00,  8.00,  3.00);
    return lib;
}

}  // namespace statim::cells
