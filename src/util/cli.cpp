#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim {

CliArgs::CliArgs(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.size() < 3 || arg.substr(0, 2) != "--") {
            positional_.emplace_back(arg);
            continue;
        }
        const std::string_view body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string_view::npos) {
            options_.emplace(std::string(body.substr(0, eq)),
                             std::string(body.substr(eq + 1)));
            continue;
        }
        // `--name value` when the next token is not itself a flag.
        if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
            options_.emplace(std::string(body), argv[i + 1]);
            ++i;
        } else {
            options_.emplace(std::string(body), "");
        }
    }
}

bool CliArgs::has(std::string_view name) const {
    return options_.find(name) != options_.end();
}

std::string CliArgs::get(std::string_view name, std::string_view fallback) const {
    const auto it = options_.find(name);
    return it == options_.end() ? std::string(fallback) : it->second;
}

std::int64_t CliArgs::get_int(std::string_view name, std::int64_t fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return fallback;
    char* end = nullptr;
    const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        throw ConfigError("--" + it->first + ": expected integer, got '" + it->second + "'");
    return value;
}

double CliArgs::get_double(std::string_view name, double fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return fallback;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        throw ConfigError("--" + it->first + ": expected number, got '" + it->second + "'");
    return value;
}

bool CliArgs::get_bool(std::string_view name, bool fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return fallback;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
    if (v == "0" || v == "false" || v == "no" || v == "off") return false;
    throw ConfigError("--" + it->first + ": expected boolean, got '" + it->second + "'");
}

void CliArgs::validate(const std::vector<std::string>& known) const {
    for (const auto& [name, value] : options_) {
        if (std::find(known.begin(), known.end(), name) != known.end()) continue;
        std::string message = "unknown option --" + name;
        if (!known.empty()) {
            message += " (valid options:";
            for (const std::string& k : known) message += " --" + k;
            message += ")";
        }
        throw ConfigError(message);
    }
}

std::size_t apply_threads_flag(const CliArgs& args) {
    const std::int64_t threads =
        args.get_int("threads", static_cast<std::int64_t>(default_thread_count()));
    if (threads < 1) throw ConfigError("--threads: must be >= 1");
    set_default_thread_count(static_cast<std::size_t>(threads));
    return static_cast<std::size_t>(threads);
}

}  // namespace statim
