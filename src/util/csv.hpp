// CSV emission for benchmark series (Figure 10's area-delay curve, the
// ablation sweeps). Quoting follows RFC 4180.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace statim {

/// Streams rows of a CSV table. The header is written on construction.
class CsvWriter {
  public:
    /// Does not own `out`; it must outlive the writer.
    CsvWriter(std::ostream& out, std::vector<std::string> header);

    /// Writes a full row; the cell count must match the header.
    void row(const std::vector<std::string>& cells);
    void row(std::initializer_list<std::string> cells);

    /// Number of data rows written so far (excluding the header).
    [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

    /// Escapes one cell per RFC 4180 (quotes fields containing , " or \n).
    [[nodiscard]] static std::string escape(std::string_view cell);

  private:
    std::ostream& out_;
    std::size_t columns_;
    std::size_t rows_{0};
};

/// Formats a double with `digits` significant digits (for table cells).
[[nodiscard]] std::string format_double(double value, int digits = 6);

}  // namespace statim
