// ASCII table rendering. The bench harnesses print Table 1 / Table 2 of the
// paper in the same row layout; this takes care of alignment.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace statim {

/// Column alignment inside an AsciiTable.
enum class Align { Left, Right };

/// Collects rows, then renders them with padded, aligned columns.
class AsciiTable {
  public:
    explicit AsciiTable(std::vector<std::string> header,
                        std::vector<Align> aligns = {});

    /// Adds one row; short rows are padded with empty cells.
    void add_row(std::vector<std::string> cells);

    /// Renders the header, a rule, and all rows.
    void print(std::ostream& out) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace statim
