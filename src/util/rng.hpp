// Deterministic pseudo-random number generation.
//
// Everything random in statim (synthetic circuit generation, Monte Carlo
// sampling) flows through `Rng`, a xoshiro256** engine seeded via
// splitmix64. Identical seeds give identical streams on every platform,
// which makes benchmark tables and tests reproducible bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace statim {

/// splitmix64 step; used for seeding and for hashing names to seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a), for per-name seeds.
[[nodiscard]] std::uint64_t hash_name(std::string_view name) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
  public:
    using result_type = std::uint64_t;

    /// Seeds the four state words from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return ~result_type{0};
    }

    result_type operator()() noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;
    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;
    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
    /// Standard normal via Marsaglia polar method (cached spare).
    [[nodiscard]] double normal() noexcept;
    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) noexcept;
    /// Truncated normal: resamples until within [mean - k*sd, mean + k*sd].
    [[nodiscard]] double truncated_normal(double mean, double stddev, double k) noexcept;

    /// A new generator whose stream is independent of this one.
    [[nodiscard]] Rng split() noexcept;

    /// Full serializable state: the four xoshiro words plus the cached
    /// normal() spare. Restoring it via set_state() continues the stream
    /// (uniform, int and normal draws alike) bit-identically — the hook
    /// the sizing-run checkpoints use.
    struct State {
        std::array<std::uint64_t, 4> s{};
        double spare{0.0};
        bool has_spare{false};
    };
    [[nodiscard]] State state() const noexcept { return {s_, spare_, has_spare_}; }
    void set_state(const State& state) noexcept {
        s_ = state.s;
        spare_ = state.spare;
        has_spare_ = state.has_spare;
    }

  private:
    std::array<std::uint64_t, 4> s_{};
    double spare_{0.0};
    bool has_spare_{false};
};

}  // namespace statim
