// Non-owning callable reference, the `function_ref` of P0792.
//
// The SSTA lookup callbacks (arrival-of-node, delay-of-edge) sit inside
// the innermost propagation loops. `std::function` there costs a
// potential heap allocation per construction and an indirect call through
// a vtable-like dispatch per invocation; `FunctionRef` is two raw words
// (object pointer + thunk pointer), is trivially copyable, and the thunk
// is a direct function pointer the optimizer can see through.
//
// Lifetime rule: a FunctionRef never owns its target. Bind it to a named
// lambda (or pass a lambda directly as a *function argument*, which keeps
// the temporary alive for the call) — never store a FunctionRef built
// from a temporary beyond the full expression.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace statim::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
  public:
    FunctionRef() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F&, Args...>>>
    /*implicit*/ FunctionRef(F&& f) noexcept
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          }) {}

    R operator()(Args... args) const {
        return call_(obj_, std::forward<Args>(args)...);
    }

    [[nodiscard]] bool valid() const noexcept { return call_ != nullptr; }

  private:
    void* obj_{nullptr};
    R (*call_)(void*, Args...){nullptr};
};

}  // namespace statim::util
