// Error types thrown at library boundaries (parsing, construction,
// configuration). Hot paths (SSTA propagation, sizing inner loops) never
// throw; they validate inputs up front and use assertions internally.
#pragma once

#include <stdexcept>
#include <string>

namespace statim {

/// Base class of all statim exceptions.
class Error : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Malformed input file (.bench netlist, liberty-lite library, ...).
class ParseError : public Error {
  public:
    ParseError(const std::string& file, int line, const std::string& what)
        : Error(file + ":" + std::to_string(line) + ": " + what),
          file_(file),
          line_(line) {}

    [[nodiscard]] const std::string& file() const noexcept { return file_; }
    [[nodiscard]] int line() const noexcept { return line_; }

  private:
    std::string file_;
    int line_;
};

/// Structurally invalid circuit (cycle, dangling net, fanin overflow, ...).
class NetlistError : public Error {
  public:
    using Error::Error;
};

/// Invalid configuration of an engine or optimizer.
class ConfigError : public Error {
  public:
    using Error::Error;
};

}  // namespace statim
