// Minimal leveled logger. Engines log at Debug/Info; benches and examples
// bump the level via --verbose or the STATIM_LOG environment variable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace statim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings yield Info.
[[nodiscard]] LogLevel parse_log_level(std::string_view text) noexcept;

/// Writes one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, std::string_view message);

namespace detail {
/// Builds the message lazily; only pays for formatting when enabled.
class LogStream {
  public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { log_line(level_, stream_.str()); }
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;

    template <typename T>
    LogStream& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
    return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace statim

#define STATIM_LOG(level)                       \
    if (!::statim::log_enabled(level)) {        \
    } else                                      \
        ::statim::detail::LogStream(level)

#define STATIM_DEBUG() STATIM_LOG(::statim::LogLevel::Debug)
#define STATIM_INFO() STATIM_LOG(::statim::LogLevel::Info)
#define STATIM_WARN() STATIM_LOG(::statim::LogLevel::Warn)
#define STATIM_ERROR() STATIM_LOG(::statim::LogLevel::Error)
