#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>

#include "util/env.hpp"
#include "util/error.hpp"

namespace statim {

/// One parallel_for invocation: an atomic index the executing threads
/// race on, plus completion/exception bookkeeping. Shared ownership keeps
/// the batch alive until the last straggler worker lets go of it.
/// `n` and `fn` are set once before the batch is published and immutable
/// afterwards, so they need no capability.
struct ThreadPool::Batch {
    std::size_t n{0};
    const std::function<void(std::size_t)>* fn{nullptr};
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    util::Mutex error_mutex;
    std::exception_ptr error STATIM_GUARDED_BY(error_mutex);  // first wins
    std::condition_variable_any finished;
    util::Mutex finished_mutex;
};

namespace {

// Set while this thread executes batch tasks; a nested parallel_for from
// inside a task runs inline instead of deadlocking on the pool.
thread_local bool tl_in_batch = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) { resize(workers); }

ThreadPool::~ThreadPool() { resize(0); }

void ThreadPool::worker_loop() {
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            util::MutexLock lock(mutex_);
            // Hand-rolled predicate loops keep the guarded reads visible to
            // the thread-safety analysis (a wait-with-predicate lambda is a
            // separate function the capability state does not flow into).
            while (!stopping_ && batch_ == nullptr) work_ready_.wait(mutex_);
            if (stopping_) return;
            batch = batch_;
        }
        run_batch(*batch);
        // Park until this batch retires so run_batch is not re-entered on
        // indices that are already exhausted.
        util::MutexLock lock(mutex_);
        while (!stopping_ && batch_ == batch) work_ready_.wait(mutex_);
    }
}

void ThreadPool::run_batch(Batch& batch) {
    const bool was_in_batch = tl_in_batch;
    tl_in_batch = true;
    for (;;) {
        const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.n) break;
        try {
            (*batch.fn)(i);
        } catch (...) {
            util::MutexLock lock(batch.error_mutex);
            if (!batch.error) batch.error = std::current_exception();
        }
        if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.n) {
            util::MutexLock lock(batch.finished_mutex);
            batch.finished.notify_all();
        }
    }
    tl_in_batch = was_in_batch;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (threads_.empty() || n == 1 || tl_in_batch) {
        // Inline: no workers, a single task, or a nested call from inside
        // a running task (the nested batch runs on this thread alone).
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    {
        util::MutexLock lock(mutex_);
        // Another (non-pool) thread is mid-batch: wait our turn rather
        // than racing two batches through one set of workers.
        while (batch_ != nullptr) work_ready_.wait(mutex_);
        batch_ = batch;
    }
    work_ready_.notify_all();

    run_batch(*batch);  // the caller works too

    {
        util::MutexLock lock(batch->finished_mutex);
        while (batch->done.load(std::memory_order_acquire) != batch->n)
            batch->finished.wait(batch->finished_mutex);
    }
    {
        util::MutexLock lock(mutex_);
        batch_ = nullptr;
    }
    work_ready_.notify_all();  // release workers parked on `batch_ != batch`

    // All tasks retired (the done-count wait above), but the analysis only
    // sees that `error` is guarded — read it under its mutex.
    std::exception_ptr error;
    {
        util::MutexLock lock(batch->error_mutex);
        error = batch->error;
    }
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_chunks(std::size_t n, std::size_t shards,
                                 const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    shards = std::min(shards, n);
    if (shards <= 1) {
        fn(0, n);
        return;
    }
    parallel_for(shards, [n, shards, &fn](std::size_t s) {
        fn(s * n / shards, (s + 1) * n / shards);
    });
}

void ThreadPool::resize(std::size_t workers) {
    {
        util::MutexLock lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    {
        util::MutexLock lock(mutex_);
        stopping_ = false;
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

namespace {

std::size_t& cached_thread_count() {
    static std::size_t count = [] {
        const std::int64_t from_env = env_int("STATIM_THREADS", 0);
        if (from_env >= 1) return static_cast<std::size_t>(from_env);
        const unsigned hw = std::thread::hardware_concurrency();
        return hw < 1 ? std::size_t{1} : static_cast<std::size_t>(hw);
    }();
    return count;
}

}  // namespace

std::size_t default_thread_count() { return cached_thread_count(); }

ThreadPool& global_pool() {
    static ThreadPool pool(default_thread_count() - 1);
    return pool;
}

void set_default_thread_count(std::size_t threads) {
    if (threads < 1) throw ConfigError("set_default_thread_count: threads must be >= 1");
    cached_thread_count() = threads;
    global_pool().resize(threads - 1);
}

}  // namespace statim
