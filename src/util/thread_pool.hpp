// Process-wide worker-thread pool for the parallel hot paths (candidate
// selection, bench harnesses).
//
// Design rules, in priority order:
//  1. Determinism: callers shard their work by a *configured* count, never
//     by the pool size, so results are bit-identical no matter how many OS
//     threads actually execute the shards (including zero workers, where
//     everything runs inline on the caller).
//  2. No oversubscription: one global pool (`global_pool`), sized once
//     from --threads / STATIM_THREADS / hardware_concurrency.
//  3. Exceptions surface: the first exception thrown by any task is
//     rethrown on the caller after all tasks drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace statim {

/// Fixed set of worker threads executing `parallel_for` batches. The
/// calling thread always participates, so a pool with zero workers is a
/// valid (purely inline) executor.
class ThreadPool {
  public:
    /// Spawns `workers` threads (0 = inline execution only).
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Worker threads owned by the pool (caller participation excluded).
    [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

    /// Runs fn(0) … fn(n-1), distributing indices over the workers and the
    /// calling thread; returns when every index completed. Reentrant: a
    /// task that itself calls parallel_for (on any pool) runs the nested
    /// batch inline on its own thread — no deadlock, no oversubscription,
    /// and the results are identical because every caller shards work by
    /// a *configured* count, never by who executes it. The first
    /// exception any task throws is rethrown here.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Splits [0, n) into at most `shards` contiguous chunks and runs
    /// fn(begin, end) for each via parallel_for. The partition depends
    /// only on (n, shards) — never on the worker count — so sharded
    /// reductions stay deterministic. shards <= 1 (or n <= 1) runs one
    /// inline chunk.
    void parallel_chunks(std::size_t n, std::size_t shards,
                         const std::function<void(std::size_t, std::size_t)>& fn);

    /// Stops and joins the workers, then respawns `workers` of them.
    void resize(std::size_t workers);

  private:
    struct Batch;

    void worker_loop();
    void run_batch(Batch& batch);

    // threads_ is structural state: only touched by resize() (construction,
    // destruction, explicit resizes), never while workers execute a batch —
    // a discipline the analysis cannot express, so it stays unannotated.
    std::vector<std::thread> threads_;
    util::Mutex mutex_;
    // condition_variable_any waits directly on util::Mutex (it satisfies
    // Lockable), keeping the capability annotations intact across waits.
    std::condition_variable_any work_ready_;
    std::shared_ptr<Batch> batch_ STATIM_GUARDED_BY(mutex_);
    bool stopping_ STATIM_GUARDED_BY(mutex_){false};
};

/// Threads to use by default: STATIM_THREADS when set (>= 1), otherwise
/// std::thread::hardware_concurrency (>= 1). Read once, then cached;
/// set_default_thread_count overrides the cache.
[[nodiscard]] std::size_t default_thread_count();

/// Installs `threads` (>= 1) as the process-wide default and resizes the
/// global pool to match (threads - 1 workers + the caller).
void set_default_thread_count(std::size_t threads);

/// The shared pool every parallel hot path uses. Lazily constructed with
/// default_thread_count() - 1 workers.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace statim
