// Clang thread-safety annotation macros (no-ops on every other compiler).
//
// The repo's locking discipline is tiny and deliberate — three mutexes
// guard three shared structures (the thread-pool batch slot, the selector's
// shared k-th-best tracker, the perturbation-front state pool); everything
// else is either a relaxed atomic or strictly thread-confined. These macros
// turn that discipline into a compiler-checked contract: the CI clang leg
// builds with `-Wthread-safety -Werror=thread-safety`, so touching a
// `STATIM_GUARDED_BY` member without holding its mutex is a build break,
// not a TSan coin flip that depends on the scheduler catching the race.
//
// Usage mirrors the capability model from the clang docs (and abseil's
// thread_annotations.h): a `util::Mutex` (util/mutex.hpp) is a capability,
// `STATIM_GUARDED_BY(m)` ties data to it, `STATIM_REQUIRES(m)` puts the
// obligation on callers, `STATIM_ACQUIRE`/`STATIM_RELEASE` annotate the
// lock primitives themselves. Thread-confined state (thread_local pools,
// the engine's single-writer commit phase) is outside what this analysis
// can express; those invariants stay documented at the declaration and are
// exercised by the TSan CI leg instead.
#pragma once

#if defined(__clang__)
#define STATIM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define STATIM_THREAD_ANNOTATION__(x)  // no-op: gcc/msvc do not implement the analysis
#endif

/// Declares a type to be a lockable capability ("mutex", "role", ...).
#define STATIM_CAPABILITY(x) STATIM_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define STATIM_SCOPED_CAPABILITY STATIM_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define STATIM_GUARDED_BY(x) STATIM_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define STATIM_PT_GUARDED_BY(x) STATIM_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it).
#define STATIM_REQUIRES(...) \
    STATIM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define STATIM_ACQUIRE(...) \
    STATIM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define STATIM_RELEASE(...) \
    STATIM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define STATIM_TRY_ACQUIRE(...) \
    STATIM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define STATIM_EXCLUDES(...) STATIM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability.
#define STATIM_RETURN_CAPABILITY(x) STATIM_THREAD_ANNOTATION__(lock_returned(x))

/// Lock-order edge: this capability must be acquired after `...`.
#define STATIM_ACQUIRED_AFTER(...) \
    STATIM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Lock-order edge: this capability must be acquired before `...`.
#define STATIM_ACQUIRED_BEFORE(...) \
    STATIM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model; every use must carry
/// a one-line justification (statim-lint enforces the same rule for its
/// own suppressions; keep the bar identical here).
#define STATIM_NO_THREAD_SAFETY_ANALYSIS \
    STATIM_THREAD_ANNOTATION__(no_thread_safety_analysis)
