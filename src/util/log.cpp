#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>

namespace statim {

namespace {
// The level gate sits on every STATIM_LOG call site, including ones inside
// parallel waves; it must stay a single lock-free load.
std::atomic<LogLevel> g_level{LogLevel::Warn};
static_assert(std::atomic<LogLevel>::is_always_lock_free,
              "log-level checks run inside parallel hot paths");

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF  ";
    }
    return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(std::string_view text) noexcept {
    std::string lower;
    lower.reserve(text.size());
    for (char c : text) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    if (lower == "debug") return LogLevel::Debug;
    if (lower == "info") return LogLevel::Info;
    if (lower == "warn" || lower == "warning") return LogLevel::Warn;
    if (lower == "error") return LogLevel::Error;
    if (lower == "off" || lower == "none") return LogLevel::Off;
    return LogLevel::Info;
}

void log_line(LogLevel level, std::string_view message) {
    if (!log_enabled(level) || level == LogLevel::Off) return;
    std::fprintf(stderr, "[statim %s] %.*s\n", level_name(level),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace statim
