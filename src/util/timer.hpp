// Wall-clock stopwatch used by the benchmark harnesses (Table 2 reports
// per-iteration runtimes) and the optimizers' statistics.
#pragma once

#include <chrono>

namespace statim {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
  public:
    Timer() noexcept : start_(Clock::now()) {}

    /// Restarts the stopwatch.
    void reset() noexcept { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace statim
