// Environment-variable knobs. The bench binaries must run argument-free
// (`for b in build/bench/*; do $b; done`), so scale factors come from the
// environment: STATIM_BENCH_SCALE, STATIM_BENCH_CIRCUITS, STATIM_LOG.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace statim {

/// Raw environment lookup; empty optional when unset.
[[nodiscard]] std::optional<std::string> env_string(std::string_view name);

/// Integer environment variable; `fallback` when unset or malformed.
[[nodiscard]] std::int64_t env_int(std::string_view name, std::int64_t fallback);

/// Double environment variable; `fallback` when unset or malformed.
[[nodiscard]] double env_double(std::string_view name, double fallback);

/// Applies STATIM_LOG (debug/info/warn/error/off) to the global logger.
void apply_log_env();

/// Applies STATIM_THREADS (>= 1) to the process-wide default thread
/// count; no-op when unset. Returns the count now in effect.
std::size_t apply_threads_env();

/// STATIM_BATCH (>= 1): gates committed per sizing iteration between
/// arrival refreshes, consumed by configs that leave their
/// gates_per_iteration at 0 ("resolve from the environment"). Returns 1
/// when unset, malformed or < 1 — the paper's one-gate-per-iteration
/// reference behaviour.
int env_batch();

}  // namespace statim
