#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace statim {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
    if (columns_ == 0) throw std::invalid_argument("CsvWriter: empty header");
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(header[i]);
    }
    out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_)
        throw std::invalid_argument("CsvWriter: cell count does not match header");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
    ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
    row(std::vector<std::string>(cells));
}

std::string CsvWriter::escape(std::string_view cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quotes) return std::string(cell);
    std::string out;
    out.reserve(cell.size() + 2);
    out.push_back('"');
    for (char c : cell) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string format_double(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
}

}  // namespace statim
