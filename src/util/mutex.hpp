// Annotated mutex primitives for the clang thread-safety analysis.
//
// `std::mutex` carries no capability attributes in libstdc++, so data
// guarded by one is invisible to `-Wthread-safety`. `util::Mutex` is a
// zero-overhead wrapper that *is* a capability: members annotated
// `STATIM_GUARDED_BY(mutex_)` become compiler-checked, and the CI clang
// leg turns any unguarded access into a build error. `util::MutexLock` is
// the scoped holder (the analysis tracks its lifetime), and waiting uses
// `std::condition_variable_any` directly on the Mutex — it satisfies
// Lockable, and the wait's internal unlock/relock lives in system-header
// code the analysis does not diagnose.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace statim::util {

/// A std::mutex that the thread-safety analysis understands.
class STATIM_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() STATIM_ACQUIRE() { m_.lock(); }
    void unlock() STATIM_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() STATIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/// RAII lock whose hold the analysis tracks (the std::lock_guard shape,
/// minus template noise the capability attributes cannot see through).
class STATIM_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) STATIM_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
    ~MutexLock() STATIM_RELEASE() { mu_->unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex* const mu_;
};

}  // namespace statim::util
