#include "util/rng.hpp"

#include <cmath>

namespace statim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 random mantissa bits -> uniform in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Debiased modulo (Lemire-style rejection).
    std::uint64_t x = (*this)();
    std::uint64_t r = x % span;
    while (x - r > std::uint64_t{0} - span) {
        x = (*this)();
        r = x % span;
    }
    return lo + static_cast<std::int64_t>(r);
}

double Rng::normal() noexcept {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double k) noexcept {
    if (stddev <= 0.0 || k <= 0.0) return mean;
    for (;;) {
        const double z = normal();
        if (z >= -k && z <= k) return mean + stddev * z;
    }
}

Rng Rng::split() noexcept {
    return Rng{(*this)() ^ 0xA0761D6478BD642FULL};
}

}  // namespace statim
