// Global operator new/delete replacements with allocation counters.
//
// Standard-conforming replacement set ([new.delete]): the plain, nothrow,
// aligned and sized variants all funnel into count_alloc/count_free so no
// allocation path escapes the census. The underlying storage comes from
// malloc/aligned_alloc, which keeps the replacements compatible with the
// sanitizer interceptors (TSan wraps malloc, so races on heap metadata
// are still caught in the TSan CI job).
#include "util/alloc_stats.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: the counters are statistics, not synchronization.
// Lock-freedom is load-bearing, not incidental: a locking fallback would
// recurse (the census wraps the allocator a mutex implementation may use)
// and would show up as phantom contention inside every measured region.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_free_count{0};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "the allocation census must not itself take locks");

inline void* count_alloc(std::size_t size) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

inline void* count_alloc_aligned(std::size_t size, std::size_t align) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}

inline void count_free(void* p) noexcept {
    if (p == nullptr) return;
    g_free_count.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

}  // namespace

namespace statim::util {

std::uint64_t allocation_count() noexcept {
    return g_alloc_count.load(std::memory_order_relaxed);
}
std::uint64_t allocation_bytes() noexcept {
    return g_alloc_bytes.load(std::memory_order_relaxed);
}
std::uint64_t free_count() noexcept {
    return g_free_count.load(std::memory_order_relaxed);
}

}  // namespace statim::util

// ---- replacement operator new/delete ---------------------------------------

void* operator new(std::size_t size) {
    void* p = count_alloc(size);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
void* operator new[](std::size_t size) {
    void* p = count_alloc(size);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return count_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return count_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
    void* p = count_alloc_aligned(size, static_cast<std::size_t>(align));
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
    void* p = count_alloc_aligned(size, static_cast<std::size_t>(align));
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
    return count_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
    return count_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { count_free(p); }
void operator delete[](void* p) noexcept { count_free(p); }
void operator delete(void* p, std::size_t) noexcept { count_free(p); }
void operator delete[](void* p, std::size_t) noexcept { count_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { count_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { count_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { count_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { count_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    count_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    count_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
    count_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
    count_free(p);
}
