// Strong index types shared across the library.
//
// All graph-like containers in statim index their elements with dense
// 32-bit ids. Wrapping the raw integer in a distinct struct per entity kind
// prevents accidentally indexing a net array with a gate id (a classic EDA
// bug class) at zero runtime cost.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace statim {

/// CRTP-free strong id: `Id<struct NetTag>` and `Id<struct GateTag>` are
/// unrelated types even though both hold a `std::uint32_t`.
template <typename Tag>
struct Id {
    std::uint32_t value{invalid_value()};

    constexpr Id() noexcept = default;
    constexpr explicit Id(std::uint32_t v) noexcept : value(v) {}

    [[nodiscard]] static constexpr std::uint32_t invalid_value() noexcept {
        return std::numeric_limits<std::uint32_t>::max();
    }
    [[nodiscard]] static constexpr Id invalid() noexcept { return Id{}; }
    [[nodiscard]] constexpr bool is_valid() const noexcept {
        return value != invalid_value();
    }
    /// Dense-array index. Caller must ensure validity.
    [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }

    friend constexpr bool operator==(Id a, Id b) noexcept { return a.value == b.value; }
    friend constexpr bool operator!=(Id a, Id b) noexcept { return a.value != b.value; }
    friend constexpr bool operator<(Id a, Id b) noexcept { return a.value < b.value; }
};

struct NetTag {};
struct GateTag {};
struct NodeTag {};
struct EdgeTag {};
struct CellTag {};
struct PinTag {};

/// A net (wire) in the logical netlist.
using NetId = Id<NetTag>;
/// A gate (cell instance) in the logical netlist.
using GateId = Id<GateTag>;
/// A node of the timing graph (a net, or the virtual source/sink).
using NodeId = Id<NodeTag>;
/// A directed timing-graph edge (one gate input->output pin pair).
using EdgeId = Id<EdgeTag>;
/// A standard cell in the library.
using CellId = Id<CellTag>;

}  // namespace statim

template <typename Tag>
struct std::hash<statim::Id<Tag>> {
    std::size_t operator()(statim::Id<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};
