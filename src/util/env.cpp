#include "util/env.hpp"

#include <cstdlib>
#include <limits>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace statim {

std::optional<std::string> env_string(std::string_view name) {
    // All env reads funnel through here; callers read knobs once at startup
    // or per-run setup, never concurrently with setenv.
    const char* value = std::getenv(std::string(name).c_str());  // NOLINT(concurrency-mt-unsafe) sanctioned single funnel, read-only at startup
    if (value == nullptr) return std::nullopt;
    return std::string(value);
}

std::int64_t env_int(std::string_view name, std::int64_t fallback) {
    const auto raw = env_string(name);
    if (!raw) return fallback;
    char* end = nullptr;
    const std::int64_t value = std::strtoll(raw->c_str(), &end, 10);
    if (end == raw->c_str() || *end != '\0') return fallback;
    return value;
}

double env_double(std::string_view name, double fallback) {
    const auto raw = env_string(name);
    if (!raw) return fallback;
    char* end = nullptr;
    const double value = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str() || *end != '\0') return fallback;
    return value;
}

void apply_log_env() {
    if (const auto level = env_string("STATIM_LOG"))
        set_log_level(parse_log_level(*level));
}

std::size_t apply_threads_env() {
    const std::int64_t threads = env_int("STATIM_THREADS", 0);
    if (threads >= 1) set_default_thread_count(static_cast<std::size_t>(threads));
    return default_thread_count();
}

int env_batch() {
    const std::int64_t batch = env_int("STATIM_BATCH", 1);
    if (batch < 1) return 1;
    if (batch > std::numeric_limits<int>::max()) return std::numeric_limits<int>::max();
    return static_cast<int>(batch);
}

}  // namespace statim
