#include "util/table.hpp"

#include <algorithm>

namespace statim {

AsciiTable::AsciiTable(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
    aligns_.resize(header_.size(), Align::Right);
    if (!header_.empty()) aligns_[0] = Align::Left;  // first column is a name
}

void AsciiTable::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : header_[c];
            const auto pad = widths[c] - cell.size();
            out << "| ";
            if (aligns_[c] == Align::Right) out << std::string(pad, ' ');
            out << cell;
            if (aligns_[c] == Align::Left) out << std::string(pad, ' ');
            out << ' ';
        }
        out << "|\n";
    };

    print_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c)
        out << '|' << std::string(widths[c] + 2, '-');
    out << "|\n";
    for (const auto& row : rows_) print_row(row);
}

}  // namespace statim
