// Process-wide heap-allocation counters.
//
// The perf claims of the arena work ("steady-state drains perform ~zero
// heap allocation") need to be *measured*, not asserted. alloc_stats.cpp
// replaces the global `operator new` / `operator delete` family with
// thin malloc/free wrappers that bump relaxed atomic counters; the
// overhead is one uncontended atomic increment per allocation, cheap
// enough to leave on in every build. Benches read the counters around a
// measured region and report allocations per pass / per node; the CI
// smoke leg of bench_front_drain fails when a steady-state drain starts
// allocating again.
//
// The counters are monotone and process-global (all threads). Differences
// between two reads bracket the allocations of everything that ran in
// between — single-thread a measured region for attributable numbers.
#pragma once

#include <cstdint>

namespace statim::util {

/// Total `operator new` (all variants) calls since process start.
[[nodiscard]] std::uint64_t allocation_count() noexcept;

/// Total bytes requested from `operator new` since process start.
/// (Frees are not size-tracked: unsized `operator delete` cannot know.)
[[nodiscard]] std::uint64_t allocation_bytes() noexcept;

/// Total `operator delete` (all variants, non-null) calls.
[[nodiscard]] std::uint64_t free_count() noexcept;

/// Allocation counters bracketing a measured region.
class AllocationSpan {
  public:
    AllocationSpan() noexcept
        : start_count_(allocation_count()), start_bytes_(allocation_bytes()) {}

    /// Allocations since construction (or the last reset()).
    [[nodiscard]] std::uint64_t count() const noexcept {
        return allocation_count() - start_count_;
    }
    [[nodiscard]] std::uint64_t bytes() const noexcept {
        return allocation_bytes() - start_bytes_;
    }
    void reset() noexcept {
        start_count_ = allocation_count();
        start_bytes_ = allocation_bytes();
    }

  private:
    std::uint64_t start_count_;
    std::uint64_t start_bytes_;
};

}  // namespace statim::util
