// Tiny command-line flag parser for the examples and bench binaries.
// Supports `--name value`, `--name=value` and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace statim {

/// Parses argv into named options and positional arguments.
///
/// Unknown flags are kept (retrievable via has()/get()) so binaries can
/// share a common option set; a strict mode is available via validate().
class CliArgs {
  public:
    CliArgs(int argc, const char* const* argv);

    /// True if `--name` appeared (with or without a value).
    [[nodiscard]] bool has(std::string_view name) const;
    /// String value of `--name`, or `fallback` when absent.
    [[nodiscard]] std::string get(std::string_view name, std::string_view fallback = "") const;
    /// Integer value of `--name`; throws ConfigError on malformed input.
    [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
    /// Double value of `--name`; throws ConfigError on malformed input.
    [[nodiscard]] double get_double(std::string_view name, double fallback) const;
    /// Boolean: `--name`, `--name=true/false/1/0/yes/no`.
    [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

    /// Positional (non-flag) arguments in order of appearance.
    [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }
    [[nodiscard]] const std::string& program() const noexcept { return program_; }

    /// Throws ConfigError if any parsed flag is not in `known`; the
    /// message lists the valid options so a typo ("--thread") shows the
    /// flag the caller meant ("--threads").
    void validate(const std::vector<std::string>& known) const;

  private:
    std::string program_;
    std::map<std::string, std::string, std::less<>> options_;
    std::vector<std::string> positional_;
};

/// Resolves the worker-thread count from `--threads` (falling back to
/// STATIM_THREADS, then hardware_concurrency), installs it as the
/// process-wide default, and returns it. Throws ConfigError on
/// `--threads 0` or malformed input.
std::size_t apply_threads_flag(const CliArgs& args);

}  // namespace statim
