// Streaming min/max/mean/variance accumulator (Welford). Used for the
// Table 2 "average time per iteration" and "range of time per iteration"
// columns and for Monte Carlo summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace statim {

/// Accumulates moments of a stream of doubles in O(1) memory.
class RunningStats {
  public:
    void add(double x) noexcept {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double min() const noexcept {
        return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
    }
    [[nodiscard]] double max() const noexcept {
        return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
    }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  private:
    std::uint64_t n_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{std::numeric_limits<double>::infinity()};
    double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace statim
