#include "dist/protocol.hpp"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "api/checkpoint.hpp"
#include "api/detail.hpp"
#include "api/scenario_io.hpp"
#include "api/version.hpp"
#include "util/error.hpp"

namespace statim::dist {

namespace {

constexpr const char* kFrameMagic = "statim-frame";

struct TypeName {
    FrameType type;
    const char* name;
};

constexpr std::array<TypeName, 7> kTypeNames{{
    {FrameType::Hello, "hello"},
    {FrameType::Run, "run"},
    {FrameType::Heartbeat, "beat"},
    {FrameType::Checkpoint, "ckpt"},
    {FrameType::Result, "result"},
    {FrameType::Error, "err"},
    {FrameType::Quit, "quit"},
}};

std::optional<FrameType> type_of(std::string_view name) {
    for (const TypeName& t : kTypeNames)
        if (name == t.name) return t.type;
    return std::nullopt;
}

[[noreturn]] void protocol_error(const std::string& what) {
    throw Error("dispatch protocol: " + what);
}

std::vector<std::string> split_tokens(const std::string& line) {
    std::istringstream ss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ss >> tok) tokens.push_back(std::move(tok));
    return tokens;
}

std::int64_t to_int(const std::string& tok) {
    const char* s = tok.c_str();
    char* end = nullptr;
    const std::int64_t v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0')
        protocol_error("malformed integer '" + tok + "'");
    return v;
}

std::uint64_t to_uint(const std::string& tok) {
    const char* s = tok.c_str();
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || tok.front() == '-' || errno == ERANGE)
        protocol_error("malformed integer '" + tok + "'");
    return v;
}

double to_double(const std::string& tok) {
    const char* s = tok.c_str();
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0') protocol_error("malformed number '" + tok + "'");
    return v;
}

/// Line-at-a-time view over a payload string; tracks the byte offset so
/// the remainder after a marker line can be taken verbatim (checkpoint
/// streams embedded in run/result payloads).
class PayloadReader {
  public:
    explicit PayloadReader(const std::string& payload) : payload_(payload) {}

    /// Next line (without '\n'), or nullopt at end of payload.
    std::optional<std::string> next_line() {
        if (pos_ >= payload_.size()) return std::nullopt;
        const std::size_t nl = payload_.find('\n', pos_);
        const std::size_t end = nl == std::string::npos ? payload_.size() : nl;
        std::string line = payload_.substr(pos_, end - pos_);
        pos_ = nl == std::string::npos ? payload_.size() : nl + 1;
        return line;
    }

    /// Everything after the last consumed line, verbatim.
    [[nodiscard]] std::string rest() const { return payload_.substr(pos_); }

  private:
    const std::string& payload_;
    std::size_t pos_{0};
};

std::string join_from(const std::vector<std::string>& tokens, std::size_t from) {
    std::string out;
    for (std::size_t i = from; i < tokens.size(); ++i) {
        if (!out.empty()) out += ' ';
        out += tokens[i];
    }
    return out;
}

const char* fault_name(api::FaultInjection::Kind kind) {
    switch (kind) {
        case api::FaultInjection::Kind::Kill: return "kill";
        case api::FaultInjection::Kind::Hang: return "hang";
        case api::FaultInjection::Kind::None: break;
    }
    return "none";
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
    for (const TypeName& t : kTypeNames)
        if (t.type == type) return t.name;
    return "?";
}

std::string encode_frame(FrameType type, std::string_view payload) {
    std::string out;
    out.reserve(payload.size() + 32);
    out += kFrameMagic;
    out += ' ';
    out += frame_type_name(type);
    out += ' ';
    out += std::to_string(payload.size());
    out += '\n';
    out += payload;
    out += '\n';
    return out;
}

std::optional<Frame> FrameParser::next() {
    // Reclaim consumed prefix lazily so a long session doesn't grow the
    // buffer without bound.
    if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 4096)) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    const std::size_t nl = buffer_.find('\n', consumed_);
    if (nl == std::string::npos) return std::nullopt;
    const std::string header = buffer_.substr(consumed_, nl - consumed_);
    const std::vector<std::string> tokens = split_tokens(header);
    if (tokens.size() != 3 || tokens[0] != kFrameMagic)
        protocol_error("malformed frame header '" + header + "'");
    const std::optional<FrameType> type = type_of(tokens[1]);
    if (!type) protocol_error("unknown frame type '" + tokens[1] + "'");
    const std::uint64_t length = to_uint(tokens[2]);
    if (length > kMaxFramePayload)
        protocol_error("frame payload of " + tokens[2] + " bytes exceeds the " +
                       std::to_string(kMaxFramePayload) + "-byte bound");
    // header + '\n' + payload + '\n'
    const std::size_t need = nl + 1 + static_cast<std::size_t>(length) + 1;
    if (buffer_.size() - consumed_ < need - consumed_ ||
        buffer_.size() < need)
        return std::nullopt;
    Frame frame;
    frame.type = *type;
    frame.payload = buffer_.substr(nl + 1, static_cast<std::size_t>(length));
    if (buffer_[need - 1] != '\n')
        protocol_error("frame payload is not newline-terminated");
    consumed_ = need;
    return frame;
}

// ---- hello ------------------------------------------------------------

std::string encode_hello() {
    std::ostringstream out;
    out << "statim-dist " << kProtocolVersion << '\n';
    out << "checkpoint " << api::kCheckpointFormatVersion << '\n';
    out << "version " << api::version() << '\n';
    return out.str();
}

Hello parse_hello(const std::string& payload) {
    PayloadReader r(payload);
    Hello hello;
    bool saw_magic = false;
    while (const auto line = r.next_line()) {
        const std::vector<std::string> tokens = split_tokens(*line);
        if (tokens.empty()) continue;
        if (tokens[0] == "statim-dist" && tokens.size() == 2) {
            hello.protocol = static_cast<int>(to_int(tokens[1]));
            saw_magic = true;
        } else if (tokens[0] == "checkpoint" && tokens.size() == 2) {
            hello.checkpoint_version = static_cast<int>(to_int(tokens[1]));
        } else if (tokens[0] == "version") {
            hello.version = join_from(tokens, 1);
        } else {
            protocol_error("malformed hello line '" + *line + "'");
        }
    }
    if (!saw_magic) protocol_error("hello without a statim-dist line");
    return hello;
}

// ---- run --------------------------------------------------------------

std::string encode_run(const RunRequest& run) {
    std::ostringstream out;
    out << "job " << run.job << ' ' << run.attempt << '\n';
    out << "design "
        << (run.source.kind == api::DesignSource::Kind::Registry ? "registry"
                                                                 : "bench")
        << ' ' << run.source.name << '\n';
    if (!run.source.lib_path.empty()) out << "lib " << run.source.lib_path << '\n';
    out << "fingerprint " << run.fingerprint << '\n';
    out << "checkpoint_every " << run.checkpoint_every << '\n';
    if (run.fault_kind != api::FaultInjection::Kind::None)
        out << "fault " << fault_name(run.fault_kind) << ' ' << run.fault_after
            << '\n';
    out << "resume " << run.resume_checkpoint.size() << '\n';
    api::write_scenario(out, run.scenario);
    out << run.resume_checkpoint;
    return out.str();
}

RunRequest parse_run(const std::string& payload) {
    PayloadReader r(payload);
    RunRequest run;
    std::size_t resume_bytes = 0;
    std::string scenario_text;
    for (;;) {
        const auto line = r.next_line();
        if (!line) protocol_error("run payload without a scenario block");
        const std::vector<std::string> tokens = split_tokens(*line);
        if (tokens.empty()) continue;
        const std::string& key = tokens[0];
        if (key == "job" && tokens.size() == 3) {
            run.job = static_cast<int>(to_int(tokens[1]));
            run.attempt = static_cast<int>(to_int(tokens[2]));
        } else if (key == "design" && tokens.size() >= 3) {
            if (tokens[1] == "registry")
                run.source.kind = api::DesignSource::Kind::Registry;
            else if (tokens[1] == "bench")
                run.source.kind = api::DesignSource::Kind::BenchFile;
            else
                protocol_error("unknown design source '" + tokens[1] + "'");
            run.source.name = join_from(tokens, 2);
        } else if (key == "lib" && tokens.size() >= 2) {
            run.source.lib_path = join_from(tokens, 1);
        } else if (key == "fingerprint" && tokens.size() == 2) {
            run.fingerprint = to_uint(tokens[1]);
        } else if (key == "checkpoint_every" && tokens.size() == 2) {
            run.checkpoint_every = static_cast<int>(to_int(tokens[1]));
        } else if (key == "fault" && tokens.size() == 3) {
            if (tokens[1] == "kill")
                run.fault_kind = api::FaultInjection::Kind::Kill;
            else if (tokens[1] == "hang")
                run.fault_kind = api::FaultInjection::Kind::Hang;
            else
                protocol_error("unknown fault kind '" + tokens[1] + "'");
            run.fault_after = static_cast<int>(to_int(tokens[2]));
        } else if (key == "resume" && tokens.size() == 2) {
            resume_bytes = static_cast<std::size_t>(to_uint(tokens[1]));
        } else if (key == "scenario") {
            // The scenario block runs through its own 'end' line; re-read
            // it with the scenario-set parser.
            scenario_text = *line;
            scenario_text += '\n';
            for (;;) {
                const auto body = r.next_line();
                if (!body) protocol_error("run scenario block missing 'end'");
                scenario_text += *body;
                scenario_text += '\n';
                if (split_tokens(*body).size() == 1 && *body == "end") break;
            }
            break;
        } else {
            protocol_error("malformed run line '" + *line + "'");
        }
    }
    std::istringstream scenario_in(scenario_text);
    run.scenario = api::read_scenario_set(scenario_in).front();
    run.resume_checkpoint = r.rest();
    if (run.resume_checkpoint.size() != resume_bytes)
        protocol_error("run resume stream is " +
                       std::to_string(run.resume_checkpoint.size()) +
                       " bytes, header declared " + std::to_string(resume_bytes));
    if (run.job < 0) protocol_error("run payload without a job line");
    return run;
}

// ---- heartbeat --------------------------------------------------------

std::string encode_heartbeat(const HeartbeatMsg& beat) {
    return std::to_string(beat.job) + ' ' + std::to_string(beat.iteration);
}

HeartbeatMsg parse_heartbeat(const std::string& payload) {
    const std::vector<std::string> tokens = split_tokens(payload);
    if (tokens.size() != 2) protocol_error("malformed beat payload");
    return {static_cast<int>(to_int(tokens[0])),
            static_cast<int>(to_int(tokens[1]))};
}

// ---- checkpoint -------------------------------------------------------

std::string encode_checkpoint(const CheckpointMsg& msg) {
    return "job " + std::to_string(msg.job) + '\n' + msg.checkpoint;
}

CheckpointMsg parse_checkpoint(const std::string& payload) {
    PayloadReader r(payload);
    const auto line = r.next_line();
    if (!line) protocol_error("empty ckpt payload");
    const std::vector<std::string> tokens = split_tokens(*line);
    if (tokens.size() != 2 || tokens[0] != "job")
        protocol_error("ckpt payload without a job line");
    CheckpointMsg msg;
    msg.job = static_cast<int>(to_int(tokens[1]));
    msg.checkpoint = r.rest();
    return msg;
}

// ---- result -----------------------------------------------------------

std::string encode_result(const ResultMsg& msg) {
    std::ostringstream out;
    const auto d = [](double v) { return api::detail::fmt_hexdouble(v); };
    out << "job " << msg.job << '\n';
    if (msg.has_mc)
        out << "mc " << msg.mc.samples << ' ' << d(msg.mc.mean_ns) << ' '
            << d(msg.mc.stddev_ns) << ' ' << d(msg.mc.min_ns) << ' '
            << d(msg.mc.max_ns) << ' ' << d(msg.mc.p50_ns) << ' '
            << d(msg.mc.p90_ns) << ' ' << d(msg.mc.p99_ns) << '\n';
    out << "checkpoint\n";
    out << msg.checkpoint;
    return out.str();
}

ResultMsg parse_result(const std::string& payload) {
    PayloadReader r(payload);
    ResultMsg msg;
    for (;;) {
        const auto line = r.next_line();
        if (!line) protocol_error("result payload without a checkpoint section");
        const std::vector<std::string> tokens = split_tokens(*line);
        if (tokens.empty()) continue;
        if (tokens[0] == "job" && tokens.size() == 2) {
            msg.job = static_cast<int>(to_int(tokens[1]));
        } else if (tokens[0] == "mc" && tokens.size() == 9) {
            msg.has_mc = true;
            msg.mc.samples = static_cast<std::size_t>(to_uint(tokens[1]));
            msg.mc.mean_ns = to_double(tokens[2]);
            msg.mc.stddev_ns = to_double(tokens[3]);
            msg.mc.min_ns = to_double(tokens[4]);
            msg.mc.max_ns = to_double(tokens[5]);
            msg.mc.p50_ns = to_double(tokens[6]);
            msg.mc.p90_ns = to_double(tokens[7]);
            msg.mc.p99_ns = to_double(tokens[8]);
        } else if (tokens[0] == "checkpoint" && tokens.size() == 1) {
            break;
        } else {
            protocol_error("malformed result line '" + *line + "'");
        }
    }
    msg.checkpoint = r.rest();
    if (msg.job < 0) protocol_error("result payload without a job line");
    return msg;
}

// ---- error ------------------------------------------------------------

std::string encode_error(const ErrorMsg& msg) {
    return "job " + std::to_string(msg.job) + '\n' + msg.message;
}

ErrorMsg parse_error(const std::string& payload) {
    PayloadReader r(payload);
    const auto line = r.next_line();
    if (!line) protocol_error("empty err payload");
    const std::vector<std::string> tokens = split_tokens(*line);
    if (tokens.size() != 2 || tokens[0] != "job")
        protocol_error("err payload without a job line");
    ErrorMsg msg;
    msg.job = static_cast<int>(to_int(tokens[1]));
    msg.message = r.rest();
    return msg;
}

}  // namespace statim::dist
