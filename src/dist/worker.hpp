// The `statim serve` worker loop: speaks the frame protocol on an fd
// pair, executing one sizing run per run frame.
#pragma once

namespace statim::dist {

/// Blocks serving frames from in_fd, writing frames to out_fd, until a
/// quit frame or EOF. Returns the process exit code (0 on clean
/// shutdown, 1 on a transport/protocol failure).
int worker_loop(int in_fd, int out_fd);

}  // namespace statim::dist
