#include "dist/worker.hpp"

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "api/checkpoint.hpp"
#include "api/design.hpp"
#include "api/detail.hpp"
#include "api/dispatch.hpp"
#include "api/sizing_run.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "util/error.hpp"

namespace statim::dist {

namespace {

/// One frame out; EPIPE (coordinator gone) ends the worker cleanly.
bool send_frame(int out_fd, FrameType type, const std::string& payload) {
    return write_all(out_fd, encode_frame(type, payload));
}

[[noreturn]] void inject_fault(api::FaultInjection::Kind kind) {
    if (kind == api::FaultInjection::Kind::Kill) std::raise(SIGKILL);
    // Hang: stay alive but go silent — the coordinator's heartbeat
    // timeout must detect and kill us.
    for (;;) ::pause();
}

/// Executes one run request end to end, streaming beat/ckpt frames.
/// Throws util Error on deterministic per-run failures (the caller turns
/// those into err frames); returns false when the coordinator vanished.
bool execute_run(int out_fd, const RunRequest& request, api::Design design) {
    if (api::detail::library_fingerprint(design.library()) != request.fingerprint)
        throw Error("library fingerprint mismatch: worker library does not "
                    "match the coordinator's (checkpoint streams would not "
                    "transfer)");

    auto run = [&] {
        if (request.resume_checkpoint.empty())
            return api::SizingRun(design, request.scenario);
        std::istringstream in(request.resume_checkpoint);
        return api::SizingRun::resume(design, in);
    }();

    const auto fault_due = [&] {
        return request.fault_kind != api::FaultInjection::Kind::None &&
               run.iteration() >= request.fault_after;
    };

    while (run.step()) {
        if (!send_frame(out_fd, FrameType::Heartbeat,
                        encode_heartbeat({request.job, run.iteration()})))
            return false;
        if (request.checkpoint_every > 0 &&
            run.iteration() % request.checkpoint_every == 0) {
            std::ostringstream ckpt;
            run.save(ckpt);
            if (!send_frame(out_fd, FrameType::Checkpoint,
                            encode_checkpoint({request.job, ckpt.str()})))
                return false;
        }
        if (fault_due()) inject_fault(request.fault_kind);
    }
    // A resumed already-finished run (or max_iterations 0) never enters
    // the loop; the fault must still fire or a persistent-fault scenario
    // would sneak through on resume.
    if (fault_due()) inject_fault(request.fault_kind);

    ResultMsg result;
    result.job = request.job;
    if (request.scenario.mc_samples > 0) {
        result.has_mc = true;
        result.mc = api::McDigest::of(run.validate_mc(request.scenario.mc_samples));
    }
    std::ostringstream final_state;
    run.save(final_state);
    result.checkpoint = final_state.str();
    return send_frame(out_fd, FrameType::Result, encode_result(result));
}

}  // namespace

int worker_loop(int in_fd, int out_fd) {
    if (!send_frame(out_fd, FrameType::Hello, encode_hello())) return 0;

    // Pristine designs by source, so repeated runs on the same circuit
    // skip the netlist parse; every run sizes a fresh copy.
    std::map<std::string, api::Design> designs;

    FrameParser parser;
    char buf[1 << 16];
    for (;;) {
        std::optional<Frame> frame;
        try {
            while (!(frame = parser.next())) {
                const std::size_t n = read_some(in_fd, buf, sizeof(buf));
                if (n == 0) return 0;  // coordinator closed our stdin
                parser.feed(buf, n);
            }
        } catch (const Error& e) {
            std::fprintf(stderr, "statim serve: %s\n", e.what());
            return 1;
        }

        switch (frame->type) {
            case FrameType::Quit:
                return 0;
            case FrameType::Run: {
                int job = -1;
                try {
                    const RunRequest request = parse_run(frame->payload);
                    job = request.job;
                    const std::string key =
                        (request.source.kind == api::DesignSource::Kind::Registry
                             ? "registry\n"
                             : "bench\n") +
                        request.source.name + '\n' + request.source.lib_path;
                    auto it = designs.find(key);
                    if (it == designs.end())
                        it = designs.emplace(key, request.source.load()).first;
                    if (!execute_run(out_fd, request, it->second)) return 0;
                } catch (const Error& e) {
                    if (!send_frame(out_fd, FrameType::Error,
                                    encode_error({job, e.what()})))
                        return 0;
                }
                break;
            }
            default:
                std::fprintf(stderr,
                             "statim serve: unexpected %s frame from coordinator\n",
                             frame_type_name(frame->type));
                return 1;
        }
    }
}

}  // namespace statim::dist
