// Process + pipe plumbing for the dispatch coordinator and serve worker.
//
// The coordinator spawns each worker as a child process with a pipe pair
// (coordinator writes the child's stdin, reads its stdout) and talks the
// frame protocol over it. Spawning is fork+exec only — fork without exec
// is unsafe here because the parent may hold live thread-pool threads
// whose locks would be cloned mid-acquisition; between fork and exec the
// child makes only async-signal-safe calls.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <vector>

namespace statim::dist {

/// A spawned worker child: its pid and the coordinator's ends of the two
/// pipes. Move-only; close() is idempotent and the destructor closes the
/// fds (but never reaps the pid — the coordinator owns waitpid).
struct WorkerProcess {
    pid_t pid{-1};
    int in_fd{-1};   ///< coordinator reads worker stdout from here
    int out_fd{-1};  ///< coordinator writes worker stdin here

    WorkerProcess() = default;
    WorkerProcess(const WorkerProcess&) = delete;
    WorkerProcess& operator=(const WorkerProcess&) = delete;
    WorkerProcess(WorkerProcess&& other) noexcept;
    WorkerProcess& operator=(WorkerProcess&& other) noexcept;
    ~WorkerProcess();

    [[nodiscard]] bool valid() const noexcept { return pid > 0; }

    /// Closes both fds (signals EOF to the child's stdin).
    void close_fds() noexcept;
};

/// Spawns `command` (argv, PATH-searched) with stdin/stdout wired to
/// fresh pipes; stderr is inherited so worker diagnostics reach the
/// terminal. Throws util Error when the pipes or fork fail. An exec
/// failure surfaces as the child exiting 127 (EOF on its pipe), which the
/// coordinator's dead-worker path reports.
[[nodiscard]] WorkerProcess spawn_worker(const std::vector<std::string>& command);

/// Marks the fd nonblocking (coordinator read side). Throws util Error.
void set_nonblocking(int fd);

/// Writes the whole buffer, retrying on EINTR / short writes. Returns
/// false on EPIPE (receiver died — the caller's dead-worker path), throws
/// util Error on any other failure.
bool write_all(int fd, const std::string& data);

/// Blocking read of up to `cap` bytes; retries EINTR. Returns 0 at EOF,
/// throws util Error on failure. (Worker side; the coordinator uses
/// nonblocking reads in its poll loop.)
std::size_t read_some(int fd, char* buf, std::size_t cap);

/// Absolute path of the running executable (/proc/self/exe), or "" when
/// unavailable; the CLI uses it to respawn itself as `serve` workers.
[[nodiscard]] std::string self_exe_path();

}  // namespace statim::dist
