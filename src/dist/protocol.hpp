// dist wire protocol: length-prefixed frames over a byte stream.
//
// Every message is one frame:
//
//     statim-frame <type> <payload-bytes>\n
//     <payload-bytes bytes of payload>\n
//
// The header is a plain text line, the payload length is explicit, so
// payloads may carry anything line-oriented (scenario blocks, whole
// checkpoint streams) without escaping. Frame types:
//
//   hello   worker -> coordinator, once at startup: protocol version,
//           checkpoint format version, library version string. The
//           coordinator refuses mismatched workers up front.
//   run     coordinator -> worker: one scenario execution — design
//           source + library fingerprint + options + scenario block,
//           optionally followed by a checkpoint stream to resume from
//           (the migration path).
//   beat    worker -> coordinator after every sizing iteration: the
//           liveness signal the heartbeat timeout watches.
//   ckpt    worker -> coordinator every checkpoint_every iterations:
//           the full checkpoint stream migration resumes from.
//   result  worker -> coordinator: final checkpoint stream (widths +
//           history + accumulators) plus the MC digest.
//   err     worker -> coordinator: deterministic per-run failure
//           (fingerprint mismatch, invalid scenario); the worker stays
//           alive and serves the next run.
//   quit    coordinator -> worker: drain and exit cleanly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "api/dispatch.hpp"
#include "api/scenario.hpp"

namespace statim::dist {

inline constexpr int kProtocolVersion = 1;

/// Upper bound on one frame's payload; a corrupt header length surfaces
/// as a protocol error instead of a giant allocation. Far above the
/// largest real payload (a 250k-gate checkpoint stream is ~8 MB).
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 28;

enum class FrameType { Hello, Run, Heartbeat, Checkpoint, Result, Error, Quit };

[[nodiscard]] const char* frame_type_name(FrameType type) noexcept;

struct Frame {
    FrameType type{FrameType::Hello};
    std::string payload;
};

/// Serializes header + payload + trailing newline.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame decoder for a nonblocking byte stream: feed()
/// whatever arrived, next() yields complete frames. Throws util Error on
/// a malformed header, unknown type or oversized payload.
class FrameParser {
  public:
    void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

    /// The next complete frame, or nullopt until more bytes arrive.
    [[nodiscard]] std::optional<Frame> next();

  private:
    std::string buffer_;
    std::size_t consumed_{0};
};

// ---- frame payloads ---------------------------------------------------

struct Hello {
    int protocol{kProtocolVersion};
    int checkpoint_version{0};
    std::string version;  ///< api::version() of the worker build
};

[[nodiscard]] std::string encode_hello();
[[nodiscard]] Hello parse_hello(const std::string& payload);

struct RunRequest {
    int job{-1};      ///< scenario index in the coordinator's set
    int attempt{0};   ///< prior failures of this scenario
    api::DesignSource source;
    std::uint64_t fingerprint{0};  ///< coordinator's library fingerprint
    int checkpoint_every{0};
    api::FaultInjection::Kind fault_kind{api::FaultInjection::Kind::None};
    int fault_after{0};
    api::Scenario scenario;
    std::string resume_checkpoint;  ///< empty = fresh run
};

[[nodiscard]] std::string encode_run(const RunRequest& run);
[[nodiscard]] RunRequest parse_run(const std::string& payload);

struct HeartbeatMsg {
    int job{-1};
    int iteration{0};
};

[[nodiscard]] std::string encode_heartbeat(const HeartbeatMsg& beat);
[[nodiscard]] HeartbeatMsg parse_heartbeat(const std::string& payload);

struct CheckpointMsg {
    int job{-1};
    std::string checkpoint;
};

[[nodiscard]] std::string encode_checkpoint(const CheckpointMsg& msg);
[[nodiscard]] CheckpointMsg parse_checkpoint(const std::string& payload);

struct ResultMsg {
    int job{-1};
    bool has_mc{false};
    api::McDigest mc;
    std::string checkpoint;  ///< final-state checkpoint stream
};

[[nodiscard]] std::string encode_result(const ResultMsg& msg);
[[nodiscard]] ResultMsg parse_result(const std::string& payload);

struct ErrorMsg {
    int job{-1};
    std::string message;
};

[[nodiscard]] std::string encode_error(const ErrorMsg& msg);
[[nodiscard]] ErrorMsg parse_error(const std::string& payload);

}  // namespace statim::dist
