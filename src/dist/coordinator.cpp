#include "dist/coordinator.hpp"

#include <poll.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "api/checkpoint.hpp"
#include "api/detail.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace statim::dist {

namespace {

/// Coordinator pipes outlive workers, so a write can hit a dead reader;
/// EPIPE must come back as an errno (the dead-worker path), not a
/// process-killing signal. Scoped so library callers keep their handler.
class SigpipeGuard {
  public:
    SigpipeGuard() {
        struct sigaction ignore = {};
        ignore.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore, &old_);
    }
    ~SigpipeGuard() { ::sigaction(SIGPIPE, &old_, nullptr); }
    SigpipeGuard(const SigpipeGuard&) = delete;
    SigpipeGuard& operator=(const SigpipeGuard&) = delete;

  private:
    struct sigaction old_ = {};
};

enum class JobStatus { Pending, Running, Done, Failed };

struct JobState {
    JobStatus status{JobStatus::Pending};
    int attempts{0};    ///< worker failures so far
    int migrations{0};  ///< checkpoint-resumed restarts so far
    std::string checkpoint;  ///< latest stream shipped by a worker
};

struct WorkerSlot {
    WorkerProcess proc;
    FrameParser parser;
    bool alive{false};
    bool hello_ok{false};
    int job{-1};  ///< scenario index being run, -1 when idle
    Timer since_frame;
};

class Coordinator {
  public:
    explicit Coordinator(const CoordinatorConfig& config) : config_(config) {
        jobs_.resize(config.scenarios.size());
        outcomes_.resize(config.scenarios.size());
        for (std::size_t i = 0; i < outcomes_.size(); ++i)
            outcomes_[i].scenario = config.scenarios[i];
    }

    CoordinationResult run() {
        SigpipeGuard sigpipe;
        // Every retry consumes a worker death, so the spawn budget is a
        // hard backstop against respawn loops, never the limiting factor
        // for a healthy run.
        spawn_budget_ = config_.workers +
                        static_cast<int>(jobs_.size()) * (config_.retries + 1) + 2;
        try {
            while (unfinished() > 0) {
                maintain_fleet();
                assign_work();
                pump_events();
                enforce_heartbeats();
            }
        } catch (...) {
            shutdown();
            throw;
        }
        shutdown();
        CoordinationResult result;
        result.outcomes = std::move(outcomes_);
        result.complete =
            std::all_of(result.outcomes.begin(), result.outcomes.end(),
                        [](const api::DispatchOutcome& o) { return o.ok; });
        return result;
    }

  private:
    [[nodiscard]] int unfinished() const {
        int n = 0;
        for (const JobState& job : jobs_)
            if (job.status == JobStatus::Pending || job.status == JobStatus::Running)
                ++n;
        return n;
    }

    [[nodiscard]] int alive_workers() const {
        int n = 0;
        for (const WorkerSlot& w : workers_)
            if (w.alive) ++n;
        return n;
    }

    /// Keeps min(workers, remaining jobs) workers alive while work
    /// remains, within the spawn budget.
    void maintain_fleet() {
        const int want = std::min(config_.workers, unfinished());
        while (alive_workers() < want) {
            if (spawn_budget_ <= 0)
                throw Error("dispatch: worker respawn budget exhausted — the "
                            "serve command keeps dying (" +
                            config_.serve_command.front() + ")");
            if (startup_failures_ > config_.workers + 1)
                throw Error("dispatch: workers exit before completing the "
                            "protocol handshake — is '" +
                            config_.serve_command.front() +
                            "' a statim build with a working 'serve' mode?");
            --spawn_budget_;
            WorkerSlot slot;
            slot.proc = spawn_worker(config_.serve_command);
            set_nonblocking(slot.proc.in_fd);
            slot.alive = true;
            slot.since_frame.reset();
            // Reuse a dead slot if any, else append.
            auto dead = std::find_if(workers_.begin(), workers_.end(),
                                     [](const WorkerSlot& w) { return !w.alive; });
            if (dead != workers_.end())
                *dead = std::move(slot);
            else
                workers_.push_back(std::move(slot));
        }
    }

    /// Heaviest-first (LPT) assignment: estimated cost is the iteration
    /// cap — with one design shared by every scenario, iterations are the
    /// work unit — ties broken by input order for determinism.
    [[nodiscard]] int pick_pending() const {
        int best = -1;
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (jobs_[i].status != JobStatus::Pending) continue;
            if (best < 0 || config_.scenarios[i].max_iterations >
                                config_.scenarios[best].max_iterations)
                best = static_cast<int>(i);
        }
        return best;
    }

    void assign_work() {
        for (WorkerSlot& worker : workers_) {
            if (!worker.alive || !worker.hello_ok || worker.job >= 0) continue;
            const int job = pick_pending();
            if (job < 0) break;
            RunRequest request;
            request.job = job;
            request.attempt = jobs_[job].attempts;
            request.source = config_.source;
            request.fingerprint = config_.fingerprint;
            request.checkpoint_every = config_.checkpoint_every;
            if (config_.fault.kind != api::FaultInjection::Kind::None &&
                config_.fault.scenario == job &&
                (config_.fault.persistent || jobs_[job].attempts == 0)) {
                request.fault_kind = config_.fault.kind;
                request.fault_after = config_.fault.after_iteration;
            }
            request.scenario = config_.scenarios[job];
            request.resume_checkpoint = jobs_[job].checkpoint;
            if (!request.resume_checkpoint.empty()) ++jobs_[job].migrations;
            jobs_[job].status = JobStatus::Running;
            worker.job = job;
            worker.since_frame.reset();
            if (!write_all(worker.proc.out_fd,
                           encode_frame(FrameType::Run, encode_run(request))))
                worker_died(worker);
        }
    }

    /// Polls all live workers, drains readable pipes, handles frames and
    /// EOFs. Timeout tracks the nearest heartbeat deadline.
    void pump_events() {
        std::vector<pollfd> fds;
        std::vector<std::size_t> index;
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            if (!workers_[i].alive) continue;
            fds.push_back({workers_[i].proc.in_fd, POLLIN, 0});
            index.push_back(i);
        }
        if (fds.empty()) return;

        int timeout_ms = 1000;
        for (const WorkerSlot& w : workers_) {
            if (!w.alive) continue;
            if (w.job < 0 && w.hello_ok) continue;  // idle: nothing expected
            const int left = config_.heartbeat_timeout_ms -
                             static_cast<int>(w.since_frame.millis());
            timeout_ms = std::min(timeout_ms, left);
        }
        timeout_ms = std::max(timeout_ms, 10);

        const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
        if (ready < 0) {
            if (errno == EINTR) return;
            throw Error(std::string("dispatch: poll: ") + std::strerror(errno));
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (fds[k].revents == 0) continue;
            drain_worker(workers_[index[k]]);
        }
    }

    /// Nonblocking read until EAGAIN/EOF; frames are processed before an
    /// EOF is acted on, so a result that raced the worker's death lands.
    void drain_worker(WorkerSlot& worker) {
        char buf[1 << 16];
        bool saw_eof = false;
        for (;;) {
            const ssize_t n = ::read(worker.proc.in_fd, buf, sizeof(buf));
            if (n > 0) {
                worker.parser.feed(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                saw_eof = true;
                break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            saw_eof = true;  // treat a broken pipe read as death
            break;
        }
        while (worker.alive) {
            const std::optional<Frame> frame = worker.parser.next();
            if (!frame) break;
            worker.since_frame.reset();
            handle_frame(worker, *frame);
        }
        if (saw_eof && worker.alive) worker_died(worker);
    }

    void handle_frame(WorkerSlot& worker, const Frame& frame) {
        switch (frame.type) {
            case FrameType::Hello: {
                const Hello hello = parse_hello(frame.payload);
                if (hello.protocol != kProtocolVersion ||
                    hello.checkpoint_version != api::kCheckpointFormatVersion)
                    throw Error(
                        "dispatch: worker version skew — worker speaks protocol " +
                        std::to_string(hello.protocol) + "/checkpoint " +
                        std::to_string(hello.checkpoint_version) +
                        ", coordinator needs " + std::to_string(kProtocolVersion) +
                        "/" + std::to_string(api::kCheckpointFormatVersion) +
                        " (worker build: " + hello.version + ")");
                worker.hello_ok = true;
                break;
            }
            case FrameType::Heartbeat:
                parse_heartbeat(frame.payload);  // liveness is the payload
                break;
            case FrameType::Checkpoint: {
                const CheckpointMsg msg = parse_checkpoint(frame.payload);
                expect_current_job(worker, msg.job, "ckpt");
                jobs_[msg.job].checkpoint = msg.checkpoint;
                break;
            }
            case FrameType::Result: {
                ResultMsg msg = parse_result(frame.payload);
                expect_current_job(worker, msg.job, "result");
                finish_job(msg);
                worker.job = -1;
                break;
            }
            case FrameType::Error: {
                const ErrorMsg msg = parse_error(frame.payload);
                if (msg.job < 0)
                    throw Error("dispatch: worker rejected a run request: " +
                                msg.message);
                expect_current_job(worker, msg.job, "err");
                fail_job(msg.job, msg.message);
                worker.job = -1;
                break;
            }
            default:
                throw Error(std::string("dispatch: unexpected ") +
                            frame_type_name(frame.type) + " frame from worker");
        }
    }

    void expect_current_job(const WorkerSlot& worker, int job, const char* what) {
        if (job != worker.job)
            throw Error(std::string("dispatch: ") + what + " frame for job " +
                        std::to_string(job) + " from the worker running job " +
                        std::to_string(worker.job));
    }

    /// Builds the outcome from the final-state checkpoint the result
    /// frame carries: widths, full sizing history, exact accumulators —
    /// the same state an in-process run ends with.
    void finish_job(const ResultMsg& msg) {
        std::istringstream in(msg.checkpoint);
        api::detail::CheckpointPayload payload = api::detail::load_checkpoint(in);
        if (payload.design_name != config_.design_name ||
            payload.library_fingerprint != config_.fingerprint)
            throw Error("dispatch: result checkpoint is from design '" +
                        payload.design_name + "', expected '" +
                        config_.design_name + "'");
        api::DispatchOutcome& outcome = outcomes_[msg.job];
        outcome.ok = true;
        outcome.error.clear();
        outcome.widths = std::move(payload.widths);
        outcome.sizing = std::move(payload.loop.result);
        if (msg.has_mc) outcome.mc = msg.mc;
        outcome.attempts = jobs_[msg.job].attempts;
        outcome.migrations = jobs_[msg.job].migrations;
        jobs_[msg.job].status = JobStatus::Done;
        jobs_[msg.job].checkpoint.clear();
    }

    /// Deterministic failure (worker err frame or exhausted retries).
    void fail_job(int job, const std::string& message) {
        api::DispatchOutcome& outcome = outcomes_[job];
        outcome.ok = false;
        outcome.error = message;
        outcome.attempts = jobs_[job].attempts;
        outcome.migrations = jobs_[job].migrations;
        jobs_[job].status = JobStatus::Failed;
        jobs_[job].checkpoint.clear();
    }

    /// EOF/EPIPE on a worker: reap it and recover its job. The run is
    /// requeued to resume from the latest shipped checkpoint (migration)
    /// until the scenario's retry budget runs out.
    void worker_died(WorkerSlot& worker) {
        worker.alive = false;
        if (worker.proc.pid > 0) {
            int status = 0;
            while (::waitpid(worker.proc.pid, &status, 0) < 0 && errno == EINTR) {}
        }
        worker.proc.close_fds();
        if (!worker.hello_ok && worker.job < 0) ++startup_failures_;
        if (worker.job < 0) return;
        const int job = worker.job;
        worker.job = -1;
        JobState& state = jobs_[job];
        ++state.attempts;
        if (state.attempts > config_.retries) {
            fail_job(job, "retry budget exhausted (" +
                              std::to_string(state.attempts) + " worker failures)");
            return;
        }
        state.status = JobStatus::Pending;
        std::fprintf(stderr,
                     "statim dispatch: worker died running scenario %d "
                     "(attempt %d)%s\n",
                     job, state.attempts,
                     state.checkpoint.empty() ? ", restarting from scratch"
                                              : ", migrating from checkpoint");
    }

    /// SIGKILLs workers that stopped producing frames (hung runs, or a
    /// worker that never completed the handshake).
    void enforce_heartbeats() {
        for (WorkerSlot& worker : workers_) {
            if (!worker.alive) continue;
            if (worker.job < 0 && worker.hello_ok) continue;
            if (worker.since_frame.millis() <
                static_cast<double>(config_.heartbeat_timeout_ms))
                continue;
            std::fprintf(stderr,
                         "statim dispatch: no frames from worker pid %d for "
                         "%d ms — killing it\n",
                         static_cast<int>(worker.proc.pid),
                         config_.heartbeat_timeout_ms);
            ::kill(worker.proc.pid, SIGKILL);
            worker_died(worker);
        }
    }

    void shutdown() noexcept {
        for (WorkerSlot& worker : workers_) {
            if (!worker.alive) continue;
            try {
                write_all(worker.proc.out_fd, encode_frame(FrameType::Quit, ""));
            } catch (...) {}
            worker.proc.close_fds();
            int status = 0;
            while (::waitpid(worker.proc.pid, &status, 0) < 0 && errno == EINTR) {}
            worker.alive = false;
        }
    }

    const CoordinatorConfig& config_;
    std::vector<JobState> jobs_;
    std::vector<api::DispatchOutcome> outcomes_;
    std::vector<WorkerSlot> workers_;
    int spawn_budget_{0};
    int startup_failures_{0};
};

}  // namespace

CoordinationResult coordinate(const CoordinatorConfig& config) {
    if (config.serve_command.empty())
        throw ConfigError("dispatch: no serve command configured");
    if (config.workers < 1)
        throw ConfigError("dispatch: worker count must be >= 1 (use the "
                          "in-process path for workers == 0)");
    if (config.scenarios.empty())
        throw ConfigError("dispatch: empty scenario set");
    Coordinator coordinator(config);
    return coordinator.run();
}

}  // namespace statim::dist
