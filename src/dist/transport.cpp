#include "dist/transport.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace statim::dist {

namespace {

[[noreturn]] void sys_error(const char* what) {
    throw Error(std::string(what) + ": " + std::strerror(errno));
}

void close_quiet(int& fd) noexcept {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

}  // namespace

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid(std::exchange(other.pid, -1)),
      in_fd(std::exchange(other.in_fd, -1)),
      out_fd(std::exchange(other.out_fd, -1)) {}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
    if (this != &other) {
        close_fds();
        pid = std::exchange(other.pid, -1);
        in_fd = std::exchange(other.in_fd, -1);
        out_fd = std::exchange(other.out_fd, -1);
    }
    return *this;
}

WorkerProcess::~WorkerProcess() { close_fds(); }

void WorkerProcess::close_fds() noexcept {
    close_quiet(in_fd);
    close_quiet(out_fd);
}

WorkerProcess spawn_worker(const std::vector<std::string>& command) {
    if (command.empty()) throw Error("spawn_worker: empty command");

    // [0] = read end, [1] = write end. O_CLOEXEC on both so a worker
    // never inherits a sibling's pipe ends; the child's dup2 onto fds
    // 0/1 clears the flag on exactly the two ends it needs.
    int to_child[2] = {-1, -1};    // coordinator -> worker stdin
    int from_child[2] = {-1, -1};  // worker stdout -> coordinator
    if (::pipe2(to_child, O_CLOEXEC) != 0) sys_error("pipe2");
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
        close_quiet(to_child[0]);
        close_quiet(to_child[1]);
        sys_error("pipe2");
    }

    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const std::string& arg : command)
        argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        close_quiet(to_child[0]);
        close_quiet(to_child[1]);
        close_quiet(from_child[0]);
        close_quiet(from_child[1]);
        sys_error("fork");
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls until exec.
        if (::dup2(to_child[0], STDIN_FILENO) < 0 ||
            ::dup2(from_child[1], STDOUT_FILENO) < 0)
            ::_exit(127);
        ::execvp(argv[0], argv.data());
        ::_exit(127);
    }

    close_quiet(to_child[0]);
    close_quiet(from_child[1]);
    WorkerProcess worker;
    worker.pid = pid;
    worker.in_fd = from_child[0];
    worker.out_fd = to_child[1];
    return worker;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        sys_error("fcntl(O_NONBLOCK)");
}

bool write_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EPIPE) return false;
            sys_error("write");
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::size_t read_some(int fd, char* buf, std::size_t cap) {
    for (;;) {
        const ssize_t n = ::read(fd, buf, cap);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno != EINTR) sys_error("read");
    }
}

std::string self_exe_path() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) return {};
    return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace statim::dist
