// The dispatch coordinator: spawns serve workers, shards the scenario
// set across them, watches heartbeats, and migrates interrupted runs by
// shipping checkpoint streams. Single-threaded poll() event loop —
// workers provide all the parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/dispatch.hpp"

namespace statim::dist {

struct CoordinatorConfig {
    api::DesignSource source;
    /// Netlist name of the coordinator's design (result sanity check).
    std::string design_name;
    /// Coordinator-side library fingerprint; every run frame carries it
    /// and workers refuse runs under a mismatched library.
    std::uint64_t fingerprint{0};
    std::vector<api::Scenario> scenarios;
    int workers{2};
    int checkpoint_every{1};
    int heartbeat_timeout_ms{60000};
    int retries{2};
    std::vector<std::string> serve_command;
    api::FaultInjection fault;
};

struct CoordinationResult {
    /// False when any scenario failed (budget exhausted or worker error).
    bool complete{true};
    /// One outcome per scenario, input order.
    std::vector<api::DispatchOutcome> outcomes;
};

/// Runs the whole scenario set to completion (every scenario Done or
/// Failed). Throws util Error when the worker command itself is broken
/// (exec failure, protocol mismatch) — per-scenario failures land in the
/// outcomes instead.
[[nodiscard]] CoordinationResult coordinate(const CoordinatorConfig& config);

}  // namespace statim::dist
