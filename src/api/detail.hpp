// Internal Scenario → core/ssta configuration converters. Not part of
// the stable API surface: consumers include api/statim.hpp, which leaves
// this header out.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "cells/library.hpp"
#include "core/sizers.hpp"
#include "ssta/grid_policy.hpp"
#include "util/rng.hpp"

namespace statim::api::detail {

[[nodiscard]] core::Objective to_objective(const Scenario& s);
[[nodiscard]] ssta::GridPolicy to_grid_policy(const Scenario& s);
[[nodiscard]] core::SelectorKind to_selector_kind(Scenario::Selector s);
[[nodiscard]] core::StatisticalSizerConfig to_sizer_config(const Scenario& s);

/// Applies the scenario's SIMD dispatch request to the process-global
/// kernel table (see Scenario::simd). Called at every API entry point
/// that runs SSTA. Because all dispatch levels are bitwise identical,
/// concurrent scenarios forcing different levels (run_scenarios) race
/// only on *speed*, never on results. Throws ConfigError when the
/// requested level is unsupported on this host.
void apply_simd(const Scenario& s);

/// Stable digest of everything the delay/area model reads from a
/// library (cell parameters, pin weights, sigma fraction, truncation).
/// Checkpoints carry it so a resume under a different library — which
/// would silently diverge from the saved trajectory — is rejected.
[[nodiscard]] std::uint64_t library_fingerprint(const cells::Library& lib);

/// Everything a checkpoint carries (see api/checkpoint.hpp for the
/// format contract).
struct CheckpointPayload {
    std::string design_name;
    std::uint64_t library_fingerprint{0};
    double grid_dt_ns{0.0};
    Scenario scenario;
    Rng::State rng;
    std::vector<double> widths;  ///< per gate, GateId order
    core::StatisticalSizerLoop::ResumeState loop;
};

void save_checkpoint(std::ostream& out, const CheckpointPayload& payload);
/// Throws util ParseError on malformed input or a version mismatch.
[[nodiscard]] CheckpointPayload load_checkpoint(std::istream& in);

/// Exact double serialization shared by the line-oriented formats
/// (checkpoints, scenario sets): C99 hexfloat round-trips every finite
/// value bit for bit, "inf"/"-inf"/"nan" cover the rest.
[[nodiscard]] std::string fmt_hexdouble(double v);

/// Rejects names the whitespace-tokenizing line formats cannot round-trip
/// (empty, tabs, leading/trailing/consecutive spaces). Throws ConfigError;
/// `what` names the field in the message.
void require_line_writable_name(const char* what, const std::string& name);

}  // namespace statim::api::detail
