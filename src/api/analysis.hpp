// Analysis entry points of the public API: one-call SSTA, Monte Carlo
// validation, criticality reporting and the deterministic-vs-statistical
// comparison — everything the examples and the CLI read, with no core/
// engine wiring on the caller's side.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "api/design.hpp"
#include "api/scenario.hpp"
#include "core/flow.hpp"
#include "prob/pdf.hpp"
#include "util/types.hpp"

namespace statim::api {

/// One full statistical timing analysis of a design.
struct AnalysisResult {
    std::string design;
    std::size_t nodes{0};
    std::size_t edges{0};
    std::size_t gates{0};
    /// Grid pitch the analysis ran on (ns per bin).
    double dt_ns{0.0};
    /// Circuit-delay (sink-arrival) distribution, owned.
    prob::Pdf sink;
    /// Nominal (deterministic) critical-path delay.
    double nominal_delay_ns{0.0};
    /// Nominal slack of each primary output, Design PO order.
    std::vector<double> po_slack_ns;
    /// Objective of the scenario the analysis ran under (ns).
    double objective_ns{0.0};
    double seconds{0.0};

    [[nodiscard]] double mean_ns() const;
    [[nodiscard]] double stddev_ns() const;
    /// p-quantile of the circuit delay in ns, p in (0, 1].
    [[nodiscard]] double percentile_ns(double p) const;
    /// Timing yield at delay target `t_ns`.
    [[nodiscard]] double yield_at(double t_ns) const;
    /// CDF sample points as (time_ns, cumulative_probability) pairs.
    [[nodiscard]] std::vector<std::pair<double, double>> cdf_points() const;
};

/// Runs SSTA (plus a nominal STA for the deterministic figures) on the
/// design at its current widths.
[[nodiscard]] AnalysisResult analyze(const Design& design, const Scenario& scenario = {});

/// Empirical circuit-delay distribution from Monte Carlo sampling — the
/// exact reference the SSTA bound is validated against (paper Section 4).
struct McSummary {
    std::size_t samples{0};
    double mean_ns{0.0};
    double stddev_ns{0.0};
    double min_ns{0.0};
    double max_ns{0.0};
    /// Sorted sample delays (ascending, ns).
    std::vector<double> sorted_ns;
    double seconds{0.0};

    /// Empirical p-quantile by order statistic, p in (0, 1].
    [[nodiscard]] double percentile_ns(double p) const;
    /// Fraction of samples meeting the delay target.
    [[nodiscard]] double yield_at(double t_ns) const;
};

/// Runs `samples` independent STA evaluations with sampled edge delays,
/// seeded from scenario.seed. Deterministic per (design, scenario,
/// samples).
[[nodiscard]] McSummary monte_carlo(const Design& design, const Scenario& scenario = {},
                                    std::size_t samples = 10000);

/// Statistical criticality of the design's gates plus its K worst
/// nominal paths — the Figure 1 "wall" diagnostics.
struct CriticalityReport {
    struct GateEntry {
        GateId gate{GateId::invalid()};
        std::string gate_name;
        std::string cell_name;
        double criticality{0.0};  ///< P(gate lies on the longest path)
        bool on_nominal_path{false};
    };
    struct PathEntry {
        double delay_ns{0.0};
        std::vector<std::string> gate_names;  ///< path order
    };

    double nominal_delay_ns{0.0};
    /// Gates ranked by criticality, descending (top_n entries).
    std::vector<GateEntry> ranked;
    /// The n_paths longest nominal paths, descending delay.
    std::vector<PathEntry> nominal_paths;
    /// Per-gate criticality in GateId order (all gates; for exports).
    std::vector<double> gate_scores;
};

[[nodiscard]] CriticalityReport criticality_report(const Design& design,
                                                   const Scenario& scenario = {},
                                                   std::size_t top_n = 15,
                                                   std::size_t n_paths = 5);

/// Graphviz export of the design with gates shaded by `gate_scores`
/// (pass report.gate_scores, or empty for no shading).
void write_dot(std::ostream& out, const Design& design,
               const std::vector<double>& gate_scores = {});

/// The paper's Table 1 experiment on one design: deterministic baseline
/// for `det_iterations`, then statistical sizing to the same added area
/// on an identical copy, both evaluated on a common grid. The two sized
/// circuits come back as Designs for further analysis (slack profiles,
/// re-analysis at other percentiles, …).
struct CompareOutcome {
    core::ComparisonResult comparison;
    Design deterministic;  ///< the baseline's sized circuit
    Design statistical;    ///< the statistical optimizer's sized circuit
};

[[nodiscard]] CompareOutcome compare_sizings(const Design& design,
                                             const Scenario& scenario,
                                             int det_iterations);

}  // namespace statim::api
