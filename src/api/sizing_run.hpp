// api::SizingRun — a stepwise, checkpointable statistical sizing run.
//
// Wraps the core sizer loop behind a stable handle: construct one from a
// Design + Scenario, then step() per outer iteration (observing the
// objective/area trajectory as it runs) or run_to_convergence() in one
// call. The design's netlist is sized in place.
//
// Checkpointing: save() snapshots the run (gate widths, history, exact
// accumulators, RNG state, scenario, grid pitch) to a stream; resume()
// reconstructs a run from that stream onto the same design and continues
// the *uninterrupted* trajectory — final arrivals and sizing history are
// bitwise identical to a run that never stopped, for any thread or batch
// count. Format contract: api/checkpoint.hpp.
#pragma once

#include <iosfwd>
#include <memory>

#include "api/analysis.hpp"
#include "api/design.hpp"
#include "api/scenario.hpp"
#include "core/sizers.hpp"
#include "util/rng.hpp"

namespace statim::api {

class SizingRun {
  public:
    /// Binds to `design` (must outlive the run; its netlist is modified
    /// in place) and runs the initial SSTA. Throws ConfigError on an
    /// invalid scenario.
    SizingRun(Design& design, Scenario scenario);
    ~SizingRun();

    SizingRun(SizingRun&&) noexcept;
    SizingRun& operator=(SizingRun&&) noexcept;
    SizingRun(const SizingRun&) = delete;
    SizingRun& operator=(const SizingRun&) = delete;

    /// Runs one outer iteration (committing up to the scenario's
    /// gates_per_iteration gates under one merged-cone refresh); no-op
    /// once finished. Returns !finished().
    bool step();
    /// Steps until the run stops (convergence, budget, target, or the
    /// iteration cap).
    void run_to_convergence();

    [[nodiscard]] bool finished() const;
    /// Outer iterations completed so far.
    [[nodiscard]] int iteration() const;
    /// Objective on the current sized state (ns).
    [[nodiscard]] double objective_ns() const;
    [[nodiscard]] double area() const;
    [[nodiscard]] const Scenario& scenario() const;
    /// Full per-iteration record (core::SizingResult is a stable result
    /// type: history, budgets, stop reason, refresh accounting).
    [[nodiscard]] const core::SizingResult& result() const;

    /// The run's deterministic RNG stream (seeded from scenario.seed;
    /// checkpoints carry its state). Post-sizing consumers draw from it
    /// so save/resume does not change downstream sampling.
    [[nodiscard]] Rng& rng();

    /// Monte Carlo validation of the design's current sized state. The
    /// sample seed is drawn from the run's RNG stream (which checkpoints
    /// carry), so resumed and uninterrupted runs validate with identical
    /// samples — the one implementation behind scenario.mc_samples and
    /// the CLI's --mc.
    [[nodiscard]] McSummary validate_mc(std::size_t samples);

    /// Snapshots the run. Valid at any iteration boundary, finished or
    /// not.
    void save(std::ostream& out) const;

    /// Reconstructs a run from a checkpoint onto `design` — the same
    /// circuit the checkpoint was taken from (name and gate count are
    /// verified; widths are overwritten from the checkpoint). Continues
    /// bit-identically to the uninterrupted run.
    [[nodiscard]] static SizingRun resume(Design& design, std::istream& in);

  private:
    struct Impl;
    explicit SizingRun(std::unique_ptr<Impl> impl);

    std::unique_ptr<Impl> impl_;
};

}  // namespace statim::api
