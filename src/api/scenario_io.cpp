#include "api/scenario_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "api/detail.hpp"
#include "util/error.hpp"

namespace statim::api {

namespace {

constexpr const char* kFile = "<scenarios>";

/// Whitespace-tokenizing line reader with '#' comment support (the
/// scenario-set format is hand-editable, unlike checkpoints).
class Reader {
  public:
    explicit Reader(std::istream& in) : in_(in) {}

    [[nodiscard]] int line_number() const noexcept { return line_; }

    /// Next non-empty, non-comment line as whitespace tokens; empty
    /// vector at end of stream.
    std::vector<std::string> next_line() {
        std::string line;
        while (std::getline(in_, line)) {
            ++line_;
            if (const std::size_t hash = line.find('#'); hash != std::string::npos)
                line.erase(hash);
            std::istringstream ss(line);
            std::vector<std::string> tokens;
            std::string tok;
            while (ss >> tok) tokens.push_back(std::move(tok));
            if (!tokens.empty()) return tokens;
        }
        return {};
    }

    double as_double(const std::string& tok) const {
        const char* s = tok.c_str();
        char* end = nullptr;
        const double v = std::strtod(s, &end);
        if (end == s || *end != '\0')
            throw ParseError(kFile, line_, "malformed number '" + tok + "'");
        return v;
    }

    std::int64_t as_int(const std::string& tok) const {
        const char* s = tok.c_str();
        char* end = nullptr;
        const std::int64_t v = std::strtoll(s, &end, 10);
        if (end == s || *end != '\0')
            throw ParseError(kFile, line_, "malformed integer '" + tok + "'");
        return v;
    }

    std::uint64_t as_uint(const std::string& tok) const {
        const char* s = tok.c_str();
        char* end = nullptr;
        errno = 0;
        const std::uint64_t v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || tok.front() == '-' || errno == ERANGE)
            throw ParseError(kFile, line_, "malformed integer '" + tok + "'");
        return v;
    }

    bool as_bool(const std::string& tok) const { return as_int(tok) != 0; }

  private:
    std::istream& in_;
    int line_{0};
};

std::string join(const std::vector<std::string>& tokens, std::size_t from) {
    std::string out;
    for (std::size_t i = from; i < tokens.size(); ++i) {
        if (!out.empty()) out += ' ';
        out += tokens[i];
    }
    return out;
}

/// One block, "scenario" header already consumed (tokens = that line).
Scenario read_block(Reader& r, const std::vector<std::string>& header) {
    Scenario s;
    if (header.size() < 2)
        throw ParseError(kFile, r.line_number(), "'scenario' needs a name");
    s.name = join(header, 1);

    for (;;) {
        const std::vector<std::string> tokens = r.next_line();
        if (tokens.empty())
            throw ParseError(kFile, r.line_number(),
                             "scenario '" + s.name + "' is missing its 'end'");
        const std::string& key = tokens[0];
        if (key == "end") {
            if (tokens.size() != 1)
                throw ParseError(kFile, r.line_number(), "'end' takes no value");
            break;
        }
        const auto value = [&](std::size_t i = 1) -> const std::string& {
            if (tokens.size() <= i)
                throw ParseError(kFile, r.line_number(),
                                 "'" + key + "' is missing its value");
            return tokens[i];
        };
        if (key == "objective") {
            const std::string& kind = value(1);
            if (kind == "percentile")
                s.objective = Scenario::Objective::Percentile;
            else if (kind == "mean")
                s.objective = Scenario::Objective::Mean;
            else
                throw ParseError(kFile, r.line_number(),
                                 "unknown objective '" + kind + "'");
            if (tokens.size() > 2) s.percentile = r.as_double(value(2));
        } else if (key == "percentile") {
            s.percentile = r.as_double(value());
        } else if (key == "grid_bins") {
            s.grid_bins = static_cast<int>(r.as_int(value()));
        } else if (key == "selector") {
            try {
                s.selector = Scenario::parse_selector(value());
            } catch (const ConfigError& e) {
                throw ParseError(kFile, r.line_number(), e.what());
            }
        } else if (key == "delta_w") {
            s.delta_w = r.as_double(value());
        } else if (key == "max_width") {
            s.max_width = r.as_double(value());
        } else if (key == "max_iterations") {
            s.max_iterations = static_cast<int>(r.as_int(value()));
        } else if (key == "area_budget") {
            s.area_budget = r.as_double(value());
        } else if (key == "target_objective_ns") {
            s.target_objective_ns = r.as_double(value());
        } else if (key == "gates_per_iteration") {
            s.gates_per_iteration = static_cast<int>(r.as_int(value()));
        } else if (key == "threads") {
            s.threads = static_cast<std::size_t>(r.as_uint(value()));
        } else if (key == "incremental_ssta") {
            s.incremental_ssta = r.as_bool(value());
        } else if (key == "simd") {
            s.simd = value();
        } else if (key == "crit_floor") {
            s.crit_floor = r.as_double(value());
        } else if (key == "selector_cache") {
            s.selector_cache = r.as_bool(value());
        } else if (key == "mc_samples") {
            s.mc_samples = static_cast<std::size_t>(r.as_uint(value()));
        } else if (key == "seed") {
            s.seed = r.as_uint(value());
        } else {
            throw ParseError(kFile, r.line_number(),
                             "unknown scenario key '" + key + "'");
        }
    }
    s.validate();
    return s;
}

}  // namespace

std::vector<Scenario> read_scenario_set(std::istream& in) {
    Reader r(in);
    std::vector<Scenario> scenarios;
    for (;;) {
        const std::vector<std::string> tokens = r.next_line();
        if (tokens.empty()) break;
        if (tokens[0] != "scenario")
            throw ParseError(kFile, r.line_number(),
                             "expected 'scenario <name>', got '" + tokens[0] + "'");
        scenarios.push_back(read_block(r, tokens));
    }
    if (scenarios.empty())
        throw ParseError(kFile, r.line_number(),
                         "no scenario blocks found (expected 'scenario <name>')");
    return scenarios;
}

void write_scenario(std::ostream& out, const Scenario& s) {
    detail::require_line_writable_name("scenario set: scenario", s.name);
    if (s.name.find('#') != std::string::npos)
        throw ConfigError("scenario set: scenario name '" + s.name +
                          "' contains '#' (the format's comment marker)");
    const auto d = [](double v) { return detail::fmt_hexdouble(v); };
    out << "scenario " << s.name << '\n';
    out << "objective "
        << (s.objective == Scenario::Objective::Mean ? "mean" : "percentile") << ' '
        << d(s.percentile) << '\n';
    out << "grid_bins " << s.grid_bins << '\n';
    out << "selector " << Scenario::selector_name(s.selector) << '\n';
    out << "delta_w " << d(s.delta_w) << '\n';
    out << "max_width " << d(s.max_width) << '\n';
    out << "max_iterations " << s.max_iterations << '\n';
    out << "area_budget " << d(s.area_budget) << '\n';
    out << "target_objective_ns " << d(s.target_objective_ns) << '\n';
    out << "gates_per_iteration " << s.gates_per_iteration << '\n';
    out << "threads " << s.threads << '\n';
    out << "incremental_ssta " << (s.incremental_ssta ? 1 : 0) << '\n';
    out << "simd " << s.simd << '\n';
    out << "crit_floor " << d(s.crit_floor) << '\n';
    out << "selector_cache " << (s.selector_cache ? 1 : 0) << '\n';
    out << "mc_samples " << s.mc_samples << '\n';
    out << "seed " << s.seed << '\n';
    out << "end\n";
}

void write_scenario_set(std::ostream& out, std::span<const Scenario> scenarios) {
    for (const Scenario& s : scenarios) write_scenario(out, s);
}

}  // namespace statim::api
