#include "api/checkpoint.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "api/detail.hpp"
#include "util/error.hpp"

namespace statim::api {

namespace {

constexpr const char* kMagic = "statim-checkpoint";

std::string fmt_double(double v) { return detail::fmt_hexdouble(v); }

class Reader {
  public:
    explicit Reader(std::istream& in) : in_(in) {}

    [[nodiscard]] int line_number() const noexcept { return line_; }

    /// Next non-empty line, split into whitespace tokens.
    std::vector<std::string> next_line() {
        std::string line;
        while (std::getline(in_, line)) {
            ++line_;
            std::istringstream ss(line);
            std::vector<std::string> tokens;
            std::string tok;
            while (ss >> tok) tokens.push_back(std::move(tok));
            if (!tokens.empty()) return tokens;
        }
        throw ParseError("<checkpoint>", line_, "unexpected end of checkpoint");
    }

    /// Line of the form "<key> <value...>"; returns the value tokens.
    std::vector<std::string> expect(const std::string& key,
                                    std::size_t min_values = 1) {
        std::vector<std::string> tokens = next_line();
        if (tokens.front() != key)
            throw ParseError("<checkpoint>", line_,
                             "expected '" + key + "', got '" + tokens.front() + "'");
        if (tokens.size() < min_values + 1)
            throw ParseError("<checkpoint>", line_,
                             "'" + key + "' is missing its value");
        tokens.erase(tokens.begin());
        return tokens;
    }

    double as_double(const std::string& tok) {
        const char* s = tok.c_str();
        char* end = nullptr;
        const double v = std::strtod(s, &end);
        if (end == s || *end != '\0')
            throw ParseError("<checkpoint>", line_, "malformed number '" + tok + "'");
        return v;
    }

    std::int64_t as_int(const std::string& tok) {
        const char* s = tok.c_str();
        char* end = nullptr;
        const std::int64_t v = std::strtoll(s, &end, 10);
        if (end == s || *end != '\0')
            throw ParseError("<checkpoint>", line_, "malformed integer '" + tok + "'");
        return v;
    }

    std::uint64_t as_uint(const std::string& tok) {
        const char* s = tok.c_str();
        char* end = nullptr;
        errno = 0;
        const std::uint64_t v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || tok.front() == '-' || errno == ERANGE)
            throw ParseError("<checkpoint>", line_, "malformed integer '" + tok + "'");
        return v;
    }

    /// Element count of a variable-length section. Bounded so a corrupt
    /// count surfaces as the documented ParseError instead of a
    /// std::length_error/bad_alloc from reserve().
    std::size_t as_count(const std::string& tok) {
        const std::uint64_t v = as_uint(tok);
        constexpr std::uint64_t kMaxCount = 1ull << 31;  // far above any circuit
        if (v > kMaxCount)
            throw ParseError("<checkpoint>", line_,
                             "implausible element count '" + tok + "'");
        return static_cast<std::size_t>(v);
    }

  private:
    std::istream& in_;
    int line_{0};
};

/// Scenario names go on their own line after a fixed key; they may hold
/// spaces, so the value is the rest of the line verbatim.
std::string join(const std::vector<std::string>& tokens) {
    std::string out;
    for (const std::string& t : tokens) {
        if (!out.empty()) out += ' ';
        out += t;
    }
    return out;
}

const char* objective_name(Scenario::Objective o) {
    return o == Scenario::Objective::Mean ? "mean" : "percentile";
}

Scenario::Objective parse_objective(Reader& r, const std::string& tok) {
    if (tok == "percentile") return Scenario::Objective::Percentile;
    if (tok == "mean") return Scenario::Objective::Mean;
    throw ParseError("<checkpoint>", r.line_number(), "unknown objective '" + tok + "'");
}

Scenario::Selector parse_selector(Reader& r, const std::string& tok) {
    try {
        return Scenario::parse_selector(tok);
    } catch (const ConfigError& e) {
        throw ParseError("<checkpoint>", r.line_number(), e.what());
    }
}

/// Shared by checkpoint_info and load_checkpoint: the header is the part
/// of the format a peek may read without the full payload.
CheckpointInfo read_header(Reader& r) {
    const std::vector<std::string> magic = r.next_line();
    if (magic.size() != 2 || magic[0] != kMagic || magic[1].size() < 2 ||
        magic[1][0] != 'v')
        throw ParseError("<checkpoint>", r.line_number(),
                         "not a statim checkpoint stream");
    CheckpointInfo info;
    info.version = static_cast<int>(r.as_int(magic[1].substr(1)));
    if (info.version != kCheckpointFormatVersion)
        throw ParseError("<checkpoint>", r.line_number(),
                         "unsupported checkpoint version v" +
                             std::to_string(info.version) + " (this build reads v" +
                             std::to_string(kCheckpointFormatVersion) + ")");
    info.design = join(r.expect("design"));
    info.scenario = join(r.expect("scenario"));
    info.iteration = static_cast<int>(r.as_int(r.expect("iteration")[0]));
    info.finished = r.as_int(r.expect("finished")[0]) != 0;
    return info;
}

}  // namespace

CheckpointInfo checkpoint_info(std::istream& in) {
    Reader r(in);
    return read_header(r);
}

namespace detail {

std::string fmt_hexdouble(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/// The line formats split on whitespace and re-join with single spaces,
/// so a name survives the round trip only if that mapping is the
/// identity: non-empty, no whitespace other than single interior spaces.
/// Anything else must be rejected at *write* time — a checkpoint or
/// scenario set that cannot be loaded back is unrecoverable.
void require_line_writable_name(const char* what, const std::string& name) {
    const auto reject = [&](const char* why) {
        throw ConfigError(std::string(what) + " name " + why + " ('" + name +
                          "' cannot round-trip the line format)");
    };
    if (name.empty()) reject("is empty");
    if (name.front() == ' ' || name.back() == ' ')
        reject("has leading/trailing whitespace");
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        if (std::isspace(static_cast<unsigned char>(c)) && c != ' ')
            reject("contains non-space whitespace");
        if (c == ' ' && i > 0 && name[i - 1] == ' ')
            reject("contains consecutive spaces");
    }
}

std::uint64_t library_fingerprint(const cells::Library& lib) {
    // FNV-1a over every model parameter (doubles by bit pattern), so two
    // libraries agree iff they produce identical delays and areas.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix_byte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    const auto mix_double = [&](double v) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(bits >> (8 * i)));
    };
    const auto mix_string = [&](const std::string& s) {
        for (char c : s) mix_byte(static_cast<unsigned char>(c));
        mix_byte(0);  // terminator so {"ab","c"} != {"a","bc"}
    };
    mix_double(lib.sigma_fraction());
    mix_double(lib.trunc_k());
    mix_double(lib.output_load_ff());
    for (const cells::Cell& cell : lib.cells()) {
        mix_string(cell.name);
        mix_byte(static_cast<unsigned char>(cell.fanin));
        mix_double(cell.d_int_ns);
        mix_double(cell.k_ns);
        mix_double(cell.c_cell_ff);
        mix_double(cell.c_in_ff);
        mix_double(cell.area);
        for (double w : cell.pin_weight) mix_double(w);
        mix_byte(0);
    }
    return h;
}

void save_checkpoint(std::ostream& out, const CheckpointPayload& payload) {
    const Scenario& s = payload.scenario;
    const core::StatisticalSizerLoop::ResumeState& loop = payload.loop;
    require_line_writable_name("checkpoint: design", payload.design_name);
    require_line_writable_name("checkpoint: scenario", s.name);

    out << kMagic << " v" << kCheckpointFormatVersion << '\n';
    out << "design " << payload.design_name << '\n';
    out << "scenario " << s.name << '\n';
    out << "iteration " << loop.iteration << '\n';
    out << "finished " << (loop.finished ? 1 : 0) << '\n';

    out << "objective " << objective_name(s.objective) << ' '
        << fmt_double(s.percentile) << '\n';
    out << "grid_bins " << s.grid_bins << '\n';
    out << "selector " << Scenario::selector_name(s.selector) << '\n';
    out << "delta_w " << fmt_double(s.delta_w) << '\n';
    out << "max_width " << fmt_double(s.max_width) << '\n';
    out << "max_iterations " << s.max_iterations << '\n';
    out << "area_budget " << fmt_double(s.area_budget) << '\n';
    out << "target_objective_ns " << fmt_double(s.target_objective_ns) << '\n';
    out << "gates_per_iteration " << s.gates_per_iteration << '\n';
    out << "threads " << s.threads << '\n';
    out << "incremental_ssta " << (s.incremental_ssta ? 1 : 0) << '\n';
    out << "mc_samples " << s.mc_samples << '\n';
    out << "seed " << s.seed << '\n';

    out << "library " << payload.library_fingerprint << '\n';
    out << "grid_dt_ns " << fmt_double(payload.grid_dt_ns) << '\n';
    out << "rng " << payload.rng.s[0] << ' ' << payload.rng.s[1] << ' '
        << payload.rng.s[2] << ' ' << payload.rng.s[3] << ' '
        << fmt_double(payload.rng.spare) << ' ' << (payload.rng.has_spare ? 1 : 0)
        << '\n';

    out << "widths " << payload.widths.size() << '\n';
    for (std::size_t i = 0; i < payload.widths.size(); ++i)
        out << fmt_double(payload.widths[i])
            << ((i + 1) % 8 == 0 || i + 1 == payload.widths.size() ? '\n' : ' ');

    const core::SizingResult& res = loop.result;
    out << "running " << fmt_double(loop.running_area) << ' '
        << fmt_double(loop.running_width) << '\n';
    out << "result " << fmt_double(res.initial_objective_ns) << ' '
        << fmt_double(res.final_objective_ns) << ' ' << fmt_double(res.initial_area)
        << ' ' << fmt_double(res.final_area) << ' ' << res.iterations << ' '
        << fmt_double(res.ssta_refresh_seconds) << ' ' << res.ssta_nodes_recomputed
        << ' ' << res.selector_passes << ' ' << res.conflicts_skipped << '\n';
    out << "stop_reason " << res.stop_reason << '\n';

    out << "history " << res.history.size() << '\n';
    for (const core::IterationRecord& rec : res.history) {
        out << rec.iteration << ' ' << rec.gate.value << ' '
            << fmt_double(rec.sensitivity) << ' ' << fmt_double(rec.objective_after_ns)
            << ' ' << fmt_double(rec.area_after) << ' ' << fmt_double(rec.width_after)
            << ' ' << rec.stats.candidates << ' ' << rec.stats.completed << ' '
            << rec.stats.pruned << ' ' << rec.stats.died << ' '
            << rec.stats.nodes_computed << ' ' << rec.stats.levels_stepped << ' '
            << fmt_double(rec.stats.seconds) << '\n';
    }
    out << "end\n";
    out.flush();
    if (!out) throw Error("checkpoint: write failed");
}

CheckpointPayload load_checkpoint(std::istream& in) {
    Reader r(in);
    const CheckpointInfo info = read_header(r);

    CheckpointPayload payload;
    payload.design_name = info.design;
    Scenario& s = payload.scenario;
    s.name = info.scenario;
    payload.loop.iteration = info.iteration;
    payload.loop.finished = info.finished;

    {
        const auto obj = r.expect("objective", 2);
        s.objective = parse_objective(r, obj[0]);
        s.percentile = r.as_double(obj[1]);
    }
    s.grid_bins = static_cast<int>(r.as_int(r.expect("grid_bins")[0]));
    s.selector = parse_selector(r, r.expect("selector")[0]);
    s.delta_w = r.as_double(r.expect("delta_w")[0]);
    s.max_width = r.as_double(r.expect("max_width")[0]);
    s.max_iterations = static_cast<int>(r.as_int(r.expect("max_iterations")[0]));
    s.area_budget = r.as_double(r.expect("area_budget")[0]);
    s.target_objective_ns = r.as_double(r.expect("target_objective_ns")[0]);
    s.gates_per_iteration =
        static_cast<int>(r.as_int(r.expect("gates_per_iteration")[0]));
    s.threads = static_cast<std::size_t>(r.as_uint(r.expect("threads")[0]));
    s.incremental_ssta = r.as_int(r.expect("incremental_ssta")[0]) != 0;
    s.mc_samples = static_cast<std::size_t>(r.as_uint(r.expect("mc_samples")[0]));
    s.seed = r.as_uint(r.expect("seed")[0]);

    payload.library_fingerprint = r.as_uint(r.expect("library")[0]);
    payload.grid_dt_ns = r.as_double(r.expect("grid_dt_ns")[0]);
    {
        const auto rng = r.expect("rng", 6);
        for (int i = 0; i < 4; ++i)
            payload.rng.s[static_cast<std::size_t>(i)] =
                r.as_uint(rng[static_cast<std::size_t>(i)]);
        payload.rng.spare = r.as_double(rng[4]);
        payload.rng.has_spare = r.as_int(rng[5]) != 0;
    }

    const std::size_t width_count = r.as_count(r.expect("widths")[0]);
    payload.widths.reserve(width_count);
    while (payload.widths.size() < width_count) {
        for (const std::string& tok : r.next_line()) {
            if (payload.widths.size() >= width_count)
                throw ParseError("<checkpoint>", r.line_number(),
                                 "more widths than declared");
            payload.widths.push_back(r.as_double(tok));
        }
    }

    {
        const auto running = r.expect("running", 2);
        payload.loop.running_area = r.as_double(running[0]);
        payload.loop.running_width = r.as_double(running[1]);
    }
    core::SizingResult& res = payload.loop.result;
    {
        const auto v = r.expect("result", 9);
        res.initial_objective_ns = r.as_double(v[0]);
        res.final_objective_ns = r.as_double(v[1]);
        res.initial_area = r.as_double(v[2]);
        res.final_area = r.as_double(v[3]);
        res.iterations = static_cast<int>(r.as_int(v[4]));
        res.ssta_refresh_seconds = r.as_double(v[5]);
        res.ssta_nodes_recomputed = static_cast<std::size_t>(r.as_uint(v[6]));
        res.selector_passes = static_cast<std::size_t>(r.as_uint(v[7]));
        res.conflicts_skipped = static_cast<std::size_t>(r.as_uint(v[8]));
    }
    res.stop_reason = join(r.expect("stop_reason"));

    const std::size_t history_count = r.as_count(r.expect("history", 1)[0]);
    res.history.reserve(history_count);
    for (std::size_t i = 0; i < history_count; ++i) {
        const auto v = r.next_line();
        if (v.size() != 13)
            throw ParseError("<checkpoint>", r.line_number(),
                             "malformed history record");
        core::IterationRecord rec;
        rec.iteration = static_cast<int>(r.as_int(v[0]));
        rec.gate = GateId{static_cast<std::uint32_t>(r.as_uint(v[1]))};
        rec.sensitivity = r.as_double(v[2]);
        rec.objective_after_ns = r.as_double(v[3]);
        rec.area_after = r.as_double(v[4]);
        rec.width_after = r.as_double(v[5]);
        rec.stats.candidates = static_cast<std::size_t>(r.as_uint(v[6]));
        rec.stats.completed = static_cast<std::size_t>(r.as_uint(v[7]));
        rec.stats.pruned = static_cast<std::size_t>(r.as_uint(v[8]));
        rec.stats.died = static_cast<std::size_t>(r.as_uint(v[9]));
        rec.stats.nodes_computed = static_cast<std::size_t>(r.as_uint(v[10]));
        rec.stats.levels_stepped = static_cast<std::size_t>(r.as_uint(v[11]));
        rec.stats.seconds = r.as_double(v[12]);
        res.history.push_back(std::move(rec));
    }
    if (r.next_line().front() != "end")
        throw ParseError("<checkpoint>", r.line_number(), "missing 'end' terminator");
    return payload;
}

}  // namespace detail

}  // namespace statim::api
