// Scenario-set serialization — the file format `statim dispatch
// --scenarios FILE` reads and the dispatch wire protocol embeds.
//
// Line-oriented text, one block per scenario:
//
//     # comment
//     scenario p99-batch4
//     objective percentile 0.99
//     max_iterations 20
//     gates_per_iteration 4
//     end
//
// Every key inside a block is optional and defaults to the Scenario
// default; keys mirror the api::Scenario fields (the same names the
// checkpoint format uses). Doubles accept decimal or C99 hexfloat;
// write_scenario_set emits hexfloat so a round trip is bit-exact — which
// is what keeps a dispatched worker's run bitwise identical to the
// coordinator's in-process reference.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "api/scenario.hpp"

namespace statim::api {

/// Parses every scenario block in the stream (at least one required).
/// Each parsed scenario is validated. Throws util ParseError on malformed
/// input or an unknown key, ConfigError on invalid values.
[[nodiscard]] std::vector<Scenario> read_scenario_set(std::istream& in);

/// Writes one block per scenario, bit-exact round trip through
/// read_scenario_set. Throws ConfigError on a name the line format
/// cannot round-trip.
void write_scenario_set(std::ostream& out, std::span<const Scenario> scenarios);

/// One block (the wire-protocol building block).
void write_scenario(std::ostream& out, const Scenario& scenario);

}  // namespace statim::api
