#include "api/design.hpp"

#include <sstream>
#include <utility>

#include "cells/liberty_lite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/iscas.hpp"

namespace statim::api {

Design::Design(netlist::Netlist nl, cells::Library lib)
    : nl_(std::move(nl)), lib_(std::move(lib)) {}

Design Design::from_registry(const std::string& name) {
    return from_registry(name, cells::Library::standard_180nm());
}

Design Design::from_registry(const std::string& name, cells::Library lib) {
    netlist::Netlist nl = netlist::make_iscas(name, lib);
    return Design(std::move(nl), std::move(lib));
}

Design Design::from_bench_text(const std::string& text, const std::string& name) {
    return from_bench_text(text, name, cells::Library::standard_180nm());
}

Design Design::from_bench_text(const std::string& text, const std::string& name,
                               cells::Library lib) {
    std::istringstream in(text);
    netlist::Netlist nl = netlist::read_bench(in, lib, name);
    return Design(std::move(nl), std::move(lib));
}

Design Design::from_bench_file(const std::string& path) {
    return from_bench_file(path, cells::Library::standard_180nm());
}

Design Design::from_bench_file(const std::string& path, cells::Library lib) {
    netlist::Netlist nl = netlist::load_bench(path, lib);
    return Design(std::move(nl), std::move(lib));
}

Design Design::from_generator(const netlist::GeneratorSpec& spec) {
    return from_generator(spec, cells::Library::standard_180nm());
}

Design Design::from_generator(const netlist::GeneratorSpec& spec, cells::Library lib) {
    netlist::Netlist nl = netlist::generate_circuit(spec, lib);
    return Design(std::move(nl), std::move(lib));
}

Design Design::from_netlist(netlist::Netlist nl, cells::Library lib) {
    nl.validate(lib);
    return Design(std::move(nl), std::move(lib));
}

cells::Library Design::load_library(const std::string& path) {
    return cells::load_liberty_lite(path);
}

const std::string& Design::cell_name(GateId g) const {
    return lib_.cell(nl_.gate(g).cell).name;
}

void Design::reset_widths() { nl_.set_uniform_width(1.0); }

void Design::write_bench(std::ostream& out) const {
    netlist::write_bench(out, nl_, lib_);
}

}  // namespace statim::api
