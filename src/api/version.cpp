#include "api/version.hpp"

#include "api/design.hpp"
#include "api/detail.hpp"
#include "cells/library.hpp"

namespace statim::api {

const char* version() noexcept {
#ifdef STATIM_VERSION
    return STATIM_VERSION;
#else
    return "0.0.0-unknown";
#endif
}

std::uint64_t builtin_library_fingerprint() {
    return detail::library_fingerprint(cells::Library::standard_180nm());
}

std::uint64_t library_file_fingerprint(const std::string& path) {
    return detail::library_fingerprint(Design::load_library(path));
}

}  // namespace statim::api
