// api::run_scenarios — evaluate one design under N scenarios.
//
// Each scenario gets its own copy of the design and its own analysis
// context, so runs never share mutable state; they execute concurrently
// on the process thread pool and the result vector is always in input
// scenario order, bit-identical for any thread count (the per-run
// engines shard by configured counts, never by who executes them). This
// is the seam the ROADMAP's distributed/multi-process sharding plugs
// into: a remote driver partitions the scenario list instead of the
// pool.
#pragma once

#include <span>
#include <vector>

#include "api/analysis.hpp"
#include "api/design.hpp"
#include "api/scenario.hpp"
#include "core/sizers.hpp"

namespace statim::api {

/// Outcome of one scenario of a run_scenarios batch.
struct ScenarioResult {
    /// The scenario that produced this result (validated copy).
    Scenario scenario;
    /// The sized circuit (a copy of the input design; the input is never
    /// modified).
    Design design;
    /// Full sizing trajectory (history, budgets, stop reason).
    core::SizingResult sizing;
    /// Monte Carlo validation of the sized circuit; samples == 0 unless
    /// scenario.mc_samples requested it.
    McSummary mc;
    /// Wall-clock of this scenario's run (sizing + validation).
    double seconds{0.0};

    [[nodiscard]] double objective_ns() const noexcept {
        return sizing.final_objective_ns;
    }
    [[nodiscard]] double area() const noexcept { return sizing.final_area; }
};

/// Sizes `design` under every scenario in `scenarios` (independent runs,
/// executed across the thread pool) and returns one result per scenario,
/// in scenario order regardless of completion order or thread count.
/// Throws ConfigError if any scenario fails validation — before any work
/// starts — and rethrows the first per-run failure after the batch
/// drains.
[[nodiscard]] std::vector<ScenarioResult> run_scenarios(
    const Design& design, std::span<const Scenario> scenarios);

}  // namespace statim::api
