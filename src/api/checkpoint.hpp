// Sizing-run checkpoint format.
//
// A checkpoint is a line-oriented text snapshot of everything an
// interrupted SizingRun cannot recompute: the scenario, the grid pitch,
// every gate width, the RNG state, and the loop bookkeeping (history,
// exact accumulators, stop state). Doubles are serialized as C99
// hexfloats ("%a"), which round-trip bit for bit, so a resumed run
// continues the uninterrupted trajectory exactly — final arrivals and
// sizing history are bitwise identical for any thread or batch count
// (tests/test_checkpoint.cpp).
//
// Compatibility rule: `kCheckpointFormatVersion` MUST be bumped whenever
// a field is added, removed, reordered or reinterpreted — readers reject
// any version other than their own (checkpoints are short-lived restart
// artifacts, not archives; no cross-version migration is attempted).
// Bump it too when an *engine* change alters the meaning of saved state
// (e.g. a new accumulator the loop carries across iterations), since a
// stale checkpoint would then resume onto a diverging trajectory.
#pragma once

#include <iosfwd>
#include <string>

namespace statim::api {

inline constexpr int kCheckpointFormatVersion = 1;

/// Header fields of a checkpoint, readable without restoring it (the
/// CLI's `statim size --checkpoint` uses this to describe a resume).
struct CheckpointInfo {
    int version{0};
    std::string design;    ///< netlist name the checkpoint was taken from
    std::string scenario;  ///< Scenario::name
    int iteration{0};      ///< outer iterations completed at save time
    bool finished{false};
};

/// Parses the checkpoint header. Throws util ParseError on a malformed
/// stream or a version mismatch.
[[nodiscard]] CheckpointInfo checkpoint_info(std::istream& in);

}  // namespace statim::api
