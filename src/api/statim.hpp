// statim public API — the one header consumers include.
//
//   #include "api/statim.hpp"
//
//   using namespace statim;
//   api::Design design = api::Design::from_registry("c432");
//   api::Scenario scenario;             // p99 objective, pruned selector
//   api::SizingRun run(design, scenario);
//   run.run_to_convergence();           // or step() + save() checkpoints
//   api::AnalysisResult timing = api::analyze(design, scenario);
//
// Everything examples, the `statim` CLI and external consumers touch
// lives under api:: (plus the util/ error and flag helpers); core/,
// ssta/, sta/, prob/ and mc/ are internal and may change freely between
// releases. See README "API" for the lifecycle walkthrough and
// api/checkpoint.hpp for the checkpoint format contract.
#pragma once

#include "api/analysis.hpp"
#include "api/checkpoint.hpp"
#include "api/design.hpp"
#include "api/dispatch.hpp"
#include "api/scenario.hpp"
#include "api/scenario_io.hpp"
#include "api/scenarios.hpp"
#include "api/sizing_run.hpp"
#include "api/version.hpp"
