#include "api/analysis.hpp"

#include <algorithm>
#include <ostream>

#include "api/detail.hpp"
#include "core/context.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/dot.hpp"
#include "netlist/timing_graph.hpp"
#include "ssta/criticality.hpp"
#include "ssta/metrics.hpp"
#include "sta/paths.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace statim::api {

double AnalysisResult::mean_ns() const { return dt_ns * sink.mean_bins(); }

double AnalysisResult::stddev_ns() const {
    return dt_ns * std::sqrt(sink.variance_bins());
}

double AnalysisResult::percentile_ns(double p) const {
    return dt_ns * sink.percentile_bin(p);
}

double AnalysisResult::yield_at(double t_ns) const {
    const prob::TimeGrid grid(dt_ns);
    return ssta::yield_at(grid, sink, t_ns);
}

std::vector<std::pair<double, double>> AnalysisResult::cdf_points() const {
    std::vector<std::pair<double, double>> points;
    points.reserve(sink.size());
    double cumulative = 0.0;
    for (std::int64_t b = sink.first_bin(); b <= sink.last_bin(); ++b) {
        cumulative += sink.mass_at(b);
        points.emplace_back(dt_ns * static_cast<double>(b), cumulative);
    }
    return points;
}

AnalysisResult analyze(const Design& design, const Scenario& scenario) {
    scenario.validate();
    detail::apply_simd(scenario);
    // The context mutates nothing here, but binds a mutable netlist;
    // analyze() promises a const design, so it runs on a copy.
    netlist::Netlist nl = design.netlist();
    Timer timer;
    core::Context ctx(nl, design.library(), detail::to_grid_policy(scenario));
    ctx.set_ssta_threads(scenario.resolved_threads());
    ctx.run_ssta();

    AnalysisResult result;
    result.design = design.name();
    result.nodes = ctx.graph().node_count();
    result.edges = ctx.graph().edge_count();
    result.gates = nl.gate_count();
    result.dt_ns = ctx.grid().dt_ns();
    result.sink = ctx.engine().sink_arrival().to_pdf();
    result.objective_ns = detail::to_objective(scenario).eval_ns(
        ctx.grid(), ctx.engine().sink_arrival());

    const sta::StaResult sta = sta::run_sta(ctx.delay_calc());
    result.nominal_delay_ns = sta.circuit_delay_ns;
    result.po_slack_ns.reserve(nl.primary_outputs().size());
    for (NetId po : nl.primary_outputs())
        result.po_slack_ns.push_back(
            sta.slack(netlist::TimingGraph::node_of_net(po)));
    result.seconds = timer.seconds();
    return result;
}

double McSummary::percentile_ns(double p) const {
    if (!(p > 0.0) || !(p <= 1.0))
        throw ConfigError("McSummary::percentile_ns: p must be in (0, 1]");
    if (sorted_ns.empty()) throw ConfigError("McSummary: no samples");
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted_ns.size())));
    return sorted_ns[std::min(sorted_ns.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double McSummary::yield_at(double t_ns) const {
    const auto it = std::upper_bound(sorted_ns.begin(), sorted_ns.end(), t_ns);
    return sorted_ns.empty()
               ? 0.0
               : static_cast<double>(it - sorted_ns.begin()) /
                     static_cast<double>(sorted_ns.size());
}

McSummary monte_carlo(const Design& design, const Scenario& scenario,
                      std::size_t samples) {
    scenario.validate();
    netlist::Netlist nl = design.netlist();
    const netlist::TimingGraph graph(nl);
    const sta::DelayCalc dc(graph, design.library());

    mc::McConfig cfg;
    cfg.samples = samples;
    cfg.seed = scenario.seed;
    Timer timer;
    const mc::McResult mc = mc::run_monte_carlo(dc, cfg);

    McSummary summary;
    summary.samples = mc.sample_count();
    summary.mean_ns = mc.mean_ns();
    summary.stddev_ns = mc.stddev_ns();
    summary.min_ns = mc.min_ns();
    summary.max_ns = mc.max_ns();
    summary.sorted_ns = mc.samples();
    summary.seconds = timer.seconds();
    return summary;
}

CriticalityReport criticality_report(const Design& design, const Scenario& scenario,
                                     std::size_t top_n, std::size_t n_paths) {
    scenario.validate();
    detail::apply_simd(scenario);
    netlist::Netlist nl = design.netlist();
    core::Context ctx(nl, design.library(), detail::to_grid_policy(scenario));
    ctx.set_ssta_threads(scenario.resolved_threads());
    ctx.run_ssta();

    const ssta::CriticalityResult crit =
        ssta::compute_criticality(ctx.engine(), ctx.edge_delays());
    const auto ranked = ssta::rank_gates_by_criticality(ctx.graph(), crit);

    const sta::StaResult sta = sta::run_sta(ctx.delay_calc());
    const auto crit_path = sta::critical_path(ctx.delay_calc(), sta);
    const auto nominal_gates = sta::gates_on_path(ctx.graph(), crit_path);

    CriticalityReport report;
    report.nominal_delay_ns = sta.circuit_delay_ns;
    for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
        const auto [g, score] = ranked[i];
        CriticalityReport::GateEntry entry;
        entry.gate = g;
        entry.gate_name = nl.gate(g).name;
        entry.cell_name = design.cell_name(g);
        entry.criticality = score;
        entry.on_nominal_path = std::find(nominal_gates.begin(), nominal_gates.end(),
                                          g) != nominal_gates.end();
        report.ranked.push_back(std::move(entry));
    }

    for (const sta::Path& path : sta::k_longest_paths(ctx.delay_calc(), n_paths)) {
        CriticalityReport::PathEntry entry;
        entry.delay_ns = path.delay_ns;
        for (GateId g : sta::gates_on_path(ctx.graph(), path.edges))
            entry.gate_names.push_back(nl.gate(g).name);
        report.nominal_paths.push_back(std::move(entry));
    }

    report.gate_scores.resize(nl.gate_count(), 0.0);
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
        report.gate_scores[gi] = crit.of_node(
            ctx.graph().output_node(GateId{static_cast<std::uint32_t>(gi)}));
    return report;
}

void write_dot(std::ostream& out, const Design& design,
               const std::vector<double>& gate_scores) {
    netlist::DotOptions options;
    options.gate_scores = gate_scores;
    netlist::write_dot(out, design.netlist(), design.library(), options);
}

CompareOutcome compare_sizings(const Design& design, const Scenario& scenario,
                               int det_iterations) {
    scenario.validate();
    detail::apply_simd(scenario);
    core::ComparisonConfig cfg;
    cfg.objective = detail::to_objective(scenario);
    cfg.delta_w = scenario.delta_w;
    cfg.max_width = scenario.max_width;
    cfg.det_iterations = det_iterations;
    cfg.stat_max_iterations =
        scenario.max_iterations > 0 ? scenario.max_iterations : 4000;
    cfg.grid_policy = detail::to_grid_policy(scenario);
    cfg.selector = detail::to_selector_kind(scenario.selector);
    cfg.threads = scenario.resolved_threads();
    cfg.incremental_ssta = scenario.incremental_ssta;

    Design det = design;
    Design stat = design;
    core::ComparisonResult comparison =
        core::compare_optimizers(det.netlist(), stat.netlist(), design.library(), cfg,
                                 design.name());
    return CompareOutcome{std::move(comparison), std::move(det), std::move(stat)};
}

}  // namespace statim::api
