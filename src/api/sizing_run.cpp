#include "api/sizing_run.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "api/checkpoint.hpp"
#include "api/detail.hpp"
#include "core/context.hpp"
#include "util/error.hpp"

namespace statim::api {

struct SizingRun::Impl {
    /// Fresh run: grid chosen from the design's current widths.
    Impl(Design& design, Scenario scenario_in)
        : design(&design),
          scenario(std::move(scenario_in)),
          ctx(design.netlist(), design.library(), detail::to_grid_policy(scenario)),
          loop(ctx, detail::to_sizer_config(scenario)),
          rng(scenario.seed) {}

    /// Resumed run: explicit grid pitch from the checkpoint (the grid is
    /// normally derived from the *starting* widths, which a resumed
    /// context no longer holds).
    Impl(Design& design, Scenario scenario_in, prob::TimeGrid grid)
        : design(&design),
          scenario(std::move(scenario_in)),
          ctx(design.netlist(), design.library(), grid),
          loop(ctx, detail::to_sizer_config(scenario)),
          rng(scenario.seed) {}

    Design* design;
    Scenario scenario;
    core::Context ctx;
    core::StatisticalSizerLoop loop;
    Rng rng;
};

SizingRun::SizingRun(Design& design, Scenario scenario)
    : impl_((detail::apply_simd(scenario),
             std::make_unique<Impl>(design, std::move(scenario)))) {}

SizingRun::SizingRun(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

SizingRun::~SizingRun() = default;
SizingRun::SizingRun(SizingRun&&) noexcept = default;
SizingRun& SizingRun::operator=(SizingRun&&) noexcept = default;

bool SizingRun::step() { return impl_->loop.step(); }

void SizingRun::run_to_convergence() {
    while (impl_->loop.step()) {
    }
}

bool SizingRun::finished() const { return impl_->loop.finished(); }
int SizingRun::iteration() const { return impl_->loop.iteration(); }
double SizingRun::objective_ns() const {
    return impl_->loop.result().final_objective_ns;
}
double SizingRun::area() const { return impl_->loop.result().final_area; }
const Scenario& SizingRun::scenario() const { return impl_->scenario; }
const core::SizingResult& SizingRun::result() const { return impl_->loop.result(); }
Rng& SizingRun::rng() { return impl_->rng; }

McSummary SizingRun::validate_mc(std::size_t samples) {
    Scenario mc_scenario = impl_->scenario;
    mc_scenario.seed = static_cast<std::uint64_t>(
        impl_->rng.uniform_int(0, std::numeric_limits<std::int64_t>::max()));
    return monte_carlo(*impl_->design, mc_scenario, samples);
}

void SizingRun::save(std::ostream& out) const {
    const Impl& impl = *impl_;
    detail::CheckpointPayload payload;
    payload.design_name = impl.design->name();
    payload.library_fingerprint = detail::library_fingerprint(impl.design->library());
    payload.grid_dt_ns = impl.ctx.grid().dt_ns();
    payload.scenario = impl.scenario;
    // Pin the STATIM_BATCH-resolved batch: a resume under a different
    // environment must continue the exact uninterrupted trajectory.
    payload.scenario.gates_per_iteration = impl.loop.batch();
    payload.rng = impl.rng.state();
    payload.widths.reserve(impl.design->gate_count());
    for (const auto& gate : impl.design->netlist().gates())
        payload.widths.push_back(gate.width);
    payload.loop = impl.loop.save_state();
    detail::save_checkpoint(out, payload);
}

SizingRun SizingRun::resume(Design& design, std::istream& in) {
    detail::CheckpointPayload payload = detail::load_checkpoint(in);
    if (payload.design_name != design.name())
        throw ConfigError("SizingRun::resume: checkpoint was taken from design '" +
                          payload.design_name + "', not '" + design.name() + "'");
    if (payload.widths.size() != design.gate_count())
        throw ConfigError(
            "SizingRun::resume: checkpoint gate count " +
            std::to_string(payload.widths.size()) + " does not match design (" +
            std::to_string(design.gate_count()) + ")");
    if (payload.library_fingerprint != detail::library_fingerprint(design.library()))
        throw ConfigError(
            "SizingRun::resume: the design's cell library differs from the "
            "checkpoint's — the continuation would diverge from the saved "
            "trajectory");

    // Install the checkpoint widths, then rebuild the analysis state from
    // scratch on the checkpoint's grid. The loop constructor's full SSTA
    // run is bit-identical to the incremental state the interrupted run
    // carried (the engine's core property), so restore_state() leaves the
    // continuation on the exact uninterrupted trajectory.
    netlist::Netlist& nl = design.netlist();
    for (std::size_t gi = 0; gi < payload.widths.size(); ++gi)
        nl.gate(GateId{static_cast<std::uint32_t>(gi)}).width = payload.widths[gi];

    // The checkpoint carries no SIMD level (dispatch is bitwise-neutral);
    // the resumed process resolves its own via the scenario/environment.
    detail::apply_simd(payload.scenario);
    auto impl = std::make_unique<Impl>(design, std::move(payload.scenario),
                                       prob::TimeGrid(payload.grid_dt_ns));
    impl->loop.restore_state(std::move(payload.loop));
    impl->rng.set_state(payload.rng);
    return SizingRun(std::move(impl));
}

}  // namespace statim::api
