// api::dispatch_scenarios — multi-process scenario sharding with
// fault-tolerant checkpoint migration (the `statim dispatch` mode).
//
// A coordinator farms the scenario set out to N worker processes
// (`statim serve` children over stdin/stdout pipe pairs, speaking a
// length-prefixed frame protocol), load-balances by estimated work,
// streams heartbeats, and aggregates per-scenario results into one
// deterministic scenario-ordered report. Workers checkpoint every
// `checkpoint_every` iterations through the SizingRun save path; when a
// worker dies (SIGKILL, crash — EOF on its pipe) or hangs (heartbeat
// timeout, then SIGKILL + waitpid), the coordinator migrates the
// interrupted run to another worker by shipping the latest checkpoint
// stream. Because checkpoints resume bit-exactly, the report — and its
// JSON rendering, which carries no wall-clock fields — is bitwise
// identical to an uninterrupted in-process api::run_scenarios call, for
// any worker count and under any mid-run kill (tests/test_dispatch.cpp;
// CI byte-compares the two JSONs with a worker killed mid-run).
//
// Failure semantics: a scenario whose worker dies is retried (resumed
// from its last checkpoint when one arrived, from scratch otherwise) up
// to `retries` extra attempts; exhausting the budget marks the report
// incomplete — partial results are kept, the failed scenario carries an
// error, and the CLI exits nonzero with `"incomplete": true` in the
// JSON. Worker-reported errors (library-fingerprint mismatch, invalid
// scenario) are deterministic and fail the scenario immediately.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "api/analysis.hpp"
#include "api/scenario.hpp"
#include "core/sizers.hpp"

namespace statim::api {

/// Version of the serve/dispatch frame protocol; both sides of the
/// hello handshake must agree (bumped with any wire-format change).
inline constexpr int kDispatchProtocolVersion = 1;

/// How workers obtain the design. Workers are separate processes, so the
/// coordinator ships the design's *source* (registry name or .bench
/// path, resolved against the shared working directory) plus the
/// coordinator's library fingerprint; each worker reloads the design and
/// refuses the run if its fingerprint differs (version/library skew
/// would silently diverge from the coordinator's reference).
struct DesignSource {
    enum class Kind { Registry, BenchFile };
    Kind kind{Kind::Registry};
    /// Registry circuit name, or .bench file path.
    std::string name{"c432"};
    /// Optional liberty-lite library file ("" = builtin 180 nm).
    std::string lib_path;

    /// Loads the design this source describes (what every worker does).
    [[nodiscard]] Design load() const;
};

/// Deterministic fault injection for tests and the CI smoke leg: make
/// the worker running scenario `scenario` kill (SIGKILL) or hang
/// (stop heartbeating) itself once that run's iteration count reaches
/// `after_iteration`. Injected on the first attempt only, unless
/// `persistent` (which exhausts the retry budget deterministically).
struct FaultInjection {
    enum class Kind { None, Kill, Hang };
    Kind kind{Kind::None};
    int scenario{-1};
    int after_iteration{1};
    bool persistent{false};
};

struct DispatchOptions {
    /// Worker process count; <= 0 resolves STATIM_DISPATCH_WORKERS
    /// (default 2).
    int workers{0};
    /// Iterations between worker checkpoint streams (the migration
    /// granularity); 0 disables mid-run checkpoints (a killed run
    /// restarts from scratch — still bitwise identical, just slower).
    int checkpoint_every{1};
    /// Declare a worker hung after this many ms without a frame; <= 0
    /// resolves STATIM_DISPATCH_HEARTBEAT_MS (default 60000). Workers
    /// heartbeat once per sizing iteration, so set this above the
    /// slowest expected iteration.
    int heartbeat_timeout_ms{0};
    /// Extra attempts per scenario after its first failure; < 0 resolves
    /// STATIM_DISPATCH_RETRIES (default 2).
    int retries{-1};
    /// argv of the worker command (the CLI passes {<self>, "serve"}).
    /// Must speak the serve protocol on stdin/stdout. Required.
    std::vector<std::string> serve_command;
    FaultInjection fault;
};

/// Deterministic digest of a Monte Carlo validation (the fields the
/// report prints; the full sample vector never crosses the wire).
struct McDigest {
    std::size_t samples{0};
    double mean_ns{0.0};
    double stddev_ns{0.0};
    double min_ns{0.0};
    double max_ns{0.0};
    double p50_ns{0.0};
    double p90_ns{0.0};
    double p99_ns{0.0};

    [[nodiscard]] static McDigest of(const McSummary& mc);
};

/// Outcome of one scenario of a dispatch (or of the in-process
/// reference). All fields except attempts/migrations are deterministic.
struct DispatchOutcome {
    bool ok{false};
    /// Stable failure description when !ok ("retry budget exhausted…",
    /// or the worker's error message).
    std::string error;
    Scenario scenario;
    /// Final gate widths, GateId order (empty when !ok).
    std::vector<double> widths;
    core::SizingResult sizing;
    McDigest mc;
    /// Executions that failed before this outcome (0 when undisturbed).
    int attempts{0};
    /// Times the run was resumed from a shipped checkpoint.
    int migrations{0};
};

struct DispatchReport {
    std::string design;
    std::size_t gates{0};
    /// Gate names in GateId order (for history rendering).
    std::vector<std::string> gate_names;
    /// False when any scenario exhausted its retry budget or failed
    /// deterministically; partial results are kept either way.
    bool complete{true};
    /// One outcome per input scenario, in input order.
    std::vector<DispatchOutcome> outcomes;
};

/// Coordinates `options.workers` worker processes over the scenario set.
/// Returns per-scenario results in input order, bitwise identical to
/// run_scenarios_report for every completed scenario. Throws ConfigError
/// on invalid options/scenarios, Error when the worker command itself is
/// unusable (exec failure, protocol/version mismatch).
[[nodiscard]] DispatchReport dispatch_scenarios(const DesignSource& source,
                                                std::span<const Scenario> scenarios,
                                                const DispatchOptions& options);

/// The in-process reference: the same report built from
/// api::run_scenarios (what `statim dispatch --workers 0` runs and the
/// byte-compare gates dispatch against).
[[nodiscard]] DispatchReport run_scenarios_report(
    const DesignSource& source, std::span<const Scenario> scenarios);

/// Renders the report as one deterministic JSON object: scenario-ordered
/// results, no wall-clock or schedule-dependent fields — byte-identical
/// across worker counts, kills and the in-process path.
void write_dispatch_json(std::ostream& out, const DispatchReport& report);

/// The serve command of the running executable: {/proc/self/exe, "serve"},
/// falling back to `argv0` when /proc is unavailable. The CLI's dispatch
/// default — library consumers embedding dispatch must point
/// DispatchOptions::serve_command at a statim CLI build instead.
[[nodiscard]] std::vector<std::string> self_serve_command(const std::string& argv0);

/// Runs the worker loop of `statim serve` over a stdin/stdout fd pair:
/// handshakes, then executes run frames (fresh or checkpoint-resumed)
/// until a shutdown frame or EOF. Returns the process exit code.
int serve(int in_fd, int out_fd);

}  // namespace statim::api
