// api::Scenario — one complete description of "how to analyze/size this
// design": objective, grid policy, selector, parallelism, batching and
// budgets in a single value.
//
// The internal configuration structs (core::StatisticalSizerConfig,
// core::SelectorConfig, ssta::GridPolicy, mc::McConfig) are populated
// from a Scenario and never surface through the public API; everything a
// consumer used to plumb by hand lives here. Scenarios are plain values:
// build a vector of them and hand it to api::run_scenarios to evaluate
// the same design under N configurations.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace statim::api {

struct Scenario {
    /// Label carried into results and checkpoints ("p99-batch4", …).
    std::string name{"default"};

    // ---- objective over the circuit-delay distribution ----------------
    enum class Objective { Percentile, Mean };
    Objective objective{Objective::Percentile};
    /// Percentile point in (0, 1]; used when objective == Percentile
    /// (the paper's yield objective uses 0.99).
    double percentile{0.99};

    // ---- discretization grid ------------------------------------------
    /// Bins spanned by the nominal critical-path delay (the grid-pitch
    /// policy); 0 keeps the library default.
    int grid_bins{0};

    // ---- candidate selection ------------------------------------------
    enum class Selector { Pruned, BruteForce, BruteCone };
    Selector selector{Selector::Pruned};

    /// Canonical selector names ("pruned", "brute", "cone") — the one
    /// mapping the CLI flags, the examples and the checkpoint format all
    /// share.
    [[nodiscard]] static const char* selector_name(Selector s) noexcept;
    /// Inverse of selector_name; throws ConfigError on an unknown name.
    [[nodiscard]] static Selector parse_selector(std::string_view name);

    // ---- sizing loop ---------------------------------------------------
    /// Width step per upsize (Δw).
    double delta_w{0.25};
    /// Per-gate width cap.
    double max_width{16.0};
    /// Outer-iteration budget.
    int max_iterations{1000};
    /// Stop once (total area − initial area) reaches this budget.
    double area_budget{std::numeric_limits<double>::infinity()};
    /// Stop once the objective reaches this target (ns).
    double target_objective_ns{0.0};
    /// Gates committed per iteration under one merged-cone refresh
    /// (0 = resolve from STATIM_BATCH, default 1).
    int gates_per_iteration{0};

    // ---- execution -----------------------------------------------------
    /// Shards for candidate evaluation and SSTA propagation waves.
    /// Results are bit-identical for any value; 0 = the process-wide
    /// default (--threads / STATIM_THREADS / hardware_concurrency).
    std::size_t threads{0};
    /// Incremental arrival refresh between commits (bit-identical; off
    /// is the reference full-rerun path kept for A/B benching).
    bool incremental_ssta{true};
    /// SIMD dispatch level for the PDF kernels: "auto" (environment /
    /// CPUID resolution, honoring STATIM_SIMD), "scalar", "avx2" or
    /// "neon". Every level is bitwise identical to scalar — this is a
    /// speed knob, never a results knob — so it is deliberately NOT part
    /// of the checkpoint format: a run checkpointed under one level
    /// resumes identically under any other. Unsupported levels are
    /// rejected at run entry.
    std::string simd{"auto"};
    /// Criticality floor of the selector's two-phase bound race, as a
    /// fraction in [0, 1] of the maximum candidate criticality (negative
    /// = resolve STATIM_CRIT_FLOOR, default 0.05; 0 disables). Like
    /// `simd` this is a pure speed knob — selections are bitwise
    /// identical for any value (property-tested) — so it is deliberately
    /// NOT part of the checkpoint format.
    double crit_floor{-1.0};
    /// Replay provably-unchanged candidate sensitivities across selector
    /// passes (engine-journal-keyed cache; selections bitwise identical
    /// either way — also NOT part of the checkpoint format).
    /// STATIM_SELECTOR_CACHE=0 force-disables globally.
    bool selector_cache{true};

    // ---- validation ----------------------------------------------------
    /// Monte Carlo samples for the post-sizing validation run (0 = skip).
    /// The sample seed is drawn from the run's RNG stream, which
    /// checkpoints preserve.
    std::size_t mc_samples{0};
    /// Seed of the scenario's RNG stream.
    std::uint64_t seed{1};

    /// Throws ConfigError on out-of-range values (bad percentile,
    /// negative budgets, delta_w <= 0, …).
    void validate() const;

    /// Resolved thread count: `threads`, or the process default when 0.
    [[nodiscard]] std::size_t resolved_threads() const;
};

}  // namespace statim::api
