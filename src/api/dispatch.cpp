#include "api/dispatch.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "api/design.hpp"
#include "api/detail.hpp"
#include "api/scenarios.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace statim::api {

static_assert(kDispatchProtocolVersion == dist::kProtocolVersion,
              "api/dispatch.hpp and dist/protocol.hpp disagree on the wire "
              "protocol version — bump both together");

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/// Shortest round-trip decimal; both report paths format through this,
/// and the values themselves are bit-identical, so the bytes match.
std::string fmt_g(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/// FNV-1a over the width vector's bit patterns: a compact stand-in for
/// the full per-gate width list in the report (the widths themselves are
/// still byte-compared in tests via the checkpoint path).
std::string widths_digest(const std::vector<double>& widths) {
    std::uint64_t h = 14695981039346656037ull;
    for (double w : widths) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &w, sizeof(bits));
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
    return buf;
}

void write_outcome_json(std::ostream& out, const DispatchReport& report,
                        const DispatchOutcome& o) {
    out << "{\"scenario\":\"" << json_escape(o.scenario.name) << "\"";
    if (!o.ok) {
        out << ",\"ok\":false,\"error\":\"" << json_escape(o.error) << "\"}";
        return;
    }
    const core::SizingResult& s = o.sizing;
    out << ",\"ok\":true";
    out << ",\"iterations\":" << s.iterations;
    out << ",\"commits\":" << s.history.size();
    out << ",\"initial_objective_ns\":" << fmt_g(s.initial_objective_ns);
    out << ",\"final_objective_ns\":" << fmt_g(s.final_objective_ns);
    out << ",\"initial_area\":" << fmt_g(s.initial_area);
    out << ",\"final_area\":" << fmt_g(s.final_area);
    out << ",\"selector_passes\":" << s.selector_passes;
    out << ",\"conflicts_skipped\":" << s.conflicts_skipped;
    out << ",\"stop_reason\":\"" << json_escape(s.stop_reason) << "\"";
    out << ",\"widths_fnv\":\"" << widths_digest(o.widths) << "\"";
    out << ",\"history\":[";
    for (std::size_t i = 0; i < s.history.size(); ++i) {
        const core::IterationRecord& r = s.history[i];
        const std::string gate =
            r.gate.is_valid() && r.gate.index() < report.gate_names.size()
                ? report.gate_names[r.gate.index()]
                : std::string();
        if (i > 0) out << ',';
        out << "{\"iteration\":" << r.iteration;
        out << ",\"gate\":\"" << json_escape(gate) << "\"";
        out << ",\"sensitivity\":" << fmt_g(r.sensitivity);
        out << ",\"objective_ns\":" << fmt_g(r.objective_after_ns);
        out << ",\"area\":" << fmt_g(r.area_after);
        out << ",\"width\":" << fmt_g(r.width_after) << "}";
    }
    out << "]";
    if (o.mc.samples > 0) {
        out << ",\"mc\":{\"samples\":" << o.mc.samples;
        out << ",\"mean_ns\":" << fmt_g(o.mc.mean_ns);
        out << ",\"stddev_ns\":" << fmt_g(o.mc.stddev_ns);
        out << ",\"min_ns\":" << fmt_g(o.mc.min_ns);
        out << ",\"max_ns\":" << fmt_g(o.mc.max_ns);
        out << ",\"p50_ns\":" << fmt_g(o.mc.p50_ns);
        out << ",\"p90_ns\":" << fmt_g(o.mc.p90_ns);
        out << ",\"p99_ns\":" << fmt_g(o.mc.p99_ns) << "}";
    }
    out << "}";
}

DispatchReport report_header(const Design& design) {
    DispatchReport report;
    report.design = design.name();
    report.gates = design.gate_count();
    report.gate_names.reserve(report.gates);
    for (std::size_t g = 0; g < report.gates; ++g)
        report.gate_names.push_back(
            design.gate_name(GateId(static_cast<std::uint32_t>(g))));
    return report;
}

void validate_all(std::span<const Scenario> scenarios) {
    if (scenarios.empty())
        throw ConfigError("dispatch: empty scenario set");
    for (const Scenario& s : scenarios) {
        s.validate();
        // The wire protocol and scenario-set format must round-trip the
        // name; reject up front instead of mid-dispatch.
        detail::require_line_writable_name("dispatch: scenario", s.name);
    }
}

}  // namespace

Design DesignSource::load() const {
    switch (kind) {
        case Kind::BenchFile:
            return lib_path.empty()
                       ? Design::from_bench_file(name)
                       : Design::from_bench_file(name, Design::load_library(lib_path));
        case Kind::Registry:
            break;
    }
    return lib_path.empty()
               ? Design::from_registry(name)
               : Design::from_registry(name, Design::load_library(lib_path));
}

McDigest McDigest::of(const McSummary& mc) {
    McDigest d;
    d.samples = mc.samples;
    if (mc.samples == 0) return d;
    d.mean_ns = mc.mean_ns;
    d.stddev_ns = mc.stddev_ns;
    d.min_ns = mc.min_ns;
    d.max_ns = mc.max_ns;
    d.p50_ns = mc.percentile_ns(0.5);
    d.p90_ns = mc.percentile_ns(0.9);
    d.p99_ns = mc.percentile_ns(0.99);
    return d;
}

DispatchReport dispatch_scenarios(const DesignSource& source,
                                  std::span<const Scenario> scenarios,
                                  const DispatchOptions& options) {
    validate_all(scenarios);

    int workers = options.workers;
    if (workers <= 0)
        workers = static_cast<int>(env_int("STATIM_DISPATCH_WORKERS", 2));
    if (workers < 0)
        throw ConfigError("dispatch: STATIM_DISPATCH_WORKERS must be >= 0");
    if (workers == 0) return run_scenarios_report(source, scenarios);

    int heartbeat_ms = options.heartbeat_timeout_ms;
    if (heartbeat_ms <= 0)
        heartbeat_ms =
            static_cast<int>(env_int("STATIM_DISPATCH_HEARTBEAT_MS", 60000));
    if (heartbeat_ms <= 0)
        throw ConfigError("dispatch: STATIM_DISPATCH_HEARTBEAT_MS must be > 0");

    int retries = options.retries;
    if (retries < 0)
        retries = static_cast<int>(env_int("STATIM_DISPATCH_RETRIES", 2));
    if (retries < 0)
        throw ConfigError("dispatch: STATIM_DISPATCH_RETRIES must be >= 0");

    if (options.checkpoint_every < 0)
        throw ConfigError("dispatch: checkpoint_every must be >= 0");
    if (options.serve_command.empty())
        throw ConfigError("dispatch: serve_command is required (the CLI passes "
                          "its own path plus 'serve')");
    if (options.fault.kind != FaultInjection::Kind::None &&
        (options.fault.scenario < 0 ||
         options.fault.scenario >= static_cast<int>(scenarios.size())))
        throw ConfigError("dispatch: fault scenario index out of range");

    const Design design = source.load();

    dist::CoordinatorConfig config;
    config.source = source;
    config.design_name = design.name();
    config.fingerprint = detail::library_fingerprint(design.library());
    config.scenarios.assign(scenarios.begin(), scenarios.end());
    config.workers = workers;
    config.checkpoint_every = options.checkpoint_every;
    config.heartbeat_timeout_ms = heartbeat_ms;
    config.retries = retries;
    config.serve_command = options.serve_command;
    config.fault = options.fault;

    DispatchReport report = report_header(design);
    dist::CoordinationResult result = dist::coordinate(config);
    report.complete = result.complete;
    report.outcomes = std::move(result.outcomes);
    return report;
}

DispatchReport run_scenarios_report(const DesignSource& source,
                                    std::span<const Scenario> scenarios) {
    validate_all(scenarios);
    const Design design = source.load();
    DispatchReport report = report_header(design);
    std::vector<ScenarioResult> results = run_scenarios(design, scenarios);
    report.outcomes.reserve(results.size());
    for (ScenarioResult& r : results) {
        DispatchOutcome outcome;
        outcome.ok = true;
        outcome.scenario = r.scenario;
        outcome.widths.reserve(r.design.gate_count());
        for (const auto& gate : r.design.netlist().gates())
            outcome.widths.push_back(gate.width);
        outcome.sizing = std::move(r.sizing);
        outcome.mc = McDigest::of(r.mc);
        report.outcomes.push_back(std::move(outcome));
    }
    return report;
}

void write_dispatch_json(std::ostream& out, const DispatchReport& report) {
    out << "{\"tool\":\"statim\",\"cmd\":\"dispatch\"";
    out << ",\"design\":\"" << json_escape(report.design) << "\"";
    out << ",\"gates\":" << report.gates;
    out << ",\"scenarios\":" << report.outcomes.size();
    out << ",\"incomplete\":" << (report.complete ? "false" : "true");
    out << ",\"results\":[";
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        if (i > 0) out << ',';
        out << '\n';
        write_outcome_json(out, report, report.outcomes[i]);
    }
    out << "\n]}\n";
}

std::vector<std::string> self_serve_command(const std::string& argv0) {
    std::string exe = dist::self_exe_path();
    if (exe.empty()) exe = argv0;
    return {std::move(exe), "serve"};
}

int serve(int in_fd, int out_fd) { return dist::worker_loop(in_fd, out_fd); }

}  // namespace statim::api
