// api::Design — one circuit bound to one cell library, the unit every
// public entry point operates on.
//
// A Design is a *value*: it owns its netlist and library, is copyable
// (run_scenarios copies one per scenario so independent runs never share
// mutable widths), and carries no analysis state — contexts and engines
// are created internally per run, which is what keeps scenario execution
// embarrassingly parallel. Construct one from the circuit registry, from
// .bench text or a file, from a synthetic generator spec, or from an
// existing netlist.
#pragma once

#include <iosfwd>
#include <string>

#include "cells/library.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "util/types.hpp"

namespace statim::api {

class Design {
  public:
    /// A registry circuit ("c17", the ten paper circuits, synth10k…)
    /// under the builtin 180 nm-class library (or `lib`).
    [[nodiscard]] static Design from_registry(const std::string& name);
    [[nodiscard]] static Design from_registry(const std::string& name,
                                              cells::Library lib);

    /// Parses ISCAS .bench text. Throws util ParseError/NetlistError on
    /// malformed input.
    [[nodiscard]] static Design from_bench_text(const std::string& text,
                                                const std::string& name = "<text>");
    [[nodiscard]] static Design from_bench_text(const std::string& text,
                                                const std::string& name,
                                                cells::Library lib);

    /// Loads a .bench file (optionally with a liberty-lite library file).
    [[nodiscard]] static Design from_bench_file(const std::string& path);
    [[nodiscard]] static Design from_bench_file(const std::string& path,
                                                cells::Library lib);

    /// Generates a synthetic circuit from `spec` (deterministic per
    /// (spec, seed)).
    [[nodiscard]] static Design from_generator(const netlist::GeneratorSpec& spec);
    [[nodiscard]] static Design from_generator(const netlist::GeneratorSpec& spec,
                                               cells::Library lib);

    /// Adopts an existing netlist (must validate against `lib`).
    [[nodiscard]] static Design from_netlist(netlist::Netlist nl, cells::Library lib);

    /// Loads a liberty-lite cell library file (the `--lib` flag of the
    /// CLI and examples); pair with the `lib` overloads above.
    [[nodiscard]] static cells::Library load_library(const std::string& path);

    [[nodiscard]] const std::string& name() const noexcept { return nl_.name(); }
    [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return nl_; }
    [[nodiscard]] netlist::Netlist& netlist() noexcept { return nl_; }
    [[nodiscard]] const cells::Library& library() const noexcept { return lib_; }

    [[nodiscard]] std::size_t gate_count() const noexcept { return nl_.gate_count(); }
    [[nodiscard]] std::size_t net_count() const noexcept { return nl_.net_count(); }
    [[nodiscard]] const std::string& gate_name(GateId g) const {
        return nl_.gate(g).name;
    }
    /// The library cell name of gate `g` (e.g. "NAND2").
    [[nodiscard]] const std::string& cell_name(GateId g) const;
    [[nodiscard]] double total_area() const { return nl_.total_area(lib_); }
    [[nodiscard]] double total_width() const noexcept { return nl_.total_width(); }

    /// Resets every gate to the library minimum width.
    void reset_widths();

    /// Writes the current netlist as .bench text.
    void write_bench(std::ostream& out) const;

  private:
    Design(netlist::Netlist nl, cells::Library lib);

    netlist::Netlist nl_;
    cells::Library lib_;
};

}  // namespace statim::api
