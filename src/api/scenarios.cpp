#include "api/scenarios.hpp"

#include <optional>
#include <utility>

#include "api/sizing_run.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace statim::api {

namespace {

ScenarioResult run_one(const Design& design, const Scenario& scenario) {
    Timer timer;
    ScenarioResult result{scenario, design, {}, {}, 0.0};

    SizingRun run(result.design, scenario);
    run.run_to_convergence();
    result.sizing = run.result();

    if (scenario.mc_samples > 0) result.mc = run.validate_mc(scenario.mc_samples);
    result.seconds = timer.seconds();
    return result;
}

}  // namespace

std::vector<ScenarioResult> run_scenarios(const Design& design,
                                          std::span<const Scenario> scenarios) {
    // Fail fast on any invalid scenario before spending work on the rest.
    for (const Scenario& s : scenarios) s.validate();

    // Slots are indexed by scenario, so the output order is the input
    // order no matter which run finishes first; parallel_for rethrows the
    // first per-run exception after the batch drains.
    std::vector<std::optional<ScenarioResult>> slots(scenarios.size());
    global_pool().parallel_for(scenarios.size(), [&](std::size_t i) {
        slots[i] = run_one(design, scenarios[i]);
    });

    std::vector<ScenarioResult> results;
    results.reserve(slots.size());
    for (std::optional<ScenarioResult>& slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

}  // namespace statim::api
