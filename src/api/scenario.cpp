#include "api/scenario.hpp"

#include "api/detail.hpp"
#include "prob/kernels/kernels.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::api {

const char* Scenario::selector_name(Selector s) noexcept {
    switch (s) {
        case Selector::Pruned: return "pruned";
        case Selector::BruteForce: return "brute";
        case Selector::BruteCone: return "cone";
    }
    return "pruned";
}

Scenario::Selector Scenario::parse_selector(std::string_view name) {
    if (name == "pruned") return Selector::Pruned;
    if (name == "brute") return Selector::BruteForce;
    if (name == "cone") return Selector::BruteCone;
    throw ConfigError("unknown selector '" + std::string(name) +
                      "' (expected pruned, brute or cone)");
}

void Scenario::validate() const {
    if (name.find_first_of("\r\n") != std::string::npos)
        throw ConfigError("Scenario: name must not contain newlines");
    if (objective == Objective::Percentile && (!(percentile > 0.0) || !(percentile <= 1.0)))
        throw ConfigError("Scenario '" + name + "': percentile must be in (0, 1]");
    if (grid_bins < 0)
        throw ConfigError("Scenario '" + name + "': grid_bins must be >= 0");
    if (!(delta_w > 0.0))
        throw ConfigError("Scenario '" + name + "': delta_w must be positive");
    if (!(max_width > 0.0))
        throw ConfigError("Scenario '" + name + "': max_width must be positive");
    if (max_iterations < 0)
        throw ConfigError("Scenario '" + name + "': max_iterations must be >= 0");
    if (!(area_budget >= 0.0))  // rejects NaN and negatives
        throw ConfigError("Scenario '" + name + "': area_budget must be >= 0");
    if (gates_per_iteration < 0)
        throw ConfigError("Scenario '" + name +
                          "': gates_per_iteration must be >= 1 (or 0 for STATIM_BATCH)");
    if (!(crit_floor <= 1.0))  // rejects NaN and > 1 (fraction of max crit)
        throw ConfigError("Scenario '" + name + "': crit_floor must be <= 1");
    if (!simd.empty())
        (void)prob::kernels::parse_level(simd);  // throws on an unknown name
}

std::size_t Scenario::resolved_threads() const {
    return threads > 0 ? threads : default_thread_count();
}

namespace detail {

core::Objective to_objective(const Scenario& s) {
    switch (s.objective) {
        case Scenario::Objective::Percentile:
            return core::Objective::percentile(s.percentile);
        case Scenario::Objective::Mean: return core::Objective::mean();
    }
    throw ConfigError("Scenario: unknown objective kind");
}

ssta::GridPolicy to_grid_policy(const Scenario& s) {
    ssta::GridPolicy policy;
    if (s.grid_bins > 0) policy.target_bins = s.grid_bins;
    return policy;
}

core::SelectorKind to_selector_kind(Scenario::Selector s) {
    switch (s) {
        case Scenario::Selector::Pruned: return core::SelectorKind::Pruned;
        case Scenario::Selector::BruteForce: return core::SelectorKind::BruteFull;
        case Scenario::Selector::BruteCone: return core::SelectorKind::BruteCone;
    }
    throw ConfigError("Scenario: unknown selector kind");
}

void apply_simd(const Scenario& s) {
    // "auto"/empty defers to STATIM_SIMD + CPUID — including *undoing* a
    // force a previously applied scenario left behind in this process.
    if (s.simd.empty() || s.simd == "auto") {
        (void)prob::kernels::reset_from_env();
        return;
    }
    // Explicit level; fast-math stays whatever the environment resolved.
    prob::kernels::force(prob::kernels::parse_level(s.simd));
}

core::StatisticalSizerConfig to_sizer_config(const Scenario& s) {
    s.validate();
    core::StatisticalSizerConfig cfg;
    cfg.objective = to_objective(s);
    cfg.delta_w = s.delta_w;
    cfg.max_width = s.max_width;
    cfg.max_iterations = s.max_iterations;
    cfg.area_budget = s.area_budget;
    cfg.target_objective_ns = s.target_objective_ns;
    cfg.selector = to_selector_kind(s.selector);
    cfg.gates_per_iteration = s.gates_per_iteration;
    cfg.threads = s.resolved_threads();
    cfg.incremental_ssta = s.incremental_ssta;
    cfg.crit_floor = s.crit_floor;
    cfg.selector_cache = s.selector_cache;
    return cfg;
}

}  // namespace detail

}  // namespace statim::api
