// Build identity of this statim library: the project version string and
// the cell-library fingerprint — the same digest checkpoints embed and
// the dispatch protocol's per-run handshake verifies. `statim --version`
// prints both so a coordinator/worker mismatch is diagnosable from the
// shell before any work is farmed out.
#pragma once

#include <cstdint>
#include <string>

namespace statim::api {

/// Project version ("0.5.0"), from the build system.
[[nodiscard]] const char* version() noexcept;

/// Fingerprint of the builtin 180 nm-class cell library (see
/// api/checkpoint.hpp: checkpoints embed it; dispatch workers verify it
/// per run). Two builds agree iff their builtin delay/area models are
/// bit-identical.
[[nodiscard]] std::uint64_t builtin_library_fingerprint();

/// Fingerprint of a liberty-lite library file (the CLI's `--lib`).
[[nodiscard]] std::uint64_t library_file_fingerprint(const std::string& path);

}  // namespace statim::api
