// Monte Carlo reference for the circuit-delay distribution.
//
// SSTA's independence-assumption max yields an upper bound under
// reconvergent fanout; Monte Carlo computes the *exact* distribution for
// the same delay model: each sample draws every gate edge's delay from its
// truncated Gaussian independently and evaluates the longest path. The
// paper uses this comparison in Section 4 ("< 1% at the 99-percentile")
// and in Figure 10's area-delay curves.
#pragma once

#include <cstdint>
#include <vector>

#include "sta/delay_calc.hpp"

namespace statim::mc {

struct McConfig {
    std::size_t samples{10000};
    std::uint64_t seed{12345};
};

/// Empirical circuit-delay distribution (sorted samples).
class McResult {
  public:
    explicit McResult(std::vector<double> sorted_delays_ns);

    [[nodiscard]] std::size_t sample_count() const noexcept { return delays_.size(); }
    /// Empirical p-quantile (p in (0, 1]) by order statistic.
    [[nodiscard]] double percentile_ns(double p) const;
    [[nodiscard]] double mean_ns() const noexcept { return mean_; }
    [[nodiscard]] double stddev_ns() const noexcept { return stddev_; }
    [[nodiscard]] double min_ns() const noexcept { return delays_.front(); }
    [[nodiscard]] double max_ns() const noexcept { return delays_.back(); }
    /// Fraction of samples meeting the delay target.
    [[nodiscard]] double yield_at(double t_ns) const noexcept;
    [[nodiscard]] const std::vector<double>& samples() const noexcept { return delays_; }

  private:
    std::vector<double> delays_;  // ascending
    double mean_{0.0};
    double stddev_{0.0};
};

/// Runs `config.samples` STA evaluations with independently sampled edge
/// delays (σ = lib.sigma_fraction · nominal, truncated at ±lib.trunc_k σ).
/// Deterministic for a fixed seed.
[[nodiscard]] McResult run_monte_carlo(const sta::DelayCalc& delays,
                                       const McConfig& config = {});

}  // namespace statim::mc
