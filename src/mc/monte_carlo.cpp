#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statim::mc {

McResult::McResult(std::vector<double> sorted_delays_ns)
    : delays_(std::move(sorted_delays_ns)) {
    if (delays_.empty()) throw ConfigError("McResult: no samples");
    double acc = 0.0;
    for (double d : delays_) acc += d;
    mean_ = acc / static_cast<double>(delays_.size());
    double var = 0.0;
    for (double d : delays_) var += (d - mean_) * (d - mean_);
    stddev_ = delays_.size() > 1
                  ? std::sqrt(var / static_cast<double>(delays_.size() - 1))
                  : 0.0;
}

double McResult::percentile_ns(double p) const {
    if (!(p > 0.0) || !(p <= 1.0))
        throw ConfigError("McResult::percentile_ns: p must be in (0, 1]");
    const auto n = static_cast<double>(delays_.size());
    const auto rank = static_cast<std::size_t>(std::ceil(p * n));
    return delays_[std::min(delays_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double McResult::yield_at(double t_ns) const noexcept {
    const auto it = std::upper_bound(delays_.begin(), delays_.end(), t_ns);
    return static_cast<double>(it - delays_.begin()) /
           static_cast<double>(delays_.size());
}

McResult run_monte_carlo(const sta::DelayCalc& delays, const McConfig& config) {
    if (config.samples == 0) throw ConfigError("run_monte_carlo: samples must be > 0");
    const netlist::TimingGraph& graph = delays.graph();
    const cells::Library& lib = delays.library();
    const double sigma_frac = lib.sigma_fraction();
    const double k = lib.trunc_k();

    Rng rng(config.seed);
    std::vector<double> sampled(graph.edge_count());
    std::vector<double> arrival;
    std::vector<double> result;
    result.reserve(config.samples);

    const std::span<const double> nominal = delays.edge_delays_ns();
    for (std::size_t s = 0; s < config.samples; ++s) {
        for (std::size_t ei = 0; ei < sampled.size(); ++ei) {
            const double nom = nominal[ei];
            sampled[ei] =
                nom == 0.0 ? 0.0 : rng.truncated_normal(nom, sigma_frac * nom, k);
        }
        result.push_back(sta::run_arrival_with(graph, sampled, arrival));
    }
    std::sort(result.begin(), result.end());
    return McResult(std::move(result));
}

}  // namespace statim::mc
