#include "ssta/grid_policy.hpp"

#include <algorithm>

#include "sta/sta.hpp"
#include "util/error.hpp"

namespace statim::ssta {

prob::TimeGrid choose_grid(const sta::DelayCalc& delays, const GridPolicy& policy) {
    if (policy.target_bins < 8)
        throw ConfigError("GridPolicy: target_bins must be at least 8");
    std::vector<double> arrival;
    const double nominal = sta::run_arrival(delays, arrival);
    if (!(nominal > 0.0))
        throw ConfigError("choose_grid: circuit has zero nominal delay");
    const double dt = std::clamp(nominal / policy.target_bins, policy.min_dt_ns,
                                 policy.max_dt_ns);
    return prob::TimeGrid(dt);
}

}  // namespace statim::ssta
