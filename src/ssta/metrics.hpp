// Metrics on arrival PDFs in physical units (ns).
//
// All take `prob::PdfView` so the arena-resident engine arrivals are read
// in place; owning `Pdf` arguments convert implicitly.
#pragma once

#include <cmath>

#include "prob/grid.hpp"
#include "prob/pdf.hpp"

namespace statim::ssta {

/// p-quantile of an arrival PDF in ns (p in (0, 1]).
[[nodiscard]] inline double percentile_ns(const prob::TimeGrid& grid,
                                          prob::PdfView pdf, double p) {
    return grid.time_of(pdf.percentile_bin(p));
}

/// Mean of an arrival PDF in ns.
[[nodiscard]] inline double mean_ns(const prob::TimeGrid& grid, prob::PdfView pdf) {
    return grid.time_of(pdf.mean_bins());
}

/// Standard deviation of an arrival PDF in ns.
[[nodiscard]] inline double stddev_ns(const prob::TimeGrid& grid, prob::PdfView pdf) {
    return grid.dt_ns() * std::sqrt(pdf.variance_bins());
}

/// Timing yield: probability the circuit meets delay target `t_ns`.
[[nodiscard]] inline double yield_at(const prob::TimeGrid& grid, prob::PdfView pdf,
                                     double t_ns) {
    return pdf.cdf_at(grid.bin_of(t_ns));
}

}  // namespace statim::ssta
