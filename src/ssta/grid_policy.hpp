// Grid-pitch selection.
//
// The discretization pitch trades SSTA accuracy against runtime: finer
// bins resolve the 99-percentile better but make every convolution and max
// proportionally more expensive. The policy sizes the pitch so the nominal
// critical-path delay spans a target number of bins, giving comparable
// resolution across circuits of very different depth (c432 vs c6288).
// bench_ablation_grid sweeps this knob.
#pragma once

#include "prob/grid.hpp"
#include "sta/delay_calc.hpp"

namespace statim::ssta {

struct GridPolicy {
    /// Bins spanned by the nominal critical-path delay.
    int target_bins{768};
    /// Pitch bounds (ns).
    double min_dt_ns{1e-5};
    double max_dt_ns{0.1};
};

/// Chooses a grid for the circuit behind `delays` by running a nominal STA
/// and dividing the critical delay by `policy.target_bins`.
[[nodiscard]] prob::TimeGrid choose_grid(const sta::DelayCalc& delays,
                                         const GridPolicy& policy = {});

}  // namespace statim::ssta
