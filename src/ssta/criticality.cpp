#include "ssta/criticality.hpp"

#include <algorithm>
#include <numeric>

#include "prob/ops.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::ssta {

namespace {

/// P(T_i sets the max): sum_t f_i(t) * prod_{j != i} F_j(t), then the
/// node's in-edge values are normalized to sum to 1 (discrete ties would
/// otherwise be counted once per tying edge). Writes into `raw[0..n)`.
void local_split(std::span<const prob::PdfView> terms, double* raw) {
    const std::size_t n = terms.size();
    if (n == 1) {
        raw[0] = 1.0;
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const prob::PdfView& ti = terms[i];
        double acc = 0.0;
        for (std::int64_t t = ti.first_bin(); t <= ti.last_bin(); ++t) {
            double others = 1.0;
            for (std::size_t j = 0; j < n && others > 0.0; ++j)
                if (j != i) others *= terms[j].cdf_at(t);
            acc += ti.mass_at(t) * others;
        }
        raw[i] = acc;
    }
    const double total = std::accumulate(raw, raw + n, 0.0);
    if (total > 0.0)
        for (std::size_t i = 0; i < n; ++i) raw[i] /= total;
}

/// Computes the local split of node `n` into split[e] for its in-edges.
void split_node(const SstaEngine& engine, const EdgeDelays& delays,
                const netlist::TimingGraph& graph, NodeId n,
                std::vector<double>& split) {
    const auto in = graph.in_edges(n);
    if (in.empty()) return;
    prob::PdfArena& arena = prob::thread_arena();
    const prob::ScopedRewind scope(arena);
    // Per-thread scratch: recompute_splits calls this for every dirty
    // node across shards, so per-node heap vectors would put the whole
    // pass back on the allocator the arena exists to avoid.
    thread_local std::vector<prob::PdfView> terms;
    thread_local std::vector<double> raw;

    terms.clear();
    terms.reserve(in.size());
    for (EdgeId e : in)
        terms.push_back(edge_arrival_term(engine.arrival(graph.edge(e).from),
                                          delays.pdf(e), arena));
    raw.assign(in.size(), 0.0);
    local_split(terms, raw.data());
    for (std::size_t k = 0; k < in.size(); ++k) split[in[k].index()] = raw[k];
}

}  // namespace

IncrementalCriticality::IncrementalCriticality(const netlist::TimingGraph& graph)
    : graph_(&graph) {}

void IncrementalCriticality::recompute_splits(const SstaEngine& engine,
                                              const EdgeDelays& delays,
                                              const std::vector<NodeId>& nodes,
                                              std::size_t threads) {
    // Each node's split writes only its own in-edges' slots, so the
    // shards are independent and the partition cannot change the bits.
    global_pool().parallel_chunks(
        nodes.size(), threads, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                split_node(engine, delays, *graph_, nodes[i], split_);
        });
    last_splits_recomputed_ = nodes.size();
}

void IncrementalCriticality::backward_pass() {
    result_.edge.assign(graph_->edge_count(), 0.0);
    result_.node.assign(graph_->node_count(), 0.0);
    result_.node[netlist::TimingGraph::sink().index()] = 1.0;

    // Backward over the topological order: by the time a node is visited
    // every one of its out-edges' heads has its criticality settled.
    const auto topo = graph_->topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId n = *it;
        const auto in = graph_->in_edges(n);
        if (in.empty()) continue;  // the source accumulates to ~1 naturally
        const double crit_here = result_.node[n.index()];
        for (EdgeId e : in) {
            const double edge_crit = crit_here * split_[e.index()];
            result_.edge[e.index()] += edge_crit;
            result_.node[graph_->edge(e).from.index()] += edge_crit;
        }
    }
}

const CriticalityResult& IncrementalCriticality::refresh(const SstaEngine& engine,
                                                         const EdgeDelays& delays,
                                                         std::size_t threads) {
    if (!engine.has_run())
        throw ConfigError("IncrementalCriticality::refresh: run SSTA first");
    if (&engine.graph() != graph_)
        throw ConfigError("IncrementalCriticality::refresh: engine graph mismatch");

    if (valid_ && engine.revision() == seen_revision_) {
        last_splits_recomputed_ = 0;  // same state as the last refresh
        return result_;
    }
    const bool full = !valid_ || engine.last_update_stats().full_run ||
                      engine.revision() != seen_revision_ + 1;
    seen_revision_ = engine.revision();

    if (!full && engine.last_changed_nodes().empty() &&
        engine.last_changed_edges().empty()) {
        last_splits_recomputed_ = 0;  // nothing moved; cached result stands
        return result_;
    }

    if (split_.size() != graph_->edge_count())
        split_.assign(graph_->edge_count(), 0.0);

    dirty_.clear();
    if (full) {
        for (NodeId n : graph_->topo_order())
            if (!graph_->in_edges(n).empty()) dirty_.push_back(n);
    } else {
        // A split depends on its fanin-tail arrivals and in-edge delays:
        // dirty = heads of changed edges ∪ fanout heads of changed nodes.
        if (marked_.size() != graph_->node_count())
            marked_.assign(graph_->node_count(), 0);
        ++epoch_;
        const auto mark = [&](NodeId n) {
            if (marked_[n.index()] == epoch_) return;
            marked_[n.index()] = epoch_;
            dirty_.push_back(n);
        };
        for (EdgeId e : engine.last_changed_edges()) mark(graph_->edge(e).to);
        for (NodeId n : engine.last_changed_nodes())
            for (EdgeId e : graph_->out_edges(n)) mark(graph_->edge(e).to);
    }

    valid_ = false;  // a thrown recompute forces the next refresh to go full
    recompute_splits(engine, delays, dirty_, threads);
    backward_pass();
    valid_ = true;
    return result_;
}

CriticalityResult compute_criticality(const SstaEngine& engine,
                                      const EdgeDelays& delays) {
    IncrementalCriticality crit(engine.graph());
    return crit.refresh(engine, delays);
}

std::vector<std::pair<GateId, double>> rank_gates_by_criticality(
    const netlist::TimingGraph& graph, const CriticalityResult& crit) {
    std::vector<std::pair<GateId, double>> ranked;
    const auto& nl = graph.netlist();
    ranked.reserve(nl.gate_count());
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        ranked.emplace_back(g, crit.of_node(graph.output_node(g)));
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    return ranked;
}

}  // namespace statim::ssta
