#include "ssta/criticality.hpp"

#include <algorithm>
#include <numeric>

#include "prob/ops.hpp"
#include "util/error.hpp"

namespace statim::ssta {

namespace {

/// The arrival-plus-delay term of one in-edge (same arithmetic as
/// compute_arrival's per-edge term).
prob::Pdf edge_term(const SstaEngine& engine, const EdgeDelays& delays,
                    const netlist::TimingGraph& graph, EdgeId e) {
    const auto& edge = graph.edge(e);
    const prob::Pdf& upstream = engine.arrival(edge.from);
    const prob::Pdf& delay = delays.pdf(e);
    if (delay.is_point()) {
        prob::Pdf term = upstream;
        term.shift(delay.first_bin());
        return term;
    }
    if (upstream.is_point()) {
        prob::Pdf term = delay;
        term.shift(upstream.first_bin());
        return term;
    }
    return prob::convolve(upstream, delay);
}

/// P(T_i sets the max): sum_t f_i(t) * prod_{j != i} F_j(t), then the
/// node's in-edge values are normalized to sum to 1 (discrete ties would
/// otherwise be counted once per tying edge).
std::vector<double> local_split(const std::vector<prob::Pdf>& terms) {
    const std::size_t n = terms.size();
    std::vector<double> raw(n, 0.0);
    if (n == 1) {
        raw[0] = 1.0;
        return raw;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const prob::Pdf& ti = terms[i];
        double acc = 0.0;
        for (std::int64_t t = ti.first_bin(); t <= ti.last_bin(); ++t) {
            double others = 1.0;
            for (std::size_t j = 0; j < n && others > 0.0; ++j)
                if (j != i) others *= terms[j].cdf_at(t);
            acc += ti.mass_at(t) * others;
        }
        raw[i] = acc;
    }
    const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
    if (total > 0.0)
        for (double& r : raw) r /= total;
    return raw;
}

}  // namespace

CriticalityResult compute_criticality(const SstaEngine& engine,
                                      const EdgeDelays& delays) {
    if (!engine.has_run())
        throw ConfigError("compute_criticality: run SSTA first");
    const netlist::TimingGraph& graph = engine.graph();

    CriticalityResult result;
    result.edge.assign(graph.edge_count(), 0.0);
    result.node.assign(graph.node_count(), 0.0);
    result.node[netlist::TimingGraph::sink().index()] = 1.0;

    // Backward over the topological order: by the time a node is visited
    // every one of its out-edges' heads has its criticality settled.
    const auto topo = graph.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId n = *it;
        const auto in = graph.in_edges(n);
        if (in.empty()) continue;  // the source accumulates to ~1 naturally
        const double crit_here = result.node[n.index()];

        std::vector<prob::Pdf> terms;
        terms.reserve(in.size());
        for (EdgeId e : in) terms.push_back(edge_term(engine, delays, graph, e));
        const std::vector<double> split = local_split(terms);
        for (std::size_t k = 0; k < in.size(); ++k) {
            const double edge_crit = crit_here * split[k];
            result.edge[in[k].index()] += edge_crit;
            result.node[graph.edge(in[k]).from.index()] += edge_crit;
        }
    }
    return result;
}

std::vector<std::pair<GateId, double>> rank_gates_by_criticality(
    const netlist::TimingGraph& graph, const CriticalityResult& crit) {
    std::vector<std::pair<GateId, double>> ranked;
    const auto& nl = graph.netlist();
    ranked.reserve(nl.gate_count());
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        ranked.emplace_back(g, crit.of_node(graph.output_node(g)));
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    return ranked;
}

}  // namespace statim::ssta
