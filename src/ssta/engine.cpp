#include "ssta/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::ssta {

prob::PdfView edge_arrival_term(prob::PdfView upstream, prob::PdfView delay,
                                prob::PdfArena& arena) {
    if (delay.is_point()) {
        upstream.shift(delay.first_bin());  // exact shift, no smearing
        return upstream;
    }
    if (upstream.is_point()) {
        delay.shift(upstream.first_bin());
        return delay;
    }
    return prob::convolve_into(arena, upstream, delay);
}

prob::PdfView compute_arrival_into(const netlist::TimingGraph& graph, NodeId n,
                                   const ArrivalLookup& arrival_of,
                                   const DelayLookup& delay_of,
                                   prob::PdfArena& arena) {
    const auto in = graph.in_edges(n);
    if (in.empty()) throw ConfigError("compute_arrival: node has no in-edges");

    prob::PdfView acc;
    for (EdgeId ei : in) {
        const auto& e = graph.edge(ei);
        const prob::PdfView term =
            edge_arrival_term(arrival_of(e.from), delay_of(ei), arena);
        acc = acc.valid() ? prob::stat_max_into(arena, acc, term) : term;
    }
    return acc;
}

prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                          const ArrivalLookup& arrival_of, const DelayLookup& delay_of) {
    prob::PdfArena& arena = prob::thread_arena();
    const prob::ScopedRewind scope(arena);
    return compute_arrival_into(graph, n, arrival_of, delay_of, arena).to_pdf();
}

SstaEngine::SstaEngine(const netlist::TimingGraph& graph) : graph_(&graph) {}

namespace {

/// Shards for one wave of `n` node evaluations: the configured thread
/// count, clamped so each shard keeps a minimum grain of nodes (tiny
/// update() cones are not worth a pool round-trip). Purely a performance
/// decision — the per-node results do not depend on the partition.
std::size_t wave_shards(std::size_t threads, std::size_t n) {
    constexpr std::size_t kMinGrain = 8;
    return std::min(threads, n / kMinGrain + 1);
}

}  // namespace

void SstaEngine::evaluate_wave(std::span<const NodeId> nodes,
                               const ArrivalLookup& arrival_of,
                               const DelayLookup& delay_of,
                               std::span<prob::Pdf> out) {
    global_pool().parallel_chunks(
        nodes.size(), wave_shards(threads_, nodes.size()),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                out[i] = compute_arrival(*graph_, nodes[i], arrival_of, delay_of);
        });
}

void SstaEngine::run(const EdgeDelays& delays) {
    arrivals_.assign(graph_->node_count(), prob::Pdf{});
    arrivals_[netlist::TimingGraph::source().index()] = prob::Pdf::point(0);

    const auto arrival_of = [this](NodeId n) -> const prob::Pdf& {
        return arrivals_[n.index()];
    };
    const auto delay_of = [&delays](EdgeId e) -> const prob::Pdf& {
        return delays.pdf(e);
    };
    stats_ = UpdateStats{};
    stats_.full_run = true;
    ++revision_;
    changed_nodes_.clear();
    changed_edges_.clear();

    // One wave per level; nodes of a level depend only on earlier levels.
    for (std::uint32_t l = 1; l < graph_->num_levels(); ++l) {
        const auto nodes = graph_->nodes_at_level(l);
        global_pool().parallel_chunks(
            nodes.size(), wave_shards(threads_, nodes.size()),
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    const NodeId n = nodes[i];
                    arrivals_[n.index()] =
                        compute_arrival(*graph_, n, arrival_of, delay_of);
                }
            });
        stats_.nodes_recomputed += nodes.size();
    }
}

void SstaEngine::update(const EdgeDelays& delays, std::span<const EdgeId> changed) {
    if (!has_run()) {
        run(delays);
        return;
    }
    stats_ = UpdateStats{};
    ++revision_;
    changed_nodes_.clear();
    changed_edges_.assign(changed.begin(), changed.end());

    if (scheduled_.size() != graph_->node_count())
        scheduled_.assign(graph_->node_count(), 0);
    if (pending_.size() != graph_->num_levels()) pending_.resize(graph_->num_levels());
    for (auto& bucket : pending_) bucket.clear();  // residue from a thrown wave
    ++epoch_;

    const auto schedule = [&](NodeId n) {
        if (scheduled_[n.index()] == epoch_) return;
        scheduled_[n.index()] = epoch_;
        pending_[graph_->level(n)].push_back(n);
    };
    std::uint32_t min_level = graph_->num_levels();
    for (EdgeId e : changed) {
        const NodeId to = graph_->edge(e).to;
        schedule(to);
        min_level = std::min(min_level, graph_->level(to));
    }

    const auto arrival_of = [this](NodeId n) -> const prob::Pdf& {
        return arrivals_[n.index()];
    };
    const auto delay_of = [&delays](EdgeId e) -> const prob::Pdf& {
        return delays.pdf(e);
    };

    // Level-synchronous wave: every edge goes to a strictly higher level,
    // so when level l is evaluated all re-propagated fanins are final.
    for (std::uint32_t l = min_level; l < graph_->num_levels(); ++l) {
        std::vector<NodeId>& bucket = pending_[l];
        if (bucket.empty()) continue;
        // Canonical order: the serial reference processed (level, id)
        // ascending; sorting keeps commits and the change journal there.
        std::sort(bucket.begin(), bucket.end(),
                  [](NodeId a, NodeId b) { return a.value < b.value; });

        fresh_.resize(bucket.size());
        evaluate_wave(bucket, arrival_of, delay_of, fresh_);
        stats_.nodes_recomputed += bucket.size();

        // Serial commit in node-id order: absorption test, store, and
        // downstream scheduling (appends only to higher-level buckets).
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            const NodeId n = bucket[i];
            if (fresh_[i] == arrivals_[n.index()]) {
                ++stats_.nodes_unchanged;  // absorbed: downstream inputs unchanged
                continue;
            }
            arrivals_[n.index()] = std::move(fresh_[i]);
            changed_nodes_.push_back(n);
            for (EdgeId e : graph_->out_edges(n)) schedule(graph_->edge(e).to);
        }
        bucket.clear();
    }
}

}  // namespace statim::ssta
