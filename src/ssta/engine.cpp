#include "ssta/engine.hpp"

#include <queue>
#include <utility>

#include "util/error.hpp"

namespace statim::ssta {

prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                          const ArrivalLookup& arrival_of, const DelayLookup& delay_of) {
    const auto in = graph.in_edges(n);
    if (in.empty()) throw ConfigError("compute_arrival: node has no in-edges");

    prob::Pdf acc;
    for (EdgeId ei : in) {
        const auto& e = graph.edge(ei);
        const prob::Pdf& upstream = arrival_of(e.from);
        const prob::Pdf& delay = delay_of(ei);

        prob::Pdf term;
        if (delay.is_point()) {
            term = upstream;                  // exact shift, no smearing
            term.shift(delay.first_bin());
        } else if (upstream.is_point()) {
            term = delay;
            term.shift(upstream.first_bin());
        } else {
            term = prob::convolve(upstream, delay);
        }
        acc = acc.valid() ? prob::stat_max(acc, term) : std::move(term);
    }
    return acc;
}

SstaEngine::SstaEngine(const netlist::TimingGraph& graph) : graph_(&graph) {}

void SstaEngine::run(const EdgeDelays& delays) {
    arrivals_.assign(graph_->node_count(), prob::Pdf{});
    arrivals_[netlist::TimingGraph::source().index()] = prob::Pdf::point(0);

    const auto arrival_of = [this](NodeId n) -> const prob::Pdf& {
        return arrivals_[n.index()];
    };
    const auto delay_of = [&delays](EdgeId e) -> const prob::Pdf& {
        return delays.pdf(e);
    };
    stats_ = UpdateStats{};
    stats_.full_run = true;
    for (NodeId n : graph_->topo_order()) {
        if (n == netlist::TimingGraph::source()) continue;
        arrivals_[n.index()] = compute_arrival(*graph_, n, arrival_of, delay_of);
        ++stats_.nodes_recomputed;
    }
}

void SstaEngine::update(const EdgeDelays& delays, std::span<const EdgeId> changed) {
    if (!has_run()) {
        run(delays);
        return;
    }
    stats_ = UpdateStats{};
    if (scheduled_.size() != graph_->node_count())
        scheduled_.assign(graph_->node_count(), 0);
    ++epoch_;

    // Min-heap on (level, node id): every edge goes to a strictly higher
    // level, so when a node pops all of its re-propagated fanins are final.
    using Pending = std::pair<std::uint32_t, std::uint32_t>;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending;
    const auto schedule = [&](NodeId n) {
        if (scheduled_[n.index()] == epoch_) return;
        scheduled_[n.index()] = epoch_;
        pending.emplace(graph_->level(n), n.value);
    };
    for (EdgeId e : changed) schedule(graph_->edge(e).to);

    const auto arrival_of = [this](NodeId n) -> const prob::Pdf& {
        return arrivals_[n.index()];
    };
    const auto delay_of = [&delays](EdgeId e) -> const prob::Pdf& {
        return delays.pdf(e);
    };
    while (!pending.empty()) {
        const NodeId n{pending.top().second};
        pending.pop();
        prob::Pdf fresh = compute_arrival(*graph_, n, arrival_of, delay_of);
        ++stats_.nodes_recomputed;
        if (fresh == arrivals_[n.index()]) {
            ++stats_.nodes_unchanged;  // absorbed: downstream inputs unchanged
            continue;
        }
        arrivals_[n.index()] = std::move(fresh);
        for (EdgeId e : graph_->out_edges(n)) schedule(graph_->edge(e).to);
    }
}

}  // namespace statim::ssta
