#include "ssta/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::ssta {

prob::PdfView edge_arrival_term(prob::PdfView upstream, prob::PdfView delay,
                                prob::PdfArena& arena) {
    if (delay.is_point()) {
        upstream.shift(delay.first_bin());  // exact shift, no smearing
        return upstream;
    }
    if (upstream.is_point()) {
        delay.shift(upstream.first_bin());
        return delay;
    }
    return prob::convolve_into(arena, upstream, delay);
}

prob::PdfView compute_arrival_into(const netlist::TimingGraph& graph, NodeId n,
                                   ArrivalLookup arrival_of, DelayLookup delay_of,
                                   prob::PdfArena& arena) {
    const auto in = graph.in_edges(n);
    if (in.empty()) throw ConfigError("compute_arrival: node has no in-edges");

    prob::PdfView acc;
    for (EdgeId ei : in) {
        const auto& e = graph.edge(ei);
        const prob::PdfView term =
            edge_arrival_term(arrival_of(e.from), delay_of(ei), arena);
        acc = acc.valid() ? prob::stat_max_into(arena, acc, term) : term;
    }
    return acc;
}

prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                          ArrivalLookup arrival_of, DelayLookup delay_of) {
    prob::PdfArena& arena = prob::thread_arena();
    const prob::ScopedRewind scope(arena);
    return compute_arrival_into(graph, n, arrival_of, delay_of, arena).to_pdf();
}

std::size_t wave_shard_count(std::size_t threads, std::size_t n) noexcept {
    constexpr std::size_t kMinGrain = 8;
    return std::min(threads, n / kMinGrain + 1);
}

SstaEngine::SstaEngine(const netlist::TimingGraph& graph) : graph_(&graph) {}

void SstaEngine::evaluate_wave(std::span<const NodeId> nodes,
                               ArrivalLookup arrival_of, DelayLookup delay_of,
                               std::span<prob::PdfView> out) {
    const std::size_t n = nodes.size();
    const std::size_t shards = wave_shard_count(threads_, n);
    while (wave_arenas_.size() < shards)
        wave_arenas_.push_back(std::make_unique<prob::PdfArena>());

    // Each shard owns wave_arenas_[s]: node results are computed in the
    // thread scratch arena (rewound per node) and parked in the wave
    // arena until the caller's serial commit copies them out. The chunk
    // partition is a pure function of (n, shards) but the per-node values
    // are independent of it anyway.
    const auto run_shard = [&](std::size_t s) {
        prob::PdfArena& results = *wave_arenas_[s];
        results.reset();
        const std::size_t begin = s * n / shards;
        const std::size_t end = (s + 1) * n / shards;
        for (std::size_t i = begin; i < end; ++i) {
            prob::PdfArena& scratch = prob::thread_arena();
            const prob::ScopedRewind scope(scratch);
            const prob::PdfView fresh =
                compute_arrival_into(*graph_, nodes[i], arrival_of, delay_of, scratch);
            out[i] = prob::copy_into(results, fresh);
        }
        // Optional hygiene: a shard that just serviced an oversized wave
        // trims its own thread_local scratch back to the cap (only the
        // owning thread may touch a thread_local arena, which is why the
        // shrink happens here and not after the join).
        if (scratch_shrink_limit_ != 0)
            prob::thread_arena().shrink_to_fit(scratch_shrink_limit_);
    };
    if (shards <= 1) {
        run_shard(0);  // inline: no pool round-trip, no batch allocation
    } else {
        global_pool().parallel_for(shards, run_shard);
    }
}

void SstaEngine::run(const EdgeDelays& delays) {
    kernels_ = &prob::kernels::active();
    store_.begin_run(graph_->node_count());
    {
        const double unit_mass = 1.0;
        store_.set(netlist::TimingGraph::source().index(),
                   prob::PdfView{0, &unit_mass, 1});
    }
    has_run_ = true;

    const auto arrival_of = [this](NodeId n) -> prob::PdfView {
        return store_.view(n.index());
    };
    const auto delay_of = [&delays](EdgeId e) -> prob::PdfView {
        return delays.pdf(e);
    };
    stats_ = UpdateStats{};
    stats_.full_run = true;
    ++revision_;
    changed_nodes_.clear();
    changed_edges_.clear();

    // One wave per level; nodes of a level depend only on earlier levels.
    // Sharded waves park results in the per-shard wave arenas and commit
    // serially in node order (appends never invalidate earlier store
    // views, so the next wave's lookups stay valid). A single-shard wave
    // skips the parking copy and writes the store directly — same-level
    // nodes never read each other, so interleaving compute and commit is
    // bit-identical.
    for (std::uint32_t l = 1; l < graph_->num_levels(); ++l) {
        const auto nodes = graph_->nodes_at_level(l);
        if (wave_shard_count(threads_, nodes.size()) <= 1) {
            for (const NodeId n : nodes) {
                prob::PdfArena& scratch = prob::thread_arena();
                const prob::ScopedRewind scope(scratch);
                store_.set(n.index(), compute_arrival_into(*graph_, n, arrival_of,
                                                           delay_of, scratch));
            }
        } else {
            fresh_.resize(nodes.size());
            evaluate_wave(nodes, arrival_of, delay_of, fresh_);
            for (std::size_t i = 0; i < nodes.size(); ++i)
                store_.set(nodes[i].index(), fresh_[i]);
        }
        stats_.nodes_recomputed += nodes.size();
    }
    if (scratch_shrink_limit_ != 0) {
        // The final wave's results are committed; the wave arenas can be
        // fully rewound, which lets the trim free every slab if asked.
        for (const auto& arena : wave_arenas_) {
            arena->reset();
            arena->shrink_to_fit(scratch_shrink_limit_);
        }
        // Single-shard levels run inline on this thread and never reach
        // evaluate_wave's per-shard trim, so cover the caller's scratch
        // here — otherwise the limit is a silent no-op at threads()==1.
        prob::thread_arena().shrink_to_fit(scratch_shrink_limit_);
    }
}

void SstaEngine::update(const EdgeDelays& delays, std::span<const EdgeId> changed) {
    if (!has_run()) {
        run(delays);
        return;
    }
    kernels_ = &prob::kernels::active();
    stats_ = UpdateStats{};
    ++revision_;
    changed_nodes_.clear();
    changed_edges_.assign(changed.begin(), changed.end());

    // Refresh boundary: all outside views are dead by contract, so this
    // is the one safe point to re-pack the store if overwrites from
    // earlier updates left it mostly garbage.
    store_.maybe_compact();

    if (scheduled_.size() != graph_->node_count())
        scheduled_.assign(graph_->node_count(), 0);
    if (pending_.size() != graph_->num_levels()) pending_.resize(graph_->num_levels());
    for (auto& bucket : pending_) bucket.clear();  // residue from a thrown wave
    ++epoch_;

    const auto schedule = [&](NodeId n) {
        if (scheduled_[n.index()] == epoch_) return;
        scheduled_[n.index()] = epoch_;
        pending_[graph_->level(n)].push_back(n);
    };
    std::uint32_t min_level = graph_->num_levels();
    for (EdgeId e : changed) {
        const NodeId to = graph_->edge(e).to;
        schedule(to);
        min_level = std::min(min_level, graph_->level(to));
    }

    const auto arrival_of = [this](NodeId n) -> prob::PdfView {
        return store_.view(n.index());
    };
    const auto delay_of = [&delays](EdgeId e) -> prob::PdfView {
        return delays.pdf(e);
    };

    // Level-synchronous wave: every edge goes to a strictly higher level,
    // so when level l is evaluated all re-propagated fanins are final.
    for (std::uint32_t l = min_level; l < graph_->num_levels(); ++l) {
        std::vector<NodeId>& bucket = pending_[l];
        if (bucket.empty()) continue;
        // Canonical order: the serial reference processed (level, id)
        // ascending; sorting keeps commits and the change journal there.
        std::sort(bucket.begin(), bucket.end(),
                  [](NodeId a, NodeId b) { return a.value < b.value; });

        stats_.nodes_recomputed += bucket.size();
        if (wave_shard_count(threads_, bucket.size()) <= 1) {
            // Single shard: compute, absorption-test and commit inline
            // (one copy, no parking). Same-level nodes never read each
            // other, so this interleaving is the serial reference.
            for (const NodeId n : bucket) {
                prob::PdfArena& scratch = prob::thread_arena();
                const prob::ScopedRewind scope(scratch);
                const prob::PdfView freshly = compute_arrival_into(
                    *graph_, n, arrival_of, delay_of, scratch);
                if (freshly == store_.view(n.index())) {
                    ++stats_.nodes_unchanged;  // absorbed
                    continue;
                }
                store_.set(n.index(), freshly);
                changed_nodes_.push_back(n);
                for (EdgeId e : graph_->out_edges(n)) schedule(graph_->edge(e).to);
            }
            bucket.clear();
            continue;
        }
        fresh_.resize(bucket.size());
        evaluate_wave(bucket, arrival_of, delay_of, fresh_);

        // Serial commit in node-id order: absorption test, store, and
        // downstream scheduling (appends only to higher-level buckets).
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            const NodeId n = bucket[i];
            if (fresh_[i] == store_.view(n.index())) {
                ++stats_.nodes_unchanged;  // absorbed: downstream inputs unchanged
                continue;
            }
            store_.set(n.index(), fresh_[i]);
            changed_nodes_.push_back(n);
            for (EdgeId e : graph_->out_edges(n)) schedule(graph_->edge(e).to);
        }
        bucket.clear();
    }
}

SstaEngine::MemoryStats SstaEngine::memory_stats() const noexcept {
    MemoryStats m;
    m.store = store_.memory_stats();
    for (const auto& arena : wave_arenas_) {
        m.wave_capacity_doubles += arena->capacity();
        m.wave_high_water_doubles =
            std::max(m.wave_high_water_doubles, arena->high_water());
    }
    return m;
}

}  // namespace statim::ssta
