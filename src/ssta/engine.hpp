// Block-based SSTA engine.
//
// Arrival-time PDFs are propagated through the timing graph in topological
// order: convolution adds an edge's delay RV, the independence-assumption
// statistical max joins fanins. Ignoring reconvergence correlations makes
// the sink CDF an *upper bound* on the exact circuit-delay CDF (Agarwal et
// al., DAC'03) — the quantity the paper's optimizer works on, validated
// against Monte Carlo in Figure 10.
//
// `compute_arrival` is the single arithmetic path used by the full engine,
// the brute-force sensitivity engine and the pruned perturbation fronts,
// so all three agree bit for bit — the basis of the "exact pruning" claim.
// All intermediates of one node evaluation live in the calling thread's
// `prob::thread_arena()` and are reclaimed before the call returns.
//
// Storage: arrivals are *arena-resident* (`prob::ArrivalStore`). A wave
// shard computes each node in its thread scratch arena, parks the result
// in the shard's wave arena, and the serial commit copies it into the
// store — zero heap allocations per node at steady state, where the old
// engine paid one `std::vector<double>` per node per refresh. Consumers
// read arrivals as `prob::PdfView`s, valid until the next run()/update().
//
// Propagation is *level-synchronous*: every edge goes from a lower to a
// strictly higher level, so all nodes of one level depend only on earlier
// levels and can be evaluated concurrently. With `set_threads(t)` each
// wave is sharded into t contiguous, node-id-ordered chunks on the global
// thread pool; each shard evaluates its nodes through its own thread
// arena and parks each arrival in the shard's dedicated wave arena, so
// the result is bit-identical to the serial reference for any thread
// count.
//
// Concurrency contract: the engine itself is externally synchronized —
// one run()/update() at a time, from one thread (the wave shards it
// spawns write disjoint, pre-sized slots and join before the serial
// commit). No member is mutex-guarded, so clang's capability analysis
// has nothing to annotate here; the cross-shard discipline (frozen
// inputs, dedicated result slots, serial node-id-ordered commit) is
// enforced by the TSan CI leg and the bit-identity property tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/timing_graph.hpp"
#include "prob/arrival_store.hpp"
#include "prob/kernels/kernels.hpp"
#include "prob/ops.hpp"
#include "ssta/edge_delays.hpp"
#include "util/function_ref.hpp"

namespace statim::ssta {

/// Callback types: arrival PDF of a node / delay PDF of an edge. These are
/// non-owning two-word references (util::FunctionRef) invoked in the
/// innermost fanin fold — no std::function dispatch, no allocation.
/// Callables may return `prob::PdfView` or `const prob::Pdf&` (converted).
using ArrivalLookup = util::FunctionRef<prob::PdfView(NodeId)>;
using DelayLookup = util::FunctionRef<prob::PdfView(EdgeId)>;

/// Computes the arrival PDF at node `n` from its in-edges:
///   A(n) = stat_max over in-edges e of conv(arrival(from(e)), delay(e)).
/// Point-mass delays degenerate to exact shifts. The fold is performed in
/// in-edge order (deterministic). `n` must not be the source.
[[nodiscard]] prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                                        ArrivalLookup arrival_of,
                                        DelayLookup delay_of);

/// One in-edge's arrival-plus-delay term — the per-edge branch of
/// compute_arrival: an exact shift when either operand is a point mass
/// (the view aliases the other operand's storage), a convolution into
/// `arena` otherwise. Shared by the propagation fold and the criticality
/// local splits so the two stay bit-identical by construction.
[[nodiscard]] prob::PdfView edge_arrival_term(prob::PdfView upstream,
                                              prob::PdfView delay,
                                              prob::PdfArena& arena);

/// Arena-backed core of compute_arrival: the intermediates *and* the
/// result live in `arena`, valid until the caller rewinds it. Exact
/// shifts alias the upstream storage (zero copies); convolutions and
/// maxes write fresh arena slabs. Bit-identical to compute_arrival.
[[nodiscard]] prob::PdfView compute_arrival_into(const netlist::TimingGraph& graph,
                                                 NodeId n,
                                                 ArrivalLookup arrival_of,
                                                 DelayLookup delay_of,
                                                 prob::PdfArena& arena);

/// Shards for one wave of `n` node evaluations under a configured thread
/// count: clamped so each shard keeps a minimum grain of nodes (tiny
/// waves are not worth a pool round-trip). Purely a performance decision
/// — per-node results do not depend on the partition. Shared with the
/// perturbation-front drain, which waves its per-level node sets the
/// same way.
[[nodiscard]] std::size_t wave_shard_count(std::size_t threads,
                                           std::size_t n) noexcept;

/// Full-circuit SSTA: owns one arrival PDF per node (arena-resident).
///
/// Two refresh paths share the compute_arrival arithmetic and are
/// bit-identical:
///  * run()    — from-scratch propagation of every node (the reference),
///    one level-synchronous wave per graph level;
///  * update() — incremental: after a resize changed some edge PDFs, only
///    the fanout cone of those edges is re-propagated level by level, and
///    a node whose recomputed arrival equals its stored one bit-for-bit
///    stops the wave (the same absorption argument the perturbation
///    fronts use — identical inputs reproduce identical outputs, so the
///    untouched remainder of the cone is already correct).
///
/// Both paths shard each wave over `threads()` chunks; results are
/// bit-identical for any thread count (each node's evaluation is
/// independent and lands in its own slot; update()'s commit-and-schedule
/// step runs serially in node-id order after each wave joins).
class SstaEngine {
  public:
    /// Accounting for the most recent run()/update() call.
    struct UpdateStats {
        bool full_run{false};            ///< true for run(), false for update()
        std::size_t nodes_recomputed{0};  ///< compute_arrival evaluations
        std::size_t nodes_unchanged{0};   ///< recomputed but bitwise equal (wave cut)
    };

    /// Binds to a graph; `run` must be called before arrivals are read.
    explicit SstaEngine(const netlist::TimingGraph& graph);

    /// Propagates every node from a clean slate. O(Σ conv + max).
    void run(const EdgeDelays& delays);

    /// Re-propagates only the fanout cone of `changed` (edges whose delay
    /// PDFs differ from the last refresh). Requires the *current* `delays`;
    /// falls back to run() when no arrivals exist yet. Result is
    /// bit-identical to a from-scratch run().
    void update(const EdgeDelays& delays, std::span<const EdgeId> changed);

    /// Wave shards for run()/update(); >= 1. Results are bit-identical
    /// for any value, so this is purely a performance knob.
    void set_threads(std::size_t threads) noexcept {
        threads_ = threads < 1 ? 1 : threads;
    }
    [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

    /// Optional cap (in doubles) on the propagation scratch arenas. When
    /// set, each wave shard trims its thread-local scratch arena and its
    /// wave arena back to the cap after a full run — a one-off giant
    /// circuit no longer pins its high-water slabs in every worker
    /// thread_local for the process lifetime. 0 (default) keeps the
    /// classic grow-only behaviour.
    void set_scratch_shrink_limit(std::size_t doubles) noexcept {
        scratch_shrink_limit_ = doubles;
    }
    [[nodiscard]] std::size_t scratch_shrink_limit() const noexcept {
        return scratch_shrink_limit_;
    }

    [[nodiscard]] const UpdateStats& last_update_stats() const noexcept {
        return stats_;
    }

    /// Monotone counter bumped by every run()/update(); consumers that
    /// cache derived quantities (criticality) key their deltas on it.
    [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

    /// Nodes whose stored arrival changed in the last update(), in commit
    /// order (ascending level, ascending node id). Meaningful only when
    /// !last_update_stats().full_run — a full run changes everything.
    [[nodiscard]] std::span<const NodeId> last_changed_nodes() const noexcept {
        return changed_nodes_;
    }
    /// The `changed` edge set the last update() was given (empty after a
    /// full run, which invalidates everything anyway).
    [[nodiscard]] std::span<const EdgeId> last_changed_edges() const noexcept {
        return changed_edges_;
    }

    [[nodiscard]] bool has_run() const noexcept { return has_run_; }

    /// Arrival view of node `n`: valid until the next run()/update().
    /// Unchecked in Release (debug-asserted) — this is the innermost read
    /// of the propagation fold and every front drain.
    [[nodiscard]] prob::PdfView arrival(NodeId n) const noexcept {
        assert(has_run_);
        return store_.view(n.index());
    }
    [[nodiscard]] prob::PdfView sink_arrival() const noexcept {
        return arrival(netlist::TimingGraph::sink());
    }
    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return *graph_; }

    /// Arena occupancy of the arrival store plus the wave arenas — the
    /// bench JSON surfaces these so arena growth stays visible across
    /// the synth10k–250k registry.
    struct MemoryStats {
        prob::ArrivalStore::MemoryStats store;
        std::size_t wave_capacity_doubles{0};
        std::size_t wave_high_water_doubles{0};
    };
    [[nodiscard]] MemoryStats memory_stats() const noexcept;

    /// The kernel dispatch table the last run()/update() went through.
    /// Pinned at refresh entry — this resolves the STATIM_SIMD /
    /// STATIM_FAST_MATH environment once, on the calling thread, before
    /// any wave fans out to the pool, and records which table produced
    /// the stored arrivals (the bench JSON and the dispatch property
    /// tests read it back). Before the first refresh it reports the
    /// table a refresh would use right now.
    [[nodiscard]] const prob::kernels::KernelTable& kernel_table() const {
        return kernels_ != nullptr ? *kernels_ : prob::kernels::active();
    }

  private:
    /// Evaluates `nodes` into `out[i]` across the wave shards; the views
    /// live in the per-shard wave arenas until the next wave.
    void evaluate_wave(std::span<const NodeId> nodes, ArrivalLookup arrival_of,
                       DelayLookup delay_of, std::span<prob::PdfView> out);

    const netlist::TimingGraph* graph_;
    prob::ArrivalStore store_;
    const prob::kernels::KernelTable* kernels_{nullptr};
    bool has_run_{false};
    UpdateStats stats_;
    std::size_t threads_{1};
    std::size_t scratch_shrink_limit_{0};
    std::uint64_t revision_{0};
    // Per-shard wave arenas: shard s parks its fresh arrivals in
    // wave_arenas_[s] until the serial commit copies them into the store.
    // (unique_ptr: PdfArena is pinned — vector growth must not move it.)
    std::vector<std::unique_ptr<prob::PdfArena>> wave_arenas_;
    // update() scratch, reused across calls: epoch-stamped "scheduled"
    // marks (avoids an O(nodes) clear per incremental refresh), per-level
    // pending buckets, and the wave's freshly computed arrival views.
    std::vector<std::uint64_t> scheduled_;
    std::uint64_t epoch_{0};
    std::vector<std::vector<NodeId>> pending_;
    std::vector<prob::PdfView> fresh_;
    // change journal of the last refresh (see last_changed_*).
    std::vector<NodeId> changed_nodes_;
    std::vector<EdgeId> changed_edges_;
};

}  // namespace statim::ssta
