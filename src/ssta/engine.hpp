// Block-based SSTA engine.
//
// Arrival-time PDFs are propagated through the timing graph in topological
// order: convolution adds an edge's delay RV, the independence-assumption
// statistical max joins fanins. Ignoring reconvergence correlations makes
// the sink CDF an *upper bound* on the exact circuit-delay CDF (Agarwal et
// al., DAC'03) — the quantity the paper's optimizer works on, validated
// against Monte Carlo in Figure 10.
//
// `compute_arrival` is the single arithmetic path used by the full engine,
// the brute-force sensitivity engine and the pruned perturbation fronts,
// so all three agree bit for bit — the basis of the "exact pruning" claim.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netlist/timing_graph.hpp"
#include "prob/ops.hpp"
#include "ssta/edge_delays.hpp"

namespace statim::ssta {

/// Callback types: arrival PDF of a node / delay PDF of an edge.
using ArrivalLookup = std::function<const prob::Pdf&(NodeId)>;
using DelayLookup = std::function<const prob::Pdf&(EdgeId)>;

/// Computes the arrival PDF at node `n` from its in-edges:
///   A(n) = stat_max over in-edges e of conv(arrival(from(e)), delay(e)).
/// Point-mass delays degenerate to exact shifts. The fold is performed in
/// in-edge order (deterministic). `n` must not be the source.
[[nodiscard]] prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                                        const ArrivalLookup& arrival_of,
                                        const DelayLookup& delay_of);

/// Full-circuit SSTA: owns one arrival PDF per node.
///
/// Two refresh paths share `compute_arrival` and are bit-identical:
///  * run()    — from-scratch propagation of every node (the reference);
///  * update() — incremental: after a resize changed some edge PDFs, only
///    the fanout cone of those edges is re-propagated level by level, and
///    a node whose recomputed arrival equals its stored one bit-for-bit
///    stops the wave (the same absorption argument the perturbation
///    fronts use — identical inputs reproduce identical outputs, so the
///    untouched remainder of the cone is already correct).
class SstaEngine {
  public:
    /// Accounting for the most recent run()/update() call.
    struct UpdateStats {
        bool full_run{false};            ///< true for run(), false for update()
        std::size_t nodes_recomputed{0};  ///< compute_arrival evaluations
        std::size_t nodes_unchanged{0};   ///< recomputed but bitwise equal (wave cut)
    };

    /// Binds to a graph; `run` must be called before arrivals are read.
    explicit SstaEngine(const netlist::TimingGraph& graph);

    /// Propagates every node from a clean slate. O(Σ conv + max).
    void run(const EdgeDelays& delays);

    /// Re-propagates only the fanout cone of `changed` (edges whose delay
    /// PDFs differ from the last refresh). Requires the *current* `delays`;
    /// falls back to run() when no arrivals exist yet. Result is
    /// bit-identical to a from-scratch run().
    void update(const EdgeDelays& delays, std::span<const EdgeId> changed);

    [[nodiscard]] const UpdateStats& last_update_stats() const noexcept {
        return stats_;
    }

    [[nodiscard]] bool has_run() const noexcept { return !arrivals_.empty(); }
    [[nodiscard]] const prob::Pdf& arrival(NodeId n) const { return arrivals_.at(n.index()); }
    [[nodiscard]] const prob::Pdf& sink_arrival() const {
        return arrival(netlist::TimingGraph::sink());
    }
    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return *graph_; }

  private:
    const netlist::TimingGraph* graph_;
    std::vector<prob::Pdf> arrivals_;
    UpdateStats stats_;
    // update() scratch, reused across calls: epoch-stamped "scheduled"
    // marks (avoids an O(nodes) clear per incremental refresh).
    std::vector<std::uint64_t> scheduled_;
    std::uint64_t epoch_{0};
};

}  // namespace statim::ssta
