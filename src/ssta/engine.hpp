// Block-based SSTA engine.
//
// Arrival-time PDFs are propagated through the timing graph in topological
// order: convolution adds an edge's delay RV, the independence-assumption
// statistical max joins fanins. Ignoring reconvergence correlations makes
// the sink CDF an *upper bound* on the exact circuit-delay CDF (Agarwal et
// al., DAC'03) — the quantity the paper's optimizer works on, validated
// against Monte Carlo in Figure 10.
//
// `compute_arrival` is the single arithmetic path used by the full engine,
// the brute-force sensitivity engine and the pruned perturbation fronts,
// so all three agree bit for bit — the basis of the "exact pruning" claim.
// All intermediates of one node evaluation live in the calling thread's
// `prob::thread_arena()` and are reclaimed before the call returns.
//
// Propagation is *level-synchronous*: every edge goes from a lower to a
// strictly higher level, so all nodes of one level depend only on earlier
// levels and can be evaluated concurrently. With `set_threads(t)` each
// wave is sharded into t contiguous, node-id-ordered chunks on the global
// thread pool; each shard evaluates its nodes through its own thread
// arena and writes each arrival into that node's dedicated slot, so the
// result is bit-identical to the serial reference for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netlist/timing_graph.hpp"
#include "prob/ops.hpp"
#include "ssta/edge_delays.hpp"

namespace statim::ssta {

/// Callback types: arrival PDF of a node / delay PDF of an edge.
using ArrivalLookup = std::function<const prob::Pdf&(NodeId)>;
using DelayLookup = std::function<const prob::Pdf&(EdgeId)>;

/// Computes the arrival PDF at node `n` from its in-edges:
///   A(n) = stat_max over in-edges e of conv(arrival(from(e)), delay(e)).
/// Point-mass delays degenerate to exact shifts. The fold is performed in
/// in-edge order (deterministic). `n` must not be the source.
[[nodiscard]] prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                                        const ArrivalLookup& arrival_of,
                                        const DelayLookup& delay_of);

/// One in-edge's arrival-plus-delay term — the per-edge branch of
/// compute_arrival: an exact shift when either operand is a point mass
/// (the view aliases the other operand's storage), a convolution into
/// `arena` otherwise. Shared by the propagation fold and the criticality
/// local splits so the two stay bit-identical by construction.
[[nodiscard]] prob::PdfView edge_arrival_term(prob::PdfView upstream,
                                              prob::PdfView delay,
                                              prob::PdfArena& arena);

/// Arena-backed core of compute_arrival: the intermediates *and* the
/// result live in `arena`, valid until the caller rewinds it. Exact
/// shifts alias the upstream storage (zero copies); convolutions and
/// maxes write fresh arena slabs. Bit-identical to compute_arrival.
[[nodiscard]] prob::PdfView compute_arrival_into(const netlist::TimingGraph& graph,
                                                 NodeId n,
                                                 const ArrivalLookup& arrival_of,
                                                 const DelayLookup& delay_of,
                                                 prob::PdfArena& arena);

/// Full-circuit SSTA: owns one arrival PDF per node.
///
/// Two refresh paths share `compute_arrival` and are bit-identical:
///  * run()    — from-scratch propagation of every node (the reference),
///    one level-synchronous wave per graph level;
///  * update() — incremental: after a resize changed some edge PDFs, only
///    the fanout cone of those edges is re-propagated level by level, and
///    a node whose recomputed arrival equals its stored one bit-for-bit
///    stops the wave (the same absorption argument the perturbation
///    fronts use — identical inputs reproduce identical outputs, so the
///    untouched remainder of the cone is already correct).
///
/// Both paths shard each wave over `threads()` chunks; results are
/// bit-identical for any thread count (each node's evaluation is
/// independent and lands in its own slot; update()'s commit-and-schedule
/// step runs serially in node-id order after each wave joins).
class SstaEngine {
  public:
    /// Accounting for the most recent run()/update() call.
    struct UpdateStats {
        bool full_run{false};            ///< true for run(), false for update()
        std::size_t nodes_recomputed{0};  ///< compute_arrival evaluations
        std::size_t nodes_unchanged{0};   ///< recomputed but bitwise equal (wave cut)
    };

    /// Binds to a graph; `run` must be called before arrivals are read.
    explicit SstaEngine(const netlist::TimingGraph& graph);

    /// Propagates every node from a clean slate. O(Σ conv + max).
    void run(const EdgeDelays& delays);

    /// Re-propagates only the fanout cone of `changed` (edges whose delay
    /// PDFs differ from the last refresh). Requires the *current* `delays`;
    /// falls back to run() when no arrivals exist yet. Result is
    /// bit-identical to a from-scratch run().
    void update(const EdgeDelays& delays, std::span<const EdgeId> changed);

    /// Wave shards for run()/update(); >= 1. Results are bit-identical
    /// for any value, so this is purely a performance knob.
    void set_threads(std::size_t threads) noexcept {
        threads_ = threads < 1 ? 1 : threads;
    }
    [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

    [[nodiscard]] const UpdateStats& last_update_stats() const noexcept {
        return stats_;
    }

    /// Monotone counter bumped by every run()/update(); consumers that
    /// cache derived quantities (criticality) key their deltas on it.
    [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

    /// Nodes whose stored arrival changed in the last update(), in commit
    /// order (ascending level, ascending node id). Meaningful only when
    /// !last_update_stats().full_run — a full run changes everything.
    [[nodiscard]] std::span<const NodeId> last_changed_nodes() const noexcept {
        return changed_nodes_;
    }
    /// The `changed` edge set the last update() was given (empty after a
    /// full run, which invalidates everything anyway).
    [[nodiscard]] std::span<const EdgeId> last_changed_edges() const noexcept {
        return changed_edges_;
    }

    [[nodiscard]] bool has_run() const noexcept { return !arrivals_.empty(); }
    [[nodiscard]] const prob::Pdf& arrival(NodeId n) const { return arrivals_.at(n.index()); }
    [[nodiscard]] const prob::Pdf& sink_arrival() const {
        return arrival(netlist::TimingGraph::sink());
    }
    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return *graph_; }

  private:
    /// Evaluates `nodes` into `out[i]` across the wave shards.
    void evaluate_wave(std::span<const NodeId> nodes, const ArrivalLookup& arrival_of,
                       const DelayLookup& delay_of, std::span<prob::Pdf> out);

    const netlist::TimingGraph* graph_;
    std::vector<prob::Pdf> arrivals_;
    UpdateStats stats_;
    std::size_t threads_{1};
    std::uint64_t revision_{0};
    // update() scratch, reused across calls: epoch-stamped "scheduled"
    // marks (avoids an O(nodes) clear per incremental refresh), per-level
    // pending buckets, and the wave's freshly computed arrivals.
    std::vector<std::uint64_t> scheduled_;
    std::uint64_t epoch_{0};
    std::vector<std::vector<NodeId>> pending_;
    std::vector<prob::Pdf> fresh_;
    // change journal of the last refresh (see last_changed_*).
    std::vector<NodeId> changed_nodes_;
    std::vector<EdgeId> changed_edges_;
};

}  // namespace statim::ssta
