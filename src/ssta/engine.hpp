// Block-based SSTA engine.
//
// Arrival-time PDFs are propagated through the timing graph in topological
// order: convolution adds an edge's delay RV, the independence-assumption
// statistical max joins fanins. Ignoring reconvergence correlations makes
// the sink CDF an *upper bound* on the exact circuit-delay CDF (Agarwal et
// al., DAC'03) — the quantity the paper's optimizer works on, validated
// against Monte Carlo in Figure 10.
//
// `compute_arrival` is the single arithmetic path used by the full engine,
// the brute-force sensitivity engine and the pruned perturbation fronts,
// so all three agree bit for bit — the basis of the "exact pruning" claim.
#pragma once

#include <functional>
#include <vector>

#include "netlist/timing_graph.hpp"
#include "prob/ops.hpp"
#include "ssta/edge_delays.hpp"

namespace statim::ssta {

/// Callback types: arrival PDF of a node / delay PDF of an edge.
using ArrivalLookup = std::function<const prob::Pdf&(NodeId)>;
using DelayLookup = std::function<const prob::Pdf&(EdgeId)>;

/// Computes the arrival PDF at node `n` from its in-edges:
///   A(n) = stat_max over in-edges e of conv(arrival(from(e)), delay(e)).
/// Point-mass delays degenerate to exact shifts. The fold is performed in
/// in-edge order (deterministic). `n` must not be the source.
[[nodiscard]] prob::Pdf compute_arrival(const netlist::TimingGraph& graph, NodeId n,
                                        const ArrivalLookup& arrival_of,
                                        const DelayLookup& delay_of);

/// Full-circuit SSTA: owns one arrival PDF per node.
class SstaEngine {
  public:
    /// Binds to a graph; `run` must be called before arrivals are read.
    explicit SstaEngine(const netlist::TimingGraph& graph);

    /// Propagates every node from a clean slate. O(Σ conv + max).
    void run(const EdgeDelays& delays);

    [[nodiscard]] bool has_run() const noexcept { return !arrivals_.empty(); }
    [[nodiscard]] const prob::Pdf& arrival(NodeId n) const { return arrivals_.at(n.index()); }
    [[nodiscard]] const prob::Pdf& sink_arrival() const {
        return arrival(netlist::TimingGraph::sink());
    }
    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return *graph_; }

  private:
    const netlist::TimingGraph* graph_;
    std::vector<prob::Pdf> arrivals_;
};

}  // namespace statim::ssta
