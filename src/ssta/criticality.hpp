// Criticality analysis on the SSTA solution.
//
// Under process variation there is no single critical path; every edge has
// a *probability* of lying on the longest path. Block-based criticality is
// computed in two steps (under the same independence assumption as the
// arrival propagation):
//
//  * edge criticality at a node — the probability that in-edge e sets the
//    statistical max at its head:  P(T_e >= max of sibling terms), where
//    T_e = arrival(tail) + delay(e), evaluated exactly on the grid and
//    normalized over the node's in-edges;
//  * global criticality — backward propagation from the sink:
//    crit(sink) = 1,  crit(e) = crit(head(e)) * local(e),
//    crit(node) = sum of crit over its out-edges (the sink's is 1).
//
// The result quantifies Figure 1's "wall": a deterministically optimized
// circuit spreads criticality over many paths. Used by the
// criticality_report example and the wall analysis tests.
#pragma once

#include <vector>

#include "ssta/engine.hpp"

namespace statim::ssta {

struct CriticalityResult {
    /// Per edge: probability the edge lies on the statistically longest
    /// path (virtual edges included). In [0, 1].
    std::vector<double> edge;
    /// Per node: probability the node lies on the longest path.
    std::vector<double> node;

    [[nodiscard]] double of_edge(EdgeId e) const { return edge.at(e.index()); }
    [[nodiscard]] double of_node(NodeId n) const { return node.at(n.index()); }
};

/// Computes criticalities from a completed SSTA run. O(E · bins).
[[nodiscard]] CriticalityResult compute_criticality(const SstaEngine& engine,
                                                    const EdgeDelays& delays);

/// Gates ranked by the criticality of their output node, descending;
/// ties broken by gate id. Handy for reports.
[[nodiscard]] std::vector<std::pair<GateId, double>> rank_gates_by_criticality(
    const netlist::TimingGraph& graph, const CriticalityResult& crit);

}  // namespace statim::ssta
