// Criticality analysis on the SSTA solution.
//
// Under process variation there is no single critical path; every edge has
// a *probability* of lying on the longest path. Block-based criticality is
// computed in two steps (under the same independence assumption as the
// arrival propagation):
//
//  * edge criticality at a node — the probability that in-edge e sets the
//    statistical max at its head:  P(T_e >= max of sibling terms), where
//    T_e = arrival(tail) + delay(e), evaluated exactly on the grid and
//    normalized over the node's in-edges (the "local split");
//  * global criticality — backward propagation from the sink:
//    crit(sink) = 1,  crit(e) = crit(head(e)) * local(e),
//    crit(node) = sum of crit over its out-edges (the sink's is 1).
//
// The local splits are the O(E · bins) part; the backward pass is O(E)
// scalar work. `IncrementalCriticality` caches the splits and, after an
// engine update(), recomputes only the ones whose inputs moved: a node's
// split depends solely on its fanin-tail arrivals and its in-edge delay
// PDFs, so the dirty set is {heads of changed edges} ∪ {fanout heads of
// changed-arrival nodes}. Unchanged splits are reused verbatim, which
// keeps the incremental result bitwise equal to a from-scratch pass.
//
// The result quantifies Figure 1's "wall": a deterministically optimized
// circuit spreads criticality over many paths. Used by the
// criticality_report example and the wall analysis tests.
#pragma once

#include <cassert>
#include <vector>

#include "ssta/engine.hpp"

namespace statim::ssta {

struct CriticalityResult {
    /// Per edge: probability the edge lies on the statistically longest
    /// path (virtual edges included). In [0, 1].
    std::vector<double> edge;
    /// Per node: probability the node lies on the longest path.
    std::vector<double> node;

    /// Unchecked in Release (debug-asserted): the selector's criticality
    /// floor reads one of these per candidate gate per pass.
    [[nodiscard]] double of_edge(EdgeId e) const noexcept {
        assert(e.index() < edge.size());
        return edge[e.index()];
    }
    [[nodiscard]] double of_node(NodeId n) const noexcept {
        assert(n.index() < node.size());
        return node[n.index()];
    }
};

/// Computes criticalities from a completed SSTA run. O(E · bins).
[[nodiscard]] CriticalityResult compute_criticality(const SstaEngine& engine,
                                                    const EdgeDelays& delays);

/// Caching criticality engine. refresh() keys on the SSTA engine's
/// revision counter: on an already-seen revision it returns the cached
/// result outright; when called once per run()/update() it reuses every
/// local split whose inputs are untouched (and skips all work when
/// nothing moved); when a revision was missed, or after a full run, it
/// falls back to a from-scratch pass. Either way the result is bitwise
/// identical to compute_criticality on the same state.
class IncrementalCriticality {
  public:
    explicit IncrementalCriticality(const netlist::TimingGraph& graph);

    /// Brings the cached result up to date with `engine`'s arrivals and
    /// `delays`. `threads` shards the split recomputation (bit-identical
    /// for any value). Requires engine.has_run().
    const CriticalityResult& refresh(const SstaEngine& engine,
                                     const EdgeDelays& delays,
                                     std::size_t threads = 1);

    [[nodiscard]] bool has_result() const noexcept { return valid_; }
    [[nodiscard]] const CriticalityResult& result() const noexcept { return result_; }

    /// Criticality of `g`'s output node — the probability the gate lies
    /// on the statistically longest path. O(1); requires a completed
    /// refresh() (the selector's criticality-floor pre-filter calls this
    /// per candidate).
    [[nodiscard]] double gate_criticality(GateId g) const {
        return result_.node[graph_->output_node(g).index()];
    }

    /// The engine revision the cached result reflects (diagnostics).
    [[nodiscard]] std::uint64_t seen_revision() const noexcept {
        return seen_revision_;
    }

    /// Local splits recomputed by the last refresh (diagnostics/tests).
    [[nodiscard]] std::size_t last_splits_recomputed() const noexcept {
        return last_splits_recomputed_;
    }

  private:
    void recompute_splits(const SstaEngine& engine, const EdgeDelays& delays,
                          const std::vector<NodeId>& nodes, std::size_t threads);
    void backward_pass();

    const netlist::TimingGraph* graph_;
    std::vector<double> split_;  ///< per edge: local split at its head node
    CriticalityResult result_;
    bool valid_{false};
    std::uint64_t seen_revision_{0};
    std::size_t last_splits_recomputed_{0};
    // scratch: epoch-stamped dirty marks + the dirty-node worklist
    std::vector<std::uint64_t> marked_;
    std::uint64_t epoch_{0};
    std::vector<NodeId> dirty_;
};

/// Gates ranked by the criticality of their output node, descending;
/// ties broken by gate id. Handy for reports.
[[nodiscard]] std::vector<std::pair<GateId, double>> rank_gates_by_criticality(
    const netlist::TimingGraph& graph, const CriticalityResult& crit);

}  // namespace statim::ssta
