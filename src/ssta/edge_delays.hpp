// Edge-delay random variables on the shared grid.
//
// Each gate edge's delay is a truncated Gaussian centred on its nominal
// delay with σ = sigma_fraction · nominal, truncated at ±trunc_k·σ
// (paper Section 4); virtual source/sink edges are exact zero points.
// The PDFs follow DelayCalc's nominals: rebuild() derives all of them,
// update_edges() rederives just the edges a resize touched.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "prob/gaussian.hpp"
#include "prob/grid.hpp"
#include "prob/pdf.hpp"
#include "sta/delay_calc.hpp"

namespace statim::ssta {

class EdgeDelays {
  public:
    /// Captures grid and model parameters from `lib` and builds every PDF.
    EdgeDelays(const sta::DelayCalc& delays, const prob::TimeGrid& grid);

    /// Rebuilds every edge PDF from the current nominal delays. `threads`
    /// shards the per-edge derivation on the global pool (each edge
    /// writes only its own PDF slot, so the result is thread-count
    /// independent).
    void rebuild(const sta::DelayCalc& delays, std::size_t threads = 1);

    /// Rederives the PDFs of `edges` only (after update_for_resize).
    void update_edges(std::span<const EdgeId> edges, const sta::DelayCalc& delays);

    /// Unchecked in Release (debug-asserted): the delay lookup of every
    /// propagation fold and front drain funnels through here.
    [[nodiscard]] const prob::Pdf& pdf(EdgeId e) const noexcept {
        assert(e.index() < pdfs_.size());
        return pdfs_[e.index()];
    }
    [[nodiscard]] const prob::TimeGrid& grid() const noexcept { return grid_; }
    [[nodiscard]] std::size_t edge_count() const noexcept { return pdfs_.size(); }

    /// Snapshot/restore for trial resizes: copies of the current PDFs of
    /// `edges`, restorable bit-for-bit.
    [[nodiscard]] std::vector<prob::Pdf> snapshot(std::span<const EdgeId> edges) const;
    void restore(std::span<const EdgeId> edges, std::vector<prob::Pdf> saved);

    /// Pooled snapshot: copies the PDFs of `edges` into out[0..n), growing
    /// `out` only past its high-water mark and reusing each slot's buffer
    /// — zero allocations once the pool is warm (the TrialResize path).
    void snapshot_into(std::span<const EdgeId> edges,
                       std::vector<prob::Pdf>& out) const;
    /// Restores from a pooled snapshot by copy (the snapshot stays intact
    /// for reuse); reuses each slot's buffer.
    void restore_copy(std::span<const EdgeId> edges,
                      std::span<const prob::Pdf> saved);

  private:
    [[nodiscard]] prob::Pdf derive(EdgeId e, const sta::DelayCalc& delays) const;

    prob::TimeGrid grid_;
    double sigma_fraction_;
    double trunc_k_;
    std::vector<prob::Pdf> pdfs_;
    /// Raw-mass scratch of the serial rederivation path (update_edges).
    std::vector<double> derive_scratch_;
};

}  // namespace statim::ssta
