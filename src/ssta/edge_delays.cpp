#include "ssta/edge_delays.hpp"

#include <cassert>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::ssta {

EdgeDelays::EdgeDelays(const sta::DelayCalc& delays, const prob::TimeGrid& grid)
    : grid_(grid),
      sigma_fraction_(delays.library().sigma_fraction()),
      trunc_k_(delays.library().trunc_k()) {
    rebuild(delays);
}

prob::Pdf EdgeDelays::derive(EdgeId e, const sta::DelayCalc& delays) const {
    const double nominal = delays.edge_delay_ns(e);
    if (nominal == 0.0) return prob::Pdf::point(0);  // virtual edge
    return prob::truncated_gaussian(grid_, nominal, sigma_fraction_ * nominal, trunc_k_);
}

void EdgeDelays::rebuild(const sta::DelayCalc& delays, std::size_t threads) {
    const std::size_t edges = delays.graph().edge_count();
    pdfs_.resize(edges);
    global_pool().parallel_chunks(
        edges, threads, [&](std::size_t begin, std::size_t end) {
            for (std::size_t ei = begin; ei < end; ++ei) {
                const EdgeId e{static_cast<std::uint32_t>(ei)};
                pdfs_[ei] = derive(e, delays);
            }
        });
}

void EdgeDelays::update_edges(std::span<const EdgeId> edges,
                              const sta::DelayCalc& delays) {
    // In-place rederivation (bit-identical to derive()): this runs twice
    // per trial resize, so it must not allocate once the slots are warm.
    for (EdgeId e : edges) {
        const double nominal = delays.edge_delay_ns(e);
        assert(e.index() < pdfs_.size());
        prob::Pdf& slot = pdfs_[e.index()];
        if (nominal == 0.0) slot.assign_point(0);  // virtual edge
        else
            prob::truncated_gaussian_into(grid_, nominal, sigma_fraction_ * nominal,
                                          trunc_k_, derive_scratch_, slot);
    }
}

std::vector<prob::Pdf> EdgeDelays::snapshot(std::span<const EdgeId> edges) const {
    std::vector<prob::Pdf> saved;
    saved.reserve(edges.size());
    for (EdgeId e : edges) {
        assert(e.index() < pdfs_.size());
        saved.push_back(pdfs_[e.index()]);
    }
    return saved;
}

void EdgeDelays::restore(std::span<const EdgeId> edges, std::vector<prob::Pdf> saved) {
    if (saved.size() != edges.size())
        throw ConfigError("EdgeDelays::restore: snapshot size mismatch");
    for (std::size_t i = 0; i < edges.size(); ++i)
        pdfs_[edges[i].index()] = std::move(saved[i]);
}

void EdgeDelays::snapshot_into(std::span<const EdgeId> edges,
                               std::vector<prob::Pdf>& out) const {
    // Grow-only: shrinking would free the surplus slots' buffers and
    // re-pay the allocation on the next, larger snapshot.
    if (out.size() < edges.size()) out.resize(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        assert(edges[i].index() < pdfs_.size());
        out[i] = pdfs_[edges[i].index()];
    }
}

void EdgeDelays::restore_copy(std::span<const EdgeId> edges,
                              std::span<const prob::Pdf> saved) {
    if (saved.size() < edges.size())
        throw ConfigError("EdgeDelays::restore_copy: snapshot size mismatch");
    for (std::size_t i = 0; i < edges.size(); ++i)
        pdfs_[edges[i].index()] = saved[i];
}

}  // namespace statim::ssta
