#include "prob/gaussian.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statim::prob {

double normal_cdf(double z) noexcept {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

Pdf truncated_gaussian(const TimeGrid& grid, double mean_ns, double sigma_ns,
                       double trunc_k) {
    if (!std::isfinite(mean_ns) || !std::isfinite(sigma_ns) || !std::isfinite(trunc_k))
        throw ConfigError("truncated_gaussian: non-finite parameter");
    if (sigma_ns <= 0.0 || trunc_k <= 0.0) return Pdf::point(grid.bin_of(mean_ns));

    const double dt = grid.dt_ns();
    const double lo = mean_ns - trunc_k * sigma_ns;
    const double hi = mean_ns + trunc_k * sigma_ns;
    const std::int64_t lo_bin = grid.bin_of(lo);
    const std::int64_t hi_bin = grid.bin_of(hi);
    if (hi_bin <= lo_bin) return Pdf::point(grid.bin_of(mean_ns));

    const double z_norm = normal_cdf(trunc_k) - normal_cdf(-trunc_k);
    auto cdf_clamped = [&](double t) {
        const double tc = std::min(std::max(t, lo), hi);
        return normal_cdf((tc - mean_ns) / sigma_ns);
    };

    std::vector<double> mass(static_cast<std::size_t>(hi_bin - lo_bin + 1));
    for (std::int64_t b = lo_bin; b <= hi_bin; ++b) {
        const double left = (static_cast<double>(b) - 0.5) * dt;
        const double right = (static_cast<double>(b) + 0.5) * dt;
        mass[static_cast<std::size_t>(b - lo_bin)] =
            (cdf_clamped(right) - cdf_clamped(left)) / z_norm;
    }
    return Pdf::from_mass(lo_bin, std::move(mass));
}

}  // namespace statim::prob
