#include "prob/gaussian.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statim::prob {

double normal_cdf(double z) noexcept {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

void truncated_gaussian_into(const TimeGrid& grid, double mean_ns, double sigma_ns,
                             double trunc_k, std::vector<double>& scratch, Pdf& out) {
    if (!std::isfinite(mean_ns) || !std::isfinite(sigma_ns) || !std::isfinite(trunc_k))
        throw ConfigError("truncated_gaussian: non-finite parameter");
    if (sigma_ns <= 0.0 || trunc_k <= 0.0) {
        out.assign_point(grid.bin_of(mean_ns));
        return;
    }

    const double dt = grid.dt_ns();
    const double lo = mean_ns - trunc_k * sigma_ns;
    const double hi = mean_ns + trunc_k * sigma_ns;
    const std::int64_t lo_bin = grid.bin_of(lo);
    const std::int64_t hi_bin = grid.bin_of(hi);
    if (hi_bin <= lo_bin) {
        out.assign_point(grid.bin_of(mean_ns));
        return;
    }

    const double z_norm = normal_cdf(trunc_k) - normal_cdf(-trunc_k);
    auto cdf_clamped = [&](double t) {
        const double tc = std::min(std::max(t, lo), hi);
        return normal_cdf((tc - mean_ns) / sigma_ns);
    };

    scratch.assign(static_cast<std::size_t>(hi_bin - lo_bin + 1), 0.0);
    for (std::int64_t b = lo_bin; b <= hi_bin; ++b) {
        const double left = (static_cast<double>(b) - 0.5) * dt;
        const double right = (static_cast<double>(b) + 0.5) * dt;
        scratch[static_cast<std::size_t>(b - lo_bin)] =
            (cdf_clamped(right) - cdf_clamped(left)) / z_norm;
    }
    out.assign_mass(lo_bin, scratch);
}

Pdf truncated_gaussian(const TimeGrid& grid, double mean_ns, double sigma_ns,
                       double trunc_k) {
    Pdf out;
    std::vector<double> scratch;
    truncated_gaussian_into(grid, mean_ns, sigma_ns, trunc_k, scratch, out);
    return out;
}

}  // namespace statim::prob
