// AVX2 kernels. This translation unit is the only one compiled with
// -mavx2 -mfma (x86-64 hosts; see the per-file flags in CMakeLists.txt),
// so the rest of the library keeps the baseline ISA and these entry
// points are reached exclusively through the dispatch table after a
// CPUID check. -ffp-contract=off keeps the compiler from fusing the
// explicit mul/add intrinsic pairs of the default kernels; the fast-math
// variants spell their FMAs out instead.
//
// Bit-exactness notes (the contract tests/test_kernels.cpp enforces):
//  * vminpd(x, 1.0) returns the second operand on ties — the same bits
//    std::min(x, 1.0) produces for x == 1.0;
//  * vmaxpd(x, +0.0) differs from std::max(x, 0.0) only at x == -0.0,
//    which cannot occur here (products and differences of non-negative
//    CDF values);
//  * max/|x| involve no rounding, so lane-parallel KS reduction equals
//    the sequential walk;
//  * the convolve kernels block four short-operand rows per sweep so the
//    output stream is loaded/stored once per block instead of once per
//    row, but every output element still receives exactly one add per
//    row in ascending row order — the same sequence of roundings as the
//    scalar reference (w == 0.0 rows contribute +0.0, the identity on
//    the non-negative accumulator, which is why the scalar kernel may
//    skip them entirely).
#include "prob/kernels/tables.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace statim::prob::kernels::detail {
namespace {

/// One row of the accumulation: out[i + 0..nl) += s[i] * l[0..nl).
void convolve_row_avx2(double w, const double* l, std::size_t nl, double* o) {
    if (w == 0.0) return;
    const __m256d wv = _mm256_set1_pd(w);
    std::size_t j = 0;
    for (; j + 4 <= nl; j += 4) {
        const __m256d lv = _mm256_loadu_pd(l + j);
        const __m256d ov = _mm256_loadu_pd(o + j);
        _mm256_storeu_pd(o + j, _mm256_add_pd(ov, _mm256_mul_pd(wv, lv)));
    }
    for (; j < nl; ++j) o[j] += w * l[j];
}

void convolve_accum_avx2(const double* s, std::size_t ns, const double* l,
                         std::size_t nl, double* out) {
    std::size_t i = 0;
    // Four rows per sweep: o[k] += w0·l[k] + w1·l[k-1] + w2·l[k-2] +
    // w3·l[k-3], accumulated in that (ascending-row) order so each
    // element sees the scalar reference's exact rounding sequence while
    // the output stream moves through the cache once per block. The
    // first/last three elements of a block's span miss some rows; the
    // `edge` walk applies exactly the valid ones, still row-ascending.
    for (; i + 4 <= ns; i += 4) {
        const double w0 = s[i], w1 = s[i + 1], w2 = s[i + 2], w3 = s[i + 3];
        if (w0 == 0.0 && w1 == 0.0 && w2 == 0.0 && w3 == 0.0) continue;
        double* o = out + i;
        const std::size_t ntot = nl + 3;
        const auto edge = [&](std::size_t k) {
            const std::size_t rlo = k >= nl ? k - (nl - 1) : 0;
            const std::size_t rhi = std::min<std::size_t>(k, 3);
            for (std::size_t r = rlo; r <= rhi; ++r) o[k] += s[i + r] * l[k - r];
        };
        for (std::size_t k = 0; k < std::min<std::size_t>(3, ntot); ++k) edge(k);
        if (nl >= 4) {
            const __m256d wv0 = _mm256_set1_pd(w0);
            const __m256d wv1 = _mm256_set1_pd(w1);
            const __m256d wv2 = _mm256_set1_pd(w2);
            const __m256d wv3 = _mm256_set1_pd(w3);
            std::size_t k = 3;
            // Two independent accumulator chains in flight to hide the
            // four-deep serial add latency per vector.
            for (; k + 8 <= nl; k += 8) {
                __m256d oa = _mm256_loadu_pd(o + k);
                __m256d ob = _mm256_loadu_pd(o + k + 4);
                oa = _mm256_add_pd(oa, _mm256_mul_pd(wv0, _mm256_loadu_pd(l + k)));
                ob = _mm256_add_pd(ob, _mm256_mul_pd(wv0, _mm256_loadu_pd(l + k + 4)));
                oa = _mm256_add_pd(oa, _mm256_mul_pd(wv1, _mm256_loadu_pd(l + k - 1)));
                ob = _mm256_add_pd(ob, _mm256_mul_pd(wv1, _mm256_loadu_pd(l + k + 3)));
                oa = _mm256_add_pd(oa, _mm256_mul_pd(wv2, _mm256_loadu_pd(l + k - 2)));
                ob = _mm256_add_pd(ob, _mm256_mul_pd(wv2, _mm256_loadu_pd(l + k + 2)));
                oa = _mm256_add_pd(oa, _mm256_mul_pd(wv3, _mm256_loadu_pd(l + k - 3)));
                ob = _mm256_add_pd(ob, _mm256_mul_pd(wv3, _mm256_loadu_pd(l + k + 1)));
                _mm256_storeu_pd(o + k, oa);
                _mm256_storeu_pd(o + k + 4, ob);
            }
            for (; k + 4 <= nl; k += 4) {
                __m256d ov = _mm256_loadu_pd(o + k);
                ov = _mm256_add_pd(ov, _mm256_mul_pd(wv0, _mm256_loadu_pd(l + k)));
                ov = _mm256_add_pd(ov, _mm256_mul_pd(wv1, _mm256_loadu_pd(l + k - 1)));
                ov = _mm256_add_pd(ov, _mm256_mul_pd(wv2, _mm256_loadu_pd(l + k - 2)));
                ov = _mm256_add_pd(ov, _mm256_mul_pd(wv3, _mm256_loadu_pd(l + k - 3)));
                _mm256_storeu_pd(o + k, ov);
            }
            for (; k < nl; ++k) {
                double v = o[k];
                v += w0 * l[k];
                v += w1 * l[k - 1];
                v += w2 * l[k - 2];
                v += w3 * l[k - 3];
                o[k] = v;
            }
        }
        for (std::size_t k = std::max<std::size_t>(3, nl); k < ntot; ++k) edge(k);
    }
    for (; i < ns; ++i) convolve_row_avx2(s[i], l, nl, out + i);
}

void convolve_accum_avx2_fma(const double* s, std::size_t ns, const double* l,
                             std::size_t nl, double* out) {
    // Same four-row blocking as the default kernel, with the mul/add
    // pairs contracted. Not bit-identical to scalar by design — this
    // variant only runs under the STATIM_FAST_MATH=1 opt-in.
    std::size_t i = 0;
    for (; i + 4 <= ns; i += 4) {
        const double w0 = s[i], w1 = s[i + 1], w2 = s[i + 2], w3 = s[i + 3];
        if (w0 == 0.0 && w1 == 0.0 && w2 == 0.0 && w3 == 0.0) continue;
        double* o = out + i;
        const std::size_t ntot = nl + 3;
        const auto edge = [&](std::size_t k) {
            const std::size_t rlo = k >= nl ? k - (nl - 1) : 0;
            const std::size_t rhi = std::min<std::size_t>(k, 3);
            for (std::size_t r = rlo; r <= rhi; ++r)
                o[k] = std::fma(s[i + r], l[k - r], o[k]);
        };
        for (std::size_t k = 0; k < std::min<std::size_t>(3, ntot); ++k) edge(k);
        if (nl >= 4) {
            const __m256d wv0 = _mm256_set1_pd(w0);
            const __m256d wv1 = _mm256_set1_pd(w1);
            const __m256d wv2 = _mm256_set1_pd(w2);
            const __m256d wv3 = _mm256_set1_pd(w3);
            std::size_t k = 3;
            for (; k + 8 <= nl; k += 8) {
                __m256d oa = _mm256_loadu_pd(o + k);
                __m256d ob = _mm256_loadu_pd(o + k + 4);
                oa = _mm256_fmadd_pd(wv0, _mm256_loadu_pd(l + k), oa);
                ob = _mm256_fmadd_pd(wv0, _mm256_loadu_pd(l + k + 4), ob);
                oa = _mm256_fmadd_pd(wv1, _mm256_loadu_pd(l + k - 1), oa);
                ob = _mm256_fmadd_pd(wv1, _mm256_loadu_pd(l + k + 3), ob);
                oa = _mm256_fmadd_pd(wv2, _mm256_loadu_pd(l + k - 2), oa);
                ob = _mm256_fmadd_pd(wv2, _mm256_loadu_pd(l + k + 2), ob);
                oa = _mm256_fmadd_pd(wv3, _mm256_loadu_pd(l + k - 3), oa);
                ob = _mm256_fmadd_pd(wv3, _mm256_loadu_pd(l + k + 1), ob);
                _mm256_storeu_pd(o + k, oa);
                _mm256_storeu_pd(o + k + 4, ob);
            }
            for (; k + 4 <= nl; k += 4) {
                __m256d ov = _mm256_loadu_pd(o + k);
                ov = _mm256_fmadd_pd(wv0, _mm256_loadu_pd(l + k), ov);
                ov = _mm256_fmadd_pd(wv1, _mm256_loadu_pd(l + k - 1), ov);
                ov = _mm256_fmadd_pd(wv2, _mm256_loadu_pd(l + k - 2), ov);
                ov = _mm256_fmadd_pd(wv3, _mm256_loadu_pd(l + k - 3), ov);
                _mm256_storeu_pd(o + k, ov);
            }
            for (; k < nl; ++k) {
                double v = o[k];
                v = std::fma(w0, l[k], v);
                v = std::fma(w1, l[k - 1], v);
                v = std::fma(w2, l[k - 2], v);
                v = std::fma(w3, l[k - 3], v);
                o[k] = v;
            }
        }
        for (std::size_t k = std::max<std::size_t>(3, nl); k < ntot; ++k) edge(k);
    }
    for (; i < ns; ++i) {
        const double w = s[i];
        if (w == 0.0) continue;
        const __m256d wv = _mm256_set1_pd(w);
        double* o = out + i;
        std::size_t j = 0;
        for (; j + 4 <= nl; j += 4) {
            const __m256d lv = _mm256_loadu_pd(l + j);
            const __m256d ov = _mm256_loadu_pd(o + j);
            _mm256_storeu_pd(o + j, _mm256_fmadd_pd(wv, lv, ov));
        }
        for (; j < nl; ++j) o[j] = std::fma(w, l[j], o[j]);
    }
}

void stat_max_combine_avx2(const double* fa, const double* fb, std::size_t n,
                           double g_prev, double* out) {
    out[0] = std::max(std::min(fa[0], 1.0) * std::min(fb[0], 1.0) - g_prev, 0.0);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d zero = _mm256_setzero_pd();
    std::size_t i = 1;
    for (; i + 4 <= n; i += 4) {
        const __m256d a = _mm256_min_pd(_mm256_loadu_pd(fa + i), one);
        const __m256d b = _mm256_min_pd(_mm256_loadu_pd(fb + i), one);
        const __m256d ap = _mm256_min_pd(_mm256_loadu_pd(fa + i - 1), one);
        const __m256d bp = _mm256_min_pd(_mm256_loadu_pd(fb + i - 1), one);
        const __m256d diff = _mm256_sub_pd(_mm256_mul_pd(a, b), _mm256_mul_pd(ap, bp));
        _mm256_storeu_pd(out + i, _mm256_max_pd(diff, zero));
    }
    for (; i < n; ++i) {
        const double g = std::min(fa[i], 1.0) * std::min(fb[i], 1.0);
        const double gp = std::min(fa[i - 1], 1.0) * std::min(fb[i - 1], 1.0);
        out[i] = std::max(g - gp, 0.0);
    }
}

void copy_avx2(const double* src, std::size_t n, double* dst) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
    for (; i < n; ++i) dst[i] = src[i];
}

double max_abs_diff_avx2(const double* fa, const double* fb, std::size_t n) {
    const __m256d abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    __m256d best4 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d d =
            _mm256_sub_pd(_mm256_loadu_pd(fa + i), _mm256_loadu_pd(fb + i));
        best4 = _mm256_max_pd(best4, _mm256_and_pd(d, abs_mask));
    }
    // Horizontal max: max over a set carries no rounding, so any
    // reduction order gives the sequential walk's exact value.
    const __m128d hi = _mm256_extractf128_pd(best4, 1);
    const __m128d lo = _mm256_castpd256_pd128(best4);
    const __m128d m2 = _mm_max_pd(hi, lo);
    double best = std::max(_mm_cvtsd_f64(m2),
                           _mm_cvtsd_f64(_mm_unpackhi_pd(m2, m2)));
    for (; i < n; ++i) best = std::max(best, std::abs(fa[i] - fb[i]));
    return best;
}

constexpr KernelTable kAvx2{
    "avx2",             Level::Avx2,           false,
    convolve_accum_avx2, stat_max_combine_avx2, copy_avx2,
    max_abs_diff_avx2,   shift_bins_scalar,
};

constexpr KernelTable kAvx2Fma{
    "avx2+fma",             Level::Avx2,           true,
    convolve_accum_avx2_fma, stat_max_combine_avx2, copy_avx2,
    max_abs_diff_avx2,       shift_bins_scalar,
};

}  // namespace

const KernelTable* avx2_table(bool fast_math) noexcept {
    return fast_math ? &kAvx2Fma : &kAvx2;
}

bool avx2_runtime_supported() noexcept {
    // The fast-math table needs FMA as well; every AVX2 CPU since
    // Haswell has it, but a CPUID lie would be a SIGILL, so check both.
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace statim::prob::kernels::detail

#else  // non-x86 build: no AVX2 kernels in this binary

namespace statim::prob::kernels::detail {

const KernelTable* avx2_table(bool) noexcept { return nullptr; }
bool avx2_runtime_supported() noexcept { return false; }

}  // namespace statim::prob::kernels::detail

#endif
