// Runtime-dispatched SIMD kernels for the dense PDF bin arithmetic.
//
// Every SSTA propagation step — full runs, incremental refreshes,
// perturbation-front drains, trial resizes — bottoms out in the bin loops
// of prob/ops.cpp. Those loops are allocation-free (PRs 2/4/5), so the
// remaining cycles are pure kernel arithmetic: the O(bins) cost the
// histogram SSTA formulation pays per edge. This layer routes them
// through a function-pointer table resolved once at startup:
//
//  * `Level` — scalar (the portable reference), AVX2 (x86-64 with CPUID
//    confirmation), NEON (aarch64). The best supported level is chosen
//    automatically; `STATIM_SIMD=scalar|avx2|neon|auto` forces any level
//    for testing and benchmarking, and api::Scenario / `statim --simd`
//    plumb the same knob through the public API.
//  * Bit-exactness contract: every non-fast-math table produces results
//    bitwise identical to the scalar reference. The vector kernels only
//    touch elementwise passes (one rounding per output element, in the
//    same per-element operation order); the loop-carried prefix-CDF
//    accumulations stay in shared scalar code (prob/ops.cpp), so there
//    is nothing to reassociate. CI gates on this via forced-dispatch
//    property tests and `bench_micro_prob --smoke`.
//  * `STATIM_FAST_MATH=1` opts into FMA-contracted convolution
//    (fmadd instead of mul+add — one rounding instead of two). Faster
//    and *more* accurate per element, but not bitwise identical to the
//    reference, so fast-math tables are excluded from every bit-identity
//    gate. Off by default.
//
// The kernels operate on raw double arrays so the ISA-specific
// translation units (compiled with per-file -mavx2/-mfma flags, see
// CMakeLists.txt) need no PDF types; prob/ops.cpp owns the PdfView
// plumbing, operand orientation and the prefix-sum passes and is the
// only caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace statim::prob::kernels {

/// Instruction-set level of one kernel table.
enum class Level : std::uint8_t { Scalar = 0, Avx2 = 1, Neon = 2 };

/// One resolved set of kernel entry points. All pointers are non-null.
struct KernelTable {
    const char* name;  ///< "scalar", "avx2", "avx2+fma", "neon", "neon+fma"
    Level level;
    bool fast_math;  ///< FMA contraction allowed (excluded from bit gates)

    /// Dense convolution accumulate: out[i + j] += s[i] * l[j] for all
    /// i < ns, j < nl, with `out` pre-zeroed and sized ns + nl - 1. The
    /// caller passes the *shorter* operand as `s` (outer loop) so the
    /// inner axpy streams the longer one. Zero-weight rows are skipped
    /// (bitwise neutral: the masses are non-negative, so out[k] is never
    /// -0.0 and adding +0.0 is the identity). Each output element
    /// receives exactly one add per outer row, in ascending row order —
    /// per-output-bin accumulation order is preserved, which is what
    /// makes the vectorized inner loop bit-exact.
    void (*convolve_accum)(const double* s, std::size_t ns, const double* l,
                           std::size_t nl, double* out);

    /// The elementwise tail of the statistical max: given the running
    /// CDFs fa/fb of both operands along the result support (computed by
    /// the shared prefix pass) and the unclamped CDF product `g_prev`
    /// just before the support,
    ///   out[i] = max(min(fa[i],1)·min(fb[i],1)
    ///                − min(fa[i-1],1)·min(fb[i-1],1), 0)
    /// with the i = 0 predecessor product replaced by `g_prev`. No
    /// loop-carried dependence — out[i] reads only lanes i-1 and i — so
    /// it vectorizes bit-exactly.
    void (*stat_max_combine)(const double* fa, const double* fb, std::size_t n,
                             double g_prev, double* out);

    /// dst[0..n) = src[0..n) (copy_into's bulk move).
    void (*copy)(const double* src, std::size_t n, double* dst);

    /// max over i of |fa[i] − fb[i]| — the Kolmogorov–Smirnov reduction
    /// over two prefix-CDF arrays. max is exact (no rounding), so the
    /// lane-parallel reduction is bitwise identical to the scalar walk.
    double (*max_abs_diff)(const double* fa, const double* fb, std::size_t n);

    /// The step-inverse percentile-shift knot walk (see
    /// prob::max_percentile_shift_bins). Loop-carried two-pointer scan;
    /// every table routes it through the same scalar implementation —
    /// dispatched for uniformity, not vectorized.
    std::int64_t (*shift_bins)(const double* am, std::size_t na,
                               std::int64_t a_first, const double* bm,
                               std::size_t nb, std::int64_t b_first);
};

/// The table every prob/ops.cpp operator runs on. Resolved once, on
/// first use: STATIM_SIMD picks the level ("auto"/unset = best level the
/// host CPU supports, confirmed via CPUID on x86-64), STATIM_FAST_MATH=1
/// selects the FMA-contracted variant. Throws util ConfigError when
/// STATIM_SIMD names an unknown or unsupported level — failing fast
/// beats silently falling back when a forced level was requested.
[[nodiscard]] const KernelTable& active();

/// Forces the active table at runtime (tests, benches, api::Scenario).
/// Throws ConfigError when `level` is not supported on this host. The
/// single-argument overload keeps the current fast-math selection
/// (STATIM_FAST_MATH on first use).
void force(Level level, bool fast_math);
void force(Level level);

/// Re-resolves the table from the environment (STATIM_SIMD /
/// STATIM_FAST_MATH) exactly as the lazy first-use resolution would,
/// discarding any earlier force(). How Scenario.simd == "auto" restores
/// environment semantics after a forced scenario ran in-process.
const KernelTable& reset_from_env();

/// True when this build + CPU can run `level` (CPUID-checked for AVX2).
[[nodiscard]] bool supported(Level level) noexcept;

/// Every level supported on this host, scalar first — the sweep axis of
/// the forced-dispatch tests and bench_micro_prob.
[[nodiscard]] std::vector<Level> available_levels();

/// Canonical level names ("scalar", "avx2", "neon") — the STATIM_SIMD /
/// --simd vocabulary. parse_level additionally accepts "auto" and
/// returns the auto-detected best level; throws ConfigError otherwise.
[[nodiscard]] const char* level_name(Level level) noexcept;
[[nodiscard]] Level parse_level(std::string_view name);

/// Direct table lookup without touching the process-global dispatch —
/// how bench_micro_prob A/Bs levels side by side. Throws ConfigError
/// when the level (or its fast-math variant) is unsupported here.
[[nodiscard]] const KernelTable& table_for(Level level, bool fast_math);

}  // namespace statim::prob::kernels
