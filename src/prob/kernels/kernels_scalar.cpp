// Scalar reference kernels — the bit-exactness baseline every SIMD table
// is gated against. Compiled with -ffp-contract=off (see CMakeLists.txt)
// so the compiler cannot contract w*l[j] + out[k] into an FMA even when a
// target's baseline ISA would allow it; contraction is the documented
// STATIM_FAST_MATH opt-in, never the default.
#include <algorithm>
#include <cmath>
#include <limits>

#include "prob/kernels/tables.hpp"

namespace statim::prob::kernels::detail {

void convolve_accum_scalar(const double* s, std::size_t ns, const double* l,
                           std::size_t nl, double* out) {
    for (std::size_t i = 0; i < ns; ++i) {
        const double w = s[i];
        if (w == 0.0) continue;
        double* o = out + i;
        for (std::size_t j = 0; j < nl; ++j) o[j] += w * l[j];
    }
}

void stat_max_combine_scalar(const double* fa, const double* fb, std::size_t n,
                             double g_prev, double* out) {
    // The clamp/product/difference sequence mirrors the historical fused
    // CDF walk operation for operation: same min, same mul, same sub,
    // same max against 0 — recomputing lane i-1's product instead of
    // carrying it changes no bits, only removes the loop dependence.
    out[0] = std::max(std::min(fa[0], 1.0) * std::min(fb[0], 1.0) - g_prev, 0.0);
    for (std::size_t i = 1; i < n; ++i) {
        const double g = std::min(fa[i], 1.0) * std::min(fb[i], 1.0);
        const double gp = std::min(fa[i - 1], 1.0) * std::min(fb[i - 1], 1.0);
        out[i] = std::max(g - gp, 0.0);
    }
}

void copy_scalar(const double* src, std::size_t n, double* dst) {
    std::copy(src, src + n, dst);
}

double max_abs_diff_scalar(const double* fa, const double* fb, std::size_t n) {
    double best = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        best = std::max(best, std::abs(fa[i] - fb[i]));
    return best;
}

std::int64_t shift_bins_scalar(const double* am, std::size_t na,
                               std::int64_t a_first, const double* bm,
                               std::size_t nb, std::int64_t b_first) {
    // For p in (C_b(t-1), C_b(t)], T_step(b,p) = t and T_step(a,p) peaks
    // at p = C_b(t), so the maximum over p is attained on b's knots.
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    std::size_t ai = 0;
    double ca = am[0];
    double cb = 0.0;
    for (std::size_t bi = 0; bi < nb; ++bi) {
        cb += bm[bi];
        while (ca < cb && ai + 1 < na) ca += am[++ai];
        const std::int64_t ta = a_first + static_cast<std::int64_t>(ai);
        const std::int64_t tb = b_first + static_cast<std::int64_t>(bi);
        best = std::max(best, ta - tb);
    }
    return best;
}

const KernelTable& scalar_table() noexcept {
    static constexpr KernelTable table{
        "scalar",          Level::Scalar,        false,
        convolve_accum_scalar, stat_max_combine_scalar, copy_scalar,
        max_abs_diff_scalar,   shift_bins_scalar,
    };
    return table;
}

}  // namespace statim::prob::kernels::detail
