// NEON kernels (aarch64, where Advanced SIMD is baseline — no per-file
// ISA flags and no runtime CPUID gate needed, only an architecture
// check). Two f64 lanes instead of AVX2's four; the bit-exactness
// reasoning is identical to kernels_avx2.cpp: vminq/vmaxq of clean
// (non-NaN, non-negative) operands return the same bits as std::min /
// std::max in the orders used here, and |x| / max reductions carry no
// rounding. -ffp-contract=off keeps the default kernels free of
// compiler-fused multiply-adds; the fast-math variant spells vfmaq out.
#include "prob/kernels/tables.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

namespace statim::prob::kernels::detail {
namespace {

void convolve_accum_neon(const double* s, std::size_t ns, const double* l,
                         std::size_t nl, double* out) {
    for (std::size_t i = 0; i < ns; ++i) {
        const double w = s[i];
        if (w == 0.0) continue;
        const float64x2_t wv = vdupq_n_f64(w);
        double* o = out + i;
        std::size_t j = 0;
        for (; j + 2 <= nl; j += 2) {
            const float64x2_t lv = vld1q_f64(l + j);
            const float64x2_t ov = vld1q_f64(o + j);
            vst1q_f64(o + j, vaddq_f64(ov, vmulq_f64(wv, lv)));
        }
        for (; j < nl; ++j) o[j] += w * l[j];
    }
}

void convolve_accum_neon_fma(const double* s, std::size_t ns, const double* l,
                             std::size_t nl, double* out) {
    for (std::size_t i = 0; i < ns; ++i) {
        const double w = s[i];
        if (w == 0.0) continue;
        const float64x2_t wv = vdupq_n_f64(w);
        double* o = out + i;
        std::size_t j = 0;
        for (; j + 2 <= nl; j += 2) {
            const float64x2_t lv = vld1q_f64(l + j);
            const float64x2_t ov = vld1q_f64(o + j);
            vst1q_f64(o + j, vfmaq_f64(ov, wv, lv));
        }
        for (; j < nl; ++j) o[j] = std::fma(w, l[j], o[j]);
    }
}

void stat_max_combine_neon(const double* fa, const double* fb, std::size_t n,
                           double g_prev, double* out) {
    out[0] = std::max(std::min(fa[0], 1.0) * std::min(fb[0], 1.0) - g_prev, 0.0);
    const float64x2_t one = vdupq_n_f64(1.0);
    const float64x2_t zero = vdupq_n_f64(0.0);
    std::size_t i = 1;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t a = vminq_f64(vld1q_f64(fa + i), one);
        const float64x2_t b = vminq_f64(vld1q_f64(fb + i), one);
        const float64x2_t ap = vminq_f64(vld1q_f64(fa + i - 1), one);
        const float64x2_t bp = vminq_f64(vld1q_f64(fb + i - 1), one);
        const float64x2_t diff = vsubq_f64(vmulq_f64(a, b), vmulq_f64(ap, bp));
        vst1q_f64(out + i, vmaxq_f64(diff, zero));
    }
    for (; i < n; ++i) {
        const double g = std::min(fa[i], 1.0) * std::min(fb[i], 1.0);
        const double gp = std::min(fa[i - 1], 1.0) * std::min(fb[i - 1], 1.0);
        out[i] = std::max(g - gp, 0.0);
    }
}

void copy_neon(const double* src, std::size_t n, double* dst) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) vst1q_f64(dst + i, vld1q_f64(src + i));
    for (; i < n; ++i) dst[i] = src[i];
}

double max_abs_diff_neon(const double* fa, const double* fb, std::size_t n) {
    float64x2_t best2 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t d = vsubq_f64(vld1q_f64(fa + i), vld1q_f64(fb + i));
        best2 = vmaxq_f64(best2, vabsq_f64(d));
    }
    double best = std::max(vgetq_lane_f64(best2, 0), vgetq_lane_f64(best2, 1));
    for (; i < n; ++i) best = std::max(best, std::abs(fa[i] - fb[i]));
    return best;
}

constexpr KernelTable kNeon{
    "neon",             Level::Neon,           false,
    convolve_accum_neon, stat_max_combine_neon, copy_neon,
    max_abs_diff_neon,   shift_bins_scalar,
};

constexpr KernelTable kNeonFma{
    "neon+fma",             Level::Neon,           true,
    convolve_accum_neon_fma, stat_max_combine_neon, copy_neon,
    max_abs_diff_neon,       shift_bins_scalar,
};

}  // namespace

const KernelTable* neon_table(bool fast_math) noexcept {
    return fast_math ? &kNeonFma : &kNeon;
}

bool neon_runtime_supported() noexcept { return true; }

}  // namespace statim::prob::kernels::detail

#else  // non-aarch64 build: no NEON kernels in this binary

namespace statim::prob::kernels::detail {

const KernelTable* neon_table(bool) noexcept { return nullptr; }
bool neon_runtime_supported() noexcept { return false; }

}  // namespace statim::prob::kernels::detail

#endif
