// Internal seam between the dispatch resolver (kernels.cpp) and the
// per-ISA translation units. Not installed with the public headers'
// semantics in mind — nothing outside src/prob/kernels includes it.
#pragma once

#include "prob/kernels/kernels.hpp"

namespace statim::prob::kernels::detail {

// Scalar reference kernels. These are *the* bit-exactness baseline:
// every other table must reproduce them bitwise (fast-math variants
// excepted, and those only differ in convolve_accum).
void convolve_accum_scalar(const double* s, std::size_t ns, const double* l,
                           std::size_t nl, double* out);
void stat_max_combine_scalar(const double* fa, const double* fb, std::size_t n,
                             double g_prev, double* out);
void copy_scalar(const double* src, std::size_t n, double* dst);
double max_abs_diff_scalar(const double* fa, const double* fb, std::size_t n);
std::int64_t shift_bins_scalar(const double* am, std::size_t na,
                               std::int64_t a_first, const double* bm,
                               std::size_t nb, std::int64_t b_first);

[[nodiscard]] const KernelTable& scalar_table() noexcept;

// ISA tables. Each getter returns nullptr when the kernels were not
// compiled into this binary (wrong architecture); the *runtime* CPU
// check lives beside the kernels so the CPUID intrinsics stay in the
// one TU built with the matching -m flags.
[[nodiscard]] const KernelTable* avx2_table(bool fast_math) noexcept;
[[nodiscard]] bool avx2_runtime_supported() noexcept;
[[nodiscard]] const KernelTable* neon_table(bool fast_math) noexcept;
[[nodiscard]] bool neon_runtime_supported() noexcept;

}  // namespace statim::prob::kernels::detail
