// Dispatch resolution: CPUID/architecture detection, the STATIM_SIMD /
// STATIM_FAST_MATH knobs, and the process-global active table.
#include "prob/kernels/kernels.hpp"

#include <atomic>

#include "prob/kernels/tables.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace statim::prob::kernels {

namespace {

/// The active table. Lazily resolved from the environment on first
/// active() call; force() overwrites it. A racing first resolution is
/// benign — both threads compute the same table from the same
/// environment — and subsequent loads are a single acquire.
std::atomic<const KernelTable*> g_active{nullptr};
static_assert(std::atomic<const KernelTable*>::is_always_lock_free,
              "kernel dispatch is read per operation and must stay lock-free");

bool fast_math_env() { return env_int("STATIM_FAST_MATH", 0) != 0; }

Level best_supported_level() noexcept {
    if (detail::avx2_table(false) != nullptr && detail::avx2_runtime_supported())
        return Level::Avx2;
    if (detail::neon_table(false) != nullptr && detail::neon_runtime_supported())
        return Level::Neon;
    return Level::Scalar;
}

const KernelTable* resolve_from_env() {
    const bool fast = fast_math_env();
    const auto spec = env_string("STATIM_SIMD");
    if (!spec || spec->empty() || *spec == "auto")
        return &table_for(best_supported_level(), fast);
    return &table_for(parse_level(*spec), fast);
}

}  // namespace

const KernelTable& active() {
    const KernelTable* t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        t = resolve_from_env();
        g_active.store(t, std::memory_order_release);
    }
    return *t;
}

const KernelTable& reset_from_env() {
    const KernelTable* t = resolve_from_env();
    g_active.store(t, std::memory_order_release);
    return *t;
}

void force(Level level, bool fast_math) {
    g_active.store(&table_for(level, fast_math), std::memory_order_release);
}

void force(Level level) { force(level, active().fast_math); }

bool supported(Level level) noexcept {
    switch (level) {
        case Level::Scalar: return true;
        case Level::Avx2:
            return detail::avx2_table(false) != nullptr &&
                   detail::avx2_runtime_supported();
        case Level::Neon:
            return detail::neon_table(false) != nullptr &&
                   detail::neon_runtime_supported();
    }
    return false;
}

std::vector<Level> available_levels() {
    std::vector<Level> levels{Level::Scalar};
    if (supported(Level::Avx2)) levels.push_back(Level::Avx2);
    if (supported(Level::Neon)) levels.push_back(Level::Neon);
    return levels;
}

const char* level_name(Level level) noexcept {
    switch (level) {
        case Level::Scalar: return "scalar";
        case Level::Avx2: return "avx2";
        case Level::Neon: return "neon";
    }
    return "?";
}

Level parse_level(std::string_view name) {
    if (name == "auto") return best_supported_level();
    if (name == "scalar") return Level::Scalar;
    if (name == "avx2") return Level::Avx2;
    if (name == "neon") return Level::Neon;
    throw ConfigError("unknown SIMD level '" + std::string(name) +
                      "' (expected auto, scalar, avx2 or neon)");
}

const KernelTable& table_for(Level level, bool fast_math) {
    if (!supported(level))
        throw ConfigError(std::string("SIMD level '") + level_name(level) +
                          "' is not supported on this host");
    switch (level) {
        case Level::Scalar:
            // Scalar has no contractible operations; fast-math is a no-op.
            return detail::scalar_table();
        case Level::Avx2: return *detail::avx2_table(fast_math);
        case Level::Neon: return *detail::neon_table(fast_math);
    }
    throw ConfigError("unreachable SIMD level");
}

}  // namespace statim::prob::kernels
