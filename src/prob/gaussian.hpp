// Truncated-Gaussian construction on the grid.
//
// The paper models gate delay as a Gaussian with σ = 10% of the nominal
// delay, truncated at ±3σ (Section 4). `truncated_gaussian` integrates the
// renormalized density over each grid bin, so the discrete PDF's mass
// matches the continuous distribution bin-exactly.
#pragma once

#include "prob/grid.hpp"
#include "prob/pdf.hpp"

namespace statim::prob {

/// Standard normal CDF Φ(z).
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Discrete PDF of a Gaussian(mean_ns, sigma_ns) truncated at mean ± k·σ,
/// renormalized, with each bin's mass integrated over the bin interval
/// [(b−½)·dt, (b+½)·dt). A non-positive sigma (or k) degenerates to a
/// point mass at the nearest bin. Throws ConfigError on non-finite input.
[[nodiscard]] Pdf truncated_gaussian(const TimeGrid& grid, double mean_ns,
                                     double sigma_ns, double trunc_k = 3.0);

/// In-place variant: derives into `out` through `scratch`, reusing both
/// buffers (zero allocations once they are warm — the pooled edge-delay
/// rederivation path). Bit-identical to truncated_gaussian.
void truncated_gaussian_into(const TimeGrid& grid, double mean_ns, double sigma_ns,
                             double trunc_k, std::vector<double>& scratch, Pdf& out);

}  // namespace statim::prob
