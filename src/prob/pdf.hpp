// Discrete probability mass functions on the shared time grid.
//
// A `Pdf` stores a first-bin offset and a dense vector of non-negative
// masses summing to 1. Point masses sit exactly on bin coordinates, so a
// deterministic delay is representable without smearing. All positive
// support produced by the library's constructors and operators is
// contiguous (no interior zero-mass bins), which keeps the inverse CDF
// continuous — a precondition the perturbation-bound metric relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace statim::prob {

/// Discrete PDF over integer grid bins; immutable after construction
/// except for whole-grid shifts.
class Pdf {
  public:
    /// An empty (invalid) PDF; most uses start from a factory instead.
    Pdf() = default;

    /// Point mass (deterministic value) at `bin`.
    [[nodiscard]] static Pdf point(std::int64_t bin);

    /// Builds from raw masses; trims zero-mass edges and normalizes the
    /// total to exactly 1. Throws ConfigError if the total is not positive
    /// or any mass is negative/non-finite.
    [[nodiscard]] static Pdf from_mass(std::int64_t first, std::vector<double> mass);

    [[nodiscard]] bool valid() const noexcept { return !mass_.empty(); }
    [[nodiscard]] std::int64_t first_bin() const noexcept { return first_; }
    [[nodiscard]] std::int64_t last_bin() const noexcept {
        return first_ + static_cast<std::int64_t>(mass_.size()) - 1;
    }
    [[nodiscard]] std::size_t size() const noexcept { return mass_.size(); }
    [[nodiscard]] std::span<const double> mass() const noexcept { return mass_; }
    /// Mass of the bin at absolute coordinate `bin` (0 outside support).
    [[nodiscard]] double mass_at(std::int64_t bin) const noexcept;
    [[nodiscard]] bool is_point() const noexcept { return mass_.size() == 1; }

    /// Mean in bin units.
    [[nodiscard]] double mean_bins() const noexcept;
    /// Variance in squared bin units.
    [[nodiscard]] double variance_bins() const noexcept;

    /// Inverse CDF at probability p in (0, 1], in fractional bin units.
    /// Piecewise-linear between bin knots; p at or below the first bin's
    /// cumulative mass returns the first bin (a point mass maps every p to
    /// its bin). Throws ConfigError for p outside (0, 1].
    [[nodiscard]] double percentile_bin(double p) const;

    /// CDF evaluated at bin b: P(X <= b).
    [[nodiscard]] double cdf_at(std::int64_t bin) const noexcept;

    /// Cumulative masses aligned with mass() (prefix sums; back() == 1).
    [[nodiscard]] std::vector<double> prefix_cdf() const;

    /// Translates the whole PDF by `bins` (exact; shape unchanged).
    void shift(std::int64_t bins) noexcept { first_ += bins; }

    /// Bitwise equality (same offset, same masses) — the exactness tests
    /// for pruned-vs-brute-force rely on this being strict.
    friend bool operator==(const Pdf& a, const Pdf& b) noexcept {
        return a.first_ == b.first_ && a.mass_ == b.mass_;
    }

  private:
    std::int64_t first_{0};
    std::vector<double> mass_;
};

}  // namespace statim::prob
