// Discrete probability mass functions on the shared time grid.
//
// A `Pdf` stores a first-bin offset and a dense vector of non-negative
// masses summing to 1. Point masses sit exactly on bin coordinates, so a
// deterministic delay is representable without smearing. All positive
// support produced by the library's constructors and operators is
// contiguous (no interior zero-mass bins), which keeps the inverse CDF
// continuous — a precondition the perturbation-bound metric relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace statim::prob {

class Pdf;

/// Non-owning view of a discrete PDF: a first-bin offset plus a span of
/// finalized (trimmed, normalized) masses. This is the storage
/// abstraction shared by vector-backed `Pdf` and the arena-backed
/// propagation path: both present the same (first, mass[]) contract, so
/// the SSTA operators can read either without copying. Shifting a view
/// is free (adjust `first`); the underlying masses are never mutated.
class PdfView {
  public:
    PdfView() = default;
    PdfView(std::int64_t first, const double* data, std::size_t size) noexcept
        : first_(first), data_(data), size_(size) {}
    /*implicit*/ PdfView(const Pdf& pdf) noexcept;

    [[nodiscard]] bool valid() const noexcept { return size_ != 0; }
    [[nodiscard]] std::int64_t first_bin() const noexcept { return first_; }
    [[nodiscard]] std::int64_t last_bin() const noexcept {
        return first_ + static_cast<std::int64_t>(size_) - 1;
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::span<const double> mass() const noexcept {
        return {data_, size_};
    }
    [[nodiscard]] bool is_point() const noexcept { return size_ == 1; }

    /// Mass of the bin at absolute coordinate `bin` (0 outside support).
    [[nodiscard]] double mass_at(std::int64_t bin) const noexcept {
        if (bin < first_ || bin > last_bin()) return 0.0;
        return data_[static_cast<std::size_t>(bin - first_)];
    }
    /// CDF evaluated at bin b: P(X <= b). O(b - first).
    [[nodiscard]] double cdf_at(std::int64_t bin) const noexcept;

    // Analytics shared with Pdf (which delegates here, so both backends
    // run the identical instruction sequence — bit-identical results).

    /// Mean in bin units.
    [[nodiscard]] double mean_bins() const noexcept;
    /// Variance in squared bin units.
    [[nodiscard]] double variance_bins() const noexcept;
    /// Inverse CDF at probability p in (0, 1], fractional bin units.
    /// Piecewise-linear between bin knots; throws ConfigError for p
    /// outside (0, 1] or an empty view.
    [[nodiscard]] double percentile_bin(double p) const;

    /// Translates the view by `bins` (free; storage untouched).
    void shift(std::int64_t bins) noexcept { first_ += bins; }

    /// Deep copy into an owned Pdf. The masses are copied verbatim (they
    /// are already finalized), so the result is bitwise equal to the
    /// vector-backed Pdf produced by the same operator chain.
    [[nodiscard]] Pdf to_pdf() const;

  private:
    std::int64_t first_{0};
    const double* data_{nullptr};
    std::size_t size_{0};
};

/// Value equality of the distributions two views describe (same offset,
/// element-wise equal masses) — the view-backend counterpart of
/// Pdf::operator==, with the same `double`-comparison semantics the
/// exactness and absorption tests rely on. Either operand may be a Pdf
/// (implicit conversion).
[[nodiscard]] inline bool operator==(const PdfView& a, const PdfView& b) noexcept {
    if (a.first_bin() != b.first_bin() || a.size() != b.size()) return false;
    const auto am = a.mass();
    const auto bm = b.mass();
    for (std::size_t k = 0; k < am.size(); ++k)
        if (am[k] != bm[k]) return false;
    return true;
}
[[nodiscard]] inline bool operator!=(const PdfView& a, const PdfView& b) noexcept {
    return !(a == b);
}

namespace detail {

/// The trim-and-normalize step of Pdf::from_mass, in place on a raw
/// buffer: validates the masses, folds (cumulatively) negligible tails
/// into the adjacent kept bin and divides by the total. Returns the kept
/// [lo, hi) subrange. Both the vector-backed and the arena-backed
/// construction paths run exactly this code, which is what keeps them
/// bit-identical. Throws ConfigError on invalid mass.
std::pair<std::size_t, std::size_t> finalize_mass(std::span<double> mass);

}  // namespace detail

/// Discrete PDF over integer grid bins; immutable after construction
/// except for whole-grid shifts.
class Pdf {
  public:
    /// An empty (invalid) PDF; most uses start from a factory instead.
    Pdf() = default;

    /// Point mass (deterministic value) at `bin`.
    [[nodiscard]] static Pdf point(std::int64_t bin);

    /// Builds from raw masses; trims zero-mass edges and normalizes the
    /// total to exactly 1. Throws ConfigError if the total is not positive
    /// or any mass is negative/non-finite.
    [[nodiscard]] static Pdf from_mass(std::int64_t first, std::vector<double> mass);

    /// Adopts already-finalized masses verbatim (no trim, no renormalize).
    /// Precondition: `view` came from this library's constructors or
    /// operators, so its masses are trimmed and sum to 1.
    [[nodiscard]] static Pdf from_view(const PdfView& view);

    /// In-place rebuild from raw masses: identical semantics (and
    /// bit-identical results) to from_mass, but reuses this PDF's buffer
    /// when its capacity suffices — the pooled trial-resize hot path.
    void assign_mass(std::int64_t first, std::span<const double> mass);
    /// In-place point mass (see point()); never allocates once the buffer
    /// holds at least one bin.
    void assign_point(std::int64_t bin);

    [[nodiscard]] bool valid() const noexcept { return !mass_.empty(); }
    [[nodiscard]] std::int64_t first_bin() const noexcept { return first_; }
    [[nodiscard]] std::int64_t last_bin() const noexcept {
        return first_ + static_cast<std::int64_t>(mass_.size()) - 1;
    }
    [[nodiscard]] std::size_t size() const noexcept { return mass_.size(); }
    [[nodiscard]] std::span<const double> mass() const noexcept { return mass_; }
    /// Mass of the bin at absolute coordinate `bin` (0 outside support).
    [[nodiscard]] double mass_at(std::int64_t bin) const noexcept;
    [[nodiscard]] bool is_point() const noexcept { return mass_.size() == 1; }

    /// Mean in bin units.
    [[nodiscard]] double mean_bins() const noexcept;
    /// Variance in squared bin units.
    [[nodiscard]] double variance_bins() const noexcept;

    /// Inverse CDF at probability p in (0, 1], in fractional bin units.
    /// Piecewise-linear between bin knots; p at or below the first bin's
    /// cumulative mass returns the first bin (a point mass maps every p to
    /// its bin). Throws ConfigError for p outside (0, 1].
    [[nodiscard]] double percentile_bin(double p) const;

    /// CDF evaluated at bin b: P(X <= b).
    [[nodiscard]] double cdf_at(std::int64_t bin) const noexcept;

    /// Cumulative masses aligned with mass() (prefix sums; back() == 1).
    [[nodiscard]] std::vector<double> prefix_cdf() const;

    /// Translates the whole PDF by `bins` (exact; shape unchanged).
    void shift(std::int64_t bins) noexcept { first_ += bins; }

    /// Bitwise equality (same offset, same masses) — the exactness tests
    /// for pruned-vs-brute-force rely on this being strict.
    friend bool operator==(const Pdf& a, const Pdf& b) noexcept {
        return a.first_ == b.first_ && a.mass_ == b.mass_;
    }

  private:
    std::int64_t first_{0};
    std::vector<double> mass_;
};

}  // namespace statim::prob
