#include "prob/pdf.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace statim::prob {

PdfView::PdfView(const Pdf& pdf) noexcept
    : first_(pdf.first_bin()), data_(pdf.mass().data()), size_(pdf.size()) {}

double PdfView::cdf_at(std::int64_t bin) const noexcept {
    if (!valid() || bin < first_) return 0.0;
    if (bin >= last_bin()) return 1.0;
    double cum = 0.0;
    const auto upto = static_cast<std::size_t>(bin - first_);
    for (std::size_t k = 0; k <= upto; ++k) cum += data_[k];
    return cum;
}

Pdf PdfView::to_pdf() const { return Pdf::from_view(*this); }

double PdfView::mean_bins() const noexcept {
    double acc = 0.0;
    for (std::size_t k = 0; k < size_; ++k)
        acc += data_[k] * static_cast<double>(first_ + static_cast<std::int64_t>(k));
    return acc;
}

double PdfView::variance_bins() const noexcept {
    const double mu = mean_bins();
    double acc = 0.0;
    for (std::size_t k = 0; k < size_; ++k) {
        const double d = static_cast<double>(first_ + static_cast<std::int64_t>(k)) - mu;
        acc += data_[k] * d * d;
    }
    return acc;
}

double PdfView::percentile_bin(double p) const {
    if (!valid()) throw ConfigError("Pdf::percentile_bin: empty PDF");
    if (!(p > 0.0) || !(p <= 1.0))
        throw ConfigError("Pdf::percentile_bin: p must be in (0, 1]");

    double cum = 0.0;
    double prev_cum = 0.0;
    for (std::size_t k = 0; k < size_; ++k) {
        prev_cum = cum;
        cum += data_[k];
        if (p <= cum || k + 1 == size_) {
            const auto bin = static_cast<double>(first_ + static_cast<std::int64_t>(k));
            if (k == 0) return bin;  // no interpolation below the support
            const double step = cum - prev_cum;
            if (step <= 0.0) return bin;
            const double frac = (p - prev_cum) / step;
            return bin - 1.0 + frac;
        }
    }
    return static_cast<double>(last_bin());  // unreachable; mass sums to 1
}

Pdf Pdf::from_view(const PdfView& view) {
    if (!view.valid()) throw ConfigError("Pdf::from_view: empty view");
    Pdf p;
    p.first_ = view.first_bin();
    p.mass_.assign(view.mass().begin(), view.mass().end());
    return p;
}

namespace detail {

std::pair<std::size_t, std::size_t> finalize_mass(std::span<double> mass) {
    for (double m : mass) {
        if (!(m >= 0.0) || !std::isfinite(m))
            throw ConfigError("Pdf::from_mass: masses must be finite and non-negative");
    }
    const double total = std::accumulate(mass.begin(), mass.end(), 0.0);
    if (!(total > 0.0) || !std::isfinite(total))
        throw ConfigError("Pdf::from_mass: total mass must be positive and finite");

    // Trim edges carrying (cumulatively) negligible mass, folding the
    // trimmed mass into the adjacent kept bin. Long runs of ~1e-30 bins
    // appear at the tails of repeated convolutions; keeping them would let
    // floating-point knot ties wander across many bins in the step-CDF
    // metric. The fold preserves the exact total and moves < kTailEps of
    // probability by a few bins at the extreme tails.
    constexpr double kTailEps = 1e-13;
    std::size_t lo = 0;
    double lo_fold = 0.0;
    while (lo + 1 < mass.size() && lo_fold + mass[lo] <= kTailEps * total)
        lo_fold += mass[lo++];
    std::size_t hi = mass.size();
    double hi_fold = 0.0;
    while (hi > lo + 1 && hi_fold + mass[hi - 1] <= kTailEps * total)
        hi_fold += mass[--hi];
    mass[lo] += lo_fold;
    mass[hi - 1] += hi_fold;
    for (std::size_t k = lo; k < hi; ++k) mass[k] /= total;
    return {lo, hi};
}

}  // namespace detail

Pdf Pdf::point(std::int64_t bin) {
    Pdf p;
    p.first_ = bin;
    p.mass_ = {1.0};
    return p;
}

Pdf Pdf::from_mass(std::int64_t first, std::vector<double> mass) {
    const auto [lo, hi] = detail::finalize_mass(mass);
    Pdf p;
    p.first_ = first + static_cast<std::int64_t>(lo);
    p.mass_.assign(mass.begin() + static_cast<std::ptrdiff_t>(lo),
                   mass.begin() + static_cast<std::ptrdiff_t>(hi));
    return p;
}

void Pdf::assign_mass(std::int64_t first, std::span<const double> mass) {
    mass_.assign(mass.begin(), mass.end());
    const auto [lo, hi] = detail::finalize_mass(mass_);
    // erase() never reallocates, so the buffer's capacity survives.
    mass_.erase(mass_.begin() + static_cast<std::ptrdiff_t>(hi), mass_.end());
    mass_.erase(mass_.begin(), mass_.begin() + static_cast<std::ptrdiff_t>(lo));
    first_ = first + static_cast<std::int64_t>(lo);
}

void Pdf::assign_point(std::int64_t bin) {
    mass_.assign(1, 1.0);
    first_ = bin;
}

double Pdf::mass_at(std::int64_t bin) const noexcept {
    if (bin < first_ || bin > last_bin()) return 0.0;
    return mass_[static_cast<std::size_t>(bin - first_)];
}

// The analytics run on PdfView so the vector- and arena-backed storage
// paths share one instruction sequence (bit-identical values).
double Pdf::mean_bins() const noexcept { return PdfView{*this}.mean_bins(); }
double Pdf::variance_bins() const noexcept { return PdfView{*this}.variance_bins(); }
double Pdf::percentile_bin(double p) const { return PdfView{*this}.percentile_bin(p); }

double Pdf::cdf_at(std::int64_t bin) const noexcept {
    // One implementation of the boundary conventions for both backends.
    return PdfView{*this}.cdf_at(bin);
}

std::vector<double> Pdf::prefix_cdf() const {
    std::vector<double> cdf(mass_.size());
    double cum = 0.0;
    for (std::size_t k = 0; k < mass_.size(); ++k) {
        cum += mass_[k];
        cdf[k] = cum;
    }
    if (!cdf.empty()) cdf.back() = 1.0;  // pin the top against rounding drift
    return cdf;
}

}  // namespace statim::prob
