// Arena-resident store of per-node arrival PDFs.
//
// `SstaEngine` used to keep one heap `prob::Pdf` per node: every final
// arrival of a propagation wave was copied out of the thread arena into a
// fresh `std::vector<double>`, so a full run paid one malloc per node and
// an incremental refresh one malloc per recomputed node — the last
// allocator traffic in the SSTA hot path. ArrivalStore replaces the
// vector-of-Pdf with two `PdfArena` buffers and a dense slot table:
//
//  * set() bump-allocates the masses in the *active* buffer and records a
//    (first_bin, data, size) slot — steady-state refreshes perform no
//    heap allocation at all once the slabs have grown to the circuit;
//  * slots are generation-tagged: begin_run() bumps the generation and
//    resets both buffers, so a full run starts from a compact, fully
//    re-packed store without clearing the slot table;
//  * overwrites (incremental update()s) strand the previous copy in the
//    buffer as garbage; when the active buffer's occupancy exceeds twice
//    the live mass, maybe_compact() re-packs every live slot into the
//    idle buffer and swaps — classic double-buffered semispace GC,
//    amortized O(live) and allocation-free at steady state.
//
// View lifetime: a PdfView returned by view() stays valid across set()
// calls (slabs never move) but is invalidated by maybe_compact() and
// begin_run(). The engine only compacts at the top of a refresh, so the
// consumer-facing rule is simply "arrival views die at the next
// run()/update()" — the same contract the heap-backed engine already
// imposed by overwriting its Pdf slots.
//
// Concurrency contract: the store is single-writer — multi-shard waves
// park per-shard results in wave arenas and the engine commits them
// serially, so no mutex (and no capability annotation, see
// util/thread_annotations.hpp) applies here; the TSan CI leg checks the
// discipline end to end.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "prob/arena.hpp"
#include "prob/pdf.hpp"

namespace statim::prob {

class ArrivalStore {
  public:
    /// Starts a new full propagation over `count` slots: both buffers are
    /// reset, the generation advances (invalidating every slot and view),
    /// and subsequent set()s re-pack the store densely.
    void begin_run(std::size_t count);

    /// Copies `v` into the active buffer as slot `idx`'s value. An
    /// existing value for `idx` becomes garbage (collected by the next
    /// worthwhile maybe_compact()).
    void set(std::size_t idx, PdfView v);

    /// True once slot `idx` holds a value of the current generation.
    [[nodiscard]] bool has(std::size_t idx) const noexcept {
        return idx < slots_.size() && slots_[idx].gen == gen_;
    }

    /// The stored view (debug-asserted `has(idx)`; unchecked in Release —
    /// this is the innermost read of every propagation and front drain).
    [[nodiscard]] PdfView view(std::size_t idx) const noexcept {
        assert(has(idx));
        const Slot& s = slots_[idx];
        return {s.first, s.data, s.size};
    }

    [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

    /// Re-packs live slots into the idle buffer and swaps, when the
    /// active buffer carries more garbage than live data (hysteresis
    /// floor: small stores never bother). Invalidates outstanding views;
    /// call only at a refresh boundary.
    void maybe_compact();

    struct MemoryStats {
        std::size_t capacity_doubles{0};   ///< both buffers' slab capacity
        std::size_t used_doubles{0};       ///< bump positions (live + garbage)
        std::size_t live_doubles{0};       ///< doubles referenced by slots
        std::size_t high_water_doubles{0};  ///< max used across both buffers
        std::size_t compactions{0};
    };
    [[nodiscard]] MemoryStats memory_stats() const noexcept;

  private:
    struct Slot {
        const double* data{nullptr};
        std::int64_t first{0};
        std::uint32_t size{0};
        std::uint32_t gen{0};
    };

    [[nodiscard]] PdfArena& active() noexcept { return buffers_[active_]; }

    std::vector<Slot> slots_;
    PdfArena buffers_[2];
    std::uint32_t gen_{0};
    std::size_t active_{0};
    std::size_t live_doubles_{0};
    std::size_t compactions_{0};
};

}  // namespace statim::prob
