// The three operators of block-based SSTA, plus the perturbation metric.
//
//  * convolve     — arrival + edge-delay (independent sum of RVs)
//  * stat_max     — arrival join at a multi-fanin node, assuming
//                   independence (CDF product). Under reconvergent fanout
//                   this yields the upper-bound CDF of Agarwal et al.
//                   (DAC'03), which is exactly the quantity the paper
//                   optimizes.
//  * max_percentile_shift — Δ = max_p [T(A,p) − T(A',p)], the maximum
//                   horizontal distance between two CDFs. This is the
//                   perturbation bound of Theorems 1–4 and the engine of
//                   the pruning algorithm.
#pragma once

#include <span>

#include "prob/arena.hpp"
#include "prob/pdf.hpp"

namespace statim::prob {

/// Distribution of X + Y for independent X ~ a, Y ~ b. O(|a|·|b|).
[[nodiscard]] Pdf convolve(const Pdf& a, const Pdf& b);

/// Distribution of max(X, Y) for independent X ~ a, Y ~ b, computed as the
/// product of CDFs. O(|a| + |b| + |result|).
[[nodiscard]] Pdf stat_max(const Pdf& a, const Pdf& b);

// Arena-backed variants of the two propagation operators. They run the
// same kernels and the same finalize step as the Pdf overloads — the
// resulting masses are bitwise identical — but write into `arena` slabs
// instead of fresh heap vectors. The returned view lives until the
// caller rewinds the arena past it.
[[nodiscard]] PdfView convolve_into(PdfArena& arena, PdfView a, PdfView b);
[[nodiscard]] PdfView stat_max_into(PdfArena& arena, PdfView a, PdfView b);

/// Verbatim copy of `v`'s masses into `arena`; the returned view is valid
/// until the enclosing mark is rewound. This is how a result computed in
/// per-node scratch graduates to longer-lived storage (an ArrivalStore
/// buffer, a front's entry arena, a wave shard's result arena) without a
/// heap allocation.
[[nodiscard]] PdfView copy_into(PdfArena& arena, PdfView v);

/// Arena-backed fold of stat_max over one or more views. Throws
/// ConfigError on empty input. Intermediates (and the result) live in
/// `arena`; no heap-owning Pdf is materialized per fold step.
[[nodiscard]] PdfView stat_max_into(PdfArena& arena,
                                    std::span<const PdfView> views);

/// Fold of stat_max over one or more PDFs. Throws ConfigError on empty
/// input. Routed through the arena fold above (intermediates die at a
/// thread-arena rewind); bitwise identical to a pairwise Pdf fold.
[[nodiscard]] Pdf stat_max(std::span<const Pdf> pdfs);

/// Maximum signed horizontal CDF distance in fractional bin units:
///   Δ = max over p in (0,1] of [T(a,p) − T(b,p)]
/// with the interpolated (piecewise-linear) inverse CDF. Positive when `b`
/// is (somewhere) earlier than `a` — i.e. when the perturbed arrival `b`
/// improves on the unperturbed `a`. Evaluated exactly at every CDF knot of
/// either input. NOTE: because interpolation is a smoothing fiction the
/// underlying discrete RVs do not obey, this value can grow by up to one
/// bin through a convolution; use the step variant below when a bound that
/// is exactly monotone under propagation is required. Takes views so
/// arena-resident operands need no copies (Pdf arguments convert
/// implicitly).
[[nodiscard]] double max_percentile_shift(PdfView a, PdfView b);

/// Step-inverse variant, in whole bins:
///   Δ_step = max over p in (0,1] of [T_step(a,p) − T_step(b,p)],
/// where T_step(X,p) = min{ t : P(X <= t) >= p }. This is a property of
/// the actual discrete distributions, so it is *exactly* non-increasing
/// under shared convolution and independent max (Theorems 1-3) — the
/// pruning bound builds on it. Relates to the interpolated metric by
///   max_percentile_shift(a,b) < max_percentile_shift_bins(a,b) + 1.
/// Takes views so the flat front drain evaluates it on arena-resident
/// operands without copies (Pdf arguments convert implicitly).
[[nodiscard]] std::int64_t max_percentile_shift_bins(PdfView a, PdfView b);

/// Kolmogorov–Smirnov distance max_t |A(t) − B(t)| (vertical distance).
/// View-typed for the same reason as the shift metrics above.
[[nodiscard]] double ks_distance(PdfView a, PdfView b);

}  // namespace statim::prob
