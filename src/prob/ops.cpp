#include "prob/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "prob/kernels/kernels.hpp"
#include "util/error.hpp"

namespace statim::prob {

namespace {

/// Dense convolution into a zeroed `out` of size |a| + |b| - 1, routed
/// through the active kernel table. The shorter operand goes outermost
/// so the inner axpy streams the longer one (the arrival ⊛ edge-delay
/// orientation); multiplication is commutative bit for bit, so the
/// swap never changes a result.
void convolve_kernel(std::span<const double> am, std::span<const double> bm,
                     double* out) {
    const kernels::KernelTable& kt = kernels::active();
    if (am.size() <= bm.size())
        kt.convolve_accum(am.data(), am.size(), bm.data(), bm.size(), out);
    else
        kt.convolve_accum(bm.data(), bm.size(), am.data(), am.size(), out);
}

/// Fills out[k] = F_v(first + k) for k in [0, n): the running CDF of `v`
/// along the result support, continuing the accumulation that produced
/// v.cdf_at(first - 1) (whose value is returned, including cdf_at's
/// exact 1.0 pin at/above the last supported bin). This loop-carried
/// pass is shared scalar code for every dispatch level — prefix values
/// are bit-identical across levels by construction, and the SIMD
/// kernels only consume the arrays elementwise.
double fill_prefix_cdf(PdfView v, std::int64_t first, std::size_t n, double* out) {
    const auto m = v.mass();
    double f = 0.0;
    std::size_t i = 0;  // next mass index to fold into the running sum
    if (first - 1 >= v.last_bin()) {
        f = 1.0;  // cdf_at pins the top against rounding drift
        i = m.size();
    } else if (first - 1 >= v.first_bin()) {
        const auto upto = static_cast<std::size_t>(first - 1 - v.first_bin());
        for (std::size_t k = 0; k <= upto; ++k) f += m[k];
        i = upto + 1;
    }
    const double carry = f;
    std::int64_t t = first;
    for (std::size_t k = 0; k < n; ++k, ++t) {
        if (i < m.size() && t == v.first_bin() + static_cast<std::int64_t>(i))
            f += m[i++];
        out[k] = f;
    }
    return carry;
}

/// CDF-product max into `out` spanning [first, last] — the one
/// arithmetic path of every stat_max overload, restructured for the
/// kernel layer: a shared (scalar, loop-carried) prefix-CDF pass over
/// scratch from `scratch_arena`, then the elementwise
/// min/mul/adjacent-difference kernel, which has no loop-carried
/// dependence and vectorizes bit-exactly. Bitwise identical to the
/// historical fused walk (same accumulation order, same per-element
/// operation sequence); steady-state 0-alloc — the scratch lives under
/// an arena mark and is rewound before returning.
void stat_max_kernel(PdfView a, PdfView b, std::int64_t first, std::int64_t last,
                     double* out, PdfArena& scratch_arena) {
    const auto n = static_cast<std::size_t>(last - first + 1);
    const ScopedRewind scope(scratch_arena);
    double* fa = scratch_arena.alloc(n);
    double* fb = scratch_arena.alloc(n);
    const double ca = fill_prefix_cdf(a, first, n, fa);
    const double cb = fill_prefix_cdf(b, first, n, fb);
    // ca * cb == 0 in the two-operand case (at least one operand starts
    // at `first`), matching the reference's unclamped initial product.
    kernels::active().stat_max_combine(fa, fb, n, ca * cb, out);
}

}  // namespace

Pdf convolve(const Pdf& a, const Pdf& b) {
    if (!a.valid() || !b.valid()) throw ConfigError("convolve: invalid operand");
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    convolve_kernel(a.mass(), b.mass(), out.data());
    return Pdf::from_mass(a.first_bin() + b.first_bin(), std::move(out));
}

PdfView convolve_into(PdfArena& arena, PdfView a, PdfView b) {
    if (!a.valid() || !b.valid()) throw ConfigError("convolve: invalid operand");
    const std::size_t n = a.size() + b.size() - 1;
    double* out = arena.alloc(n);
    std::fill(out, out + n, 0.0);
    convolve_kernel(a.mass(), b.mass(), out);
    const auto [lo, hi] = detail::finalize_mass({out, n});
    return {a.first_bin() + b.first_bin() + static_cast<std::int64_t>(lo), out + lo,
            hi - lo};
}

Pdf stat_max(const Pdf& a, const Pdf& b) {
    if (!a.valid() || !b.valid()) throw ConfigError("stat_max: invalid operand");
    const std::int64_t first = std::max(a.first_bin(), b.first_bin());
    const std::int64_t last = std::max(a.last_bin(), b.last_bin());
    std::vector<double> out(static_cast<std::size_t>(last - first + 1), 0.0);
    stat_max_kernel(a, b, first, last, out.data(), thread_arena());
    return Pdf::from_mass(first, std::move(out));
}

PdfView stat_max_into(PdfArena& arena, PdfView a, PdfView b) {
    if (!a.valid() || !b.valid()) throw ConfigError("stat_max: invalid operand");
    const std::int64_t first = std::max(a.first_bin(), b.first_bin());
    const std::int64_t last = std::max(a.last_bin(), b.last_bin());
    const auto n = static_cast<std::size_t>(last - first + 1);
    double* out = arena.alloc(n);
    // Scratch goes into the same arena, past `out`, under a mark that is
    // rewound inside the kernel — nesting is safe even when `arena` is
    // the caller's thread scratch arena.
    stat_max_kernel(a, b, first, last, out, arena);
    const auto [lo, hi] = detail::finalize_mass({out, n});
    return {first + static_cast<std::int64_t>(lo), out + lo, hi - lo};
}

PdfView copy_into(PdfArena& arena, PdfView v) {
    if (!v.valid()) throw ConfigError("copy_into: invalid view");
    double* out = arena.alloc(v.size());
    kernels::active().copy(v.mass().data(), v.size(), out);
    return {v.first_bin(), out, v.size()};
}

PdfView stat_max_into(PdfArena& arena, std::span<const PdfView> views) {
    if (views.empty()) throw ConfigError("stat_max: empty input");
    PdfView acc = views[0];
    for (std::size_t i = 1; i < views.size(); ++i)
        acc = stat_max_into(arena, acc, views[i]);
    return acc;
}

Pdf stat_max(std::span<const Pdf> pdfs) {
    if (pdfs.empty()) throw ConfigError("stat_max: empty input");
    if (pdfs.size() == 1) return pdfs[0];
    // One view per operand instead of one owning Pdf copy per fold step;
    // every intermediate lives in the thread scratch arena and dies at
    // the rewind. Bitwise identical to the historical pairwise Pdf fold
    // (the arena operators share kernels and finalize with the vector
    // backend).
    PdfArena& arena = thread_arena();
    const ScopedRewind scope(arena);
    std::vector<PdfView> views(pdfs.begin(), pdfs.end());
    return stat_max_into(arena, views).to_pdf();
}

namespace {

/// Incremental inverse-CDF evaluator. `value_at(p)` must be called with
/// non-decreasing p and reproduces Pdf::percentile_bin exactly.
class InverseCdfWalker {
  public:
    explicit InverseCdfWalker(PdfView pdf) : pdf_(pdf), cum_(pdf.mass()[0]) {}

    [[nodiscard]] double value_at(double p) {
        const auto m = pdf_.mass();
        while (p > cum_ && k_ + 1 < m.size()) {
            prev_cum_ = cum_;
            cum_ += m[++k_];
        }
        const auto bin = static_cast<double>(pdf_.first_bin() + static_cast<std::int64_t>(k_));
        if (k_ == 0) return bin;
        const double step = cum_ - prev_cum_;
        if (p <= prev_cum_ || step <= 0.0) {
            // p falls at/below this segment's base (can happen when knots of
            // the two inputs interleave); clamp to the segment start.
            return bin - 1.0 + (step > 0.0 ? std::max(0.0, (p - prev_cum_) / step) : 1.0);
        }
        return bin - 1.0 + std::min(1.0, (p - prev_cum_) / step);
    }

  private:
    PdfView pdf_;
    std::size_t k_{0};
    double prev_cum_{0.0};
    double cum_;
};

/// Prefix CDF of `v` over its own support, into arena scratch — the
/// view-backed equivalent of Pdf::prefix_cdf(), including the exact 1.0
/// pin of the top knot.
std::span<const double> prefix_cdf_into(PdfArena& arena, PdfView v) {
    double* out = arena.alloc(v.size());
    const auto m = v.mass();
    double cum = 0.0;
    for (std::size_t k = 0; k < m.size(); ++k) {
        cum += m[k];
        out[k] = cum;
    }
    out[m.size() - 1] = 1.0;  // pin the top against rounding drift
    return {out, m.size()};
}

}  // namespace

double max_percentile_shift(PdfView a, PdfView b) {
    if (!a.valid() || !b.valid())
        throw ConfigError("max_percentile_shift: invalid operand");
    PdfArena& arena = thread_arena();
    const ScopedRewind scope(arena);
    const std::span<const double> ca = prefix_cdf_into(arena, a);
    const std::span<const double> cb = prefix_cdf_into(arena, b);

    InverseCdfWalker ta(a);
    InverseCdfWalker tb(b);
    double best = -std::numeric_limits<double>::infinity();

    std::size_t ia = 0;
    std::size_t ib = 0;
    double last_p = -1.0;
    while (ia < ca.size() || ib < cb.size()) {
        double p;
        if (ib >= cb.size() || (ia < ca.size() && ca[ia] <= cb[ib]))
            p = ca[ia++];
        else
            p = cb[ib++];
        if (p <= 0.0 || p == last_p) continue;  // skip duplicates/degenerate knots
        last_p = p;
        best = std::max(best, ta.value_at(p) - tb.value_at(p));
    }
    return best;
}

std::int64_t max_percentile_shift_bins(PdfView a, PdfView b) {
    if (!a.valid() || !b.valid())
        throw ConfigError("max_percentile_shift_bins: invalid operand");
    const auto am = a.mass();
    const auto bm = b.mass();
    return kernels::active().shift_bins(am.data(), am.size(), a.first_bin(),
                                        bm.data(), bm.size(), b.first_bin());
}

double ks_distance(PdfView a, PdfView b) {
    if (!a.valid() || !b.valid()) throw ConfigError("ks_distance: invalid operand");
    const std::int64_t first = std::min(a.first_bin(), b.first_bin());
    const std::int64_t last = std::max(a.last_bin(), b.last_bin());
    const auto n = static_cast<std::size_t>(last - first + 1);
    // Shared prefix pass (carries are exactly 0 at the union's start),
    // then the lane-parallel |F_a - F_b| max reduction — max and |x|
    // round nothing, so any reduction order equals the sequential walk.
    PdfArena& arena = thread_arena();
    const ScopedRewind scope(arena);
    double* fa = arena.alloc(n);
    double* fb = arena.alloc(n);
    (void)fill_prefix_cdf(a, first, n, fa);
    (void)fill_prefix_cdf(b, first, n, fb);
    return kernels::active().max_abs_diff(fa, fb, n);
}

}  // namespace statim::prob
