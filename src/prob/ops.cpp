#include "prob/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace statim::prob {

namespace {

/// Dense convolution into a zeroed `out` of size |a| + |b| - 1. The one
/// arithmetic path of every convolve overload (vector- or arena-backed).
void convolve_kernel(std::span<const double> am, std::span<const double> bm,
                     double* out) {
    // Iterate the shorter operand outermost so the inner loop streams the
    // longer one (better vectorization for arrival ⊛ edge-delay shapes).
    if (am.size() <= bm.size()) {
        for (std::size_t i = 0; i < am.size(); ++i) {
            const double w = am[i];
            if (w == 0.0) continue;
            for (std::size_t j = 0; j < bm.size(); ++j) out[i + j] += w * bm[j];
        }
    } else {
        for (std::size_t j = 0; j < bm.size(); ++j) {
            const double w = bm[j];
            if (w == 0.0) continue;
            for (std::size_t i = 0; i < am.size(); ++i) out[i + j] += w * am[i];
        }
    }
}

/// CDF-product max into `out` spanning [first, last]. The one arithmetic
/// path of every stat_max overload.
void stat_max_kernel(const PdfView& a, const PdfView& b, std::int64_t first,
                     std::int64_t last, double* out) {
    // Running CDFs F_a(t), F_b(t) as t walks the result support.
    double fa = a.cdf_at(first - 1);
    double fb = b.cdf_at(first - 1);
    double fmax_prev = fa * fb;  // == 0: at least one operand starts at `first`
    for (std::int64_t t = first; t <= last; ++t) {
        fa += a.mass_at(t);
        fb += b.mass_at(t);
        const double fmax = std::min(fa, 1.0) * std::min(fb, 1.0);
        out[static_cast<std::size_t>(t - first)] = std::max(fmax - fmax_prev, 0.0);
        fmax_prev = fmax;
    }
}

}  // namespace

Pdf convolve(const Pdf& a, const Pdf& b) {
    if (!a.valid() || !b.valid()) throw ConfigError("convolve: invalid operand");
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    convolve_kernel(a.mass(), b.mass(), out.data());
    return Pdf::from_mass(a.first_bin() + b.first_bin(), std::move(out));
}

PdfView convolve_into(PdfArena& arena, PdfView a, PdfView b) {
    if (!a.valid() || !b.valid()) throw ConfigError("convolve: invalid operand");
    const std::size_t n = a.size() + b.size() - 1;
    double* out = arena.alloc(n);
    std::fill(out, out + n, 0.0);
    convolve_kernel(a.mass(), b.mass(), out);
    const auto [lo, hi] = detail::finalize_mass({out, n});
    return {a.first_bin() + b.first_bin() + static_cast<std::int64_t>(lo), out + lo,
            hi - lo};
}

Pdf stat_max(const Pdf& a, const Pdf& b) {
    if (!a.valid() || !b.valid()) throw ConfigError("stat_max: invalid operand");
    const std::int64_t first = std::max(a.first_bin(), b.first_bin());
    const std::int64_t last = std::max(a.last_bin(), b.last_bin());
    std::vector<double> out(static_cast<std::size_t>(last - first + 1), 0.0);
    stat_max_kernel(a, b, first, last, out.data());
    return Pdf::from_mass(first, std::move(out));
}

PdfView stat_max_into(PdfArena& arena, PdfView a, PdfView b) {
    if (!a.valid() || !b.valid()) throw ConfigError("stat_max: invalid operand");
    const std::int64_t first = std::max(a.first_bin(), b.first_bin());
    const std::int64_t last = std::max(a.last_bin(), b.last_bin());
    const auto n = static_cast<std::size_t>(last - first + 1);
    double* out = arena.alloc(n);
    stat_max_kernel(a, b, first, last, out);
    const auto [lo, hi] = detail::finalize_mass({out, n});
    return {first + static_cast<std::int64_t>(lo), out + lo, hi - lo};
}

PdfView copy_into(PdfArena& arena, PdfView v) {
    if (!v.valid()) throw ConfigError("copy_into: invalid view");
    double* out = arena.alloc(v.size());
    std::copy(v.mass().begin(), v.mass().end(), out);
    return {v.first_bin(), out, v.size()};
}

Pdf stat_max(std::span<const Pdf> pdfs) {
    if (pdfs.empty()) throw ConfigError("stat_max: empty input");
    Pdf acc = pdfs[0];
    for (std::size_t i = 1; i < pdfs.size(); ++i) acc = stat_max(acc, pdfs[i]);
    return acc;
}

namespace {

/// Incremental inverse-CDF evaluator. `value_at(p)` must be called with
/// non-decreasing p and reproduces Pdf::percentile_bin exactly.
class InverseCdfWalker {
  public:
    explicit InverseCdfWalker(const Pdf& pdf)
        : pdf_(pdf), cum_(pdf.mass()[0]) {}

    [[nodiscard]] double value_at(double p) {
        const auto m = pdf_.mass();
        while (p > cum_ && k_ + 1 < m.size()) {
            prev_cum_ = cum_;
            cum_ += m[++k_];
        }
        const auto bin = static_cast<double>(pdf_.first_bin() + static_cast<std::int64_t>(k_));
        if (k_ == 0) return bin;
        const double step = cum_ - prev_cum_;
        if (p <= prev_cum_ || step <= 0.0) {
            // p falls at/below this segment's base (can happen when knots of
            // the two inputs interleave); clamp to the segment start.
            return bin - 1.0 + (step > 0.0 ? std::max(0.0, (p - prev_cum_) / step) : 1.0);
        }
        return bin - 1.0 + std::min(1.0, (p - prev_cum_) / step);
    }

  private:
    const Pdf& pdf_;
    std::size_t k_{0};
    double prev_cum_{0.0};
    double cum_;
};

}  // namespace

double max_percentile_shift(const Pdf& a, const Pdf& b) {
    if (!a.valid() || !b.valid())
        throw ConfigError("max_percentile_shift: invalid operand");
    const std::vector<double> ca = a.prefix_cdf();
    const std::vector<double> cb = b.prefix_cdf();

    InverseCdfWalker ta(a);
    InverseCdfWalker tb(b);
    double best = -std::numeric_limits<double>::infinity();

    std::size_t ia = 0;
    std::size_t ib = 0;
    double last_p = -1.0;
    while (ia < ca.size() || ib < cb.size()) {
        double p;
        if (ib >= cb.size() || (ia < ca.size() && ca[ia] <= cb[ib]))
            p = ca[ia++];
        else
            p = cb[ib++];
        if (p <= 0.0 || p == last_p) continue;  // skip duplicates/degenerate knots
        last_p = p;
        best = std::max(best, ta.value_at(p) - tb.value_at(p));
    }
    return best;
}

std::int64_t max_percentile_shift_bins(PdfView a, PdfView b) {
    if (!a.valid() || !b.valid())
        throw ConfigError("max_percentile_shift_bins: invalid operand");
    // For p in (C_b(t-1), C_b(t)], T_step(b,p) = t and T_step(a,p) peaks at
    // p = C_b(t), so the maximum over p is attained on b's knots.
    const auto am = a.mass();
    const auto bm = b.mass();
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    std::size_t ai = 0;
    double ca = am[0];
    double cb = 0.0;
    for (std::size_t bi = 0; bi < bm.size(); ++bi) {
        cb += bm[bi];
        while (ca < cb && ai + 1 < am.size()) ca += am[++ai];
        const std::int64_t ta = a.first_bin() + static_cast<std::int64_t>(ai);
        const std::int64_t tb = b.first_bin() + static_cast<std::int64_t>(bi);
        best = std::max(best, ta - tb);
    }
    return best;
}

double ks_distance(const Pdf& a, const Pdf& b) {
    const std::int64_t first = std::min(a.first_bin(), b.first_bin());
    const std::int64_t last = std::max(a.last_bin(), b.last_bin());
    double fa = 0.0;
    double fb = 0.0;
    double best = 0.0;
    for (std::int64_t t = first; t <= last; ++t) {
        fa += a.mass_at(t);
        fb += b.mass_at(t);
        best = std::max(best, std::abs(fa - fb));
    }
    return best;
}

}  // namespace statim::prob
