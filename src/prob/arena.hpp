// Slab allocator for PDF mass vectors.
//
// One SSTA node evaluation builds and discards several intermediate mass
// buffers (one per convolution / statistical max in the fanin fold); with
// heap-backed `std::vector` every one is a malloc/free pair, and the
// parallel propagation drain becomes allocator-bound. `PdfArena` replaces
// those with pointer bumps over reusable slabs:
//
//  * alloc() bumps within the current slab, appending a bigger slab only
//    when the current one is exhausted (slabs are never returned to the
//    OS until the arena is destroyed);
//  * mark()/rewind() bracket one node evaluation: every buffer allocated
//    since the mark is reclaimed at once, and the slab memory is reused
//    verbatim by the next evaluation — a steady-state propagation performs
//    no heap allocation for intermediates at all;
//  * each worker thread uses its own arena (`thread_arena()`), so the
//    level-parallel engine shares no allocator state between shards.
//
// Lifetime rules: arena-backed `PdfView`s are valid only until the mark
// they were allocated under is rewound. Anything that must outlive the
// evaluation (a node's final arrival) is copied out via PdfView::to_pdf()
// before the rewind.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace statim::prob {

class PdfArena {
  public:
    PdfArena() = default;
    PdfArena(const PdfArena&) = delete;
    PdfArena& operator=(const PdfArena&) = delete;

    /// Uninitialized storage for `n` doubles (n >= 1), valid until the
    /// enclosing mark is rewound (or the arena is reset/destroyed).
    [[nodiscard]] double* alloc(std::size_t n);

    /// A position to rewind to; everything allocated later is reclaimed.
    struct Mark {
        std::size_t slab{0};
        std::size_t used{0};
    };
    [[nodiscard]] Mark mark() const noexcept { return {slab_, used_}; }
    void rewind(Mark m) noexcept {
        slab_ = m.slab;
        used_ = m.used;
    }
    /// Rewinds to empty; slabs are kept for reuse.
    void reset() noexcept { rewind(Mark{}); }

    /// Total doubles reserved across all slabs (capacity, not live use).
    [[nodiscard]] std::size_t capacity() const noexcept;

  private:
    // Slab sizes grow geometrically from kMinSlab, capped at kMaxSlab
    // unless a single allocation needs more.
    static constexpr std::size_t kMinSlab = std::size_t{1} << 13;  // 64 KiB
    static constexpr std::size_t kMaxSlab = std::size_t{1} << 22;  // 32 MiB

    std::vector<std::unique_ptr<double[]>> slabs_;
    std::vector<std::size_t> sizes_;
    std::size_t slab_{0};  ///< slab currently bump-allocated from
    std::size_t used_{0};  ///< doubles used in that slab
};

/// RAII mark/rewind bracket for one evaluation.
class ScopedRewind {
  public:
    explicit ScopedRewind(PdfArena& arena) noexcept
        : arena_(&arena), mark_(arena.mark()) {}
    ~ScopedRewind() { arena_->rewind(mark_); }
    ScopedRewind(const ScopedRewind&) = delete;
    ScopedRewind& operator=(const ScopedRewind&) = delete;

  private:
    PdfArena* arena_;
    PdfArena::Mark mark_;
};

/// This thread's scratch arena. The level-parallel SSTA engine and the
/// selector workers all evaluate nodes through it, so intermediates never
/// touch the heap and threads never contend on an allocator.
[[nodiscard]] PdfArena& thread_arena();

}  // namespace statim::prob
