// Slab allocator for PDF mass vectors.
//
// One SSTA node evaluation builds and discards several intermediate mass
// buffers (one per convolution / statistical max in the fanin fold); with
// heap-backed `std::vector` every one is a malloc/free pair, and the
// parallel propagation drain becomes allocator-bound. `PdfArena` replaces
// those with pointer bumps over reusable slabs:
//
//  * alloc() bumps within the current slab, appending a bigger slab only
//    when the current one is exhausted (slabs are never returned to the
//    OS until the arena is destroyed or shrink_to_fit() trims the tail);
//  * mark()/rewind() bracket one node evaluation: every buffer allocated
//    since the mark is reclaimed at once, and the slab memory is reused
//    verbatim by the next evaluation — a steady-state propagation performs
//    no heap allocation for intermediates at all;
//  * each worker thread uses its own arena (`thread_arena()`), so the
//    level-parallel engine shares no allocator state between shards.
//
// Besides scratch use, the arena is the backing store of the *persistent*
// PDF state: `prob::ArrivalStore` keeps every node's arrival in a pair of
// arenas, and each perturbation front keeps its entry PDFs in a pooled
// pair. Those owners drive `used_doubles()` / `capacity()` for their
// garbage accounting and surface `high_water()` in the bench JSON so
// arena growth is visible across the synth10k–250k registry.
//
// Lifetime rules: arena-backed `PdfView`s are valid only until the mark
// they were allocated under is rewound. Anything that must outlive the
// evaluation (a node's final arrival) is copied out — into an owning Pdf
// or into a longer-lived arena — before the rewind.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace statim::prob {

class PdfArena {
  public:
    /// `min_slab_doubles` sizes the first slab (later slabs grow
    /// geometrically from it). The default suits per-thread propagation
    /// scratch; small long-lived arenas (one per perturbation front)
    /// pass a smaller floor so a pool of thousands stays compact.
    explicit PdfArena(std::size_t min_slab_doubles = kDefaultMinSlab) noexcept
        : min_slab_(min_slab_doubles < 1 ? 1 : min_slab_doubles) {}
    PdfArena(const PdfArena&) = delete;
    PdfArena& operator=(const PdfArena&) = delete;

    /// Uninitialized storage for `n` doubles (n >= 1), valid until the
    /// enclosing mark is rewound (or the arena is reset/destroyed).
    [[nodiscard]] double* alloc(std::size_t n);

    /// A position to rewind to; everything allocated later is reclaimed.
    struct Mark {
        std::size_t slab{0};
        std::size_t used{0};
        std::size_t before{0};  ///< doubles in slabs preceding `slab`
    };
    [[nodiscard]] Mark mark() const noexcept { return {slab_, used_, before_}; }
    void rewind(Mark m) noexcept {
        slab_ = m.slab;
        used_ = m.used;
        before_ = m.before;
    }
    /// Rewinds to empty; slabs are kept for reuse.
    void reset() noexcept { rewind(Mark{}); }

    /// Total doubles reserved across all slabs (capacity, not live use).
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Doubles currently occupied (exhausted slabs count whole — a slab
    /// skipped because an allocation did not fit leaves a small gap, so
    /// this is an upper bound on live data; the GC heuristics that
    /// consume it only become marginally more eager).
    [[nodiscard]] std::size_t used_doubles() const noexcept {
        return before_ + used_;
    }

    /// Largest used_doubles() ever observed at an allocation.
    [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

    /// Frees whole slabs beyond the current bump position until capacity()
    /// is at most `max_doubles` (or nothing trailing is left to free).
    /// Safe at any time: slabs at or before the active position are never
    /// touched, so outstanding views stay valid. Call after reset() to
    /// return a transient growth spike (one oversized full run) to the OS
    /// instead of pinning it in a thread_local for the process lifetime.
    void shrink_to_fit(std::size_t max_doubles) noexcept;

  private:
    // Slab sizes grow geometrically from min_slab_, capped at kMaxSlab
    // unless a single allocation needs more.
    static constexpr std::size_t kDefaultMinSlab = std::size_t{1} << 13;  // 64 KiB
    static constexpr std::size_t kMaxSlab = std::size_t{1} << 22;         // 32 MiB

    std::vector<std::unique_ptr<double[]>> slabs_;
    std::vector<std::size_t> sizes_;
    std::size_t min_slab_;
    std::size_t slab_{0};        ///< slab currently bump-allocated from
    std::size_t used_{0};        ///< doubles used in that slab
    std::size_t before_{0};      ///< doubles in slabs preceding slab_
    std::size_t capacity_{0};    ///< sum of sizes_
    std::size_t high_water_{0};  ///< max used_doubles() at alloc time
};

/// RAII mark/rewind bracket for one evaluation.
class ScopedRewind {
  public:
    explicit ScopedRewind(PdfArena& arena) noexcept
        : arena_(&arena), mark_(arena.mark()) {}
    ~ScopedRewind() { arena_->rewind(mark_); }
    ScopedRewind(const ScopedRewind&) = delete;
    ScopedRewind& operator=(const ScopedRewind&) = delete;

  private:
    PdfArena* arena_;
    PdfArena::Mark mark_;
};

/// This thread's scratch arena. The level-parallel SSTA engine and the
/// selector workers all evaluate nodes through it, so intermediates never
/// touch the heap and threads never contend on an allocator.
[[nodiscard]] PdfArena& thread_arena();

}  // namespace statim::prob
