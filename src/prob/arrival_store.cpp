#include "prob/arrival_store.hpp"

#include <algorithm>
#include <cassert>

namespace statim::prob {

namespace {

/// Below this occupancy the garbage ratio is ignored: compacting a tiny
/// store costs more in churn than the stranded doubles are worth.
constexpr std::size_t kCompactFloorDoubles = std::size_t{1} << 15;  // 256 KiB

}  // namespace

void ArrivalStore::begin_run(std::size_t count) {
    if (slots_.size() != count) slots_.assign(count, Slot{});
    ++gen_;
    // Generation 0 is "never written", so wrap-around must skip it (a
    // ~4e9-refresh run would otherwise resurrect stale slots).
    if (gen_ == 0) {
        slots_.assign(count, Slot{});
        gen_ = 1;
    }
    buffers_[0].reset();
    buffers_[1].reset();
    active_ = 0;
    live_doubles_ = 0;
}

void ArrivalStore::set(std::size_t idx, PdfView v) {
    assert(idx < slots_.size() && v.valid());
    Slot& s = slots_[idx];
    if (s.gen == gen_) live_doubles_ -= s.size;  // overwrite strands the old copy
    double* dst = active().alloc(v.size());
    std::copy(v.mass().begin(), v.mass().end(), dst);
    live_doubles_ += v.size();
    s.data = dst;
    s.first = v.first_bin();
    s.size = static_cast<std::uint32_t>(v.size());
    s.gen = gen_;
}

void ArrivalStore::maybe_compact() {
    const std::size_t used = active().used_doubles();
    if (used <= kCompactFloorDoubles || used <= 2 * live_doubles_) return;
    const std::size_t target = 1 - active_;
    PdfArena& to = buffers_[target];
    to.reset();
    // Every live slot is in the active buffer (set() only ever appends
    // there, and the previous compaction drained the other one), so this
    // single pass relocates all live data.
    for (Slot& s : slots_) {
        if (s.gen != gen_) continue;
        double* dst = to.alloc(s.size);
        std::copy(s.data, s.data + s.size, dst);
        s.data = dst;
    }
    active_ = target;
    ++compactions_;
}

ArrivalStore::MemoryStats ArrivalStore::memory_stats() const noexcept {
    MemoryStats m;
    m.capacity_doubles = buffers_[0].capacity() + buffers_[1].capacity();
    m.used_doubles = buffers_[0].used_doubles() + buffers_[1].used_doubles();
    m.live_doubles = live_doubles_;
    m.high_water_doubles =
        std::max(buffers_[0].high_water(), buffers_[1].high_water());
    m.compactions = compactions_;
    return m;
}

}  // namespace statim::prob
