// The shared discretization grid.
//
// Every random variable in statim (edge delays, arrival times) is a
// discrete PDF over integer bins of one global pitch `dt_ns`. Keeping a
// single pitch per analysis makes convolution and statistical max exact
// grid-to-grid operations with no resampling, which in turn is what lets
// the pruned optimizer reproduce the brute-force optimizer bit for bit.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace statim::prob {

/// Uniform time grid: bin b corresponds to time b * dt_ns (nanoseconds).
class TimeGrid {
  public:
    /// Throws ConfigError unless dt_ns is positive and finite.
    explicit TimeGrid(double dt_ns) : dt_ns_(dt_ns) {
        if (!(dt_ns > 0.0) || !std::isfinite(dt_ns))
            throw ConfigError("TimeGrid: dt must be positive and finite");
    }

    [[nodiscard]] double dt_ns() const noexcept { return dt_ns_; }

    /// Nearest bin to time `t_ns`.
    [[nodiscard]] std::int64_t bin_of(double t_ns) const noexcept {
        return static_cast<std::int64_t>(std::llround(t_ns / dt_ns_));
    }

    /// Time (ns) of bin coordinate `bin` (fractional coordinates allowed).
    [[nodiscard]] double time_of(double bin) const noexcept { return bin * dt_ns_; }

    friend bool operator==(const TimeGrid& a, const TimeGrid& b) noexcept {
        return a.dt_ns_ == b.dt_ns_;
    }

  private:
    double dt_ns_;
};

}  // namespace statim::prob
