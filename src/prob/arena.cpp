#include "prob/arena.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statim::prob {

double* PdfArena::alloc(std::size_t n) {
    if (n == 0) throw ConfigError("PdfArena::alloc: zero-length allocation");
    // Bump within the current slab when it fits.
    if (slab_ < slabs_.size() && sizes_[slab_] - used_ >= n) {
        double* p = slabs_[slab_].get() + used_;
        used_ += n;
        high_water_ = std::max(high_water_, before_ + used_);
        return p;
    }
    // Otherwise advance to the first following slab that fits (slabs kept
    // from earlier high-water marks are reused before anything grows).
    for (std::size_t s = slab_ + (slabs_.empty() ? 0 : 1); s < slabs_.size(); ++s) {
        // The skipped remainder of earlier slabs counts as occupied.
        std::size_t before = 0;
        for (std::size_t k = 0; k < s; ++k) before += sizes_[k];
        if (sizes_[s] >= n) {
            slab_ = s;
            used_ = n;
            before_ = before;
            high_water_ = std::max(high_water_, before_ + used_);
            return slabs_[s].get();
        }
    }
    // Nothing fits: append a new slab, geometrically larger than the last.
    std::size_t size = slabs_.empty() ? min_slab_
                                      : std::min(sizes_.back() * 2, kMaxSlab);
    size = std::max(size, n);
    before_ = capacity_;
    slabs_.push_back(std::make_unique<double[]>(size));
    sizes_.push_back(size);
    capacity_ += size;
    slab_ = slabs_.size() - 1;
    used_ = n;
    high_water_ = std::max(high_water_, before_ + used_);
    return slabs_.back().get();
}

void PdfArena::shrink_to_fit(std::size_t max_doubles) noexcept {
    while (slabs_.size() > slab_ + 1 && capacity_ > max_doubles) {
        capacity_ -= sizes_.back();
        sizes_.pop_back();
        slabs_.pop_back();
    }
    // A fully rewound arena can drop everything, including the first slab.
    if (slabs_.size() == 1 && slab_ == 0 && used_ == 0 && capacity_ > max_doubles) {
        capacity_ = 0;
        sizes_.clear();
        slabs_.clear();
    }
}

PdfArena& thread_arena() {
    // Thread-confined by construction: a capability annotation cannot
    // express "only the owning thread", so this invariant is enforced by
    // the TSan CI leg instead (see util/thread_annotations.hpp).
    thread_local PdfArena arena;
    return arena;
}

}  // namespace statim::prob
