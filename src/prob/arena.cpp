#include "prob/arena.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statim::prob {

double* PdfArena::alloc(std::size_t n) {
    if (n == 0) throw ConfigError("PdfArena::alloc: zero-length allocation");
    // Bump within the current slab when it fits.
    if (slab_ < slabs_.size() && sizes_[slab_] - used_ >= n) {
        double* p = slabs_[slab_].get() + used_;
        used_ += n;
        return p;
    }
    // Otherwise advance to the first following slab that fits (slabs kept
    // from earlier high-water marks are reused before anything grows).
    for (std::size_t s = slab_ + (slabs_.empty() ? 0 : 1); s < slabs_.size(); ++s) {
        if (sizes_[s] >= n) {
            slab_ = s;
            used_ = n;
            return slabs_[s].get();
        }
    }
    // Nothing fits: append a new slab, geometrically larger than the last.
    std::size_t size = slabs_.empty() ? kMinSlab
                                      : std::min(sizes_.back() * 2, kMaxSlab);
    size = std::max(size, n);
    slabs_.push_back(std::make_unique<double[]>(size));
    sizes_.push_back(size);
    slab_ = slabs_.size() - 1;
    used_ = n;
    return slabs_.back().get();
}

std::size_t PdfArena::capacity() const noexcept {
    std::size_t total = 0;
    for (std::size_t s : sizes_) total += s;
    return total;
}

PdfArena& thread_arena() {
    thread_local PdfArena arena;
    return arena;
}

}  // namespace statim::prob
