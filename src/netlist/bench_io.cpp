#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace statim::netlist {

namespace {

struct BenchGate {
    std::string output;
    std::string type;  // upper-cased
    std::vector<std::string> inputs;
    int line;
};

[[nodiscard]] std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return s;
}

[[nodiscard]] std::string strip(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

/// "TYPE(a, b, c)" -> {TYPE, {a,b,c}}; throws ParseError on malformed text.
std::pair<std::string, std::vector<std::string>> parse_call(const std::string& text,
                                                            const std::string& file,
                                                            int line) {
    const auto open = text.find('(');
    const auto close = text.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
        throw ParseError(file, line, "expected TYPE(args): '" + text + "'");
    const std::string type = upper(strip(text.substr(0, open)));
    std::vector<std::string> args;
    const std::string body = text.substr(open + 1, close - open - 1);
    if (!strip(body).empty()) {
        // Manual split so trailing/duplicate commas surface as errors.
        std::size_t start = 0;
        for (;;) {
            const std::size_t comma = body.find(',', start);
            const std::string piece =
                strip(body.substr(start, comma == std::string::npos
                                             ? std::string::npos
                                             : comma - start));
            if (piece.empty())
                throw ParseError(file, line, "empty operand in '" + text + "'");
            args.push_back(piece);
            if (comma == std::string::npos) break;
            start = comma + 1;
        }
    }
    if (type.empty()) throw ParseError(file, line, "missing gate type in '" + text + "'");
    return {type, std::move(args)};
}

/// Picks the library cell for a bench gate type and fanin count, or throws.
/// Single-input AND/OR/NAND/NOR degenerate to BUF/BUF/INV/INV.
CellId map_cell(const cells::Library& lib, const std::string& type, int fanin,
                const std::string& file, int line) {
    auto require = [&](const std::string& name) {
        if (const auto id = lib.find(name)) return *id;
        throw ParseError(file, line, "library has no cell for " + type + "/" +
                                         std::to_string(fanin) + " (need " + name + ")");
    };
    if (type == "NOT" || type == "INV") return require("INV");
    if (type == "BUF" || type == "BUFF") return require("BUF");
    if (type == "NAND") return fanin == 1 ? require("INV") : require("NAND" + std::to_string(fanin));
    if (type == "NOR") return fanin == 1 ? require("INV") : require("NOR" + std::to_string(fanin));
    if (type == "AND") return fanin == 1 ? require("BUF") : require("AND" + std::to_string(fanin));
    if (type == "OR") return fanin == 1 ? require("BUF") : require("OR" + std::to_string(fanin));
    if (type == "XOR") return require("XOR" + std::to_string(fanin));
    if (type == "XNOR") return require("XNOR" + std::to_string(fanin));
    throw ParseError(file, line, "unknown gate type '" + type + "'");
}

/// Widest cell of family `base` available in `lib` (checking 2..8).
int widest(const cells::Library& lib, const std::string& base) {
    int best = 0;
    for (int n = 2; n <= 8; ++n)
        if (lib.find(base + std::to_string(n))) best = n;
    return best;
}

/// For decomposition: the interior-tree family and root type of a bench type.
/// NAND = AND-tree + NAND-root; NOR = OR-tree + NOR-root; XOR/XNOR chain.
struct TreePlan {
    std::string interior;  // family used for interior nodes ("AND", "OR", "XOR")
    std::string root;      // family for the final gate
};

TreePlan tree_plan(const std::string& type, const std::string& file, int line) {
    if (type == "AND" || type == "NAND") return {"AND", type};
    if (type == "OR" || type == "NOR") return {"OR", type};
    if (type == "XOR" || type == "XNOR") return {"XOR", type};
    throw ParseError(file, line, "cannot decompose gate type '" + type + "'");
}

}  // namespace

Netlist read_bench(std::istream& in, const cells::Library& lib,
                   const std::string& source_name) {
    std::vector<std::string> inputs, outputs;
    std::vector<BenchGate> gates;
    std::string raw;
    int line_no = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        const auto hash = raw.find('#');
        if (hash != std::string::npos) raw.erase(hash);
        const std::string text = strip(raw);
        if (text.empty()) continue;

        const auto eq = text.find('=');
        if (eq == std::string::npos) {
            auto [kind, args] = parse_call(text, source_name, line_no);
            if (args.size() != 1)
                throw ParseError(source_name, line_no, kind + " takes one net name");
            if (kind == "INPUT") inputs.push_back(args[0]);
            else if (kind == "OUTPUT") outputs.push_back(args[0]);
            else throw ParseError(source_name, line_no, "unknown directive '" + kind + "'");
            continue;
        }
        const std::string out_name = strip(text.substr(0, eq));
        if (out_name.empty()) throw ParseError(source_name, line_no, "missing output name");
        auto [type, args] = parse_call(text.substr(eq + 1), source_name, line_no);
        if (args.empty()) throw ParseError(source_name, line_no, "gate with no inputs");
        gates.push_back(BenchGate{out_name, std::move(type), std::move(args), line_no});
    }

    Netlist nl(source_name);

    // Pass 1: create every referenced net once.
    std::unordered_map<std::string, NetId> net_of;
    auto ensure_net = [&](const std::string& name) {
        const auto it = net_of.find(name);
        if (it != net_of.end()) return it->second;
        const NetId id = nl.add_net(name);
        net_of.emplace(name, id);
        return id;
    };
    for (const auto& name : inputs) ensure_net(name);
    for (const auto& g : gates) {
        ensure_net(g.output);
        for (const auto& in_name : g.inputs) ensure_net(in_name);
    }
    for (const auto& name : outputs) ensure_net(name);

    // DFFs: Q is a pseudo-PI, D a pseudo-PO (standard combinational view).
    std::unordered_set<std::string> pseudo_inputs;
    for (const auto& g : gates) {
        if (g.type == "DFF") {
            if (g.inputs.size() != 1)
                throw ParseError(source_name, g.line, "DFF takes one input");
            pseudo_inputs.insert(g.output);
            nl.mark_primary_output(net_of.at(g.inputs[0]));
        }
    }

    for (const auto& name : inputs) nl.mark_primary_input(net_of.at(name));
    for (const auto& name : pseudo_inputs) nl.mark_primary_input(net_of.at(name));
    for (const auto& name : outputs) nl.mark_primary_output(net_of.at(name));

    // Pass 2: instantiate gates, decomposing wide ones.
    int fresh = 0;
    for (const auto& g : gates) {
        if (g.type == "DFF") continue;
        std::vector<NetId> operands;
        operands.reserve(g.inputs.size());
        for (const auto& in_name : g.inputs) operands.push_back(net_of.at(in_name));

        if (operands.size() == 1) {
            const CellId cell = map_cell(lib, g.type, 1, source_name, g.line);
            nl.add_gate(g.output + "_g", cell, std::move(operands), net_of.at(g.output));
            continue;
        }
        if (g.type == "NOT" || g.type == "INV" || g.type == "BUF" || g.type == "BUFF")
            throw ParseError(source_name, g.line, g.type + " takes exactly one input");

        const TreePlan plan = tree_plan(g.type, source_name, g.line);
        if (static_cast<int>(operands.size()) <= widest(lib, plan.root)) {
            const CellId cell = map_cell(lib, g.type, static_cast<int>(operands.size()),
                                         source_name, g.line);
            nl.add_gate(g.output + "_g", cell, std::move(operands), net_of.at(g.output));
            continue;
        }

        // Balanced-tree decomposition: interior gates reduce the operand
        // list by `width`-wide chunks until the root can absorb the rest.
        const int width = widest(lib, plan.interior);
        const int root_width = widest(lib, plan.root);
        if (width < 2 || root_width < 2)
            throw ParseError(source_name, g.line,
                             "library too small to decompose " + g.type);
        while (static_cast<int>(operands.size()) > root_width) {
            const int take = std::min<int>(width, static_cast<int>(operands.size()) -
                                                      root_width + 1);
            if (take < 2) break;
            std::vector<NetId> chunk(operands.end() - take, operands.end());
            operands.erase(operands.end() - take, operands.end());
            const std::string net_name = g.output + "_d" + std::to_string(fresh++);
            const NetId mid = nl.add_net(net_name);
            const CellId cell = map_cell(lib, plan.interior, take, source_name, g.line);
            nl.add_gate(net_name + "_g", cell, std::move(chunk), mid);
            operands.push_back(mid);
        }
        const CellId root_cell = map_cell(lib, plan.root, static_cast<int>(operands.size()),
                                          source_name, g.line);
        nl.add_gate(g.output + "_g", root_cell, std::move(operands), net_of.at(g.output));
    }

    nl.validate(lib);
    return nl;
}

Netlist load_bench(const std::string& path, const cells::Library& lib) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open bench file: " + path);
    return read_bench(in, lib, path);
}

void write_bench(std::ostream& out, const Netlist& nl, const cells::Library& lib) {
    out << "# " << nl.name() << " (written by statim)\n";
    for (NetId pi : nl.primary_inputs()) out << "INPUT(" << nl.net(pi).name << ")\n";
    for (NetId po : nl.primary_outputs()) out << "OUTPUT(" << nl.net(po).name << ")\n";
    for (const Gate& g : nl.gates()) {
        const std::string& cell_name = lib.cell(g.cell).name;
        std::string type = cell_name;
        if (type == "INV") type = "NOT";
        else if (type == "BUF") type = "BUFF";
        else {
            // Strip the fanin suffix (NAND3 -> NAND).
            while (!type.empty() && std::isdigit(static_cast<unsigned char>(type.back())))
                type.pop_back();
        }
        out << nl.net(g.output).name << " = " << type << '(';
        for (std::size_t i = 0; i < g.fanin.size(); ++i) {
            if (i) out << ", ";
            out << nl.net(g.fanin[i]).name;
        }
        out << ")\n";
    }
}

}  // namespace statim::netlist
