#include "netlist/iscas.hpp"

#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statim::netlist {

const std::vector<IscasInfo>& iscas85_info() {
    // nodes/edges are the paper's Table 1 column 2; PI/PO counts are the
    // real ISCAS-85 values; depths approximate the synthesized originals.
    static const std::vector<IscasInfo> kInfo = {
        {"c432", 214, 379, 36, 7, 17},      {"c499", 561, 978, 41, 32, 11},
        {"c880", 425, 804, 60, 26, 24},     {"c1355", 570, 1071, 41, 32, 24},
        {"c1908", 466, 858, 33, 25, 40},    {"c2670", 1059, 1731, 233, 140, 32},
        {"c3540", 991, 1972, 50, 22, 47},   {"c5315", 1806, 3311, 178, 123, 49},
        {"c6288", 2503, 4999, 32, 32, 124}, {"c7552", 2202, 3945, 207, 108, 43},
    };
    return kInfo;
}

const IscasInfo& iscas85_info(const std::string& name) {
    for (const IscasInfo& info : iscas85_info())
        if (info.name == name) return info;
    throw ConfigError("iscas85_info: unknown circuit '" + name + "'");
}

const char* c17_bench_text() {
    return "# c17 (ISCAS-85)\n"
           "INPUT(1)\n"
           "INPUT(2)\n"
           "INPUT(3)\n"
           "INPUT(6)\n"
           "INPUT(7)\n"
           "OUTPUT(22)\n"
           "OUTPUT(23)\n"
           "10 = NAND(1, 3)\n"
           "11 = NAND(3, 6)\n"
           "16 = NAND(2, 11)\n"
           "19 = NAND(11, 7)\n"
           "22 = NAND(10, 16)\n"
           "23 = NAND(16, 19)\n";
}

const std::vector<GeneratorSpec>& synthetic_specs() {
    // Average fanin ~2.2, PI/PO counts and depths scaled the way the
    // paper circuits' grow; seeds derive from the names so regeneration
    // is deterministic. All specs pass GeneratorSpec::validate.
    static const std::vector<GeneratorSpec> kSpecs = [] {
        std::vector<GeneratorSpec> specs = {
            {"synth10k", 256, 256, 10'000, 22'000, 40, 0},
            {"synth50k", 512, 512, 50'000, 110'000, 60, 0},
            {"synth100k", 1024, 1024, 100'000, 225'000, 72, 0},
            {"synth250k", 2048, 2048, 250'000, 560'000, 96, 0},
        };
        for (GeneratorSpec& spec : specs) spec.seed = hash_name(spec.name);
        return specs;
    }();
    return kSpecs;
}

const GeneratorSpec& synthetic_spec(const std::string& name) {
    for (const GeneratorSpec& spec : synthetic_specs())
        if (spec.name == name) return spec;
    throw ConfigError("synthetic_spec: unknown circuit '" + name + "'");
}

Netlist make_iscas(const std::string& name, const cells::Library& lib) {
    if (name == "c17") {
        std::istringstream in(c17_bench_text());
        Netlist nl = read_bench(in, lib, "c17");
        return nl;
    }
    for (const GeneratorSpec& spec : synthetic_specs())
        if (spec.name == name) return generate_circuit(spec, lib);
    const IscasInfo& info = iscas85_info(name);
    GeneratorSpec spec;
    spec.name = info.name;
    spec.num_inputs = info.inputs;
    spec.num_outputs = info.outputs;
    spec.num_gates = info.nodes - 2 - info.inputs;
    spec.fanin_sum = info.edges - info.inputs - info.outputs;
    spec.depth = info.depth;
    spec.seed = hash_name(info.name);
    return generate_circuit(spec, lib);
}

std::vector<std::string> iscas_names() {
    std::vector<std::string> names = {"c17"};
    for (const IscasInfo& info : iscas85_info()) names.push_back(info.name);
    return names;
}

std::vector<std::string> registry_names() {
    std::vector<std::string> names = iscas_names();
    for (const GeneratorSpec& spec : synthetic_specs()) names.push_back(spec.name);
    return names;
}

}  // namespace statim::netlist
