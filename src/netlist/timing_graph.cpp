#include "netlist/timing_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statim::netlist {

TimingGraph::TimingGraph(const Netlist& nl) : nl_(&nl) {
    const std::size_t nodes = nl.net_count() + 2;

    // --- Edges: gate edges first (contiguous per gate, pin order), then
    // virtual source->PI and PO->sink edges.
    gate_edge_offsets_.assign(nl.gate_count() + 1, 0);
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const Gate& g = nl.gate(GateId{static_cast<std::uint32_t>(gi)});
        const NodeId out = node_of_net(g.output);
        for (std::uint32_t pin = 0; pin < g.fanin.size(); ++pin) {
            gate_edge_list_.push_back(EdgeId{static_cast<std::uint32_t>(edges_.size())});
            edges_.push_back(Edge{node_of_net(g.fanin[pin]), out,
                                  GateId{static_cast<std::uint32_t>(gi)}, pin});
        }
        gate_edge_offsets_[gi + 1] = gate_edge_list_.size();
    }
    for (NetId pi : nl.primary_inputs())
        edges_.push_back(Edge{source(), node_of_net(pi), GateId::invalid(), 0});
    for (NetId po : nl.primary_outputs())
        edges_.push_back(Edge{node_of_net(po), sink(), GateId::invalid(), 0});

    // --- CSR adjacency.
    in_offsets_.assign(nodes + 1, 0);
    out_offsets_.assign(nodes + 1, 0);
    for (const Edge& e : edges_) {
        ++in_offsets_[e.to.index() + 1];
        ++out_offsets_[e.from.index() + 1];
    }
    for (std::size_t i = 1; i <= nodes; ++i) {
        in_offsets_[i] += in_offsets_[i - 1];
        out_offsets_[i] += out_offsets_[i - 1];
    }
    in_list_.resize(edges_.size());
    out_list_.resize(edges_.size());
    std::vector<std::size_t> in_fill(in_offsets_.begin(), in_offsets_.end() - 1);
    std::vector<std::size_t> out_fill(out_offsets_.begin(), out_offsets_.end() - 1);
    for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
        const Edge& e = edges_[ei];
        in_list_[in_fill[e.to.index()]++] = EdgeId{static_cast<std::uint32_t>(ei)};
        out_list_[out_fill[e.from.index()]++] = EdgeId{static_cast<std::uint32_t>(ei)};
    }

    // --- Longest-path levels from the source via Kahn's algorithm.
    levels_.assign(nodes, 0);
    std::vector<std::size_t> pending(nodes, 0);
    for (std::size_t n = 0; n < nodes; ++n)
        pending[n] = in_edges(NodeId{static_cast<std::uint32_t>(n)}).size();
    std::vector<NodeId> ready;
    for (std::size_t n = 0; n < nodes; ++n)
        if (pending[n] == 0) ready.push_back(NodeId{static_cast<std::uint32_t>(n)});
    if (ready.size() != 1 || ready.front() != source())
        throw NetlistError("TimingGraph: expected the virtual source to be the "
                           "only node without predecessors");
    std::size_t visited = 0;
    while (!ready.empty()) {
        const NodeId n = ready.back();
        ready.pop_back();
        ++visited;
        for (EdgeId ei : out_edges(n)) {
            const Edge& e = edges_[ei.index()];
            levels_[e.to.index()] = std::max(levels_[e.to.index()], levels_[n.index()] + 1);
            if (--pending[e.to.index()] == 0) ready.push_back(e.to);
        }
    }
    if (visited != nodes)
        throw NetlistError("TimingGraph: cycle detected (netlist not validated?)");
    num_levels_ = levels_[sink().index()] + 1;

    // The sink must be the unique deepest node; pin it to the last level so
    // "front reached the sink" is equivalent to "front reached num_levels-1".
    for (std::size_t n = 2; n < nodes; ++n) {
        if (levels_[n] >= levels_[sink().index()])
            throw NetlistError("TimingGraph: net node at or beyond the sink level");
    }

    // --- Level buckets (ascending node id within a level).
    level_offsets_.assign(num_levels_ + 1, 0);
    for (std::size_t n = 0; n < nodes; ++n) ++level_offsets_[levels_[n] + 1];
    for (std::size_t l = 1; l <= num_levels_; ++l) level_offsets_[l] += level_offsets_[l - 1];
    level_list_.resize(nodes);
    std::vector<std::size_t> level_fill(level_offsets_.begin(), level_offsets_.end() - 1);
    for (std::size_t n = 0; n < nodes; ++n)
        level_list_[level_fill[levels_[n]]++] = NodeId{static_cast<std::uint32_t>(n)};
}

}  // namespace statim::netlist
