// Timing graph per Definition 1 of the paper: a DAG with exactly one
// source node `ns` and one sink node `nf`. Nodes correspond to nets (plus
// the two virtual terminals); each edge is one gate input→output pin pair,
// or a zero-delay virtual edge source→PI-net / PO-net→sink.
//
// The graph is immutable once built. Gate widths and edge delays are kept
// by higher layers (sta/ssta), so a sizing iteration never rebuilds the
// graph. Node levels are longest-path depths from the source; every edge
// goes from a lower to a strictly higher level, which is what the paper's
// level-by-level perturbation-front propagation relies on.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/types.hpp"

namespace statim::netlist {

class TimingGraph {
  public:
    /// One directed timing edge.
    struct Edge {
        NodeId from;
        NodeId to;
        GateId gate;        ///< invalid for virtual source/sink edges
        std::uint32_t pin;  ///< input-pin index within the gate (0 for virtual)
    };

    /// Builds the graph; the netlist must outlive it and must have passed
    /// Netlist::validate.
    explicit TimingGraph(const Netlist& nl);

    [[nodiscard]] static constexpr NodeId source() noexcept { return NodeId{0}; }
    [[nodiscard]] static constexpr NodeId sink() noexcept { return NodeId{1}; }

    [[nodiscard]] std::size_t node_count() const noexcept { return in_offsets_.size() - 1; }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
    /// Unchecked in Release (debug-asserted): edge() sits in the fanin
    /// fold of every node evaluation and every front's bookkeeping.
    [[nodiscard]] const Edge& edge(EdgeId e) const noexcept {
        assert(e.index() < edges_.size());
        return edges_[e.index()];
    }

    [[nodiscard]] std::span<const EdgeId> in_edges(NodeId n) const noexcept {
        return {in_list_.data() + in_offsets_[n.index()],
                in_offsets_[n.index() + 1] - in_offsets_[n.index()]};
    }
    [[nodiscard]] std::span<const EdgeId> out_edges(NodeId n) const noexcept {
        return {out_list_.data() + out_offsets_[n.index()],
                out_offsets_[n.index() + 1] - out_offsets_[n.index()]};
    }

    /// Net-to-node mapping (nets are nodes 2..).
    [[nodiscard]] static NodeId node_of_net(NetId net) noexcept {
        return NodeId{net.value + 2};
    }
    /// Node-to-net mapping; invalid for the source/sink.
    [[nodiscard]] NetId net_of_node(NodeId node) const noexcept {
        return node.value < 2 ? NetId::invalid() : NetId{node.value - 2};
    }

    /// The node of a gate's output net.
    [[nodiscard]] NodeId output_node(GateId g) const {
        return node_of_net(nl_->gate(g).output);
    }
    /// The contiguous edges of gate g, in pin order.
    [[nodiscard]] std::span<const EdgeId> gate_edges(GateId g) const noexcept {
        return {gate_edge_list_.data() + gate_edge_offsets_[g.index()],
                gate_edge_offsets_[g.index() + 1] - gate_edge_offsets_[g.index()]};
    }

    /// Longest-path level from the source (source = 0). Unchecked in
    /// Release (debug-asserted): every wave scheduler reads it per node.
    [[nodiscard]] std::uint32_t level(NodeId n) const noexcept {
        assert(n.index() < levels_.size());
        return levels_[n.index()];
    }
    /// Level of a gate = level of its output node (the paper's gate level).
    [[nodiscard]] std::uint32_t gate_level(GateId g) const { return level(output_node(g)); }
    /// Total number of levels (sink level + 1).
    [[nodiscard]] std::uint32_t num_levels() const noexcept { return num_levels_; }
    /// All nodes at a level, ascending node id (deterministic iteration).
    [[nodiscard]] std::span<const NodeId> nodes_at_level(std::uint32_t l) const noexcept {
        return {level_list_.data() + level_offsets_[l],
                level_offsets_[l + 1] - level_offsets_[l]};
    }
    /// Nodes in a topological order compatible with levels.
    [[nodiscard]] std::span<const NodeId> topo_order() const noexcept { return level_list_; }

    [[nodiscard]] const Netlist& netlist() const noexcept { return *nl_; }

  private:
    const Netlist* nl_;
    std::vector<Edge> edges_;
    std::vector<std::size_t> in_offsets_, out_offsets_;
    std::vector<EdgeId> in_list_, out_list_;
    std::vector<std::size_t> gate_edge_offsets_;
    std::vector<EdgeId> gate_edge_list_;
    std::vector<std::uint32_t> levels_;
    std::uint32_t num_levels_{0};
    std::vector<std::size_t> level_offsets_;
    std::vector<NodeId> level_list_;
};

}  // namespace statim::netlist
