// Graphviz DOT export of a netlist for visual inspection / debugging.
// Gates become boxes labelled "name\ncell xW", nets become edges; optional
// per-gate annotations (e.g. criticality) colour the boxes.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "cells/library.hpp"
#include "netlist/netlist.hpp"

namespace statim::netlist {

struct DotOptions {
    bool show_widths{true};
    /// Optional per-gate score in [0,1] (e.g. criticality); sizes the red
    /// fill intensity. Empty = no fill.
    std::span<const double> gate_scores{};
    /// Left-to-right layout instead of top-down.
    bool rankdir_lr{true};
};

/// Writes `nl` as a DOT digraph.
void write_dot(std::ostream& out, const Netlist& nl, const cells::Library& lib,
               const DotOptions& options = {});

}  // namespace statim::netlist
