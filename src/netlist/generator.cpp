#include "netlist/generator.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace statim::netlist {

namespace {

constexpr int kMaxFanin = 4;

/// Weighted cell choice per fanin count; falls back to any fanin-matching
/// cell when the preferred family is missing from the library.
CellId pick_cell(const cells::Library& lib, int fanin, Rng& rng) {
    struct Choice {
        const char* name;
        double weight;
    };
    static constexpr Choice kByFanin[4][6] = {
        {{"INV", 0.85}, {"BUF", 0.15}, {nullptr, 0}, {nullptr, 0}, {nullptr, 0}, {nullptr, 0}},
        {{"NAND2", 0.35}, {"NOR2", 0.25}, {"AND2", 0.15}, {"OR2", 0.10}, {"XOR2", 0.10}, {"XNOR2", 0.05}},
        {{"NAND3", 0.40}, {"NOR3", 0.30}, {"AND3", 0.20}, {"OR3", 0.10}, {nullptr, 0}, {nullptr, 0}},
        {{"NAND4", 0.40}, {"NOR4", 0.30}, {"AND4", 0.20}, {"OR4", 0.10}, {nullptr, 0}, {nullptr, 0}},
    };
    double total = 0.0;
    for (const Choice& c : kByFanin[fanin - 1])
        if (c.name != nullptr && lib.find(c.name)) total += c.weight;
    if (total > 0.0) {
        double draw = rng.uniform(0.0, total);
        for (const Choice& c : kByFanin[fanin - 1]) {
            if (c.name == nullptr || !lib.find(c.name)) continue;
            draw -= c.weight;
            if (draw <= 0.0) return *lib.find(c.name);
        }
    }
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const CellId id{static_cast<std::uint32_t>(i)};
        if (lib.cell(id).fanin == fanin) return id;
    }
    throw ConfigError("generate_circuit: library has no cell with fanin " +
                      std::to_string(fanin));
}

}  // namespace

void GeneratorSpec::validate() const {
    if (name.empty()) throw ConfigError("GeneratorSpec: name required");
    if (num_inputs < 1 || num_outputs < 1 || num_gates < 1)
        throw ConfigError("GeneratorSpec '" + name + "': counts must be positive");
    if (num_outputs > num_gates)
        throw ConfigError("GeneratorSpec '" + name + "': more outputs than gates");
    if (depth < 1 || depth > num_gates)
        throw ConfigError("GeneratorSpec '" + name + "': depth must be in [1, gates]");
    // 64-bit comparisons: at the 100k+ gate scale 4*G and I+G-O can
    // overflow int, silently disabling the feasibility limits below.
    const auto gates = static_cast<std::int64_t>(num_gates);
    const auto pins = static_cast<std::int64_t>(fanin_sum);
    if (pins < gates || pins > std::int64_t{kMaxFanin} * gates)
        throw ConfigError("GeneratorSpec '" + name + "': fanin_sum outside [G, 4G]");
    if (pins < static_cast<std::int64_t>(num_inputs) + gates - num_outputs)
        throw ConfigError("GeneratorSpec '" + name +
                          "': fanin_sum too small to consume every internal net "
                          "(need >= I + G - O)");
    // Every gate at the last level must be a primary output, and the
    // level construction caps the last level at O gates; with a single
    // level that cap must hold the whole circuit (G > O would spin the
    // level spreader forever looking for a non-existent lower level).
    if (depth == 1 && num_gates > num_outputs)
        throw ConfigError("GeneratorSpec '" + name +
                          "': depth 1 needs every gate to be a primary output "
                          "(G <= O)");
}

Netlist generate_circuit(const GeneratorSpec& spec, const cells::Library& lib) {
    spec.validate();
    Rng rng(spec.seed);
    const int I = spec.num_inputs;
    const int O = spec.num_outputs;
    const int G = spec.num_gates;
    const int F = spec.fanin_sum;
    const int L = spec.depth;  // gate levels 1..L; PIs sit at level 0

    // ---- 1. Gates per level: one each to guarantee depth, the rest spread
    // uniformly; the last level is capped at O (its gates must all be POs).
    std::vector<int> counts(L + 1, 0);
    for (int l = 1; l <= L; ++l) counts[l] = 1;
    const int last_cap = std::max(1, std::min(O, (G + L - 1) / L));
    for (int extra = G - L; extra > 0;) {
        const int l = static_cast<int>(rng.uniform_int(1, L));
        if (l == L && counts[L] >= last_cap) continue;
        ++counts[l];
        --extra;
    }

    // Gate g (creation order) lives at level gate_level[g]; creation order
    // is level-sorted, so gates with lower index never depend on higher.
    std::vector<int> gate_level;
    gate_level.reserve(G);
    for (int l = 1; l <= L; ++l)
        for (int k = 0; k < counts[l]; ++k) gate_level.push_back(l);

    // gates_below[l] = number of gates with level < l (creation order is
    // level-sorted, so these are exactly the gate indices < gates_below[l]).
    std::vector<int> gates_below(L + 2, 0);
    for (int l = 1; l <= L + 1; ++l) gates_below[l] = gates_below[l - 1] + counts[l - 1];

    // ---- 2. Fanin degrees: start at 1, distribute the remaining F - G
    // among gates, capped by kMaxFanin and by the sources available below.
    std::vector<int> fanin(G, 1);
    auto avail_below = [&](int level) { return I + gates_below[level]; };
    {
        std::vector<int> eligible(G);
        std::iota(eligible.begin(), eligible.end(), 0);
        int remaining = F - G;
        while (remaining > 0) {
            if (eligible.empty())
                throw ConfigError("generate_circuit: cannot place all fanin pins");
            const std::size_t pick =
                static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1));
            const int g = eligible[pick];
            if (fanin[g] >= std::min(kMaxFanin, avail_below(gate_level[g]))) {
                eligible[pick] = eligible.back();
                eligible.pop_back();
                continue;
            }
            ++fanin[g];
            --remaining;
        }
    }

    // ---- 3. Primary outputs: every last-level gate, then fill by
    // descending level (deep gates are the natural outputs).
    std::vector<char> is_po(G, 0);
    int po_count = 0;
    for (int g = 0; g < G; ++g)
        if (gate_level[g] == L) {
            is_po[g] = 1;
            ++po_count;
        }
    for (int l = L - 1; l >= 1 && po_count < O; --l) {
        std::vector<int> at_level;
        for (int g = 0; g < G; ++g)
            if (gate_level[g] == l && !is_po[g]) at_level.push_back(g);
        while (!at_level.empty() && po_count < O) {
            const std::size_t pick =
                static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(at_level.size()) - 1));
            is_po[at_level[pick]] = 1;
            ++po_count;
            at_level[pick] = at_level.back();
            at_level.pop_back();
        }
    }
    if (po_count != O)
        throw ConfigError("generate_circuit: could not designate " + std::to_string(O) +
                          " primary outputs");

    // ---- 4. Suffix feasibility: internal sources at levels >= m must fit
    // in the fanin capacity of levels > m. Repair by moving fanin pins to
    // deeper gates when violated.
    std::vector<int> slots_at(L + 1, 0);
    for (int g = 0; g < G; ++g) slots_at[gate_level[g]] += fanin[g];
    std::vector<int> pool_at(L, 0);  // sources needing a consumer, per level
    pool_at[0] = I;
    for (int g = 0; g < G; ++g)
        if (gate_level[g] < L && !is_po[g]) ++pool_at[gate_level[g]];

    for (int m = L - 1; m >= 0; --m) {
        auto need_ge = [&](int lvl) {
            int need = 0;
            for (int x = lvl; x < L; ++x) need += pool_at[x];
            return need;
        };
        auto cap_gt = [&](int lvl) {
            int cap = 0;
            for (int x = lvl + 1; x <= L; ++x) cap += slots_at[x];
            return cap;
        };
        int guard = 0;
        while (need_ge(m) > cap_gt(m)) {
            // Move one fanin pin from a gate at level <= m to one above m.
            bool moved = false;
            for (int g = 0; g < G && !moved; ++g) {
                if (gate_level[g] > m && fanin[g] < std::min(kMaxFanin, avail_below(gate_level[g]))) {
                    for (int h = 0; h < G; ++h) {
                        if (gate_level[h] <= m && fanin[h] > 1) {
                            --fanin[h];
                            --slots_at[gate_level[h]];
                            ++fanin[g];
                            ++slots_at[gate_level[g]];
                            moved = true;
                            break;
                        }
                    }
                }
            }
            if (!moved || ++guard > F)
                throw ConfigError("generate_circuit '" + spec.name +
                                  "': infeasible level structure (cannot cover "
                                  "internal nets)");
        }
    }

    // ---- 5. Wiring. Sources are encoded 0..I-1 (PIs) and I+g (gate g).
    const auto src_level = [&](int s) { return s < I ? 0 : gate_level[s - I]; };
    std::vector<std::vector<int>> unconsumed(L);  // by source level
    std::vector<std::pair<int, int>> where(I + G, {-1, -1});  // src -> (level, idx)
    auto pool_add = [&](int s) {
        const int l = src_level(s);
        where[s] = {l, static_cast<int>(unconsumed[l].size())};
        unconsumed[l].push_back(s);
    };
    auto pool_remove = [&](int s) {
        const auto [l, idx] = where[s];
        if (l < 0) return;
        const int back = unconsumed[l].back();
        unconsumed[l][idx] = back;
        where[back].second = idx;
        unconsumed[l].pop_back();
        where[s] = {-1, -1};
    };
    for (int s = 0; s < I; ++s) pool_add(s);
    for (int g = 0; g < G; ++g)
        if (gate_level[g] < L && !is_po[g]) pool_add(I + g);

    std::vector<std::vector<int>> fanin_src(G);
    std::vector<int> consumed_cnt(I + G, 0);

    auto is_dup = [&](int g, int s) {
        const auto& f = fanin_src[g];
        return std::find(f.begin(), f.end(), s) != f.end();
    };

    for (int g = 0; g < G; ++g) {
        const int lvl = gate_level[g];
        fanin_src[g].reserve(fanin[g]);
        for (int slot = 0; slot < fanin[g]; ++slot) {
            int src = -1;
            // Prefer unconsumed sources, most-constrained (deepest) first.
            for (int h = lvl - 1; h >= 0 && src < 0; --h) {
                const auto& bucket = unconsumed[h];
                if (bucket.empty()) continue;
                for (int attempt = 0; attempt < 8 && src < 0; ++attempt) {
                    const int cand = bucket[static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
                    if (!is_dup(g, cand)) src = cand;
                }
                if (src < 0)
                    for (int cand : bucket)
                        if (!is_dup(g, cand)) {
                            src = cand;
                            break;
                        }
            }
            // Pool below this level exhausted: reconvergent edge to any
            // already-consumed source below.
            if (src < 0) {
                const int span = avail_below(lvl);
                for (int attempt = 0; attempt < 32 && src < 0; ++attempt) {
                    const int cand = static_cast<int>(rng.uniform_int(0, span - 1));
                    if (!is_dup(g, cand)) src = cand;
                }
                for (int cand = 0; cand < span && src < 0; ++cand)
                    if (!is_dup(g, cand)) src = cand;
            }
            if (src < 0)
                throw ConfigError("generate_circuit: gate fanin exceeds distinct "
                                  "sources available");
            fanin_src[g].push_back(src);
            ++consumed_cnt[src];
            pool_remove(src);
        }
    }

    // ---- 6. Fix-up: any still-unconsumed source steals a reconvergent or
    // PO-feeding fanin slot of a deeper gate.
    for (int l = 0; l < L; ++l) {
        while (!unconsumed[l].empty()) {
            const int s = unconsumed[l].back();
            bool placed = false;
            for (int g = 0; g < G && !placed; ++g) {
                if (gate_level[g] <= l || is_dup(g, s)) continue;
                for (int slot = 0; slot < fanin[g] && !placed; ++slot) {
                    const int t = fanin_src[g][slot];
                    const bool stealable =
                        consumed_cnt[t] >= 2 || (t >= I && is_po[t - I]);
                    if (!stealable) continue;
                    fanin_src[g][slot] = s;
                    --consumed_cnt[t];
                    ++consumed_cnt[s];
                    pool_remove(s);
                    placed = true;
                }
            }
            if (!placed)
                throw ConfigError("generate_circuit '" + spec.name +
                                  "': coverage fix-up failed");
        }
    }

    // ---- 7. Materialize the netlist.
    Netlist nl(spec.name);
    std::vector<NetId> src_net(I + G);
    for (int s = 0; s < I; ++s) {
        std::string net_name = std::to_string(s + 1);
        net_name.insert(0, "I");
        src_net[s] = nl.add_net(std::move(net_name));
        nl.mark_primary_input(src_net[s]);
    }
    for (int g = 0; g < G; ++g) {
        std::string net_name = std::to_string(g + 1);
        net_name.insert(0, "N");
        src_net[I + g] = nl.add_net(std::move(net_name));
    }
    for (int g = 0; g < G; ++g) {
        std::vector<NetId> ins;
        ins.reserve(fanin_src[g].size());
        for (int s : fanin_src[g]) ins.push_back(src_net[s]);
        const CellId cell = pick_cell(lib, static_cast<int>(ins.size()), rng);
        std::string gate_name = std::to_string(g + 1);
        gate_name.insert(0, "g");
        nl.add_gate(std::move(gate_name), cell, std::move(ins), src_net[I + g]);
    }
    for (int g = 0; g < G; ++g)
        if (is_po[g]) nl.mark_primary_output(src_net[I + g]);

    nl.validate(lib);
    return nl;
}

}  // namespace statim::netlist
