#include "netlist/netlist.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace statim::netlist {

NetId Netlist::add_net(std::string name) {
    if (name.empty()) throw NetlistError("add_net: empty net name");
    const auto id = static_cast<std::uint32_t>(nets_.size());
    if (!net_index_.emplace(name, id).second)
        throw NetlistError("add_net: duplicate net name '" + name + "'");
    nets_.push_back(Net{std::move(name), GateId::invalid(), {}, false, false});
    return NetId{id};
}

GateId Netlist::add_gate(std::string name, CellId cell, std::vector<NetId> fanin,
                         NetId output) {
    if (!cell.is_valid()) throw NetlistError("add_gate: invalid cell id");
    if (!output.is_valid() || output.index() >= nets_.size())
        throw NetlistError("add_gate: invalid output net");
    if (nets_[output.index()].driver.is_valid())
        throw NetlistError("add_gate: net '" + nets_[output.index()].name +
                           "' already has a driver");
    if (fanin.empty()) throw NetlistError("add_gate: gate needs at least one fanin");
    std::unordered_set<std::uint32_t> seen;
    for (NetId in : fanin) {
        if (!in.is_valid() || in.index() >= nets_.size())
            throw NetlistError("add_gate: invalid fanin net");
        if (in == output) throw NetlistError("add_gate: self-loop on gate '" + name + "'");
        if (!seen.insert(in.value).second)
            throw NetlistError("add_gate: duplicate fanin on gate '" + name + "'");
    }

    const GateId id{static_cast<std::uint32_t>(gates_.size())};
    for (NetId in : fanin) nets_[in.index()].sinks.push_back(id);
    nets_[output.index()].driver = id;
    gates_.push_back(Gate{std::move(name), cell, 1.0, std::move(fanin), output});
    return id;
}

void Netlist::mark_primary_input(NetId net) {
    Net& n = nets_.at(net.index());
    if (n.driver.is_valid())
        throw NetlistError("mark_primary_input: net '" + n.name + "' has a driver");
    if (!n.is_primary_input) {
        n.is_primary_input = true;
        primary_inputs_.push_back(net);
    }
}

void Netlist::mark_primary_output(NetId net) {
    Net& n = nets_.at(net.index());
    if (!n.is_primary_output) {
        n.is_primary_output = true;
        primary_outputs_.push_back(net);
    }
}

void Netlist::set_uniform_width(double w) {
    if (!(w > 0.0)) throw NetlistError("set_uniform_width: width must be positive");
    for (Gate& g : gates_) g.width = w;
}

NetId Netlist::find_net(std::string_view name) const noexcept {
    const auto it = net_index_.find(name);
    return it == net_index_.end() ? NetId::invalid() : NetId{it->second};
}

double Netlist::total_area(const cells::Library& lib) const {
    double area = 0.0;
    for (const Gate& g : gates_) area += cells::cell_area(lib.cell(g.cell), g.width);
    return area;
}

double Netlist::total_width() const noexcept {
    double w = 0.0;
    for (const Gate& g : gates_) w += g.width;
    return w;
}

void Netlist::validate(const cells::Library& lib) const {
    for (const Gate& g : gates_) {
        const cells::Cell& cell = lib.cell(g.cell);
        if (g.fanin.size() != static_cast<std::size_t>(cell.fanin))
            throw NetlistError("validate: gate '" + g.name + "' has " +
                               std::to_string(g.fanin.size()) + " fanins but cell " +
                               cell.name + " expects " + std::to_string(cell.fanin));
        if (!(g.width > 0.0))
            throw NetlistError("validate: gate '" + g.name + "' has non-positive width");
    }
    for (const Net& n : nets_) {
        if (!n.driver.is_valid() && !n.is_primary_input)
            throw NetlistError("validate: net '" + n.name + "' is undriven and not a PI");
        if (n.driver.is_valid() && n.is_primary_input)
            throw NetlistError("validate: net '" + n.name + "' is both driven and a PI");
        if (n.sinks.empty() && !n.is_primary_output)
            throw NetlistError("validate: net '" + n.name + "' is dangling (no sink, not a PO)");
    }
    if (primary_inputs_.empty()) throw NetlistError("validate: no primary inputs");
    if (primary_outputs_.empty()) throw NetlistError("validate: no primary outputs");

    // Cycle check via Kahn's algorithm over gates.
    std::vector<std::uint32_t> pending(gates_.size(), 0);
    std::vector<GateId> ready;
    for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
        std::uint32_t count = 0;
        for (NetId in : gates_[gi].fanin)
            if (nets_[in.index()].driver.is_valid()) ++count;
        pending[gi] = count;
        if (count == 0) ready.push_back(GateId{static_cast<std::uint32_t>(gi)});
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
        const GateId g = ready.back();
        ready.pop_back();
        ++visited;
        for (GateId sink : nets_[gates_[g.index()].output.index()].sinks)
            if (--pending[sink.index()] == 0) ready.push_back(sink);
    }
    if (visited != gates_.size())
        throw NetlistError("validate: combinational cycle detected");
}

}  // namespace statim::netlist
