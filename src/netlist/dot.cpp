#include "netlist/dot.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace statim::netlist {

namespace {

/// DOT identifiers: quote everything, escape embedded quotes.
std::string quoted(const std::string& name) {
    std::string out = "\"";
    for (char c : name) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

}  // namespace

void write_dot(std::ostream& out, const Netlist& nl, const cells::Library& lib,
               const DotOptions& options) {
    out << "digraph " << quoted(nl.name()) << " {\n";
    if (options.rankdir_lr) out << "  rankdir=LR;\n";
    out << "  node [shape=box, fontsize=10];\n";

    for (NetId pi : nl.primary_inputs())
        out << "  " << quoted("net_" + nl.net(pi).name)
            << " [shape=triangle, label=" << quoted(nl.net(pi).name) << "];\n";
    for (NetId po : nl.primary_outputs())
        out << "  " << quoted("out_" + nl.net(po).name)
            << " [shape=invtriangle, label=" << quoted(nl.net(po).name) << "];\n";

    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        const Gate& gate = nl.gate(g);
        std::string label = gate.name + "\\n" + lib.cell(gate.cell).name;
        if (options.show_widths) {
            char buf[32];
            std::snprintf(buf, sizeof buf, " x%.2f", gate.width);
            label += buf;
        }
        out << "  " << quoted("g_" + gate.name) << " [label=" << quoted(label);
        if (gi < options.gate_scores.size()) {
            const double score = std::clamp(options.gate_scores[gi], 0.0, 1.0);
            const int level = static_cast<int>(255.0 * (1.0 - 0.7 * score));
            char color[16];
            std::snprintf(color, sizeof color, "#ff%02x%02x", level, level);
            out << ", style=filled, fillcolor=\"" << color << '"';
        }
        out << "];\n";
    }

    // Wires: driver (or PI) -> consuming gates; POs get terminal arrows.
    for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
        const NetId n{static_cast<std::uint32_t>(ni)};
        const Net& net = nl.net(n);
        const std::string from = net.driver.is_valid()
                                     ? "g_" + nl.gate(net.driver).name
                                     : "net_" + net.name;
        for (GateId sink : net.sinks)
            out << "  " << quoted(from) << " -> " << quoted("g_" + nl.gate(sink).name)
                << ";\n";
        if (net.is_primary_output)
            out << "  " << quoted(from) << " -> " << quoted("out_" + net.name) << ";\n";
    }
    out << "}\n";
}

}  // namespace statim::netlist
