// Registry of the paper's benchmark circuits.
//
// `c17` is the genuine ISCAS-85 netlist (six NAND2s), embedded as .bench
// text and used as a golden reference in tests. The ten circuits of the
// paper's Tables 1-2 (c432 … c7552) are produced by the synthetic
// generator with the *timing-graph node/edge counts the paper reports*
// (Table 1 column 2), the real ISCAS-85 PI/PO counts, and realistic logic
// depths; see DESIGN.md §3 for why this substitution preserves the
// experiments' behaviour. Real .bench files can be dropped in via
// load_bench() at any time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cells/library.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"

namespace statim::netlist {

/// Structural targets for one paper circuit.
struct IscasInfo {
    std::string name;
    int nodes;    ///< timing-graph nodes (paper Table 1, col 2)
    int edges;    ///< timing-graph edges (paper Table 1, col 2)
    int inputs;   ///< primary inputs (real ISCAS-85 value)
    int outputs;  ///< primary outputs (real ISCAS-85 value)
    int depth;    ///< target logic depth
};

/// The ten circuits of the paper's evaluation, in Table 1 order.
[[nodiscard]] const std::vector<IscasInfo>& iscas85_info();

/// Info for one circuit by name; throws ConfigError when unknown.
[[nodiscard]] const IscasInfo& iscas85_info(const std::string& name);

/// The embedded genuine c17 netlist (.bench text).
[[nodiscard]] const char* c17_bench_text();

/// Synthetic scale-up circuits beyond the paper's table: 10k-250k gate
/// DAGs (the gate count is in the name) that exercise the incremental
/// and level-parallel engines at the scale where they matter. Generated
/// deterministically like the paper circuits; not part of Tables 1-2.
[[nodiscard]] const std::vector<GeneratorSpec>& synthetic_specs();

/// Spec for one synthetic circuit by name; throws ConfigError when unknown.
[[nodiscard]] const GeneratorSpec& synthetic_spec(const std::string& name);

/// Builds a circuit by name: "c17" parses the embedded netlist; the ten
/// paper circuits are generated to match their IscasInfo counts exactly;
/// the synthetic scale-up circuits are generated from synthetic_specs().
/// Widths start at `lib`'s minimum (1.0). Throws ConfigError when unknown.
[[nodiscard]] Netlist make_iscas(const std::string& name, const cells::Library& lib);

/// Names of the paper circuits only ("c17" plus the ten paper circuits).
[[nodiscard]] std::vector<std::string> iscas_names();

/// Every name make_iscas accepts (paper circuits + synthetic scale-ups).
[[nodiscard]] std::vector<std::string> registry_names();

}  // namespace statim::netlist
