// Logical netlist: gates (cell instances with a continuous width) wired by
// single-driver nets. Purely combinational — the paper (and ISCAS-85)
// covers combinational blocks between registers.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cells/library.hpp"
#include "util/types.hpp"

namespace statim::netlist {

/// One cell instance.
struct Gate {
    std::string name;
    CellId cell;
    double width{1.0};           ///< continuous width multiplier (>= min size)
    std::vector<NetId> fanin;    ///< input nets, pin order
    NetId output;                ///< driven net
};

/// One wire. Driven by at most one gate; primary inputs have no driver.
struct Net {
    std::string name;
    GateId driver{GateId::invalid()};   ///< invalid for primary inputs
    std::vector<GateId> sinks;          ///< gates reading this net
    bool is_primary_input{false};
    bool is_primary_output{false};
};

/// Mutable netlist with a builder-style API. `validate()` must pass before
/// the netlist is handed to the timing graph.
class Netlist {
  public:
    explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

    /// Creates a net; names must be unique and non-empty.
    NetId add_net(std::string name);
    /// Creates a gate driving `output` with `fanin` inputs (pin order).
    /// The net must not already have a driver; fanins must be distinct.
    GateId add_gate(std::string name, CellId cell, std::vector<NetId> fanin,
                    NetId output);

    void mark_primary_input(NetId net);
    void mark_primary_output(NetId net);

    /// Sets the width of every gate (e.g. to the minimum size).
    void set_uniform_width(double w);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }
    [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }
    [[nodiscard]] const Gate& gate(GateId id) const { return gates_.at(id.index()); }
    [[nodiscard]] Gate& gate(GateId id) { return gates_.at(id.index()); }
    [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id.index()); }
    [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
    [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
    [[nodiscard]] const std::vector<NetId>& primary_inputs() const noexcept {
        return primary_inputs_;
    }
    [[nodiscard]] const std::vector<NetId>& primary_outputs() const noexcept {
        return primary_outputs_;
    }

    /// Net id by name, or invalid.
    [[nodiscard]] NetId find_net(std::string_view name) const noexcept;

    /// Total area at current widths under `lib`.
    [[nodiscard]] double total_area(const cells::Library& lib) const;
    /// Total width sum (the paper's "total gate size").
    [[nodiscard]] double total_width() const noexcept;

    /// Structural checks: every fanin count matches the cell, every net is
    /// driven by a gate or marked PI, every net either feeds a gate or is a
    /// PO, the gate graph is acyclic, and PIs/POs are consistent. Throws
    /// NetlistError describing the first violation.
    void validate(const cells::Library& lib) const;

  private:
    /// Heterogeneous (string_view-keyed) lookup for the name index.
    struct NameHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::string name_;
    std::vector<Gate> gates_;
    std::vector<Net> nets_;
    std::vector<NetId> primary_inputs_;
    std::vector<NetId> primary_outputs_;
    // Net-name index: add_net's duplicate check and find_net used to scan
    // every net, which made building a 100k-gate netlist O(N^2) — the
    // dominant cost of the synthetic scale-up registry before this index.
    std::unordered_map<std::string, std::uint32_t, NameHash, std::equal_to<>>
        net_index_;
};

}  // namespace statim::netlist
