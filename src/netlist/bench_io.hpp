// ISCAS `.bench` netlist reader/writer.
//
// The reader accepts the classic ISCAS-85/89 format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G23 = DFF(G10)          # sequential: Q becomes a pseudo-PI, D a pseudo-PO
//
// Gate types map onto library cells by fanin count (NAND with 3 operands ->
// NAND3). Gates wider than the library's widest matching cell are
// decomposed into balanced trees of narrower cells (timing-equivalent
// surrogate; the Boolean function is irrelevant to the timing model).
// With a decomposition-free netlist, write_bench round-trips read_bench.
#pragma once

#include <iosfwd>
#include <string>

#include "cells/library.hpp"
#include "netlist/netlist.hpp"

namespace statim::netlist {

/// Parses a .bench stream into a validated netlist.
[[nodiscard]] Netlist read_bench(std::istream& in, const cells::Library& lib,
                                 const std::string& source_name = "<stream>");

/// Parses a .bench file by path.
[[nodiscard]] Netlist load_bench(const std::string& path, const cells::Library& lib);

/// Writes `nl` as .bench (cell names mapped back to bench gate types).
void write_bench(std::ostream& out, const Netlist& nl, const cells::Library& lib);

}  // namespace statim::netlist
