// Synthetic combinational-circuit generator.
//
// The paper evaluates on ISCAS-85 netlists synthesized into a commercial
// 180 nm library; neither artifact is redistributable, so the benches use
// circuits generated here instead. For each paper circuit the generator is
// given the *timing-graph* node/edge counts the paper reports (Table 1,
// column 2), the real ISCAS PI/PO counts, and a realistic logic depth, and
// produces a random DAG that matches the node and edge counts exactly:
//
//     nodes = PIs + gates + 2 (virtual source/sink)
//     edges = total gate fanin + PIs + POs (virtual edges)
//
// Structure is controlled to resemble synthesized logic: gates spread over
// `depth` levels, fanin in [1, 4] averaging ~2, every internal net consumed
// at least once (no dangling logic), reconvergent fanout via extra
// consumers. Generation is deterministic per (spec, seed).
#pragma once

#include <cstdint>
#include <string>

#include "cells/library.hpp"
#include "netlist/netlist.hpp"

namespace statim::netlist {

/// Target structure for one generated circuit.
struct GeneratorSpec {
    std::string name;
    int num_inputs{0};    ///< primary inputs (I)
    int num_outputs{0};   ///< primary outputs (O)
    int num_gates{0};     ///< gates (G); timing-graph nodes = I + G + 2
    int fanin_sum{0};     ///< total input pins (F); graph edges = F + I + O
    int depth{1};         ///< target number of gate levels
    std::uint64_t seed{1};

    /// Checks feasibility (counts positive, F within [G, 4G], coverage
    /// F >= I + G − O, O <= G, depth <= G, G <= O when depth == 1) with
    /// overflow-safe 64-bit limits, so 100k+ gate specs cannot slip
    /// through on int wraparound; throws ConfigError otherwise.
    void validate() const;
};

/// Generates a netlist matching `spec` exactly; the result passes
/// Netlist::validate(lib). Cells are drawn from INV/BUF and the 2-4 input
/// families of `lib`. Throws ConfigError if the spec is infeasible.
[[nodiscard]] Netlist generate_circuit(const GeneratorSpec& spec,
                                       const cells::Library& lib);

}  // namespace statim::netlist
