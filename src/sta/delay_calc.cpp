#include "sta/delay_calc.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace statim::sta {

DelayCalc::DelayCalc(const netlist::TimingGraph& graph, const cells::Library& lib)
    : graph_(&graph), lib_(&lib) {
    rebuild();
}

void DelayCalc::rebuild(std::size_t threads) {
    const netlist::Netlist& nl = graph_->netlist();
    load_ff_.assign(nl.gate_count(), 0.0);
    edge_delay_ns_.assign(graph_->edge_count(), 0.0);
    // Loads first (a gate's delay reads its own finished load), each pass
    // sharded per gate: recompute_gate_load writes load_ff_[g] only and
    // recompute_gate_delays writes gate g's own edges only.
    global_pool().parallel_chunks(
        nl.gate_count(), threads, [&](std::size_t begin, std::size_t end) {
            for (std::size_t gi = begin; gi < end; ++gi)
                recompute_gate_load(GateId{static_cast<std::uint32_t>(gi)});
        });
    global_pool().parallel_chunks(
        nl.gate_count(), threads, [&](std::size_t begin, std::size_t end) {
            for (std::size_t gi = begin; gi < end; ++gi)
                recompute_gate_delays(GateId{static_cast<std::uint32_t>(gi)});
        });
    dirty_.clear();
    fully_dirty_ = true;
}

void DelayCalc::record_dirty(std::span<const EdgeId> edges) {
    if (suppress_dirty_) return;  // bitwise-restoring trial in progress
    if (fully_dirty_) return;     // no point accumulating past "everything"
    if (dirty_.size() + edges.size() > edge_delay_ns_.size() * 2) {
        // The delta outgrew the circuit; a full refresh is cheaper.
        dirty_.clear();
        fully_dirty_ = true;
        return;
    }
    dirty_.insert(dirty_.end(), edges.begin(), edges.end());
}

void DelayCalc::recompute_gate_load(GateId g) {
    const netlist::Netlist& nl = graph_->netlist();
    const netlist::Net& out = nl.net(nl.gate(g).output);
    double load = out.is_primary_output ? lib_->output_load_ff() : 0.0;
    for (GateId sink : out.sinks) {
        const netlist::Gate& s = nl.gate(sink);
        load += cells::input_cap_ff(lib_->cell(s.cell), s.width);
    }
    load_ff_[g.index()] = load;
}

void DelayCalc::recompute_gate_delays(GateId g) {
    const netlist::Netlist& nl = graph_->netlist();
    const netlist::Gate& gate = nl.gate(g);
    const cells::Cell& cell = lib_->cell(gate.cell);
    const double load = load_ff_[g.index()];
    for (EdgeId e : graph_->gate_edges(g)) {
        const std::uint32_t pin = graph_->edge(e).pin;
        edge_delay_ns_[e.index()] = cells::edge_delay_ns(cell, gate.width, load, pin);
    }
}

namespace {

/// The distinct drivers of x's input nets, in first-appearance order.
/// Thread-local so the trial-resize hot path stays allocation-free; the
/// caller consumes the result before any other gate's query on the same
/// thread.
std::vector<GateId>& fanin_drivers_of(const netlist::Netlist& nl, GateId x) {
    static thread_local std::vector<GateId> drivers;
    drivers.clear();
    for (NetId in : nl.gate(x).fanin) {
        const GateId d = nl.net(in).driver;
        if (!d.is_valid()) continue;  // primary input
        if (std::find(drivers.begin(), drivers.end(), d) == drivers.end())
            drivers.push_back(d);
    }
    return drivers;
}

}  // namespace

void DelayCalc::affected_edges_into(GateId x, std::vector<EdgeId>& out) const {
    out.clear();
    for (EdgeId e : graph_->gate_edges(x)) out.push_back(e);
    for (GateId d : fanin_drivers_of(graph_->netlist(), x))
        for (EdgeId e : graph_->gate_edges(d)) out.push_back(e);
}

std::vector<EdgeId> DelayCalc::affected_edges(GateId x) const {
    std::vector<EdgeId> edges;
    affected_edges_into(x, edges);
    return edges;
}

void DelayCalc::recompute_for_resize(GateId x) {
    recompute_gate_load(x);  // load unchanged by own width, but cheap and safe
    recompute_gate_delays(x);
    for (GateId d : fanin_drivers_of(graph_->netlist(), x)) {
        recompute_gate_load(d);
        recompute_gate_delays(d);
    }
}

std::vector<EdgeId> DelayCalc::update_for_resize(GateId x) {
    recompute_for_resize(x);
    std::vector<EdgeId> edges = affected_edges(x);
    record_dirty(edges);
    return edges;
}

}  // namespace statim::sta
