#include "sta/sta.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace statim::sta {

namespace {

/// Relax one node from its in-edges; returns the max arrival.
double node_arrival(const netlist::TimingGraph& g, NodeId n,
                    std::span<const double> edge_delay,
                    const std::vector<double>& arrival) {
    double best = 0.0;
    bool any = false;
    for (EdgeId ei : g.in_edges(n)) {
        const auto& e = g.edge(ei);
        const double t = arrival[e.from.index()] + edge_delay[ei.index()];
        if (!any || t > best) best = t;
        any = true;
    }
    return any ? best : 0.0;
}

}  // namespace

double run_arrival_with(const netlist::TimingGraph& graph,
                        std::span<const double> edge_delay,
                        std::vector<double>& arrival) {
    arrival.assign(graph.node_count(), 0.0);
    for (NodeId n : graph.topo_order()) {
        if (n == netlist::TimingGraph::source()) continue;
        arrival[n.index()] = node_arrival(graph, n, edge_delay, arrival);
    }
    return arrival[netlist::TimingGraph::sink().index()];
}

double run_arrival(const DelayCalc& delays, std::vector<double>& arrival) {
    return run_arrival_with(delays.graph(), delays.edge_delays_ns(), arrival);
}

StaResult run_sta(const DelayCalc& delays) {
    const netlist::TimingGraph& graph = delays.graph();
    StaResult result;
    result.circuit_delay_ns = run_arrival(delays, result.arrival);

    result.required.assign(graph.node_count(),
                           std::numeric_limits<double>::infinity());
    result.required[netlist::TimingGraph::sink().index()] = result.circuit_delay_ns;
    const auto topo = graph.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId n = *it;
        if (n == netlist::TimingGraph::sink()) continue;
        double req = std::numeric_limits<double>::infinity();
        for (EdgeId ei : graph.out_edges(n)) {
            const auto& e = graph.edge(ei);
            req = std::min(req, result.required[e.to.index()] - delays.edge_delay_ns(ei));
        }
        result.required[n.index()] = req;
    }
    return result;
}

std::vector<EdgeId> critical_path(const DelayCalc& delays, const StaResult& sta) {
    const netlist::TimingGraph& graph = delays.graph();
    std::vector<EdgeId> path;
    NodeId n = netlist::TimingGraph::sink();
    // Numerical slop when matching arrival sums along the path.
    constexpr double kTol = 1e-9;
    while (n != netlist::TimingGraph::source()) {
        EdgeId pick = EdgeId::invalid();
        double best = -std::numeric_limits<double>::infinity();
        for (EdgeId ei : graph.in_edges(n)) {
            const auto& e = graph.edge(ei);
            const double t = sta.arrival[e.from.index()] + delays.edge_delay_ns(ei);
            if (t > best + kTol) {
                best = t;
                pick = ei;
            }
        }
        if (!pick.is_valid()) break;  // defensive; cannot happen on valid graphs
        path.push_back(pick);
        n = graph.edge(pick).from;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<GateId> gates_on_path(const netlist::TimingGraph& graph,
                                  std::span<const EdgeId> path) {
    std::vector<GateId> gates;
    for (EdgeId ei : path) {
        const GateId g = graph.edge(ei).gate;
        if (!g.is_valid()) continue;
        if (std::find(gates.begin(), gates.end(), g) == gates.end()) gates.push_back(g);
    }
    return gates;
}

double update_arrival_after_change(const DelayCalc& delays,
                                   std::span<const EdgeId> changed_edges,
                                   std::vector<double>& arrival) {
    const netlist::TimingGraph& graph = delays.graph();
    // Min-heap on node level: edge levels strictly increase, so when the
    // shallowest dirty node is popped, all of its predecessors are final.
    using Entry = std::pair<std::uint32_t, std::uint32_t>;  // (level, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<char> queued(graph.node_count(), 0);
    auto enqueue = [&](NodeId n) {
        if (!queued[n.index()]) {
            queued[n.index()] = 1;
            heap.emplace(graph.level(n), n.value);
        }
    };
    for (EdgeId ei : changed_edges) enqueue(graph.edge(ei).to);

    const std::span<const double> dense = delays.edge_delays_ns();
    while (!heap.empty()) {
        const NodeId n{heap.top().second};
        heap.pop();
        const double fresh = node_arrival(graph, n, dense, arrival);
        if (fresh == arrival[n.index()]) continue;
        arrival[n.index()] = fresh;
        for (EdgeId ei : graph.out_edges(n)) enqueue(graph.edge(ei).to);
    }
    return arrival[netlist::TimingGraph::sink().index()];
}

}  // namespace statim::sta
