// K-longest-path enumeration on the nominal delays.
//
// Best-first search with an exact admissible heuristic: each partial path
// from the source is scored by (delay so far + max remaining delay to the
// sink, from a backward pass). Completed paths therefore pop in exactly
// descending delay order, so the first K completions are the K longest
// paths. Used by the Figure 1 "wall" analyses and the criticality report.
#pragma once

#include <vector>

#include "sta/delay_calc.hpp"

namespace statim::sta {

struct Path {
    std::vector<EdgeId> edges;  ///< source-to-sink edge sequence
    double delay_ns{0.0};
};

/// Up to `k` longest source-to-sink paths, strictly ordered by descending
/// delay (ties broken deterministically by edge ids). k must be >= 1;
/// fewer paths are returned if the circuit has fewer than k.
/// `max_expansions` caps the search frontier as a safety valve.
[[nodiscard]] std::vector<Path> k_longest_paths(const DelayCalc& delays, std::size_t k,
                                                std::size_t max_expansions = 2'000'000);

}  // namespace statim::sta
