#include "sta/paths.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "util/error.hpp"

namespace statim::sta {

namespace {

/// Immutable shared-suffix list: partial paths share their prefixes, so a
/// frontier of P entries costs O(P) nodes, not O(P * length).
struct PathLink {
    EdgeId edge;
    std::shared_ptr<const PathLink> prev;
};

struct Frontier {
    double score;  // delay so far + exact max remaining to sink
    double delay_so_far;
    NodeId at;
    std::shared_ptr<const PathLink> tail;
    std::uint64_t serial;  // deterministic FIFO tie-break
};

struct FrontierOrder {
    bool operator()(const Frontier& a, const Frontier& b) const {
        if (a.score != b.score) return a.score < b.score;  // max-heap on score
        return a.serial > b.serial;
    }
};

}  // namespace

std::vector<Path> k_longest_paths(const DelayCalc& delays, std::size_t k,
                                  std::size_t max_expansions) {
    if (k == 0) throw ConfigError("k_longest_paths: k must be >= 1");
    const netlist::TimingGraph& graph = delays.graph();

    // Exact heuristic: longest remaining delay from each node to the sink.
    std::vector<double> to_sink(graph.node_count(), 0.0);
    const auto topo = graph.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId n = *it;
        double best = 0.0;
        for (EdgeId e : graph.out_edges(n))
            best = std::max(best, delays.edge_delay_ns(e) +
                                      to_sink[graph.edge(e).to.index()]);
        to_sink[n.index()] = best;
    }

    std::priority_queue<Frontier, std::vector<Frontier>, FrontierOrder> heap;
    std::uint64_t serial = 0;
    heap.push(Frontier{to_sink[netlist::TimingGraph::source().index()], 0.0,
                       netlist::TimingGraph::source(), nullptr, serial++});

    std::vector<Path> result;
    std::size_t expansions = 0;
    while (!heap.empty() && result.size() < k && expansions < max_expansions) {
        const Frontier top = heap.top();
        heap.pop();
        ++expansions;
        if (top.at == netlist::TimingGraph::sink()) {
            Path path;
            path.delay_ns = top.delay_so_far;
            for (const PathLink* link = top.tail.get(); link != nullptr;
                 link = link->prev.get())
                path.edges.push_back(link->edge);
            std::reverse(path.edges.begin(), path.edges.end());
            result.push_back(std::move(path));
            continue;
        }
        for (EdgeId e : graph.out_edges(top.at)) {
            const auto& edge = graph.edge(e);
            const double delay = top.delay_so_far + delays.edge_delay_ns(e);
            heap.push(Frontier{delay + to_sink[edge.to.index()], delay, edge.to,
                               std::make_shared<const PathLink>(PathLink{e, top.tail}),
                               serial++});
        }
    }
    return result;
}

}  // namespace statim::sta
