// Load and nominal-delay bookkeeping for the current gate widths.
//
// The delay model (cells/cell.hpp) makes a gate's delay depend on its own
// width and on the widths of its fanout gates (through Cload), so resizing
// gate x changes:
//   * the delays of x's own edges (Ccell grew), and
//   * the delays of every edge of each gate driving one of x's inputs
//     (their load grew by x's input-capacitance increase).
// `update_for_resize` recomputes exactly that set and reports the affected
// edges — the same set the paper's Initialize routine perturbs (Fig 7).
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/timing_graph.hpp"
#include "util/types.hpp"

namespace statim::sta {

class DelayCalc {
  public:
    /// Binds to a graph/library and computes loads and delays for the
    /// netlist's current widths. Graph and library must outlive this.
    DelayCalc(const netlist::TimingGraph& graph, const cells::Library& lib);

    /// Recomputes every load and edge delay from the netlist widths.
    /// Marks every edge dirty (see dirty_edges). `threads` shards the two
    /// per-gate passes (loads, then delays) on the global pool; each gate
    /// writes only its own slots, so the result is thread-count
    /// independent.
    void rebuild(std::size_t threads = 1);

    /// Call after changing the width of gate `x` in the netlist. Updates
    /// the loads of x's fanin driver gates and the nominal delays of all
    /// affected edges. Returns those edges (x's own edges followed by each
    /// fanin driver's edges; deterministic order, no duplicates). The
    /// edges are also appended to the dirty list.
    std::vector<EdgeId> update_for_resize(GateId x);

    // -- dirty-edge tracking ------------------------------------------------
    // Edges touched since the last mark_clean(), in touch order (possibly
    // with duplicates across calls). The SSTA layer consumes this to
    // re-propagate only the affected fanout cone. `fully_dirty` means "no
    // usable delta" (fresh construction, rebuild, or overflow) and forces
    // a full refresh.

    [[nodiscard]] bool fully_dirty() const noexcept { return fully_dirty_; }
    [[nodiscard]] std::span<const EdgeId> dirty_edges() const noexcept {
        return dirty_;
    }
    /// Forgets all recorded dirt (call after refreshing the consumer).
    void mark_clean() noexcept {
        dirty_.clear();
        fully_dirty_ = false;
    }

    /// RAII: suppresses dirty recording for an operation that restores
    /// every touched delay bit-for-bit before the next refresh (trial
    /// resizes). Candidate evaluation thus leaves no residue in the list.
    class SuppressDirty {
      public:
        explicit SuppressDirty(DelayCalc& dc) noexcept
            : dc_(&dc), prev_(dc.suppress_dirty_) {
            dc.suppress_dirty_ = true;
        }
        ~SuppressDirty() { dc_->suppress_dirty_ = prev_; }
        SuppressDirty(const SuppressDirty&) = delete;
        SuppressDirty& operator=(const SuppressDirty&) = delete;

      private:
        DelayCalc* dc_;
        bool prev_;
    };

    /// Edges whose delay update_for_resize(x) *would* touch (same order).
    [[nodiscard]] std::vector<EdgeId> affected_edges(GateId x) const;
    /// Pooled variant: fills `out` (cleared first) instead of returning a
    /// fresh vector — zero allocations once `out`'s capacity is warm.
    void affected_edges_into(GateId x, std::vector<EdgeId>& out) const;

    /// The recomputation half of update_for_resize (loads + nominal
    /// delays of x and its fanin drivers) without building the affected
    /// edge list or touching the dirty list — the trial-resize hot path,
    /// allocation-free.
    void recompute_for_resize(GateId x);

    /// Capacitive load (fF) currently driven by gate g. Unchecked in
    /// Release (debug-asserted): read per fanin inside trial resizes.
    [[nodiscard]] double load_ff(GateId g) const noexcept {
        assert(g.index() < load_ff_.size());
        return load_ff_[g.index()];
    }

    /// Nominal delay (ns) of a timing edge; virtual edges are 0.
    /// Unchecked in Release (debug-asserted): the edge-delay rederivation
    /// of every trial resize reads it per affected edge.
    [[nodiscard]] double edge_delay_ns(EdgeId e) const noexcept {
        assert(e.index() < edge_delay_ns_.size());
        return edge_delay_ns_[e.index()];
    }

    /// All nominal edge delays, indexed by edge id.
    [[nodiscard]] std::span<const double> edge_delays_ns() const noexcept {
        return edge_delay_ns_;
    }

    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return *graph_; }
    [[nodiscard]] const cells::Library& library() const noexcept { return *lib_; }

  private:
    void recompute_gate_load(GateId g);
    void recompute_gate_delays(GateId g);

    void record_dirty(std::span<const EdgeId> edges);

    const netlist::TimingGraph* graph_;
    const cells::Library* lib_;
    std::vector<double> load_ff_;        // per gate
    std::vector<double> edge_delay_ns_;  // per edge
    std::vector<EdgeId> dirty_;          // touched since mark_clean
    bool fully_dirty_{true};
    bool suppress_dirty_{false};
};

}  // namespace statim::sta
