// Load and nominal-delay bookkeeping for the current gate widths.
//
// The delay model (cells/cell.hpp) makes a gate's delay depend on its own
// width and on the widths of its fanout gates (through Cload), so resizing
// gate x changes:
//   * the delays of x's own edges (Ccell grew), and
//   * the delays of every edge of each gate driving one of x's inputs
//     (their load grew by x's input-capacitance increase).
// `update_for_resize` recomputes exactly that set and reports the affected
// edges — the same set the paper's Initialize routine perturbs (Fig 7).
#pragma once

#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/timing_graph.hpp"
#include "util/types.hpp"

namespace statim::sta {

class DelayCalc {
  public:
    /// Binds to a graph/library and computes loads and delays for the
    /// netlist's current widths. Graph and library must outlive this.
    DelayCalc(const netlist::TimingGraph& graph, const cells::Library& lib);

    /// Recomputes every load and edge delay from the netlist widths.
    void rebuild();

    /// Call after changing the width of gate `x` in the netlist. Updates
    /// the loads of x's fanin driver gates and the nominal delays of all
    /// affected edges. Returns those edges (x's own edges followed by each
    /// fanin driver's edges; deterministic order, no duplicates).
    std::vector<EdgeId> update_for_resize(GateId x);

    /// Edges whose delay update_for_resize(x) *would* touch (same order).
    [[nodiscard]] std::vector<EdgeId> affected_edges(GateId x) const;

    /// Capacitive load (fF) currently driven by gate g.
    [[nodiscard]] double load_ff(GateId g) const { return load_ff_.at(g.index()); }

    /// Nominal delay (ns) of a timing edge; virtual edges are 0.
    [[nodiscard]] double edge_delay_ns(EdgeId e) const {
        return edge_delay_ns_.at(e.index());
    }

    /// All nominal edge delays, indexed by edge id.
    [[nodiscard]] std::span<const double> edge_delays_ns() const noexcept {
        return edge_delay_ns_;
    }

    [[nodiscard]] const netlist::TimingGraph& graph() const noexcept { return *graph_; }
    [[nodiscard]] const cells::Library& library() const noexcept { return *lib_; }

  private:
    void recompute_gate_load(GateId g);
    void recompute_gate_delays(GateId g);

    const netlist::TimingGraph* graph_;
    const cells::Library* lib_;
    std::vector<double> load_ff_;        // per gate
    std::vector<double> edge_delay_ns_;  // per edge
};

}  // namespace statim::sta
