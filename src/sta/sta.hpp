// Deterministic (nominal) static timing analysis.
//
// Forward arrival pass, backward required pass, slacks, and critical-path
// extraction over the timing graph with DelayCalc's nominal edge delays.
// This is the engine behind the paper's deterministic coordinate-descent
// baseline and the per-sample evaluator used by Monte Carlo.
#pragma once

#include <span>
#include <vector>

#include "sta/delay_calc.hpp"

namespace statim::sta {

/// Result of a full nominal STA run.
struct StaResult {
    std::vector<double> arrival;   ///< per node (ns)
    std::vector<double> required;  ///< per node (ns)
    double circuit_delay_ns{0.0};  ///< arrival at the sink

    [[nodiscard]] double slack(NodeId n) const {
        return required.at(n.index()) - arrival.at(n.index());
    }
};

/// Runs forward and backward passes; O(N + E).
[[nodiscard]] StaResult run_sta(const DelayCalc& delays);

/// Forward arrival pass only (fills `arrival`, returns sink arrival).
double run_arrival(const DelayCalc& delays, std::vector<double>& arrival);

/// Arrival pass with per-edge delays supplied externally (used by Monte
/// Carlo with sampled delays). `edge_delay[e]` must cover every edge.
double run_arrival_with(const netlist::TimingGraph& graph,
                        std::span<const double> edge_delay,
                        std::vector<double>& arrival);

/// One critical path as a source-to-sink edge sequence (ties broken toward
/// the smallest edge id, so the path is deterministic).
[[nodiscard]] std::vector<EdgeId> critical_path(const DelayCalc& delays,
                                                const StaResult& sta);

/// Distinct gates on `path`, in path order (virtual edges skipped).
[[nodiscard]] std::vector<GateId> gates_on_path(const netlist::TimingGraph& graph,
                                                std::span<const EdgeId> path);

/// Incremental forward update after the delays of `changed_edges` were
/// modified (e.g. by DelayCalc::update_for_resize): repropagates only the
/// affected downstream cone of `arrival` and returns the new sink arrival.
double update_arrival_after_change(const DelayCalc& delays,
                                   std::span<const EdgeId> changed_edges,
                                   std::vector<double>& arrival);

}  // namespace statim::sta
