#!/usr/bin/env python3
"""Golden tests for statim-lint.

Runs the real linter over the fixture mini-repo in tests/lint_fixtures/tree
and asserts exact set equality between the emitted diagnostics and
tests/lint_fixtures/expected.json.  Exact equality cuts both ways: a rule
that stops firing on its seeded violation fails the test, and so does a
rule that starts firing somewhere it should not (e.g. a justified
suppression that stops silencing its rule).
"""

import json
import re
import subprocess
import sys
from pathlib import Path

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): error: \[(?P<rule>[a-z0-9-]+)\] ")


def main() -> int:
    tests_dir = Path(__file__).resolve().parent
    repo_root = tests_dir.parent
    fixture_root = tests_dir / "lint_fixtures" / "tree"
    expected_path = tests_dir / "lint_fixtures" / "expected.json"

    expected = {
        (path, line, rule)
        for path, line, rule in json.loads(expected_path.read_text())["violations"]
    }

    proc = subprocess.run(
        [sys.executable, str(repo_root / "tools" / "statim_lint"), "--root", str(fixture_root)],
        capture_output=True,
        text=True,
        check=False,
    )

    actual = set()
    unparsed = []
    for raw in proc.stdout.splitlines():
        line = raw.strip()
        if not line:
            continue
        m = DIAG_RE.match(line)
        if m is None:
            unparsed.append(line)
            continue
        rel = Path(m.group("path"))
        if rel.is_absolute():
            rel = rel.relative_to(fixture_root)
        actual.add((rel.as_posix(), int(m.group("line")), m.group("rule")))

    failures = []
    if unparsed:
        failures.append("unparseable diagnostic lines:\n  " + "\n  ".join(unparsed))
    missing = expected - actual
    if missing:
        failures.append(
            "expected diagnostics that did not fire:\n  "
            + "\n  ".join(f"{p}:{l} [{r}]" for p, l, r in sorted(missing))
        )
    surplus = actual - expected
    if surplus:
        failures.append(
            "unexpected diagnostics (should be silenced or absent):\n  "
            + "\n  ".join(f"{p}:{l} [{r}]" for p, l, r in sorted(surplus))
        )
    if proc.returncode != 1:
        failures.append(f"expected exit code 1 (violations found), got {proc.returncode}")
        if proc.stderr:
            failures.append("stderr:\n" + proc.stderr)

    if failures:
        print("lint_golden_test FAILED")
        for f in failures:
            print(f)
        return 1

    print(f"lint_golden_test PASSED ({len(expected)} diagnostics matched exactly)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
