// Checkpoint round-trip properties (api/checkpoint.hpp format contract):
// a SizingRun saved at iteration k and resumed must continue the
// *uninterrupted* trajectory bitwise — final widths, the full sizing
// history, the post-sizing arrivals and the downstream RNG stream — for
// any thread and batch count. The matrix runs in full on c432, c7552 and
// synth10k in optimized builds — the selector's criticality-floor
// pre-filter and cross-pass sensitivity cache made synth10k passes cheap
// enough to un-exile its full matrix from STATIM_HEAVY_TESTS=1 (the
// ROADMAP success metric). Debug (assert-laden) builds still trim the
// expensive circuits to one configuration; STATIM_HEAVY_TESTS=1
// additionally runs a deeper synth10k leg.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "api/statim.hpp"
#include "core/context.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::api {
namespace {

bool heavy_tests() {
    const char* env = std::getenv("STATIM_HEAVY_TESTS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Debug (assert-laden) builds run the sizer ~5-10x slower; the big
/// matrices trim themselves there so the Debug CI job stays fast, and
/// STATIM_HEAVY_TESTS=1 forces the full matrix anywhere.
constexpr bool kOptimizedBuild =
#ifdef NDEBUG
    true;
#else
    false;
#endif

Scenario make_scenario(int iterations, int batch, std::size_t threads) {
    Scenario s;
    s.name = "ckpt-matrix";
    s.max_iterations = iterations;
    s.gates_per_iteration = batch;
    s.threads = threads;
    s.seed = 99;
    return s;
}

std::vector<double> widths_of(const Design& design) {
    std::vector<double> widths;
    widths.reserve(design.gate_count());
    for (const auto& gate : design.netlist().gates()) widths.push_back(gate.width);
    return widths;
}

/// Bitwise history comparison: every field of every IterationRecord.
void expect_history_equal(const core::SizingResult& a, const core::SizingResult& b,
                          const std::string& label) {
    EXPECT_EQ(a.initial_objective_ns, b.initial_objective_ns) << label;
    EXPECT_EQ(a.final_objective_ns, b.final_objective_ns) << label;
    EXPECT_EQ(a.initial_area, b.initial_area) << label;
    EXPECT_EQ(a.final_area, b.final_area) << label;
    EXPECT_EQ(a.iterations, b.iterations) << label;
    EXPECT_EQ(a.stop_reason, b.stop_reason) << label;
    EXPECT_EQ(a.selector_passes, b.selector_passes) << label;
    EXPECT_EQ(a.conflicts_skipped, b.conflicts_skipped) << label;
    ASSERT_EQ(a.history.size(), b.history.size()) << label;
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        const core::IterationRecord& ra = a.history[i];
        const core::IterationRecord& rb = b.history[i];
        EXPECT_EQ(ra.iteration, rb.iteration) << label << " record " << i;
        EXPECT_EQ(ra.gate, rb.gate) << label << " record " << i;
        EXPECT_EQ(ra.sensitivity, rb.sensitivity) << label << " record " << i;
        EXPECT_EQ(ra.objective_after_ns, rb.objective_after_ns)
            << label << " record " << i;
        EXPECT_EQ(ra.area_after, rb.area_after) << label << " record " << i;
        EXPECT_EQ(ra.width_after, rb.width_after) << label << " record " << i;
    }
}

/// Post-sizing arrivals of every node, from a fresh full SSTA on the
/// sized widths (the same reconstruction resume itself relies on).
void expect_arrivals_equal(Design& a, Design& b, const std::string& label) {
    core::Context ctx_a(a.netlist(), a.library());
    core::Context ctx_b(b.netlist(), b.library());
    ctx_a.run_ssta();
    ctx_b.run_ssta();
    ASSERT_EQ(ctx_a.graph().node_count(), ctx_b.graph().node_count()) << label;
    for (std::size_t n = 0; n < ctx_a.graph().node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        ASSERT_TRUE(ctx_a.engine().arrival(node) == ctx_b.engine().arrival(node))
            << label << " node " << n;
    }
}

/// The acceptance property on one (circuit, iterations, save-at) choice:
/// interrupted-and-resumed == uninterrupted, over the given thread × batch
/// configurations.
void run_matrix_configs(const char* circuit, int iterations, int save_at,
                        const std::vector<int>& batches,
                        const std::vector<std::size_t>& thread_counts) {
    const std::size_t pool_before = default_thread_count();
    for (const int batch : batches) {
        for (const std::size_t threads : thread_counts) {
            const std::string label = std::string(circuit) + " batch=" +
                                      std::to_string(batch) +
                                      " threads=" + std::to_string(threads);
            set_default_thread_count(threads);
            const Scenario scenario = make_scenario(iterations, batch, threads);

            // Uninterrupted reference.
            Design ref = Design::from_registry(circuit);
            SizingRun ref_run(ref, scenario);
            ref_run.run_to_convergence();

            // Interrupted at iteration `save_at`, checkpointed, resumed
            // onto a *fresh* design (min-size widths: resume must install
            // the checkpoint's).
            Design cut = Design::from_registry(circuit);
            SizingRun cut_run(cut, scenario);
            for (int i = 0; i < save_at; ++i) cut_run.step();
            // Exercise the RNG spare-caching path across the checkpoint.
            (void)cut_run.rng().normal();
            std::stringstream stream;
            cut_run.save(stream);

            Design resumed = Design::from_registry(circuit);
            SizingRun res_run = SizingRun::resume(resumed, stream);
            EXPECT_EQ(res_run.iteration(), save_at) << label;
            res_run.run_to_convergence();

            expect_history_equal(ref_run.result(), res_run.result(), label);
            const std::vector<double> ref_widths = widths_of(ref);
            EXPECT_EQ(ref_widths, widths_of(resumed)) << label;
            expect_arrivals_equal(ref, resumed, label);

            // The downstream stream continues bit-identically too (the
            // reference consumes the same pre-checkpoint draw).
            (void)ref_run.rng().normal();
            for (int i = 0; i < 8; ++i)
                EXPECT_EQ(ref_run.rng().normal(), res_run.rng().normal())
                    << label << " draw " << i;
        }
    }
    set_default_thread_count(pool_before);
}

/// Full thread {1,2,7} × batch {1,4} matrix; `light` trims to one
/// configuration for the expensive circuits.
void run_matrix(const char* circuit, int iterations, int save_at, bool light) {
    run_matrix_configs(circuit, iterations, save_at,
                       light ? std::vector<int>{1} : std::vector<int>{1, 4},
                       light ? std::vector<std::size_t>{7}
                             : std::vector<std::size_t>{1, 2, 7});
}

TEST(Checkpoint, ResumeBitIdenticalC432) { run_matrix("c432", 6, 3, false); }

TEST(Checkpoint, ResumeBitIdenticalC7552) {
    run_matrix("c7552", 4, 2, !kOptimizedBuild && !heavy_tests());
}

// synth10k checkpoint coverage in the default optimized suite: two
// batch-1 configurations of the thread × batch matrix, one test each so
// both fit the per-test ctest timeout (a serial synth10k sizing config
// is ~4 min on the 1-core container even with the selector floor +
// cache — the PR-7 layers bought ~23% per pass, not the 5× the full
// six-config matrix would need; batch-4 configs run the k=4 top-k race,
// whose weaker pruning threshold puts them past the timeout outright —
// the c7552 matrix above covers the batch axis by default). The full
// synth10k matrix stays heavy-gated below.
TEST(Checkpoint, ResumeBitIdenticalSynth10kSerial) {
    if (!kOptimizedBuild && !heavy_tests())
        GTEST_SKIP() << "synth10k sizing needs an optimized build "
                        "(STATIM_HEAVY_TESTS=1 forces it)";
    // The paper path: serial selector, one commit per pass.
    run_matrix_configs("synth10k", 2, 1, {1}, {1});
}

TEST(Checkpoint, ResumeBitIdenticalSynth10kThreaded) {
    if (!kOptimizedBuild && !heavy_tests())
        GTEST_SKIP() << "synth10k sizing needs an optimized build "
                        "(STATIM_HEAVY_TESTS=1 forces it)";
    // Sharded bound races + sharded SSTA waves across the checkpoint.
    run_matrix_configs("synth10k", 2, 1, {1}, {2});
}

TEST(Checkpoint, ResumeBitIdenticalSynth10k) {
    // Heavy-only: the full thread {1,2,7} × batch {1,4} matrix (~35 min
    // on the container; the corner tests above cover the default suite).
    if (!heavy_tests())
        GTEST_SKIP() << "full synth10k matrix runs under STATIM_HEAVY_TESTS=1";
    run_matrix("synth10k", 2, 1, false);
}

TEST(Checkpoint, ResumeBitIdenticalSynth10kDeep) {
    // Heavy-only: a longer synth10k run with a mid-run save point, so the
    // resumed trajectory crosses several warm-cache selector passes.
    if (!heavy_tests())
        GTEST_SKIP() << "deep synth10k matrix runs under STATIM_HEAVY_TESTS=1";
    run_matrix("synth10k", 4, 2, false);
}

TEST(Checkpoint, SaveAtEveryIterationResumesIdentically) {
    // Sweep the save point through the whole run, including iteration 0
    // (nothing stepped yet) and the finished state.
    const Scenario scenario = make_scenario(5, 1, 2);
    Design ref = Design::from_registry("c432");
    SizingRun ref_run(ref, scenario);
    ref_run.run_to_convergence();

    for (int save_at = 0; save_at <= 5; ++save_at) {
        Design cut = Design::from_registry("c432");
        SizingRun cut_run(cut, scenario);
        for (int i = 0; i < save_at; ++i) cut_run.step();
        std::stringstream stream;
        cut_run.save(stream);

        Design resumed = Design::from_registry("c432");
        SizingRun res_run = SizingRun::resume(resumed, stream);
        res_run.run_to_convergence();
        expect_history_equal(ref_run.result(), res_run.result(),
                             "save_at=" + std::to_string(save_at));
        EXPECT_EQ(widths_of(ref), widths_of(resumed)) << save_at;
    }
}

TEST(Checkpoint, ResumeCrossesThreadAndBatchCounts) {
    // A checkpoint taken under one (threads, batch) configuration and
    // resumed under another still reproduces the uninterrupted history:
    // both knobs are performance-only. The resumed run keeps its own
    // scenario copy, so the checkpoint's values are what continue.
    const std::size_t pool_before = default_thread_count();
    const Scenario scenario = make_scenario(6, 1, 1);
    Design ref = Design::from_registry("c432");
    SizingRun ref_run(ref, scenario);
    ref_run.run_to_convergence();

    set_default_thread_count(1);
    Design cut = Design::from_registry("c432");
    SizingRun cut_run(cut, scenario);
    for (int i = 0; i < 3; ++i) cut_run.step();
    std::stringstream stream;
    cut_run.save(stream);

    // Resume on a 7-thread pool: the scenario's configured threads (1)
    // still shard the work, so the trajectory cannot change.
    set_default_thread_count(7);
    Design resumed = Design::from_registry("c432");
    SizingRun res_run = SizingRun::resume(resumed, stream);
    res_run.run_to_convergence();
    expect_history_equal(ref_run.result(), res_run.result(), "cross-thread");
    EXPECT_EQ(widths_of(ref), widths_of(resumed));
    set_default_thread_count(pool_before);
}

TEST(Checkpoint, ResolvedBatchIsPinnedInCheckpoint) {
    // gates_per_iteration == 0 resolves from STATIM_BATCH at run start;
    // the checkpoint must carry the *resolved* value so resuming under a
    // different environment still continues the uninterrupted trajectory.
    const char* ambient = std::getenv("STATIM_BATCH");
    const std::string saved_env = ambient ? ambient : "";
    ::setenv("STATIM_BATCH", "2", 1);

    const Scenario scenario = make_scenario(4, 0, 1);  // 0 = from env
    Design ref = Design::from_registry("c432");
    SizingRun ref_run(ref, scenario);
    ref_run.run_to_convergence();

    Design cut = Design::from_registry("c432");
    SizingRun cut_run(cut, scenario);
    cut_run.step();
    cut_run.step();
    std::stringstream stream;
    cut_run.save(stream);

    ::setenv("STATIM_BATCH", "5", 1);  // hostile resume environment
    Design resumed = Design::from_registry("c432");
    SizingRun res_run = SizingRun::resume(resumed, stream);
    EXPECT_EQ(res_run.scenario().gates_per_iteration, 2);
    res_run.run_to_convergence();
    expect_history_equal(ref_run.result(), res_run.result(), "env-pinned batch");
    EXPECT_EQ(widths_of(ref), widths_of(resumed));

    if (ambient) ::setenv("STATIM_BATCH", saved_env.c_str(), 1);
    else ::unsetenv("STATIM_BATCH");
}

TEST(Checkpoint, HeaderPeekAndVersionGate) {
    const Scenario scenario = make_scenario(2, 1, 1);
    Design design = Design::from_registry("c17");
    SizingRun run(design, scenario);
    run.step();
    std::stringstream stream;
    run.save(stream);

    const CheckpointInfo info = checkpoint_info(stream);
    EXPECT_EQ(info.version, kCheckpointFormatVersion);
    EXPECT_EQ(info.design, "c17");
    EXPECT_EQ(info.scenario, "ckpt-matrix");
    EXPECT_EQ(info.iteration, 1);
    EXPECT_FALSE(info.finished);

    // A bumped version must be rejected outright (no migration).
    std::string text = stream.str();
    const std::string tag = "statim-checkpoint v";
    text.replace(text.find(tag) + tag.size(), 1,
                 std::to_string(kCheckpointFormatVersion + 1));
    std::istringstream bumped(text);
    EXPECT_THROW((void)checkpoint_info(bumped), ParseError);
    std::istringstream bumped2(text);
    EXPECT_THROW((void)SizingRun::resume(design, bumped2), ParseError);

    std::istringstream not_a_checkpoint("totally not a checkpoint\n");
    EXPECT_THROW((void)checkpoint_info(not_a_checkpoint), ParseError);
}

TEST(Checkpoint, MalformedStreamsThrowCleanErrors) {
    const Scenario scenario = make_scenario(2, 1, 1);
    Design design = Design::from_registry("c17");
    SizingRun run(design, scenario);
    run.step();
    std::stringstream stream;
    run.save(stream);
    const std::string text = stream.str();

    // Truncation at any line boundary is a ParseError, never a crash.
    std::size_t pos = 0;
    while ((pos = text.find('\n', pos + 1)) != std::string::npos) {
        if (pos + 1 >= text.size()) break;  // full stream parses fine
        std::istringstream truncated(text.substr(0, pos + 1));
        EXPECT_THROW((void)SizingRun::resume(design, truncated), ParseError)
            << "truncated at byte " << pos;
    }

    // Corrupt a numeric field.
    std::string corrupt = text;
    corrupt.replace(corrupt.find("grid_dt_ns ") + 11, 3, "zzz");
    std::istringstream bad(corrupt);
    EXPECT_THROW((void)SizingRun::resume(design, bad), ParseError);

    // Implausible or overflowing element counts are a ParseError, not a
    // std::length_error/bad_alloc out of reserve().
    for (const char* count : {"18446744073709551615", "99999999999999999999999",
                              "4294967296"}) {
        std::string huge = text;
        const std::size_t pos = huge.find("widths ") + 7;
        huge.replace(pos, huge.find('\n', pos) - pos, count);
        std::istringstream in(huge);
        EXPECT_THROW((void)SizingRun::resume(design, in), ParseError) << count;
    }
}

TEST(Checkpoint, SaveRejectsNamesTheFormatCannotRoundTrip) {
    // The format is line-oriented: an empty scenario name would produce
    // a stream load_checkpoint cannot parse, so save() must refuse it
    // up front (newline-containing names are already rejected by
    // Scenario::validate at run construction).
    Scenario anonymous = make_scenario(1, 1, 1);
    anonymous.name = "";
    Design design = Design::from_registry("c17");
    SizingRun run(design, anonymous);
    std::stringstream out;
    EXPECT_THROW(run.save(out), ConfigError);
    EXPECT_TRUE(out.str().empty());  // nothing partial written

    Scenario multiline = make_scenario(1, 1, 1);
    multiline.name = "a\nb";
    Design design2 = Design::from_registry("c17");
    EXPECT_THROW((void)SizingRun(design2, multiline), ConfigError);

    // The reader re-joins tokenized names with single spaces, so tabs
    // and consecutive/edge spaces would be mangled on load — rejected.
    for (const char* bad : {"a\tb", "a  b", " a", "a "}) {
        Scenario s = make_scenario(1, 1, 1);
        s.name = bad;
        Design d = Design::from_registry("c17");
        SizingRun r(d, s);
        std::stringstream sink;
        EXPECT_THROW(r.save(sink), ConfigError) << "name '" << bad << "'";
    }
    // A single interior space is fine and round-trips.
    Scenario spaced = make_scenario(1, 1, 1);
    spaced.name = "two words";
    Design d3 = Design::from_registry("c17");
    SizingRun r3(d3, spaced);
    std::stringstream stream;
    r3.save(stream);
    EXPECT_EQ(checkpoint_info(stream).scenario, "two words");
}

TEST(Checkpoint, ResumeRejectsMismatchedDesign) {
    const Scenario scenario = make_scenario(1, 1, 1);
    Design c17 = Design::from_registry("c17");
    SizingRun run(c17, scenario);
    run.step();
    std::stringstream stream;
    run.save(stream);

    Design c432 = Design::from_registry("c432");
    EXPECT_THROW((void)SizingRun::resume(c432, stream), ConfigError);
}

TEST(Checkpoint, ResumeRejectsMismatchedLibrary) {
    // Same circuit, different delay model: name and gate count match,
    // but the continuation would diverge — the library fingerprint in
    // the checkpoint catches it.
    const Scenario scenario = make_scenario(1, 1, 1);
    Design design = Design::from_registry("c17");
    SizingRun run(design, scenario);
    run.step();
    std::stringstream stream;
    run.save(stream);

    cells::Library tweaked = cells::Library::standard_180nm();
    tweaked.set_sigma_fraction(0.2);
    Design other = Design::from_registry("c17", std::move(tweaked));
    EXPECT_THROW((void)SizingRun::resume(other, stream), ConfigError);
}

}  // namespace
}  // namespace statim::api
