// Unit tests for the deterministic STA engine and load/delay calculator.
#include <gtest/gtest.h>

#include "netlist/iscas.hpp"
#include "netlist/timing_graph.hpp"
#include "sta/delay_calc.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace statim::sta {
namespace {

using netlist::Netlist;
using netlist::TimingGraph;

/// a -> INV g1 -> INV g2 -> PO. All delays hand-computable.
struct Chain {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl{"chain"};
    NetId a, m, y;
    GateId g1, g2;

    Chain() {
        a = nl.add_net("a");
        m = nl.add_net("m");
        y = nl.add_net("y");
        nl.mark_primary_input(a);
        const CellId inv = lib.require("INV");
        g1 = nl.add_gate("g1", inv, {a}, m);
        g2 = nl.add_gate("g2", inv, {m}, y);
        nl.mark_primary_output(y);
        nl.validate(lib);
    }
};

TEST(DelayCalcTest, HandComputedChainDelays) {
    Chain c;
    const TimingGraph graph(c.nl);
    const DelayCalc dc(graph, c.lib);

    // g2 drives the PO load (10 fF); g1 drives g2's input cap (4 fF).
    EXPECT_DOUBLE_EQ(dc.load_ff(c.g2), 10.0);
    EXPECT_DOUBLE_EQ(dc.load_ff(c.g1), 4.0);
    const EdgeId e1 = graph.gate_edges(c.g1)[0];
    const EdgeId e2 = graph.gate_edges(c.g2)[0];
    EXPECT_DOUBLE_EQ(dc.edge_delay_ns(e1), 0.022 + 0.018 * 4.0 / 4.0);
    EXPECT_DOUBLE_EQ(dc.edge_delay_ns(e2), 0.022 + 0.018 * 10.0 / 4.0);
}

TEST(DelayCalcTest, ResizeUpdatesSelfAndFaninDelays) {
    Chain c;
    const TimingGraph graph(c.nl);
    DelayCalc dc(graph, c.lib);
    const EdgeId e1 = graph.gate_edges(c.g1)[0];
    const EdgeId e2 = graph.gate_edges(c.g2)[0];
    const double d1_before = dc.edge_delay_ns(e1);
    const double d2_before = dc.edge_delay_ns(e2);

    c.nl.gate(c.g2).width = 2.0;
    const auto changed = dc.update_for_resize(c.g2);

    // g2 got faster; g1 got slower (its load doubled to 8 fF).
    EXPECT_DOUBLE_EQ(dc.edge_delay_ns(e2), 0.022 + 0.018 * 10.0 / 8.0);
    EXPECT_LT(dc.edge_delay_ns(e2), d2_before);
    EXPECT_DOUBLE_EQ(dc.load_ff(c.g1), 8.0);
    EXPECT_DOUBLE_EQ(dc.edge_delay_ns(e1), 0.022 + 0.018 * 8.0 / 4.0);
    EXPECT_GT(dc.edge_delay_ns(e1), d1_before);

    // Affected edges: g2's own edge plus fanin driver g1's edge.
    ASSERT_EQ(changed.size(), 2u);
    EXPECT_EQ(changed[0], e2);
    EXPECT_EQ(changed[1], e1);
}

TEST(DelayCalcTest, AffectedEdgesSkipsPrimaryInputDrivers) {
    Chain c;
    const TimingGraph graph(c.nl);
    const DelayCalc dc(graph, c.lib);
    // g1's fanin is the PI net "a": only g1's own edge is affected.
    const auto edges = dc.affected_edges(c.g1);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0], graph.gate_edges(c.g1)[0]);
}

TEST(StaTest, ChainArrivalAndSlack) {
    Chain c;
    const TimingGraph graph(c.nl);
    const DelayCalc dc(graph, c.lib);
    const StaResult sta = run_sta(dc);

    const double d1 = 0.022 + 0.018 * 4.0 / 4.0;
    const double d2 = 0.022 + 0.018 * 10.0 / 4.0;
    EXPECT_DOUBLE_EQ(sta.circuit_delay_ns, d1 + d2);
    EXPECT_DOUBLE_EQ(sta.arrival[TimingGraph::node_of_net(c.m).index()], d1);
    // Single path: slack is zero everywhere on it.
    EXPECT_NEAR(sta.slack(TimingGraph::node_of_net(c.m)), 0.0, 1e-12);
    EXPECT_NEAR(sta.slack(TimingGraph::source()), 0.0, 1e-12);
}

TEST(StaTest, ArrivalMonotoneAlongEdges) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    const TimingGraph graph(nl);
    const DelayCalc dc(graph, lib);
    const StaResult sta = run_sta(dc);
    for (std::size_t ei = 0; ei < graph.edge_count(); ++ei) {
        const auto& e = graph.edge(EdgeId{static_cast<std::uint32_t>(ei)});
        EXPECT_LE(sta.arrival[e.from.index()] + dc.edge_delay_ns(EdgeId{static_cast<std::uint32_t>(ei)}),
                  sta.arrival[e.to.index()] + 1e-12);
    }
}

TEST(StaTest, RequiredNeverBelowArrivalOnUsedNodes) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c880", lib);
    const TimingGraph graph(nl);
    const DelayCalc dc(graph, lib);
    const StaResult sta = run_sta(dc);
    for (std::size_t n = 0; n < graph.node_count(); ++n)
        EXPECT_GE(sta.slack(NodeId{static_cast<std::uint32_t>(n)}), -1e-12);
}

TEST(StaTest, CriticalPathConnectsSourceToSink) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    const TimingGraph graph(nl);
    const DelayCalc dc(graph, lib);
    const StaResult sta = run_sta(dc);
    const auto path = critical_path(dc, sta);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(graph.edge(path.front()).from, TimingGraph::source());
    EXPECT_EQ(graph.edge(path.back()).to, TimingGraph::sink());
    double sum = 0.0;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i) EXPECT_EQ(graph.edge(path[i - 1]).to, graph.edge(path[i]).from);
        sum += dc.edge_delay_ns(path[i]);
    }
    EXPECT_NEAR(sum, sta.circuit_delay_ns, 1e-9);

    const auto gates = gates_on_path(graph, path);
    EXPECT_FALSE(gates.empty());
    EXPECT_LE(gates.size(), path.size());
}

TEST(StaTest, IncrementalMatchesFullRecompute) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c880", lib);
    const TimingGraph graph(nl);
    DelayCalc dc(graph, lib);

    std::vector<double> incremental;
    (void)run_arrival(dc, incremental);

    Rng rng(77);
    for (int step = 0; step < 25; ++step) {
        const GateId g{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(nl.gate_count()) - 1))};
        nl.gate(g).width += 0.25;
        const auto changed = dc.update_for_resize(g);
        const double inc_delay = update_arrival_after_change(dc, changed, incremental);

        std::vector<double> full;
        const double full_delay = run_arrival(dc, full);
        ASSERT_EQ(incremental.size(), full.size());
        EXPECT_DOUBLE_EQ(inc_delay, full_delay) << "step " << step;
        for (std::size_t n = 0; n < full.size(); ++n)
            EXPECT_DOUBLE_EQ(incremental[n], full[n]) << "step " << step << " node " << n;
    }
}

TEST(StaTest, ExternallySuppliedDelays) {
    Chain c;
    const TimingGraph graph(c.nl);
    std::vector<double> delays(graph.edge_count(), 0.0);
    for (std::size_t ei = 0; ei < delays.size(); ++ei) delays[ei] = 1.0;
    std::vector<double> arrival;
    // chain: source->a->m->y->sink = 4 edges of delay 1.
    EXPECT_DOUBLE_EQ(run_arrival_with(graph, delays, arrival), 4.0);
}

}  // namespace
}  // namespace statim::sta
