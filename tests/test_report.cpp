// Unit tests for the report renderers and DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "netlist/dot.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

class ReportTest : public ::testing::Test {
  protected:
    ReportTest() : lib_(cells::Library::standard_180nm()),
                   nl_(netlist::make_iscas("c17", lib_)) {}

    SizingResult run_short() {
        Context ctx(nl_, lib_);
        StatisticalSizerConfig cfg;
        cfg.max_iterations = 5;
        return run_statistical_sizing(ctx, cfg);
    }

    cells::Library lib_;
    Netlist nl_;
};

TEST_F(ReportTest, SummaryMentionsKeyNumbers) {
    const SizingResult result = run_short();
    std::ostringstream out;
    print_summary(out, nl_, result);
    const std::string text = out.str();
    EXPECT_NE(text.find("c17"), std::string::npos);
    EXPECT_NE(text.find("iteration"), std::string::npos);
    EXPECT_NE(text.find("better"), std::string::npos);
}

TEST_F(ReportTest, HistoryTableHasOneRowPerIteration) {
    const SizingResult result = run_short();
    std::ostringstream out;
    render_history(out, nl_, result);
    const std::string text = out.str();
    // Header + separator + 5 iterations.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 7);
}

TEST_F(ReportTest, HistoryTableSubsamples) {
    const SizingResult result = run_short();
    std::ostringstream out;
    ReportOptions options;
    options.max_rows = 3;
    options.include_stats = false;
    render_history(out, nl_, result, options);
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
    EXPECT_EQ(text.find("cand"), std::string::npos);
}

TEST_F(ReportTest, CsvRoundTripShape) {
    const SizingResult result = run_short();
    std::ostringstream out;
    write_history_csv(out, nl_, result);
    std::istringstream in(out.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line,
              "iteration,gate,sensitivity_ns_per_w,objective_ns,total_area,total_width");
    int rows = 0;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, result.iterations);
}

TEST_F(ReportTest, DeterministicSummaryAndCsv) {
    DeterministicSizerConfig cfg;
    cfg.max_iterations = 4;
    Netlist nl = netlist::make_iscas("c432", lib_);
    const DetSizingResult det = run_deterministic_sizing(nl, lib_, cfg);
    std::ostringstream summary, csv;
    print_summary(summary, nl, det);
    write_history_csv(csv, nl, det);
    EXPECT_NE(summary.str().find("nominal delay"), std::string::npos);
    const std::string csv_text = csv.str();
    EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 5);  // header + 4
}

TEST(DotExport, ContainsAllGatesAndTerminals) {
    const cells::Library lib = cells::Library::standard_180nm();
    const Netlist nl = netlist::make_iscas("c17", lib);
    std::ostringstream out;
    netlist::write_dot(out, nl, lib);
    const std::string dot = out.str();
    EXPECT_EQ(dot.substr(0, 7), "digraph");
    for (const auto& gate : nl.gates())
        EXPECT_NE(dot.find("g_" + gate.name), std::string::npos) << gate.name;
    for (NetId pi : nl.primary_inputs())
        EXPECT_NE(dot.find("net_" + nl.net(pi).name), std::string::npos);
    for (NetId po : nl.primary_outputs())
        EXPECT_NE(dot.find("out_" + nl.net(po).name), std::string::npos);
    // One wire per gate pin plus one per PO terminal.
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '>'),
              static_cast<std::ptrdiff_t>(12 + nl.primary_outputs().size()));
    EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, ScoresAddFill) {
    const cells::Library lib = cells::Library::standard_180nm();
    const Netlist nl = netlist::make_iscas("c17", lib);
    std::vector<double> scores(nl.gate_count(), 1.0);
    std::ostringstream out;
    netlist::DotOptions options;
    options.gate_scores = scores;
    netlist::write_dot(out, nl, lib, options);
    EXPECT_NE(out.str().find("fillcolor"), std::string::npos);
}

}  // namespace
}  // namespace statim::core
