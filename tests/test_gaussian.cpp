// Unit tests for the truncated-Gaussian discretization.
#include <gtest/gtest.h>

#include <cmath>

#include "prob/gaussian.hpp"
#include "util/error.hpp"

namespace statim::prob {
namespace {

TEST(NormalCdf, KnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(TruncatedGaussian, MassSumsToOne) {
    const TimeGrid grid(0.001);
    const Pdf p = truncated_gaussian(grid, 0.5, 0.05, 3.0);
    double total = 0.0;
    for (double m : p.mass()) total += m;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TruncatedGaussian, MeanMatchesNominal) {
    const TimeGrid grid(0.001);
    const Pdf p = truncated_gaussian(grid, 0.5, 0.05, 3.0);
    EXPECT_NEAR(grid.time_of(p.mean_bins()), 0.5, 1e-3);
}

TEST(TruncatedGaussian, SigmaShrinksUnderTruncation) {
    // Var of a ±3σ-truncated normal is ~0.973 σ²; discretization adds
    // ~dt²/12, negligible at this pitch.
    const TimeGrid grid(0.0005);
    const double sigma = 0.05;
    const Pdf p = truncated_gaussian(grid, 0.5, sigma, 3.0);
    const double sd = grid.dt_ns() * std::sqrt(p.variance_bins());
    EXPECT_NEAR(sd, 0.9733 * sigma, 0.002);
}

TEST(TruncatedGaussian, SupportRespectsTruncation) {
    const TimeGrid grid(0.001);
    const double mean = 0.5, sigma = 0.05, k = 3.0;
    const Pdf p = truncated_gaussian(grid, mean, sigma, k);
    EXPECT_GE(grid.time_of(static_cast<double>(p.first_bin())), mean - k * sigma - grid.dt_ns());
    EXPECT_LE(grid.time_of(static_cast<double>(p.last_bin())), mean + k * sigma + grid.dt_ns());
}

TEST(TruncatedGaussian, SymmetricAroundMean) {
    const TimeGrid grid(0.001);
    const Pdf p = truncated_gaussian(grid, 0.5, 0.05, 3.0);
    const auto mass = p.mass();
    for (std::size_t i = 0; i < mass.size() / 2; ++i)
        EXPECT_NEAR(mass[i], mass[mass.size() - 1 - i], 1e-9);
}

TEST(TruncatedGaussian, ZeroSigmaIsPoint) {
    const TimeGrid grid(0.001);
    const Pdf p = truncated_gaussian(grid, 0.1234, 0.0, 3.0);
    EXPECT_TRUE(p.is_point());
    EXPECT_EQ(p.first_bin(), grid.bin_of(0.1234));
}

TEST(TruncatedGaussian, CoarseGridDegeneratesGracefully) {
    // Support narrower than one bin: at most two bins straddling the mean
    // (a mean on a bin boundary splits its mass), still summing to 1.
    const TimeGrid grid(1.0);
    const Pdf p = truncated_gaussian(grid, 0.5, 0.01, 3.0);
    EXPECT_LE(p.size(), 2u);
    EXPECT_NEAR(grid.time_of(p.mean_bins()), 0.5, grid.dt_ns());
    // A mean well inside a bin gives a genuine point mass.
    const Pdf q = truncated_gaussian(grid, 2.0, 0.01, 3.0);
    EXPECT_TRUE(q.is_point());
    EXPECT_EQ(q.first_bin(), 2);
}

TEST(TruncatedGaussian, PercentilesMatchAnalyticQuantiles) {
    const TimeGrid grid(0.0002);
    const double mean = 1.0, sigma = 0.1;
    const Pdf p = truncated_gaussian(grid, mean, sigma, 3.0);
    // Median of a symmetric truncated normal is the mean.
    EXPECT_NEAR(grid.time_of(p.percentile_bin(0.5)), mean, 2e-3);
    // The 0.9986.. point of the untruncated normal maps to +3σ; the
    // truncated 99.9% point must be below that.
    EXPECT_LE(grid.time_of(p.percentile_bin(0.999)), mean + 3 * sigma + grid.dt_ns());
    EXPECT_GE(grid.time_of(p.percentile_bin(0.999)), mean + 2 * sigma);
}

TEST(TruncatedGaussian, NoInteriorZeroMass) {
    const TimeGrid grid(0.0005);
    const Pdf p = truncated_gaussian(grid, 0.3, 0.03, 3.0);
    for (double m : p.mass()) EXPECT_GT(m, 0.0);
}

TEST(TruncatedGaussian, RejectsNonFinite) {
    const TimeGrid grid(0.001);
    EXPECT_THROW((void)truncated_gaussian(grid, std::nan(""), 0.1, 3.0), ConfigError);
    EXPECT_THROW((void)truncated_gaussian(grid, 1.0, std::nan(""), 3.0), ConfigError);
}

TEST(TimeGrid, BinRoundTrips) {
    const TimeGrid grid(0.002);
    EXPECT_EQ(grid.bin_of(0.0), 0);
    EXPECT_EQ(grid.bin_of(0.0031), 2);  // nearest
    EXPECT_EQ(grid.bin_of(-0.0031), -2);
    EXPECT_DOUBLE_EQ(grid.time_of(5.0), 0.01);
}

TEST(TimeGrid, RejectsBadPitch) {
    EXPECT_THROW(TimeGrid(0.0), ConfigError);
    EXPECT_THROW(TimeGrid(-1.0), ConfigError);
    EXPECT_THROW(TimeGrid(std::nan("")), ConfigError);
}

}  // namespace
}  // namespace statim::prob
