// Unit tests for prob::Pdf: construction, moments, percentiles, CDF.
#include <gtest/gtest.h>

#include "prob/pdf.hpp"
#include "util/error.hpp"

namespace statim::prob {
namespace {

TEST(Pdf, DefaultInvalid) {
    Pdf p;
    EXPECT_FALSE(p.valid());
}

TEST(Pdf, PointMass) {
    const Pdf p = Pdf::point(42);
    EXPECT_TRUE(p.valid());
    EXPECT_TRUE(p.is_point());
    EXPECT_EQ(p.first_bin(), 42);
    EXPECT_EQ(p.last_bin(), 42);
    EXPECT_DOUBLE_EQ(p.mean_bins(), 42.0);
    EXPECT_DOUBLE_EQ(p.variance_bins(), 0.0);
    EXPECT_DOUBLE_EQ(p.percentile_bin(0.5), 42.0);
    EXPECT_DOUBLE_EQ(p.percentile_bin(1.0), 42.0);
}

TEST(Pdf, FromMassNormalizes) {
    const Pdf p = Pdf::from_mass(10, {1.0, 3.0});
    EXPECT_EQ(p.size(), 2u);
    EXPECT_DOUBLE_EQ(p.mass()[0], 0.25);
    EXPECT_DOUBLE_EQ(p.mass()[1], 0.75);
    EXPECT_DOUBLE_EQ(p.mean_bins(), 10.75);
}

TEST(Pdf, FromMassTrimsZeroEdges) {
    const Pdf p = Pdf::from_mass(5, {0.0, 0.0, 2.0, 2.0, 0.0});
    EXPECT_EQ(p.first_bin(), 7);
    EXPECT_EQ(p.last_bin(), 8);
    EXPECT_EQ(p.size(), 2u);
}

TEST(Pdf, FromMassRejectsBadInput) {
    EXPECT_THROW((void)Pdf::from_mass(0, {}), ConfigError);
    EXPECT_THROW((void)Pdf::from_mass(0, {0.0, 0.0}), ConfigError);
    EXPECT_THROW((void)Pdf::from_mass(0, {-1.0, 2.0}), ConfigError);
    EXPECT_THROW((void)Pdf::from_mass(0, {std::numeric_limits<double>::quiet_NaN()}),
                 ConfigError);
}

TEST(Pdf, MassAtOutsideSupportIsZero) {
    const Pdf p = Pdf::from_mass(0, {0.5, 0.5});
    EXPECT_DOUBLE_EQ(p.mass_at(-1), 0.0);
    EXPECT_DOUBLE_EQ(p.mass_at(0), 0.5);
    EXPECT_DOUBLE_EQ(p.mass_at(2), 0.0);
}

TEST(Pdf, VarianceOfSymmetricPair) {
    const Pdf p = Pdf::from_mass(0, {0.5, 0.0, 0.5});
    EXPECT_DOUBLE_EQ(p.mean_bins(), 1.0);
    EXPECT_DOUBLE_EQ(p.variance_bins(), 1.0);
}

TEST(Pdf, PercentileInterpolatesWithinBins) {
    // Mass 0.5 at bin 0 and 0.5 at bin 1; the inverse CDF ramps over bin 1.
    const Pdf p = Pdf::from_mass(0, {0.5, 0.5});
    EXPECT_DOUBLE_EQ(p.percentile_bin(0.25), 0.0);  // below first-bin cum
    EXPECT_DOUBLE_EQ(p.percentile_bin(0.5), 0.0);
    EXPECT_DOUBLE_EQ(p.percentile_bin(0.75), 0.5);
    EXPECT_DOUBLE_EQ(p.percentile_bin(1.0), 1.0);
}

TEST(Pdf, PercentileMonotoneInP) {
    const Pdf p = Pdf::from_mass(-3, {0.1, 0.2, 0.3, 0.25, 0.15});
    double prev = p.percentile_bin(1e-9);
    for (double q = 0.01; q <= 1.0; q += 0.01) {
        const double t = p.percentile_bin(q);
        EXPECT_GE(t, prev - 1e-12);
        prev = t;
    }
}

TEST(Pdf, PercentileRejectsOutOfRange) {
    const Pdf p = Pdf::point(0);
    EXPECT_THROW((void)p.percentile_bin(0.0), ConfigError);
    EXPECT_THROW((void)p.percentile_bin(1.0001), ConfigError);
    EXPECT_THROW((void)Pdf{}.percentile_bin(0.5), ConfigError);
}

TEST(Pdf, CdfAt) {
    const Pdf p = Pdf::from_mass(2, {0.25, 0.25, 0.5});
    EXPECT_DOUBLE_EQ(p.cdf_at(1), 0.0);
    EXPECT_DOUBLE_EQ(p.cdf_at(2), 0.25);
    EXPECT_DOUBLE_EQ(p.cdf_at(3), 0.5);
    EXPECT_DOUBLE_EQ(p.cdf_at(4), 1.0);
    EXPECT_DOUBLE_EQ(p.cdf_at(100), 1.0);
}

TEST(Pdf, PrefixCdfEndsAtOne) {
    const Pdf p = Pdf::from_mass(0, {1.0, 2.0, 3.0, 4.0});
    const auto cdf = p.prefix_cdf();
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
    for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Pdf, ShiftTranslatesSupportExactly) {
    Pdf p = Pdf::from_mass(0, {0.5, 0.5});
    const double q75 = p.percentile_bin(0.75);
    p.shift(10);
    EXPECT_EQ(p.first_bin(), 10);
    EXPECT_EQ(p.last_bin(), 11);
    EXPECT_DOUBLE_EQ(p.percentile_bin(0.75), q75 + 10.0);
}

TEST(Pdf, EqualityIsBitwise) {
    const Pdf a = Pdf::from_mass(0, {1.0, 1.0});
    const Pdf b = Pdf::from_mass(0, {1.0, 1.0});
    Pdf c = Pdf::from_mass(0, {1.0, 1.0});
    c.shift(1);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(Pdf, NegativeBinsSupported) {
    const Pdf p = Pdf::from_mass(-10, {1.0, 1.0, 2.0});
    EXPECT_EQ(p.first_bin(), -10);
    EXPECT_DOUBLE_EQ(p.mean_bins(), -10 * 0.25 + -9 * 0.25 + -8 * 0.5);
}

}  // namespace
}  // namespace statim::prob
