// Unit tests for the Monte Carlo reference engine.
#include <gtest/gtest.h>

#include "mc/monte_carlo.hpp"
#include "netlist/iscas.hpp"
#include "netlist/timing_graph.hpp"
#include "sta/sta.hpp"

namespace statim::mc {
namespace {

class McTest : public ::testing::Test {
  protected:
    McTest()
        : lib_(cells::Library::standard_180nm()),
          nl_(netlist::make_iscas("c17", lib_)),
          graph_(nl_),
          dc_(graph_, lib_) {}

    cells::Library lib_;
    netlist::Netlist nl_;
    netlist::TimingGraph graph_;
    sta::DelayCalc dc_;
};

TEST_F(McTest, DeterministicForSeed) {
    const McResult a = run_monte_carlo(dc_, {500, 42});
    const McResult b = run_monte_carlo(dc_, {500, 42});
    EXPECT_EQ(a.samples(), b.samples());
}

TEST_F(McTest, SeedChangesSamples) {
    const McResult a = run_monte_carlo(dc_, {500, 42});
    const McResult b = run_monte_carlo(dc_, {500, 43});
    EXPECT_NE(a.samples(), b.samples());
}

TEST_F(McTest, SamplesWithinTruncationEnvelope) {
    // Each edge delay lies in [0.7, 1.3] x nominal (±3σ at σ = 10%), so
    // every sampled circuit delay lies within the same factor of nominal.
    std::vector<double> arrival;
    const double nominal = sta::run_arrival(dc_, arrival);
    const McResult mc = run_monte_carlo(dc_, {2000, 7});
    EXPECT_GE(mc.min_ns(), 0.7 * nominal - 1e-12);
    EXPECT_LE(mc.max_ns(), 1.3 * nominal + 1e-12);
}

TEST_F(McTest, MeanExceedsNominalUnderMaxing) {
    // E[max] >= max[E] for the reconvergent c17: the MC mean should be at
    // or above the nominal critical delay (up to noise).
    std::vector<double> arrival;
    const double nominal = sta::run_arrival(dc_, arrival);
    const McResult mc = run_monte_carlo(dc_, {8000, 17});
    EXPECT_GE(mc.mean_ns(), nominal * 0.98);
}

TEST_F(McTest, PercentilesMonotone) {
    const McResult mc = run_monte_carlo(dc_, {2000, 5});
    double prev = mc.percentile_ns(0.01);
    for (double p = 0.05; p <= 1.0; p += 0.05) {
        const double t = mc.percentile_ns(p);
        EXPECT_GE(t, prev);
        prev = t;
    }
    EXPECT_DOUBLE_EQ(mc.percentile_ns(1.0), mc.max_ns());
}

TEST_F(McTest, YieldMatchesPercentileInverse) {
    const McResult mc = run_monte_carlo(dc_, {4000, 3});
    const double t95 = mc.percentile_ns(0.95);
    EXPECT_NEAR(mc.yield_at(t95), 0.95, 0.02);
    EXPECT_DOUBLE_EQ(mc.yield_at(mc.max_ns()), 1.0);
    EXPECT_DOUBLE_EQ(mc.yield_at(0.0), 0.0);
}

TEST_F(McTest, ZeroSigmaCollapsesToNominal) {
    cells::Library lib0 = cells::Library::standard_180nm();
    lib0.set_sigma_fraction(0.0);
    netlist::Netlist nl0 = netlist::make_iscas("c17", lib0);
    const netlist::TimingGraph g0(nl0);
    const sta::DelayCalc dc0(g0, lib0);
    std::vector<double> arrival;
    const double nominal = sta::run_arrival(dc0, arrival);
    const McResult mc = run_monte_carlo(dc0, {100, 1});
    EXPECT_NEAR(mc.min_ns(), nominal, 1e-12);
    EXPECT_NEAR(mc.max_ns(), nominal, 1e-12);
    EXPECT_NEAR(mc.stddev_ns(), 0.0, 1e-12);
}

TEST_F(McTest, ConfigValidation) {
    EXPECT_THROW((void)run_monte_carlo(dc_, {0, 1}), ConfigError);
    EXPECT_THROW((void)McResult(std::vector<double>{}), ConfigError);
    const McResult mc = run_monte_carlo(dc_, {100, 1});
    EXPECT_THROW((void)mc.percentile_ns(0.0), ConfigError);
    EXPECT_THROW((void)mc.percentile_ns(1.5), ConfigError);
}

TEST_F(McTest, StatsAreInternallyConsistent) {
    const McResult mc = run_monte_carlo(dc_, {3000, 11});
    EXPECT_EQ(mc.sample_count(), 3000u);
    EXPECT_GE(mc.mean_ns(), mc.min_ns());
    EXPECT_LE(mc.mean_ns(), mc.max_ns());
    EXPECT_GT(mc.stddev_ns(), 0.0);
}

}  // namespace
}  // namespace statim::mc
