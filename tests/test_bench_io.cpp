// Unit tests for the ISCAS .bench reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/iscas.hpp"

namespace statim::netlist {
namespace {

class BenchIo : public ::testing::Test {
  protected:
    cells::Library lib_ = cells::Library::standard_180nm();

    Netlist parse(const std::string& text, const std::string& name = "inline") {
        std::istringstream in(text);
        return read_bench(in, lib_, name);
    }
};

TEST_F(BenchIo, ParsesEmbeddedC17) {
    const Netlist nl = parse(c17_bench_text(), "c17");
    EXPECT_EQ(nl.gate_count(), 6u);
    EXPECT_EQ(nl.net_count(), 11u);
    EXPECT_EQ(nl.primary_inputs().size(), 5u);
    EXPECT_EQ(nl.primary_outputs().size(), 2u);
    for (const Gate& g : nl.gates())
        EXPECT_EQ(lib_.cell(g.cell).name, "NAND2");
}

TEST_F(BenchIo, GateTypeMapping) {
    const Netlist nl = parse(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\n"
        "OUTPUT(o1)\nOUTPUT(o2)\nOUTPUT(o3)\nOUTPUT(o4)\nOUTPUT(o5)\n"
        "o1 = NOT(a)\n"
        "o2 = BUFF(a)\n"
        "o3 = AND(a, b, c)\n"
        "o4 = XOR(a, b)\n"
        "o5 = NOR(a, b)\n");
    auto cell_name = [&](const char* net) {
        return lib_.cell(nl.gate(nl.net(nl.find_net(net)).driver).cell).name;
    };
    EXPECT_EQ(cell_name("o1"), "INV");
    EXPECT_EQ(cell_name("o2"), "BUF");
    EXPECT_EQ(cell_name("o3"), "AND3");
    EXPECT_EQ(cell_name("o4"), "XOR2");
    EXPECT_EQ(cell_name("o5"), "NOR2");
}

TEST_F(BenchIo, SingleInputDegenerations) {
    const Netlist nl = parse(
        "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\n"
        "x = NAND(a)\n"   // 1-input NAND == INV
        "y = AND(a)\n");  // 1-input AND == BUF
    EXPECT_EQ(lib_.cell(nl.gate(nl.net(nl.find_net("x")).driver).cell).name, "INV");
    EXPECT_EQ(lib_.cell(nl.gate(nl.net(nl.find_net("y")).driver).cell).name, "BUF");
}

TEST_F(BenchIo, WideGateDecomposition) {
    // 8-input NAND must decompose into an AND tree plus a NAND root, all
    // within fanin 4, preserving single-driver structure.
    const Netlist nl = parse(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n"
        "INPUT(e)\nINPUT(f)\nINPUT(g)\nINPUT(h)\n"
        "OUTPUT(y)\n"
        "y = NAND(a, b, c, d, e, f, g, h)\n");
    EXPECT_GT(nl.gate_count(), 1u);
    for (const Gate& g : nl.gates())
        EXPECT_LE(g.fanin.size(), 4u);
    // The root driving y must still be a NAND family cell.
    const Gate& root = nl.gate(nl.net(nl.find_net("y")).driver);
    EXPECT_EQ(lib_.cell(root.cell).name.substr(0, 4), "NAND");
    EXPECT_NO_THROW(nl.validate(lib_));
}

TEST_F(BenchIo, WideXorDecomposesToChain) {
    const Netlist nl = parse(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n"
        "y = XOR(a, b, c, d, e)\n");
    EXPECT_EQ(nl.gate_count(), 4u);  // n-1 XOR2 gates
    for (const Gate& g : nl.gates())
        EXPECT_EQ(lib_.cell(g.cell).name, "XOR2");
}

TEST_F(BenchIo, DffBecomesPseudoTerminals) {
    const Netlist nl = parse(
        "INPUT(a)\nOUTPUT(y)\n"
        "q = DFF(d)\n"
        "d = NAND(a, q)\n"
        "y = NOT(q)\n");
    // q is a pseudo-PI, d a pseudo-PO: the loop through the DFF is broken.
    EXPECT_EQ(nl.primary_inputs().size(), 2u);   // a, q
    EXPECT_EQ(nl.primary_outputs().size(), 2u);  // y, d
    EXPECT_NO_THROW(nl.validate(lib_));
}

TEST_F(BenchIo, RoundTripPreservesStructure) {
    const Netlist nl = parse(c17_bench_text(), "c17");
    std::ostringstream out;
    write_bench(out, nl, lib_);
    std::istringstream in(out.str());
    const Netlist back = read_bench(in, lib_, "c17rt");
    EXPECT_EQ(back.gate_count(), nl.gate_count());
    EXPECT_EQ(back.net_count(), nl.net_count());
    EXPECT_EQ(back.primary_inputs().size(), nl.primary_inputs().size());
    EXPECT_EQ(back.primary_outputs().size(), nl.primary_outputs().size());
}

TEST_F(BenchIo, CommentsAndBlankLinesIgnored) {
    const Netlist nl = parse(
        "# header\n\n"
        "INPUT(a)  # the input\n"
        "OUTPUT(y)\n"
        "\n"
        "y = NOT(a)\n");
    EXPECT_EQ(nl.gate_count(), 1u);
}

TEST_F(BenchIo, ParseErrorsCarryLineNumbers) {
    try {
        (void)parse("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST_F(BenchIo, MalformedLinesRejected) {
    EXPECT_THROW((void)parse("INPUT a\n"), ParseError);  // no parens
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a,)\n"),
                 ParseError);  // trailing comma
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a,,a)\n"),
                 ParseError);  // empty operand
    EXPECT_THROW((void)parse("INPUT(a)\n = NAND(a)\n"), ParseError);    // no output
    EXPECT_THROW((void)parse("INPUT(a, b)\n"), ParseError);        // two args
    EXPECT_THROW((void)parse("INPUT(a)\ny = NOT(a, a)\n"), ParseError);  // NOT arity
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND()\n"), ParseError);
}

TEST_F(BenchIo, TruncatedLinesRejected) {
    // Truncation anywhere in a line is a clean ParseError, never a crash
    // or a silently shortened circuit.
    EXPECT_THROW((void)parse("INPUT(a\n"), ParseError);  // unclosed paren
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a"), ParseError);
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a, b\n"), ParseError);
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny =\n"), ParseError);
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = \n"), ParseError);
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND\n"), ParseError);
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = )a(\n"), ParseError);
}

TEST_F(BenchIo, UnknownGateTypeNamesTheOffender) {
    try {
        (void)parse("INPUT(a)\nOUTPUT(y)\ny = XNAND3(a)\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("XNAND3"), std::string::npos) << what;
        EXPECT_EQ(e.line(), 3);
    }
    EXPECT_THROW((void)parse("FROB(a)\n"), ParseError);  // unknown directive
}

TEST_F(BenchIo, DanglingNetsRejected) {
    // b is read but neither driven nor declared INPUT.
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a, b)\n"),
                 NetlistError);
    // z is declared OUTPUT but never driven.
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n"), NetlistError);
}

TEST_F(BenchIo, StructuralErrorsSurfaceFromValidate) {
    // x is driven twice.
    EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUFF(a)\n"),
                 NetlistError);
}

TEST_F(BenchIo, MissingFileThrows) {
    EXPECT_THROW((void)load_bench("/nonexistent/file.bench", lib_), Error);
}

}  // namespace
}  // namespace statim::netlist
