// Unit tests for the cell library and delay model (paper EQ 1).
#include <gtest/gtest.h>

#include <sstream>

#include "cells/cell.hpp"
#include "cells/liberty_lite.hpp"
#include "cells/library.hpp"
#include "util/error.hpp"

namespace statim::cells {
namespace {

TEST(DelayModel, Equation1) {
    Cell c;
    c.name = "X";
    c.fanin = 1;
    c.d_int_ns = 0.02;
    c.k_ns = 0.015;
    c.c_cell_ff = 4.0;
    // De = Dint + K * Cload / (Ccell * w)
    EXPECT_DOUBLE_EQ(edge_delay_ns(c, 1.0, 8.0, 0), 0.02 + 0.015 * 2.0);
    EXPECT_DOUBLE_EQ(edge_delay_ns(c, 2.0, 8.0, 0), 0.02 + 0.015 * 1.0);
}

TEST(DelayModel, UpsizingSpeedsGateButLoadsFanin) {
    const Library lib = Library::standard_180nm();
    const Cell& inv = lib.cell(lib.require("INV"));
    const double load = 20.0;
    EXPECT_LT(edge_delay_ns(inv, 2.0, load, 0), edge_delay_ns(inv, 1.0, load, 0));
    EXPECT_GT(input_cap_ff(inv, 2.0), input_cap_ff(inv, 1.0));
    EXPECT_DOUBLE_EQ(input_cap_ff(inv, 2.0), 2.0 * input_cap_ff(inv, 1.0));
}

TEST(DelayModel, PinWeights) {
    Cell c;
    c.name = "X";
    c.fanin = 2;
    c.d_int_ns = 0.1;
    c.k_ns = 0.0;
    c.c_cell_ff = 1.0;
    c.pin_weight = {1.0, 1.5};
    EXPECT_DOUBLE_EQ(edge_delay_ns(c, 1.0, 0.0, 0), 0.1);
    EXPECT_DOUBLE_EQ(edge_delay_ns(c, 1.0, 0.0, 1), 0.15);
    EXPECT_DOUBLE_EQ(c.pin_factor(7), 1.0);  // out of range -> neutral
}

TEST(DelayModel, AreaScalesLinearly) {
    const Library lib = Library::standard_180nm();
    const Cell& nand2 = lib.cell(lib.require("NAND2"));
    EXPECT_DOUBLE_EQ(cell_area(nand2, 3.0), 3.0 * nand2.area);
}

TEST(SizingPolicy, Validation) {
    SizingPolicy ok;
    EXPECT_NO_THROW(ok.validate());
    SizingPolicy bad1{2.0, 1.0, 0.25};
    EXPECT_THROW(bad1.validate(), ConfigError);
    SizingPolicy bad2{1.0, 4.0, 0.0};
    EXPECT_THROW(bad2.validate(), ConfigError);
}

TEST(Library, Standard180nmContents) {
    const Library lib = Library::standard_180nm();
    EXPECT_EQ(lib.name(), "statim180");
    EXPECT_DOUBLE_EQ(lib.sigma_fraction(), 0.10);
    EXPECT_DOUBLE_EQ(lib.trunc_k(), 3.0);
    for (const char* name :
         {"INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
          "AND2", "AND3", "AND4", "OR2", "OR3", "OR4", "XOR2", "XNOR2"})
        EXPECT_TRUE(lib.find(name).has_value()) << name;
    EXPECT_FALSE(lib.find("NAND8").has_value());
}

TEST(Library, Fo4DelayIsPlausibleFor180nm) {
    // FO4 inverter delay: load = 4x own input cap. Expect 60-150 ps.
    const Library lib = Library::standard_180nm();
    const Cell& inv = lib.cell(lib.require("INV"));
    const double fo4 = edge_delay_ns(inv, 1.0, 4.0 * inv.c_in_ff, 0);
    EXPECT_GT(fo4, 0.060);
    EXPECT_LT(fo4, 0.150);
}

TEST(Library, FindSized) {
    const Library lib = Library::standard_180nm();
    ASSERT_TRUE(lib.find_sized("NAND", 3).has_value());
    EXPECT_EQ(lib.cell(*lib.find_sized("NAND", 3)).name, "NAND3");
    EXPECT_FALSE(lib.find_sized("NAND", 9).has_value());
}

TEST(Library, RequireThrowsOnMissing) {
    const Library lib = Library::standard_180nm();
    EXPECT_THROW((void)lib.require("FLUXCAP"), ConfigError);
}

TEST(Library, AddValidation) {
    Library lib;
    Cell ok;
    ok.name = "A";
    ok.fanin = 1;
    EXPECT_NO_THROW((void)lib.add(ok));
    EXPECT_THROW((void)lib.add(ok), ConfigError);  // duplicate

    Cell bad = ok;
    bad.name = "B";
    bad.fanin = 0;
    EXPECT_THROW((void)lib.add(bad), ConfigError);

    bad = ok;
    bad.name = "C";
    bad.c_cell_ff = 0.0;
    EXPECT_THROW((void)lib.add(bad), ConfigError);

    bad = ok;
    bad.name = "D";
    bad.fanin = 2;
    bad.pin_weight = {1.0};  // size mismatch
    EXPECT_THROW((void)lib.add(bad), ConfigError);
}

TEST(Library, ParameterValidation) {
    Library lib;
    EXPECT_THROW(lib.set_sigma_fraction(-0.1), ConfigError);
    EXPECT_THROW(lib.set_sigma_fraction(1.0), ConfigError);
    EXPECT_THROW(lib.set_trunc_k(0.0), ConfigError);
    EXPECT_THROW(lib.set_output_load_ff(-1.0), ConfigError);
    EXPECT_NO_THROW(lib.set_sigma_fraction(0.15));
    EXPECT_DOUBLE_EQ(lib.sigma_fraction(), 0.15);
}

TEST(LibertyLite, RoundTrip) {
    const Library lib = Library::standard_180nm();
    std::ostringstream out;
    write_liberty_lite(out, lib);
    std::istringstream in(out.str());
    const Library back = read_liberty_lite(in, "roundtrip");
    ASSERT_EQ(back.size(), lib.size());
    EXPECT_EQ(back.name(), lib.name());
    EXPECT_DOUBLE_EQ(back.sigma_fraction(), lib.sigma_fraction());
    EXPECT_DOUBLE_EQ(back.output_load_ff(), lib.output_load_ff());
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const Cell& a = lib.cells()[i];
        const Cell& b = back.cells()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.fanin, b.fanin);
        EXPECT_DOUBLE_EQ(a.d_int_ns, b.d_int_ns);
        EXPECT_DOUBLE_EQ(a.k_ns, b.k_ns);
        EXPECT_DOUBLE_EQ(a.c_cell_ff, b.c_cell_ff);
        EXPECT_DOUBLE_EQ(a.c_in_ff, b.c_in_ff);
        EXPECT_DOUBLE_EQ(a.area, b.area);
    }
}

TEST(LibertyLite, ParsesPinWeightsAndComments) {
    std::istringstream in(
        "# my library\n"
        "library test\n"
        "sigma_fraction 0.2\n"
        "cell G fanin=2 d_int=0.1 k=0.02 c_cell=3 c_in=3 area=1.5 "
        "pin_weights=1.0,1.25  # trailing comment\n");
    const Library lib = read_liberty_lite(in, "inline");
    const Cell& g = lib.cell(lib.require("G"));
    ASSERT_EQ(g.pin_weight.size(), 2u);
    EXPECT_DOUBLE_EQ(g.pin_weight[1], 1.25);
    EXPECT_DOUBLE_EQ(lib.sigma_fraction(), 0.2);
}

TEST(LibertyLite, ErrorsCarryLineNumbers) {
    std::istringstream bad1("library x\ncell G d_int=0.1\n");  // missing fanin
    try {
        (void)read_liberty_lite(bad1, "f");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2);
    }

    std::istringstream bad2("wibble 3\n");
    EXPECT_THROW((void)read_liberty_lite(bad2, "f"), ParseError);

    std::istringstream bad3("cell G fanin=two\n");
    EXPECT_THROW((void)read_liberty_lite(bad3, "f"), ParseError);

    std::istringstream bad4("library x\n");  // no cells
    EXPECT_THROW((void)read_liberty_lite(bad4, "f"), ParseError);

    std::istringstream bad5("cell G fanin=1 wibble=3\n");
    EXPECT_THROW((void)read_liberty_lite(bad5, "f"), ParseError);
}

TEST(LibertyLite, MissingFileThrows) {
    EXPECT_THROW((void)load_liberty_lite("/nonexistent/path.lib"), Error);
}

}  // namespace
}  // namespace statim::cells
