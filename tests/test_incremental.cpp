// Exactness of the incremental refactor: cone-scoped SSTA updates and
// parallel candidate selection must be bit-identical to the sequential
// from-scratch reference paths — the same contract the paper's pruning
// claims (and tests/test_pruning_exactness.cpp) rest on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/selector.hpp"
#include "core/sizers.hpp"
#include "core/trial_resize.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas.hpp"
#include "ssta/engine.hpp"
#include "util/rng.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

Netlist make_circuit(const std::string& name, const cells::Library& lib) {
    if (name == "generated") {
        netlist::GeneratorSpec spec;
        spec.name = "gen_incr";
        spec.num_inputs = 12;
        spec.num_outputs = 9;
        spec.num_gates = 140;
        spec.fanin_sum = 300;
        spec.depth = 14;
        spec.seed = 2024;
        return netlist::generate_circuit(spec, lib);
    }
    return netlist::make_iscas(name, lib);
}

/// All arrivals of the incremental engine vs a from-scratch reference run
/// on the same graph + delays.
void expect_arrivals_match_reference(const Context& ctx, const std::string& label) {
    ssta::SstaEngine reference(ctx.graph());
    reference.run(ctx.edge_delays());
    for (std::size_t n = 0; n < ctx.graph().node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        ASSERT_TRUE(ctx.engine().arrival(node) == reference.arrival(node))
            << label << ": arrival diverged at node " << n;
    }
}

class IncrementalSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(IncrementalSweep, RandomResizeSequenceMatchesFromScratchBitForBit) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = make_circuit(GetParam(), lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    Rng rng(hash_name(GetParam()));
    const auto gate_count = static_cast<std::uint32_t>(nl.gate_count());
    for (int step = 0; step < 25; ++step) {
        const GateId g{static_cast<std::uint32_t>(rng() % gate_count)};
        double delta = (rng() % 3 == 0) ? 0.5 : 0.25;
        if (rng() % 4 == 0 && nl.gate(g).width >= 1.5) delta = -0.25;  // downsizes too
        (void)ctx.apply_resize(g, delta);
        // Batch two resizes every few steps: the dirty list accumulates.
        if (step % 5 == 2) {
            const GateId g2{static_cast<std::uint32_t>(rng() % gate_count)};
            (void)ctx.apply_resize(g2, 0.25);
        }
        ctx.refresh_ssta();
        expect_arrivals_match_reference(
            ctx, std::string(GetParam()) + " step " + std::to_string(step));
    }
}

INSTANTIATE_TEST_SUITE_P(Circuits, IncrementalSweep,
                         ::testing::Values("generated", "c17", "c432", "c880"));

TEST(IncrementalEngine, UpdateBeforeRunFallsBackToFullRun) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    EXPECT_FALSE(ctx.engine().has_run());
    ctx.refresh_ssta();  // nothing to update incrementally yet
    EXPECT_TRUE(ctx.engine().has_run());
    EXPECT_TRUE(ctx.engine().last_update_stats().full_run);
    expect_arrivals_match_reference(ctx, "fallback");
}

TEST(IncrementalEngine, ResizeTouchesOnlyTheFanoutCone) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c880", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    // A mid-circuit gate's cone is a strict subset of the graph; the
    // incremental refresh must not re-propagate everything.
    const GateId g{static_cast<std::uint32_t>(nl.gate_count() / 2)};
    (void)ctx.apply_resize(g, 0.25);
    ctx.refresh_ssta();
    const auto& stats = ctx.engine().last_update_stats();
    EXPECT_FALSE(stats.full_run);
    EXPECT_GT(stats.nodes_recomputed, 0u);
    EXPECT_LT(stats.nodes_recomputed, ctx.graph().node_count() / 2);
}

TEST(IncrementalEngine, TrialResizesLeaveNoDirtyResidue) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    EXPECT_TRUE(ctx.delay_calc().dirty_edges().empty());
    {
        TrialResize trial(ctx, GateId{3}, 0.25);
        PerturbationFront front(ctx, Objective::percentile(0.99), trial);
    }
    // The trial restored everything bit-for-bit and must not have queued
    // incremental work.
    EXPECT_TRUE(ctx.delay_calc().dirty_edges().empty());
    EXPECT_FALSE(ctx.delay_calc().fully_dirty());
}

TEST(IncrementalEngine, DisabledModeAlwaysRunsFull) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.set_incremental_ssta(false);
    ctx.run_ssta();
    (void)ctx.apply_resize(GateId{1}, 0.25);
    ctx.refresh_ssta();
    EXPECT_TRUE(ctx.engine().last_update_stats().full_run);
}

TEST(IncrementalSizing, FullAndIncrementalTrajectoriesAreIdentical) {
    cells::Library lib = cells::Library::standard_180nm();
    std::vector<std::pair<GateId, double>> reference;
    for (const bool incremental : {true, false}) {
        Netlist nl = netlist::make_iscas("c432", lib);
        Context ctx(nl, lib);
        StatisticalSizerConfig cfg;
        cfg.max_iterations = 20;
        cfg.incremental_ssta = incremental;
        const SizingResult r = run_statistical_sizing(ctx, cfg);
        ASSERT_EQ(r.history.size(), 20u);
        if (incremental) {
            for (const auto& rec : r.history)
                reference.emplace_back(rec.gate, rec.objective_after_ns);
        } else {
            ASSERT_EQ(reference.size(), r.history.size());
            for (std::size_t i = 0; i < r.history.size(); ++i) {
                EXPECT_EQ(reference[i].first, r.history[i].gate) << "iter " << i;
                EXPECT_EQ(reference[i].second, r.history[i].objective_after_ns)
                    << "iter " << i;
            }
        }
    }
}

// ---- parallel selection = sequential selection --------------------------

class ParallelSelectorSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelSelectorSweep, AllSelectorsMatchSequentialAlongTrajectory) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = make_circuit(GetParam(), lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    SelectorConfig seq{Objective::percentile(0.99), 0.25, 16.0, 1};
    SelectorConfig par{Objective::percentile(0.99), 0.25, 16.0, 4};

    for (int iter = 0; iter < 4; ++iter) {
        const Selection pruned_seq = select_pruned(ctx, seq);
        const Selection pruned_par = select_pruned(ctx, par);
        EXPECT_EQ(pruned_seq.gate, pruned_par.gate) << "iter " << iter;
        EXPECT_EQ(pruned_seq.sensitivity, pruned_par.sensitivity) << "iter " << iter;
        EXPECT_EQ(pruned_par.stats.candidates,
                  pruned_par.stats.completed + pruned_par.stats.pruned +
                      pruned_par.stats.died)
            << "iter " << iter;

        const Selection brute_seq = select_brute_force(ctx, seq, false, true);
        const Selection brute_par = select_brute_force(ctx, par, false, true);
        EXPECT_EQ(brute_seq.gate, brute_par.gate) << "iter " << iter;
        EXPECT_EQ(brute_seq.sensitivity, brute_par.sensitivity) << "iter " << iter;
        ASSERT_EQ(brute_seq.all_sensitivities.size(),
                  brute_par.all_sensitivities.size());
        for (std::size_t i = 0; i < brute_seq.all_sensitivities.size(); ++i) {
            EXPECT_EQ(brute_seq.all_sensitivities[i].first,
                      brute_par.all_sensitivities[i].first);
            EXPECT_EQ(brute_seq.all_sensitivities[i].second,
                      brute_par.all_sensitivities[i].second)
                << "candidate " << i << " iter " << iter;
        }

        const Selection cone_seq = select_brute_force(ctx, seq, true);
        const Selection cone_par = select_brute_force(ctx, par, true);
        EXPECT_EQ(cone_seq.gate, cone_par.gate) << "iter " << iter;
        EXPECT_EQ(cone_seq.sensitivity, cone_par.sensitivity) << "iter " << iter;

        const Selection heur_seq = select_heuristic(ctx, seq, 5);
        const Selection heur_par = select_heuristic(ctx, par, 5);
        EXPECT_EQ(heur_seq.gate, heur_par.gate) << "iter " << iter;
        EXPECT_EQ(heur_seq.sensitivity, heur_par.sensitivity) << "iter " << iter;

        if (!pruned_seq.gate.is_valid()) break;
        (void)ctx.apply_resize(pruned_seq.gate, seq.delta_w);
        ctx.refresh_ssta();
    }
}

INSTANTIATE_TEST_SUITE_P(Circuits, ParallelSelectorSweep,
                         ::testing::Values("generated", "c17", "c432", "c499"));

TEST(ParallelSizing, ThreadCountDoesNotChangeTheTrajectory) {
    cells::Library lib = cells::Library::standard_180nm();
    std::vector<std::pair<GateId, double>> reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        Netlist nl = netlist::make_iscas("c432", lib);
        Context ctx(nl, lib);
        StatisticalSizerConfig cfg;
        cfg.max_iterations = 15;
        cfg.threads = threads;
        const SizingResult r = run_statistical_sizing(ctx, cfg);
        ASSERT_EQ(r.history.size(), 15u);
        if (threads == 1) {
            for (const auto& rec : r.history)
                reference.emplace_back(rec.gate, rec.objective_after_ns);
        } else {
            for (std::size_t i = 0; i < r.history.size(); ++i) {
                EXPECT_EQ(reference[i].first, r.history[i].gate) << "iter " << i;
                EXPECT_EQ(reference[i].second, r.history[i].objective_after_ns)
                    << "iter " << i;
            }
        }
    }
}

}  // namespace
}  // namespace statim::core
