// Unit tests for the area-recovery (downsizing) extension.
#include <gtest/gtest.h>

#include "core/downsize.hpp"
#include "core/sizers.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

TEST(Downsize, RecoversAreaWithinObjectiveBudget) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);

    // First oversize everything a little, then recover.
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
        (void)ctx.apply_resize(GateId{static_cast<std::uint32_t>(gi)}, 1.0);

    DownsizeConfig cfg;
    cfg.max_iterations = 100;
    cfg.objective_budget_ns = 0.010;
    const DownsizeResult result = run_downsizing(ctx, cfg);

    EXPECT_GT(result.iterations, 0);
    EXPECT_LT(result.final_area, result.initial_area);
    EXPECT_LE(result.final_objective_ns - result.initial_objective_ns,
              cfg.objective_budget_ns + 1e-9);
    for (const auto& g : nl.gates()) EXPECT_GE(g.width, cfg.min_width - 1e-12);
}

TEST(Downsize, ZeroBudgetOnlyTakesFreeOrImprovingMoves) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
        (void)ctx.apply_resize(GateId{static_cast<std::uint32_t>(gi)}, 0.5);

    DownsizeConfig cfg;
    cfg.max_iterations = 30;
    cfg.objective_budget_ns = 0.0;
    const DownsizeResult result = run_downsizing(ctx, cfg);
    EXPECT_LE(result.final_objective_ns, result.initial_objective_ns + 1e-9);
    if (result.iterations > 0) EXPECT_LT(result.final_area, result.initial_area);
}

TEST(Downsize, StopsAtWidthFloor) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);  // min size already
    Context ctx(nl, lib);
    DownsizeConfig cfg;
    cfg.max_iterations = 10;
    const DownsizeResult result = run_downsizing(ctx, cfg);
    EXPECT_EQ(result.iterations, 0);
    EXPECT_EQ(result.stop_reason, "width floor");
}

TEST(Downsize, UpThenDownRoundTripKeepsObjectiveClose) {
    // Upsize statistically, then recover with a tight budget: the final
    // circuit must be smaller than the upsized one at nearly its speed.
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig up;
    up.max_iterations = 20;
    const SizingResult upsized = run_statistical_sizing(ctx, up);

    DownsizeConfig down;
    down.max_iterations = 100;
    down.objective_budget_ns = 0.002;
    const DownsizeResult recovered = run_downsizing(ctx, down);
    EXPECT_LE(recovered.final_area, upsized.final_area);
    EXPECT_LE(recovered.final_objective_ns,
              upsized.final_objective_ns + down.objective_budget_ns + 1e-9);
}

TEST(Downsize, RejectsBadConfig) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    DownsizeConfig bad;
    bad.delta_w = 0.0;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
    bad = {};
    bad.min_width = -1.0;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
    bad = {};
    bad.objective_budget_ns = -0.1;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
}

}  // namespace
}  // namespace statim::core
