// Unit tests for the area-recovery (downsizing) extension.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/downsize.hpp"
#include "core/sizers.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

TEST(Downsize, RecoversAreaWithinObjectiveBudget) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);

    // First oversize everything a little, then recover.
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
        (void)ctx.apply_resize(GateId{static_cast<std::uint32_t>(gi)}, 1.0);

    DownsizeConfig cfg;
    cfg.max_iterations = 100;
    cfg.objective_budget_ns = 0.010;
    const DownsizeResult result = run_downsizing(ctx, cfg);

    EXPECT_GT(result.iterations, 0);
    EXPECT_LT(result.final_area, result.initial_area);
    EXPECT_LE(result.final_objective_ns - result.initial_objective_ns,
              cfg.objective_budget_ns + 1e-9);
    for (const auto& g : nl.gates()) EXPECT_GE(g.width, cfg.min_width - 1e-12);
}

TEST(Downsize, ZeroBudgetOnlyTakesFreeOrImprovingMoves) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
        (void)ctx.apply_resize(GateId{static_cast<std::uint32_t>(gi)}, 0.5);

    DownsizeConfig cfg;
    cfg.max_iterations = 30;
    cfg.objective_budget_ns = 0.0;
    const DownsizeResult result = run_downsizing(ctx, cfg);
    EXPECT_LE(result.final_objective_ns, result.initial_objective_ns + 1e-9);
    if (result.iterations > 0) EXPECT_LT(result.final_area, result.initial_area);
}

TEST(Downsize, StopsAtWidthFloor) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);  // min size already
    Context ctx(nl, lib);
    DownsizeConfig cfg;
    cfg.max_iterations = 10;
    const DownsizeResult result = run_downsizing(ctx, cfg);
    EXPECT_EQ(result.iterations, 0);
    EXPECT_EQ(result.stop_reason, "width floor");
}

TEST(Downsize, UpThenDownRoundTripKeepsObjectiveClose) {
    // Upsize statistically, then recover with a tight budget: the final
    // circuit must be smaller than the upsized one at nearly its speed.
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig up;
    up.max_iterations = 20;
    const SizingResult upsized = run_statistical_sizing(ctx, up);

    DownsizeConfig down;
    down.max_iterations = 100;
    down.objective_budget_ns = 0.002;
    const DownsizeResult recovered = run_downsizing(ctx, down);
    EXPECT_LE(recovered.final_area, upsized.final_area);
    EXPECT_LE(recovered.final_objective_ns,
              upsized.final_objective_ns + down.objective_budget_ns + 1e-9);
}

TEST(Downsize, IncrementalAndFullRefreshBitIdentical) {
    // The commit path now routes through Context::refresh_ssta (the
    // changed-edge set from the shrink drives a merged-cone incremental
    // update) instead of an unconditional full run_ssta. Both modes must
    // walk the identical trajectory and end with bitwise-equal arrivals.
    cells::Library lib = cells::Library::standard_180nm();
    DownsizeResult results[2];
    std::vector<prob::Pdf> arrivals[2];
    for (const int mode : {0, 1}) {  // 0 = full refresh, 1 = incremental
        Netlist nl = netlist::make_iscas("c432", lib);
        Context ctx(nl, lib);
        for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
            (void)ctx.apply_resize(GateId{static_cast<std::uint32_t>(gi)}, 0.5);
        DownsizeConfig cfg;
        cfg.max_iterations = 25;
        cfg.objective_budget_ns = 0.005;
        cfg.gates_per_iteration = 1;
        cfg.incremental_ssta = mode == 1;
        results[mode] = run_downsizing(ctx, cfg);
        for (std::size_t n = 0; n < ctx.graph().node_count(); ++n)
            arrivals[mode].push_back(
                ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}).to_pdf());
    }
    EXPECT_EQ(results[0].stop_reason, results[1].stop_reason);
    EXPECT_EQ(results[0].final_objective_ns, results[1].final_objective_ns);
    EXPECT_EQ(results[0].final_area, results[1].final_area);
    ASSERT_EQ(results[0].history.size(), results[1].history.size());
    for (std::size_t i = 0; i < results[0].history.size(); ++i) {
        EXPECT_EQ(results[0].history[i].gate, results[1].history[i].gate) << i;
        EXPECT_EQ(results[0].history[i].objective_delta_ns,
                  results[1].history[i].objective_delta_ns)
            << i;
        EXPECT_EQ(results[0].history[i].objective_after_ns,
                  results[1].history[i].objective_after_ns)
            << i;
    }
    ASSERT_EQ(arrivals[0].size(), arrivals[1].size());
    for (std::size_t n = 0; n < arrivals[0].size(); ++n)
        EXPECT_TRUE(arrivals[0][n] == arrivals[1][n]) << "node " << n;
    // The incremental mode must actually have done less re-propagation.
    if (results[0].iterations > 0)
        EXPECT_LT(results[1].ssta_nodes_recomputed, results[0].ssta_nodes_recomputed);
}

TEST(Downsize, BatchedShrinksStayWithinBudget) {
    // Batched recovery commits several cone-disjoint shrinks per merged
    // refresh; the budget guarantee must survive exactly (an overshooting
    // batch is rolled back and recommitted sequentially).
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi)
        (void)ctx.apply_resize(GateId{static_cast<std::uint32_t>(gi)}, 0.5);

    DownsizeConfig cfg;
    cfg.max_iterations = 40;
    cfg.objective_budget_ns = 0.010;
    cfg.gates_per_iteration = 4;
    const DownsizeResult result = run_downsizing(ctx, cfg);

    EXPECT_GT(result.iterations, 0);
    EXPECT_LT(result.final_area, result.initial_area);
    EXPECT_LE(result.final_objective_ns - result.initial_objective_ns,
              cfg.objective_budget_ns + 1e-9);
    EXPECT_EQ(result.history.size(),
              static_cast<std::size_t>(
                  std::count_if(result.history.begin(), result.history.end(),
                                [](const DownsizeRecord& r) {
                                    return r.gate.is_valid();
                                })));
    // Per-gate attribution: area shrinks monotonically along the records.
    double prev_area = result.initial_area;
    for (const auto& rec : result.history) {
        EXPECT_LT(rec.area_after, prev_area);
        prev_area = rec.area_after;
    }
    for (const auto& g : nl.gates()) EXPECT_GE(g.width, cfg.min_width - 1e-12);
}

TEST(Downsize, RejectsBadConfig) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    DownsizeConfig bad;
    bad.delta_w = 0.0;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
    bad = {};
    bad.min_width = -1.0;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
    bad = {};
    bad.objective_budget_ns = -0.1;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
    bad = {};
    bad.gates_per_iteration = -1;
    EXPECT_THROW((void)run_downsizing(ctx, bad), ConfigError);
}

}  // namespace
}  // namespace statim::core
