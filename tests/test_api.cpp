// Public-API surface properties: Design construction, Scenario
// validation, the analyze/monte_carlo facades, and run_scenarios
// determinism (scenario-ordered, thread-count independent results).
// The include-purity boundary is enforced by statim-lint (lint.repo).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/statim.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim::api {
namespace {

TEST(Design, RegistryTextAndNetlistConstruction) {
    Design c17 = Design::from_registry("c17");
    EXPECT_EQ(c17.name(), "c17");
    EXPECT_EQ(c17.gate_count(), 6u);
    EXPECT_GT(c17.total_area(), 0.0);

    // Round-trip through .bench text.
    std::ostringstream bench;
    c17.write_bench(bench);
    Design copy = Design::from_bench_text(bench.str(), "c17");
    EXPECT_EQ(copy.gate_count(), c17.gate_count());
    EXPECT_EQ(copy.net_count(), c17.net_count());

    Design adopted =
        Design::from_netlist(c17.netlist(), cells::Library::standard_180nm());
    EXPECT_EQ(adopted.gate_count(), c17.gate_count());

    netlist::GeneratorSpec spec;
    spec.name = "tiny";
    spec.num_inputs = 8;
    spec.num_outputs = 4;
    spec.num_gates = 50;
    spec.fanin_sum = 100;
    spec.depth = 6;
    spec.seed = 3;
    Design synth = Design::from_generator(spec);
    EXPECT_EQ(synth.gate_count(), 50u);
}

TEST(Design, MalformedInputsThrowCleanErrors) {
    EXPECT_THROW((void)Design::from_registry("c404"), Error);
    EXPECT_THROW((void)Design::from_bench_text("INPUT(\n", "bad"), Error);
    EXPECT_THROW((void)Design::from_bench_file("/nonexistent/x.bench"), Error);
}

TEST(Scenario, ValidateRejectsOutOfRangeValues) {
    const auto expect_invalid = [](auto&& mutate) {
        Scenario s;
        mutate(s);
        EXPECT_THROW(s.validate(), ConfigError);
    };
    expect_invalid([](Scenario& s) { s.percentile = 0.0; });
    expect_invalid([](Scenario& s) { s.percentile = 1.5; });
    expect_invalid([](Scenario& s) { s.grid_bins = -1; });
    expect_invalid([](Scenario& s) { s.delta_w = 0.0; });
    expect_invalid([](Scenario& s) { s.max_width = -2.0; });
    expect_invalid([](Scenario& s) { s.max_iterations = -1; });
    expect_invalid([](Scenario& s) { s.area_budget = -1.0; });
    expect_invalid([](Scenario& s) { s.gates_per_iteration = -3; });
    EXPECT_NO_THROW(Scenario{}.validate());
    Scenario mean;
    mean.objective = Scenario::Objective::Mean;
    mean.percentile = -1.0;  // ignored for the mean objective
    EXPECT_NO_THROW(mean.validate());
}

TEST(Analysis, AnalyzeReportsConsistentStatistics) {
    const Design design = Design::from_registry("c432");
    const double width_before = design.total_width();
    const AnalysisResult r = analyze(design);
    EXPECT_EQ(r.design, "c432");
    EXPECT_GT(r.gates, 0u);
    EXPECT_GT(r.dt_ns, 0.0);
    EXPECT_GT(r.nominal_delay_ns, 0.0);
    // The SSTA bound's landmarks are ordered and bracket the nominal.
    EXPECT_LT(r.mean_ns(), r.percentile_ns(0.99));
    EXPECT_LE(r.nominal_delay_ns, r.percentile_ns(0.999) + 1e-9);
    EXPECT_EQ(r.objective_ns, r.percentile_ns(0.99));  // default scenario
    EXPECT_NEAR(r.yield_at(r.percentile_ns(0.99)), 0.99, 0.02);
    EXPECT_EQ(r.po_slack_ns.size(), design.netlist().primary_outputs().size());

    // analyze() promised a const design: widths untouched.
    EXPECT_EQ(design.total_width(), width_before);

    const auto cdf = r.cdf_points();
    ASSERT_FALSE(cdf.empty());
    EXPECT_NEAR(cdf.back().second, 1.0, 1e-9);
}

TEST(Analysis, MonteCarloIsDeterministicPerSeed) {
    const Design design = Design::from_registry("c17");
    Scenario scenario;
    scenario.seed = 11;
    const McSummary a = monte_carlo(design, scenario, 500);
    const McSummary b = monte_carlo(design, scenario, 500);
    ASSERT_EQ(a.samples, 500u);
    EXPECT_EQ(a.sorted_ns, b.sorted_ns);
    scenario.seed = 12;
    const McSummary c = monte_carlo(design, scenario, 500);
    EXPECT_NE(a.sorted_ns, c.sorted_ns);
    EXPECT_NEAR(c.yield_at(c.max_ns), 1.0, 1e-12);
}

TEST(Analysis, CriticalityReportRanksGates) {
    const Design design = Design::from_registry("c432");
    const CriticalityReport report = criticality_report(design, {}, 5, 3);
    ASSERT_EQ(report.ranked.size(), 5u);
    for (std::size_t i = 1; i < report.ranked.size(); ++i)
        EXPECT_GE(report.ranked[i - 1].criticality, report.ranked[i].criticality);
    ASSERT_EQ(report.nominal_paths.size(), 3u);
    EXPECT_GT(report.nominal_paths[0].delay_ns, 0.0);
    EXPECT_EQ(report.gate_scores.size(), design.gate_count());

    std::ostringstream dot;
    write_dot(dot, design, report.gate_scores);
    EXPECT_NE(dot.str().find("digraph"), std::string::npos);
}

std::vector<Scenario> mixed_scenarios() {
    std::vector<Scenario> scenarios(4);
    scenarios[0].name = "p99";
    scenarios[0].max_iterations = 4;
    scenarios[1].name = "mean-batch2";
    scenarios[1].objective = Scenario::Objective::Mean;
    scenarios[1].max_iterations = 3;
    scenarios[1].gates_per_iteration = 2;
    scenarios[2].name = "p90-mc";
    scenarios[2].percentile = 0.90;
    scenarios[2].max_iterations = 2;
    scenarios[2].mc_samples = 200;
    scenarios[2].seed = 5;
    scenarios[3].name = "cone";
    scenarios[3].selector = Scenario::Selector::BruteCone;
    scenarios[3].max_iterations = 2;
    for (Scenario& s : scenarios) s.threads = 2;  // configured, not pool-sized
    return scenarios;
}

void expect_results_equal(const std::vector<ScenarioResult>& a,
                          const std::vector<ScenarioResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].scenario.name, b[i].scenario.name) << i;
        EXPECT_EQ(a[i].objective_ns(), b[i].objective_ns()) << i;
        EXPECT_EQ(a[i].area(), b[i].area()) << i;
        ASSERT_EQ(a[i].sizing.history.size(), b[i].sizing.history.size()) << i;
        for (std::size_t j = 0; j < a[i].sizing.history.size(); ++j) {
            EXPECT_EQ(a[i].sizing.history[j].gate, b[i].sizing.history[j].gate);
            EXPECT_EQ(a[i].sizing.history[j].objective_after_ns,
                      b[i].sizing.history[j].objective_after_ns);
        }
        EXPECT_EQ(a[i].mc.sorted_ns, b[i].mc.sorted_ns) << i;
        for (std::size_t g = 0; g < a[i].design.gate_count(); ++g) {
            const GateId gate{static_cast<std::uint32_t>(g)};
            EXPECT_EQ(a[i].design.netlist().gate(gate).width,
                      b[i].design.netlist().gate(gate).width)
                << i << " gate " << g;
        }
    }
}

// The acceptance property: run_scenarios returns deterministic,
// scenario-ordered results independent of the pool's thread count.
TEST(Scenarios, RunScenariosDeterministicAcrossThreadCounts) {
    const std::size_t pool_before = default_thread_count();
    const Design design = Design::from_registry("c432");
    const double width_before = design.total_width();
    const std::vector<Scenario> scenarios = mixed_scenarios();

    set_default_thread_count(1);
    const std::vector<ScenarioResult> reference = run_scenarios(design, scenarios);
    ASSERT_EQ(reference.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        EXPECT_EQ(reference[i].scenario.name, scenarios[i].name) << i;
    // The input design is untouched; each result owns a sized copy.
    EXPECT_EQ(design.total_width(), width_before);
    EXPECT_EQ(reference[2].mc.samples, 200u);
    EXPECT_EQ(reference[0].mc.samples, 0u);

    for (const std::size_t threads : {2u, 7u}) {
        set_default_thread_count(threads);
        expect_results_equal(reference, run_scenarios(design, scenarios));
    }
    set_default_thread_count(pool_before);
}

TEST(Scenarios, MatchesStandaloneSizingRuns) {
    const Design design = Design::from_registry("c432");
    const std::vector<Scenario> scenarios = mixed_scenarios();
    const std::vector<ScenarioResult> batch = run_scenarios(design, scenarios);

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        Design solo = design;
        SizingRun run(solo, scenarios[i]);
        run.run_to_convergence();
        EXPECT_EQ(run.result().final_objective_ns, batch[i].objective_ns()) << i;
        EXPECT_EQ(run.result().history.size(), batch[i].sizing.history.size()) << i;
    }
}

TEST(Scenarios, InvalidScenarioFailsFastBeforeAnyWork) {
    const Design design = Design::from_registry("c17");
    std::vector<Scenario> scenarios(2);
    scenarios[1].percentile = 2.0;
    EXPECT_THROW((void)run_scenarios(design, scenarios), ConfigError);
}

TEST(SizingRun, StepwiseTrajectoryIsObservable) {
    Design design = Design::from_registry("c17");
    Scenario scenario;
    scenario.max_iterations = 3;
    SizingRun run(design, scenario);
    EXPECT_FALSE(run.finished());
    EXPECT_EQ(run.iteration(), 0);

    double prev = run.objective_ns();
    int steps = 0;
    while (run.step()) {
        ++steps;
        EXPECT_EQ(run.iteration(), steps);
        EXPECT_LE(run.objective_ns(), prev);
        prev = run.objective_ns();
    }
    EXPECT_TRUE(run.finished());
    EXPECT_EQ(run.result().iterations, run.iteration());
    EXPECT_FALSE(run.step());  // finished runs are inert
    EXPECT_EQ(run.scenario().max_iterations, 3);
}

// The API-boundary rule itself (examples and the CLI compile against the
// public surface only) is enforced by statim-lint's include-purity rule —
// see tools/statim_lint, run as the lint.repo ctest entry and in CI —
// which reports file:line diagnostics and understands comments/strings.
// The ad-hoc filesystem scan that used to live here was retired with it.

}  // namespace
}  // namespace statim::api
