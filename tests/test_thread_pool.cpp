// Unit tests for util::ThreadPool and the process-wide thread-count knob.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace statim {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCaller) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(64);
    pool.parallel_for(seen.size(),
                      [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
    for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ManyBatchesOnOnePool) {
    ThreadPool pool(2);
    for (int round = 0; round < 100; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.parallel_for(round + 1, [&](std::size_t i) {
            sum += static_cast<std::int64_t>(i);
        });
        EXPECT_EQ(sum.load(), static_cast<std::int64_t>(round) * (round + 1) / 2);
    }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAfterDraining) {
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                       if (i == 7) throw Error("task failure");
                                       ++completed;
                                   }),
                 Error);
    EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
    // A task that itself fans out (e.g. a selector shard whose SSTA wave
    // is level-parallel) must not deadlock: the nested batch runs inline
    // on the task's own thread and still covers every index.
    ThreadPool pool(2);
    std::atomic<int> inner{0};
    pool.parallel_for(4, [&](std::size_t) {
        pool.parallel_for(8, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPoolTest, ParallelChunksCoversExactlyOnce) {
    ThreadPool pool(3);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                     std::size_t{100}}) {
        std::vector<std::atomic<int>> hits(64);
        pool.parallel_chunks(hits.size(), shards,
                             [&](std::size_t begin, std::size_t end) {
                                 ASSERT_LE(begin, end);
                                 for (std::size_t i = begin; i < end; ++i) ++hits[i];
                             });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
    pool.parallel_chunks(0, 4, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ResizeKeepsWorking) {
    ThreadPool pool(1);
    std::atomic<int> count{0};
    pool.parallel_for(10, [&](std::size_t) { ++count; });
    pool.resize(4);
    EXPECT_EQ(pool.workers(), 4u);
    pool.parallel_for(10, [&](std::size_t) { ++count; });
    pool.resize(0);
    pool.parallel_for(10, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 30);
}

TEST(ThreadCountTest, DefaultIsAtLeastOne) {
    EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadCountTest, SetterDrivesGlobalPool) {
    const std::size_t before = default_thread_count();
    set_default_thread_count(3);
    EXPECT_EQ(default_thread_count(), 3u);
    EXPECT_EQ(global_pool().workers(), 2u);
    EXPECT_THROW(set_default_thread_count(0), ConfigError);
    set_default_thread_count(before);
    EXPECT_EQ(global_pool().workers(), before - 1);
}

TEST(ThreadCountTest, EnvKnobApplies) {
    const std::size_t before = default_thread_count();
    ::setenv("STATIM_THREADS", "2", 1);
    EXPECT_EQ(apply_threads_env(), 2u);
    EXPECT_EQ(default_thread_count(), 2u);
    ::unsetenv("STATIM_THREADS");
    EXPECT_EQ(apply_threads_env(), 2u);  // unset leaves the count alone
    set_default_thread_count(before);
}

}  // namespace
}  // namespace statim
