// Unit tests for the synthetic ISCAS-like circuit generator: every paper
// circuit must hit its published timing-graph node/edge counts exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas.hpp"
#include "netlist/timing_graph.hpp"

namespace statim::netlist {
namespace {

class GeneratorCircuits : public ::testing::TestWithParam<IscasInfo> {
  protected:
    cells::Library lib_ = cells::Library::standard_180nm();
};

TEST_P(GeneratorCircuits, MatchesPaperCounts) {
    const IscasInfo& info = GetParam();
    Netlist nl = make_iscas(info.name, lib_);
    const TimingGraph graph(nl);
    EXPECT_EQ(graph.node_count(), static_cast<std::size_t>(info.nodes));
    EXPECT_EQ(graph.edge_count(), static_cast<std::size_t>(info.edges));
    EXPECT_EQ(nl.primary_inputs().size(), static_cast<std::size_t>(info.inputs));
    EXPECT_EQ(nl.primary_outputs().size(), static_cast<std::size_t>(info.outputs));
}

TEST_P(GeneratorCircuits, PassesValidation) {
    Netlist nl = make_iscas(GetParam().name, lib_);
    EXPECT_NO_THROW(nl.validate(lib_));
}

TEST_P(GeneratorCircuits, DepthIsRealistic) {
    Netlist nl = make_iscas(GetParam().name, lib_);
    const TimingGraph graph(nl);
    // Graph levels = gate depth + 3 (source, PI, sink layers); the
    // generator aims at `depth` gate levels and may compress slightly.
    const int depth = GetParam().depth;
    EXPECT_GE(static_cast<int>(graph.num_levels()), depth / 2);
    EXPECT_LE(static_cast<int>(graph.num_levels()), depth + 4);
}

TEST_P(GeneratorCircuits, FaninWithinLibraryRange) {
    Netlist nl = make_iscas(GetParam().name, lib_);
    for (const Gate& g : nl.gates()) {
        EXPECT_GE(g.fanin.size(), 1u);
        EXPECT_LE(g.fanin.size(), 4u);
    }
}

TEST_P(GeneratorCircuits, DeterministicForName) {
    const std::string& name = GetParam().name;
    Netlist a = make_iscas(name, lib_);
    Netlist b = make_iscas(name, lib_);
    std::ostringstream ta, tb;
    write_bench(ta, a, lib_);
    write_bench(tb, b, lib_);
    EXPECT_EQ(ta.str(), tb.str());
}

INSTANTIATE_TEST_SUITE_P(AllPaperCircuits, GeneratorCircuits,
                         ::testing::ValuesIn(iscas85_info()),
                         [](const ::testing::TestParamInfo<IscasInfo>& info) {
                             return info.param.name;
                         });

TEST(GeneratorSpecValidation, RejectsInfeasibleSpecs) {
    GeneratorSpec spec;
    spec.name = "bad";
    spec.num_inputs = 4;
    spec.num_outputs = 2;
    spec.num_gates = 10;
    spec.fanin_sum = 20;
    spec.depth = 5;
    EXPECT_NO_THROW(spec.validate());

    GeneratorSpec s = spec;
    s.num_outputs = 11;  // more POs than gates
    EXPECT_THROW(s.validate(), ConfigError);

    s = spec;
    s.fanin_sum = 9;  // < gates
    EXPECT_THROW(s.validate(), ConfigError);

    s = spec;
    s.fanin_sum = 41;  // > 4*gates
    EXPECT_THROW(s.validate(), ConfigError);

    s = spec;
    s.fanin_sum = 10;  // cannot cover 4 + 10 - 2 internal nets
    EXPECT_THROW(s.validate(), ConfigError);

    s = spec;
    s.depth = 11;  // deeper than gate count
    EXPECT_THROW(s.validate(), ConfigError);

    s = spec;
    s.name.clear();
    EXPECT_THROW(s.validate(), ConfigError);
}

TEST(GeneratorSpecValidation, SeedChangesWiring) {
    cells::Library lib = cells::Library::standard_180nm();
    GeneratorSpec spec;
    spec.name = "seeded";
    spec.num_inputs = 8;
    spec.num_outputs = 4;
    spec.num_gates = 60;
    spec.fanin_sum = 120;
    spec.depth = 8;
    spec.seed = 1;
    Netlist a = generate_circuit(spec, lib);
    spec.seed = 2;
    Netlist b = generate_circuit(spec, lib);
    std::ostringstream ta, tb;
    write_bench(ta, a, lib);
    write_bench(tb, b, lib);
    EXPECT_NE(ta.str(), tb.str());
}

TEST(GeneratorSpecValidation, TinySpecWorks) {
    cells::Library lib = cells::Library::standard_180nm();
    GeneratorSpec spec;
    spec.name = "tiny";
    spec.num_inputs = 2;
    spec.num_outputs = 1;
    spec.num_gates = 3;
    spec.fanin_sum = 5;
    spec.depth = 2;
    Netlist nl = generate_circuit(spec, lib);
    const TimingGraph graph(nl);
    EXPECT_EQ(graph.node_count(), 2u + 2u + 3u);
    EXPECT_EQ(graph.edge_count(), 5u + 2u + 1u);
}

TEST(GeneratorSpecValidation, DepthOneRequiresEveryGateToBeAnOutput) {
    // Regression: a depth-1 spec with more gates than outputs used to spin
    // the level spreader forever (the single level is capped at O gates).
    GeneratorSpec spec;
    spec.name = "flat";
    spec.num_inputs = 4;
    spec.num_outputs = 2;
    spec.num_gates = 5;
    spec.fanin_sum = 10;
    spec.depth = 1;
    EXPECT_THROW(spec.validate(), ConfigError);

    spec.num_outputs = 5;  // G == O: every gate is a PO, feasible
    EXPECT_NO_THROW(spec.validate());
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = generate_circuit(spec, lib);
    EXPECT_EQ(nl.gates().size(), 5u);
    EXPECT_EQ(nl.primary_outputs().size(), 5u);
}

TEST(GeneratorSpecValidation, LimitsAreOverflowSafeAtScale) {
    // 4*G and I+G-O overflow 32-bit int here; the limits must still be
    // enforced (or pass) on the true 64-bit values.
    GeneratorSpec spec;
    spec.name = "huge";
    spec.num_inputs = 1000;
    spec.num_outputs = 1000;
    spec.num_gates = 600'000'000;
    spec.fanin_sum = 2'100'000'000;  // within [G, 4G] = [6e8, 2.4e9]
    spec.depth = 1000;
    EXPECT_NO_THROW(spec.validate());

    spec.fanin_sum = 599'999'999;  // below G
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(SyntheticRegistry, SpecsValidateAndResolve) {
    ASSERT_FALSE(synthetic_specs().empty());
    for (const GeneratorSpec& spec : synthetic_specs()) {
        EXPECT_NO_THROW(spec.validate()) << spec.name;
        EXPECT_EQ(&synthetic_spec(spec.name), &spec);
    }
    EXPECT_THROW((void)synthetic_spec("synth0"), ConfigError);
    const auto names = registry_names();
    EXPECT_EQ(names.size(), iscas_names().size() + synthetic_specs().size());
}

TEST(SyntheticRegistry, TenThousandGateCircuitMatchesItsSpec) {
    // The smallest scale-up spec is cheap enough for a unit test; it
    // proves the level construction holds up beyond the paper's sizes
    // (the 100k+ entries go through the same code path, exercised by
    // bench_parallel_ssta).
    cells::Library lib = cells::Library::standard_180nm();
    const GeneratorSpec& spec = synthetic_spec("synth10k");
    Netlist nl = make_iscas(spec.name, lib);
    const TimingGraph graph(nl);
    EXPECT_EQ(graph.node_count(),
              static_cast<std::size_t>(spec.num_inputs + spec.num_gates + 2));
    EXPECT_EQ(graph.edge_count(),
              static_cast<std::size_t>(spec.fanin_sum + spec.num_inputs +
                                       spec.num_outputs));
    EXPECT_EQ(nl.primary_inputs().size(), static_cast<std::size_t>(spec.num_inputs));
    EXPECT_EQ(nl.primary_outputs().size(),
              static_cast<std::size_t>(spec.num_outputs));
    for (const Gate& g : nl.gates()) {
        ASSERT_GE(g.fanin.size(), 1u);
        ASSERT_LE(g.fanin.size(), 4u);
    }
    // Depth within the usual generator tolerance (gate levels + source,
    // PI and sink layers).
    EXPECT_GE(static_cast<int>(graph.num_levels()), spec.depth / 2);
    EXPECT_LE(static_cast<int>(graph.num_levels()), spec.depth + 4);
}

TEST(IscasRegistry, NamesAndLookup) {
    const auto names = iscas_names();
    EXPECT_EQ(names.size(), 11u);  // c17 + ten paper circuits
    EXPECT_EQ(names.front(), "c17");
    EXPECT_EQ(iscas85_info("c6288").depth, 124);
    EXPECT_THROW((void)iscas85_info("c9999"), ConfigError);
    cells::Library lib = cells::Library::standard_180nm();
    EXPECT_THROW((void)make_iscas("c9999", lib), ConfigError);
}

}  // namespace
}  // namespace statim::netlist
