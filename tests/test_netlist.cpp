// Unit tests for the netlist builder and its structural validation.
#include <gtest/gtest.h>

#include "cells/library.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"

namespace statim::netlist {
namespace {

class NetlistTest : public ::testing::Test {
  protected:
    cells::Library lib_ = cells::Library::standard_180nm();
    CellId inv_ = lib_.require("INV");
    CellId nand2_ = lib_.require("NAND2");
};

TEST_F(NetlistTest, BuildSmallCircuit) {
    Netlist nl("tiny");
    const NetId a = nl.add_net("a");
    const NetId b = nl.add_net("b");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    const GateId g = nl.add_gate("g1", nand2_, {a, b}, y);
    nl.mark_primary_output(y);

    EXPECT_EQ(nl.gate_count(), 1u);
    EXPECT_EQ(nl.net_count(), 3u);
    EXPECT_EQ(nl.gate(g).output, y);
    EXPECT_EQ(nl.net(y).driver, g);
    ASSERT_EQ(nl.net(a).sinks.size(), 1u);
    EXPECT_EQ(nl.net(a).sinks[0], g);
    EXPECT_NO_THROW(nl.validate(lib_));
}

TEST_F(NetlistTest, DuplicateNetNameRejected) {
    Netlist nl;
    (void)nl.add_net("x");
    EXPECT_THROW((void)nl.add_net("x"), NetlistError);
    EXPECT_THROW((void)nl.add_net(""), NetlistError);
}

TEST_F(NetlistTest, DoubleDriverRejected) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g1", inv_, {a}, y);
    EXPECT_THROW((void)nl.add_gate("g2", inv_, {a}, y), NetlistError);
}

TEST_F(NetlistTest, DuplicateFaninRejected) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");
    EXPECT_THROW((void)nl.add_gate("g", nand2_, {a, a}, y), NetlistError);
}

TEST_F(NetlistTest, SelfLoopRejected) {
    Netlist nl;
    const NetId y = nl.add_net("y");
    EXPECT_THROW((void)nl.add_gate("g", inv_, {y}, y), NetlistError);
}

TEST_F(NetlistTest, PrimaryInputWithDriverRejected) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g", inv_, {a}, y);
    EXPECT_THROW(nl.mark_primary_input(y), NetlistError);
}

TEST_F(NetlistTest, ValidateCatchesFaninMismatch) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g", nand2_, {a}, y);  // NAND2 with one input
    nl.mark_primary_output(y);
    EXPECT_THROW(nl.validate(lib_), NetlistError);
}

TEST_F(NetlistTest, ValidateCatchesUndrivenNet) {
    Netlist nl;
    const NetId a = nl.add_net("a");  // never marked PI, never driven
    const NetId y = nl.add_net("y");
    (void)nl.add_gate("g", inv_, {a}, y);
    nl.mark_primary_output(y);
    EXPECT_THROW(nl.validate(lib_), NetlistError);
}

TEST_F(NetlistTest, ValidateCatchesDanglingNet) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");  // no sink, not PO
    nl.mark_primary_input(a);
    (void)nl.add_gate("g", inv_, {a}, y);
    EXPECT_THROW(nl.validate(lib_), NetlistError);
}

TEST_F(NetlistTest, ValidateCatchesCycle) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId x = nl.add_net("x");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g1", nand2_, {a, y}, x);
    (void)nl.add_gate("g2", inv_, {x}, y);
    nl.mark_primary_output(y);
    EXPECT_THROW(nl.validate(lib_), NetlistError);
}

TEST_F(NetlistTest, ValidateRequiresTerminals) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g", inv_, {a}, y);
    EXPECT_THROW(nl.validate(lib_), NetlistError);  // no PO
}

TEST_F(NetlistTest, TotalsScaleWithWidth) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId y = nl.add_net("y");
    const NetId z = nl.add_net("z");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g1", inv_, {a}, y);
    (void)nl.add_gate("g2", inv_, {y}, z);
    nl.mark_primary_output(z);

    const double area1 = nl.total_area(lib_);
    EXPECT_DOUBLE_EQ(nl.total_width(), 2.0);
    nl.set_uniform_width(2.0);
    EXPECT_DOUBLE_EQ(nl.total_width(), 4.0);
    EXPECT_DOUBLE_EQ(nl.total_area(lib_), 2.0 * area1);
    EXPECT_THROW(nl.set_uniform_width(0.0), NetlistError);
}

TEST_F(NetlistTest, FindNet) {
    Netlist nl;
    const NetId a = nl.add_net("alpha");
    EXPECT_EQ(nl.find_net("alpha"), a);
    EXPECT_FALSE(nl.find_net("beta").is_valid());
}

TEST_F(NetlistTest, MarkPrimaryOutputIdempotent) {
    Netlist nl;
    const NetId a = nl.add_net("a");
    nl.mark_primary_output(a);
    nl.mark_primary_output(a);
    EXPECT_EQ(nl.primary_outputs().size(), 1u);
}

}  // namespace
}  // namespace statim::netlist
