// End-to-end integration tests across the whole stack: the optimization
// improvement predicted on the SSTA bound must be real — i.e. confirmed by
// Monte Carlo on the exact distribution (the paper's Figure 10 argument).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "cells/liberty_lite.hpp"
#include "core/flow.hpp"
#include "core/sizers.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/iscas.hpp"
#include "ssta/metrics.hpp"

namespace statim {
namespace {

TEST(EndToEnd, BoundImprovementIsRealUnderMonteCarlo) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);

    const auto mc_before = mc::run_monte_carlo(ctx.delay_calc(), {4000, 5});

    core::StatisticalSizerConfig cfg;
    cfg.max_iterations = 40;
    const core::SizingResult result = core::run_statistical_sizing(ctx, cfg);
    ASSERT_LT(result.final_objective_ns, result.initial_objective_ns);

    const auto mc_after = mc::run_monte_carlo(ctx.delay_calc(), {4000, 5});
    // The optimizer works on the bound; the exact 99-percentile must also
    // improve (paper: "optimization of the bounds results in nearly
    // equivalent improvement of the exact circuit delay").
    EXPECT_LT(mc_after.percentile_ns(0.99), mc_before.percentile_ns(0.99));

    // And the bound remains an upper bound after sizing.
    ctx.run_ssta();
    const double bound_p99 =
        ssta::percentile_ns(ctx.grid(), ctx.engine().sink_arrival(), 0.99);
    EXPECT_GE(bound_p99, mc_after.percentile_ns(0.99) * 0.98);
}

TEST(EndToEnd, HigherVariabilityRaisesP99) {
    cells::Library lib10 = cells::Library::standard_180nm();
    cells::Library lib20 = cells::Library::standard_180nm();
    lib20.set_sigma_fraction(0.20);

    netlist::Netlist nl10 = netlist::make_iscas("c880", lib10);
    netlist::Netlist nl20 = netlist::make_iscas("c880", lib20);
    core::Context ctx10(nl10, lib10);
    core::Context ctx20(nl20, lib20);
    ctx10.run_ssta();
    ctx20.run_ssta();
    const double p99_10 = ssta::percentile_ns(ctx10.grid(), ctx10.engine().sink_arrival(), 0.99);
    const double p99_20 = ssta::percentile_ns(ctx20.grid(), ctx20.engine().sink_arrival(), 0.99);
    EXPECT_GT(p99_20, p99_10);
}

TEST(EndToEnd, CustomLibraryThroughWholeFlow) {
    // A user-supplied liberty-lite library drives the entire pipeline.
    std::istringstream lib_text(
        "library custom\n"
        "sigma_fraction 0.12\n"
        "trunc_k 3.0\n"
        "output_load 8.0\n"
        "cell INV fanin=1 d_int=0.03 k=0.02 c_cell=5 c_in=5 area=1\n"
        "cell NAND2 fanin=2 d_int=0.04 k=0.025 c_cell=6 c_in=6 area=1.5\n");
    const cells::Library lib = cells::read_liberty_lite(lib_text, "custom");

    std::istringstream bench(netlist::c17_bench_text());
    netlist::Netlist nl = netlist::read_bench(bench, lib, "c17");
    core::Context ctx(nl, lib);
    core::StatisticalSizerConfig cfg;
    cfg.max_iterations = 6;
    const core::SizingResult result = core::run_statistical_sizing(ctx, cfg);
    EXPECT_LT(result.final_objective_ns, result.initial_objective_ns);
}

TEST(EndToEnd, DeterministicWallVsStatisticalBalance) {
    // Figure 1's story: after heavy deterministic optimization the slack
    // "wall" makes the statistical delay worse than what the statistical
    // optimizer achieves at the same area. Indirectly covered by Table 1;
    // here we check the statistical optimizer spreads its effort over more
    // distinct gates than the deterministic one (it improves non-critical
    // paths too).
    cells::Library lib = cells::Library::standard_180nm();

    netlist::Netlist nl_det = netlist::make_iscas("c432", lib);
    core::DeterministicSizerConfig det_cfg;
    det_cfg.max_iterations = 60;
    const core::DetSizingResult det = core::run_deterministic_sizing(nl_det, lib, det_cfg);

    netlist::Netlist nl_stat = netlist::make_iscas("c432", lib);
    core::Context ctx(nl_stat, lib);
    core::StatisticalSizerConfig stat_cfg;
    stat_cfg.max_iterations = 60;
    const core::SizingResult stat = core::run_statistical_sizing(ctx, stat_cfg);

    std::set<std::uint32_t> det_gates, stat_gates;
    for (const auto& r : det.history) det_gates.insert(r.gate.value);
    for (const auto& r : stat.history) stat_gates.insert(r.gate.value);
    EXPECT_GE(stat_gates.size() + 5, det_gates.size());  // not a hard law, but
    EXPECT_FALSE(stat_gates.empty());
}

TEST(EndToEnd, SizingNeverViolatesWidthBounds) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c17", lib);
    core::Context ctx(nl, lib);
    core::StatisticalSizerConfig cfg;
    cfg.max_iterations = 500;
    cfg.max_width = 3.0;
    (void)core::run_statistical_sizing(ctx, cfg);
    for (const auto& g : nl.gates()) {
        EXPECT_GE(g.width, 1.0);
        EXPECT_LE(g.width, 3.0 + 1e-12);
    }
}

}  // namespace
}  // namespace statim
