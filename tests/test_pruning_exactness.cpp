// The paper's central claim: the pruned selector is *exact* — it returns
// the same gate and the same sensitivity as brute force, only faster.
// Verified bitwise along real sizing trajectories on several circuits.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/selector.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

class ExactnessSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ExactnessSweep, PrunedMatchesBruteForceAlongTrajectory) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas(GetParam(), lib);
    Context ctx(nl, lib);
    const SelectorConfig sel{Objective::percentile(0.99), 0.25, 16.0};

    ctx.run_ssta();
    const int iterations = std::string(GetParam()) == "c17" ? 12 : 6;
    for (int iter = 0; iter < iterations; ++iter) {
        const Selection brute = select_brute_force(ctx, sel, false);
        const Selection cone = select_brute_force(ctx, sel, true);
        const Selection pruned = select_pruned(ctx, sel);

        EXPECT_EQ(brute.gate, pruned.gate) << "iteration " << iter;
        EXPECT_DOUBLE_EQ(brute.sensitivity, pruned.sensitivity) << "iteration " << iter;
        EXPECT_EQ(brute.gate, cone.gate) << "iteration " << iter;
        EXPECT_DOUBLE_EQ(brute.sensitivity, cone.sensitivity) << "iteration " << iter;

        // Accounting must cover every candidate exactly once.
        EXPECT_EQ(pruned.stats.completed + pruned.stats.pruned + pruned.stats.died,
                  pruned.stats.candidates)
            << "iteration " << iter;
        // Pruning must actually save work relative to the cone baseline.
        EXPECT_LE(pruned.stats.nodes_computed, cone.stats.nodes_computed)
            << "iteration " << iter;

        if (!pruned.gate.is_valid()) break;
        (void)ctx.apply_resize(pruned.gate, sel.delta_w);
        ctx.run_ssta();
    }
}

INSTANTIATE_TEST_SUITE_P(Circuits, ExactnessSweep,
                         ::testing::Values("c17", "c432", "c499", "c880"));

TEST(ExactnessDetails, BruteForceRecordsAllSensitivities) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig sel{Objective::percentile(0.99), 0.25, 16.0};
    const Selection brute = select_brute_force(ctx, sel, false, /*record_all=*/true);
    ASSERT_EQ(brute.all_sensitivities.size(), nl.gate_count());
    // The selected gate carries the maximum sensitivity.
    for (const auto& [gate, sens] : brute.all_sensitivities)
        EXPECT_LE(sens, brute.sensitivity);
}

TEST(ExactnessDetails, WidthCapShrinksCandidateSet) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c17", lib);
    nl.gate(GateId{0}).width = 16.0;  // already at max
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig sel{Objective::percentile(0.99), 0.25, 16.0};
    const Selection pruned = select_pruned(ctx, sel);
    EXPECT_EQ(pruned.stats.candidates, nl.gate_count() - 1);
}

TEST(ExactnessDetails, MeanObjectiveAlsoExact) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig sel{Objective::mean(), 0.25, 16.0};
    const Selection brute = select_brute_force(ctx, sel, false);
    const Selection pruned = select_pruned(ctx, sel);
    EXPECT_EQ(brute.gate, pruned.gate);
    EXPECT_DOUBLE_EQ(brute.sensitivity, pruned.sensitivity);
}

TEST(ExactnessDetails, PrunedSelectorReportsTimings) {
    cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig sel{Objective::percentile(0.99), 0.25, 16.0};
    const Selection brute = select_brute_force(ctx, sel, false);
    const Selection pruned = select_pruned(ctx, sel);
    EXPECT_GT(brute.stats.seconds, 0.0);
    EXPECT_GT(pruned.stats.seconds, 0.0);
    // The bound must pay for itself on a real circuit.
    EXPECT_LT(pruned.stats.nodes_computed, brute.stats.nodes_computed);
}

}  // namespace
}  // namespace statim::core
